"""Synchronized acquisition sessions."""

import numpy as np
import pytest

from repro.emg.channels import hand_montage
from repro.errors import AcquisitionError
from repro.mocap.vicon import ViconSystem
from repro.motions.base import get_motion_class
from repro.skeleton.body import default_body
from repro.sync.session import AcquisitionSession, SynchronizedTrial
from repro.sync.trigger import TriggerModule


@pytest.fixture
def session():
    return AcquisitionSession()


@pytest.fixture
def plan():
    return get_motion_class("raise_arm").plan(fps=120.0, seed=0)


class TestRecordTrial:
    def test_streams_aligned(self, session, plan):
        trial = session.record_trial(
            default_body(), plan, segments=["hand_r"], montage=hand_montage("r"),
            seed=0,
        )
        assert trial.mocap.n_frames == trial.emg.n_samples
        assert trial.mocap.fps == trial.emg.fs == 120.0

    def test_montage_required(self, session, plan):
        with pytest.raises(AcquisitionError, match="montage"):
            session.record_trial(default_body(), plan, segments=["hand_r"], seed=0)

    def test_plan_rate_must_match(self, session):
        plan = get_motion_class("raise_arm").plan(fps=60.0, seed=0)
        with pytest.raises(AcquisitionError, match="rate"):
            session.record_trial(
                default_body(), plan, montage=hand_montage("r"), seed=0
            )

    def test_deterministic(self, session, plan):
        a = session.record_trial(default_body(), plan, segments=["hand_r"],
                                 montage=hand_montage("r"), seed=9)
        b = session.record_trial(default_body(), plan, segments=["hand_r"],
                                 montage=hand_montage("r"), seed=9)
        assert a.mocap == b.mocap
        assert a.emg == b.emg

    def test_large_skew_is_trimmed(self, plan):
        """A slow device shifts both streams onto the overlapping frames."""
        session = AcquisitionSession(
            trigger=TriggerModule(
                latencies_s={"vicon": 0.10, "myomonitor": 0.0}, jitter_s=0.0
            )
        )
        trial = session.record_trial(
            default_body(), plan, segments=["hand_r"], montage=hand_montage("r"),
            seed=0,
        )
        expected_skew_frames = round(0.10 * 120)
        assert trial.n_frames == plan.n_frames - expected_skew_frames

    def test_extreme_skew_rejected(self, plan):
        session = AcquisitionSession(
            trigger=TriggerModule(
                latencies_s={"vicon": 0.99, "myomonitor": 0.0}, jitter_s=0.0
            )
        )
        class Blink(type(get_motion_class("throw_ball"))):
            name = "blink_test_motion"
            nominal_duration_s = 0.05  # 8 frames: shorter than the skew

        tiny_plan = Blink().plan(fps=120.0, seed=0)
        # A ~1 s skew on an 8-frame motion leaves nothing to align.
        with pytest.raises(AcquisitionError, match="skew"):
            session.record_trial(
                default_body(), tiny_plan, segments=["hand_r"],
                montage=hand_montage("r"), seed=0,
            )


class TestSessionValidation:
    def test_rate_mismatch_rejected(self):
        with pytest.raises(AcquisitionError, match="120"):
            AcquisitionSession(vicon=ViconSystem(fps=100.0))

    def test_trigger_must_know_both_devices(self):
        with pytest.raises(AcquisitionError, match="not wired"):
            AcquisitionSession(
                trigger=TriggerModule(latencies_s={"vicon": 0.001})
            )


class TestSynchronizedTrial:
    def test_misaligned_streams_rejected(self, session, plan):
        trial = session.record_trial(
            default_body(), plan, segments=["hand_r"], montage=hand_montage("r"),
            seed=0,
        )
        with pytest.raises(AcquisitionError, match="misaligned"):
            SynchronizedTrial(
                mocap=trial.mocap.slice_frames(0, 10),
                emg=trial.emg,
                trigger=trial.trigger,
            )

"""Trigger-module fan-out."""

import numpy as np
import pytest

from repro.errors import AcquisitionError
from repro.sync.trigger import TriggerModule


class TestTriggerModule:
    def test_default_devices(self):
        module = TriggerModule()
        assert set(module.devices) == {"vicon", "myomonitor"}

    def test_offsets_nonnegative(self):
        module = TriggerModule(jitter_s=0.01)
        for seed in range(20):
            event = module.fire(seed=seed)
            assert all(v >= 0 for v in event.start_offsets_s.values())

    def test_zero_jitter_reproduces_latencies(self):
        module = TriggerModule(
            latencies_s={"vicon": 0.002, "myomonitor": 0.001}, jitter_s=0.0
        )
        event = module.fire(seed=0)
        assert event.offset("vicon") == 0.002
        assert event.offset("myomonitor") == 0.001
        assert event.skew_s("vicon", "myomonitor") == pytest.approx(0.001)

    def test_jitter_spreads_offsets(self):
        module = TriggerModule(jitter_s=0.001)
        offsets = [module.fire(seed=s).offset("vicon") for s in range(100)]
        assert np.std(offsets) > 1e-4

    def test_deterministic(self):
        module = TriggerModule()
        assert module.fire(seed=3) == module.fire(seed=3)

    def test_unknown_device_raises(self):
        event = TriggerModule().fire(seed=0)
        with pytest.raises(AcquisitionError, match="not triggered"):
            event.offset("forceplate")

    def test_empty_module_rejected(self):
        with pytest.raises(AcquisitionError):
            TriggerModule(latencies_s={})

    def test_negative_latency_rejected(self):
        with pytest.raises(Exception):
            TriggerModule(latencies_s={"vicon": -0.1})


def test_skew_is_antisymmetric():
    event = TriggerModule(jitter_s=0.0).fire(seed=0)
    assert event.skew_s("vicon", "myomonitor") == -event.skew_s("myomonitor", "vicon")

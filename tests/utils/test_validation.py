"""Validation helpers: acceptance, rejection and message quality."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive_int,
    check_probability,
)


class TestCheckArray:
    def test_converts_lists(self):
        out = check_array([[1, 2], [3, 4]], name="x", ndim=2)
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="x must be 2-dimensional"):
            check_array([1, 2, 3], name="x", ndim=2)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_array([1.0, np.nan], name="x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_array([1.0, np.inf], name="x")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_array(["a", "b"], name="x")

    def test_min_rows(self):
        with pytest.raises(ValidationError, match="at least 5 rows"):
            check_array(np.zeros((3, 2)), name="x", min_rows=5)

    def test_allow_empty_false(self):
        with pytest.raises(ValidationError, match="must not be empty"):
            check_array(np.zeros((0, 3)), name="x", allow_empty=False)

    def test_shape_wildcards(self):
        out = check_array(np.zeros((4, 3)), name="x", shape=(None, 3))
        assert out.shape == (4, 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError, match="size 3 along axis 1"):
            check_array(np.zeros((4, 2)), name="x", shape=(None, 3))

    def test_shape_rank_mismatch(self):
        with pytest.raises(ValidationError, match="must be 2-dimensional"):
            check_array(np.zeros(4), name="x", shape=(None, 3))

    def test_error_names_parameter(self):
        with pytest.raises(ValidationError, match="my_matrix"):
            check_array(np.zeros(3), name="my_matrix", ndim=2)


class TestCheckPositiveInt:
    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(4), name="n") == 4

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, name="n")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0, name="n")

    def test_minimum(self):
        assert check_positive_int(0, name="n", minimum=0) == 0
        with pytest.raises(ValidationError, match=">= 2"):
            check_positive_int(1, name="n", minimum=2)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, name="p", low=0.0, high=1.0) == 0.0
        assert check_in_range(1.0, name="p", low=0.0, high=1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, name="p", low=0.0, high=1.0, inclusive_low=False)
        with pytest.raises(ValidationError):
            check_in_range(1.0, name="p", low=0.0, high=1.0, inclusive_high=False)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_in_range(float("nan"), name="p", low=0.0, high=1.0)

    def test_rejects_non_number(self):
        with pytest.raises(ValidationError):
            check_in_range(object(), name="p", low=0.0, high=1.0)

    def test_probability_shortcut(self):
        assert check_probability(0.5, name="p") == 0.5
        with pytest.raises(ValidationError):
            check_probability(1.5, name="p")

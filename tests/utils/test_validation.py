"""Validation helpers: acceptance, rejection and message quality."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive_int,
    check_probability,
    parse_shape_spec,
    shapes,
)


class TestCheckArray:
    def test_converts_lists(self):
        out = check_array([[1, 2], [3, 4]], name="x", ndim=2)
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="x must be 2-dimensional"):
            check_array([1, 2, 3], name="x", ndim=2)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_array([1.0, np.nan], name="x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_array([1.0, np.inf], name="x")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_array(["a", "b"], name="x")

    def test_min_rows(self):
        with pytest.raises(ValidationError, match="at least 5 rows"):
            check_array(np.zeros((3, 2)), name="x", min_rows=5)

    def test_allow_empty_false(self):
        with pytest.raises(ValidationError, match="must not be empty"):
            check_array(np.zeros((0, 3)), name="x", allow_empty=False)

    def test_shape_wildcards(self):
        out = check_array(np.zeros((4, 3)), name="x", shape=(None, 3))
        assert out.shape == (4, 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError, match="size 3 along axis 1"):
            check_array(np.zeros((4, 2)), name="x", shape=(None, 3))

    def test_shape_rank_mismatch(self):
        with pytest.raises(ValidationError, match="must be 2-dimensional"):
            check_array(np.zeros(4), name="x", shape=(None, 3))

    def test_error_names_parameter(self):
        with pytest.raises(ValidationError, match="my_matrix"):
            check_array(np.zeros(3), name="my_matrix", ndim=2)


class TestCheckPositiveInt:
    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(4), name="n") == 4

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, name="n")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0, name="n")

    def test_minimum(self):
        assert check_positive_int(0, name="n", minimum=0) == 0
        with pytest.raises(ValidationError, match=">= 2"):
            check_positive_int(1, name="n", minimum=2)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, name="p", low=0.0, high=1.0) == 0.0
        assert check_in_range(1.0, name="p", low=0.0, high=1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, name="p", low=0.0, high=1.0, inclusive_low=False)
        with pytest.raises(ValidationError):
            check_in_range(1.0, name="p", low=0.0, high=1.0, inclusive_high=False)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_in_range(float("nan"), name="p", low=0.0, high=1.0)

    def test_rejects_non_number(self):
        with pytest.raises(ValidationError):
            check_in_range(object(), name="p", low=0.0, high=1.0)

    def test_probability_shortcut(self):
        assert check_probability(0.5, name="p") == 0.5
        with pytest.raises(ValidationError):
            check_probability(1.5, name="p")


class TestCheckArrayEdges:
    def test_empty_array_allowed_by_default(self):
        out = check_array(np.zeros((0, 3)), name="x", ndim=2)
        assert out.shape == (0, 3)

    def test_dtype_coercion_from_int(self):
        out = check_array(np.arange(4, dtype=np.int32), name="x")
        assert out.dtype == np.float64

    def test_dtype_none_preserves_input_dtype(self):
        out = check_array(np.arange(4, dtype=np.int32), name="x", dtype=None)
        assert out.dtype == np.int32

    def test_all_wildcard_shape(self):
        out = check_array(np.zeros((7, 2)), name="x", shape=(None, None))
        assert out.shape == (7, 2)

    def test_allow_non_finite_accepts_nan(self):
        out = check_array([1.0, np.nan, np.inf], name="x", allow_non_finite=True)
        assert np.isnan(out[1]) and np.isinf(out[2])

    def test_allow_non_finite_still_checks_shape(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_array([1.0, np.nan], name="x", ndim=2, allow_non_finite=True)

    def test_scalar_input_becomes_0d(self):
        out = check_array(3.0, name="x")
        assert out.ndim == 0

    def test_min_rows_on_exact_boundary(self):
        out = check_array(np.zeros((5, 2)), name="x", min_rows=5)
        assert out.shape == (5, 2)


class TestParseShapeSpec:
    def test_symbols_and_ints(self):
        assert parse_shape_spec("(n, d)") == ("n", "d")
        assert parse_shape_spec("(w, 3)") == ("w", 3)

    def test_one_dim_trailing_comma(self):
        assert parse_shape_spec("(n,)") == ("n",)

    def test_wildcard_and_ellipsis(self):
        assert parse_shape_spec("(*, d)") == (None, "d")
        assert parse_shape_spec("(..., 3)") == (Ellipsis, 3)
        assert parse_shape_spec("(n, ...)") == ("n", Ellipsis)

    def test_scalar_spec(self):
        assert parse_shape_spec("()") == ()

    def test_rejects_unparenthesized(self):
        with pytest.raises(ValidationError, match="parenthesized"):
            parse_shape_spec("n, d")

    def test_rejects_non_string(self):
        with pytest.raises(ValidationError, match="must be a string"):
            parse_shape_spec(3)

    def test_rejects_two_ellipses(self):
        with pytest.raises(ValidationError):
            parse_shape_spec("(..., n, ...)")

    def test_rejects_garbage_token(self):
        with pytest.raises(ValidationError):
            parse_shape_spec("(n, d!)")


class TestShapesDecorator:
    def test_accepts_matching_shapes(self):
        @shapes(x="(n, d)", centers="(c, d)")
        def f(x, centers):
            return x.shape[0]

        assert f(np.zeros((4, 3)), np.zeros((2, 3))) == 4

    def test_rejects_wrong_rank(self):
        @shapes(x="(n, d)")
        def f(x):
            return x

        with pytest.raises(ValidationError, match=r"2 dimension\(s\)"):
            f(np.zeros(4))

    def test_symbol_must_agree_across_parameters(self):
        @shapes(x="(n, d)", centers="(c, d)")
        def f(x, centers):
            return x

        with pytest.raises(ValidationError, match="d"):
            f(np.zeros((4, 3)), np.zeros((2, 5)))

    def test_symbol_must_agree_within_one_spec(self):
        @shapes(x="(n, n)")
        def f(x):
            return x

        f(np.eye(3))
        with pytest.raises(ValidationError):
            f(np.zeros((2, 3)))

    def test_fixed_int_dimension(self):
        @shapes(window="(w, 3)")
        def f(window):
            return window

        f(np.zeros((10, 3)))
        with pytest.raises(ValidationError, match="expected size 3"):
            f(np.zeros((10, 2)))

    def test_ellipsis_matches_any_leading_dims(self):
        @shapes(angles="(..., 3)")
        def f(angles):
            return angles

        f(np.zeros(3))
        f(np.zeros((5, 3)))
        f(np.zeros((2, 5, 3)))
        with pytest.raises(ValidationError):
            f(np.zeros((5, 2)))

    def test_none_values_are_skipped(self):
        @shapes(x="(n, d)")
        def f(x=None):
            return x

        assert f(None) is None
        assert f() is None

    def test_works_with_keyword_arguments(self):
        @shapes(x="(n,)")
        def f(*, x):
            return x

        with pytest.raises(ValidationError):
            f(x=np.zeros((2, 2)))

    def test_unknown_parameter_rejected_at_decoration_time(self):
        with pytest.raises(ValidationError, match="unknown parameter"):
            @shapes(ghost="(n,)")
            def f(x):
                return x

    def test_preserves_metadata_and_exposes_contracts(self):
        @shapes(x="(n, d)")
        def f(x):
            """Docstring kept."""
            return x

        assert f.__name__ == "f"
        assert f.__doc__ == "Docstring kept."
        assert f.__shape_contracts__ == {"x": "(n, d)"}

    def test_accepts_lists_via_np_shape(self):
        @shapes(x="(n, 2)")
        def f(x):
            return np.asarray(x)

        assert f([[1, 2], [3, 4]]).shape == (2, 2)

    def test_error_names_parameter_and_spec(self):
        @shapes(membership="(w, c)")
        def f(membership):
            return membership

        with pytest.raises(ValidationError, match=r"membership.*\(w, c\)"):
            f(np.zeros((2, 3, 4)))

"""RNG plumbing: normalization and deterministic spawning."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.rng import as_generator, spawn_generators


def test_as_generator_from_int_is_deterministic():
    a = as_generator(42).normal(size=5)
    b = as_generator(42).normal(size=5)
    np.testing.assert_array_equal(a, b)


def test_as_generator_passes_generator_through():
    g = np.random.default_rng(0)
    assert as_generator(g) is g


def test_as_generator_accepts_none():
    g = as_generator(None)
    assert isinstance(g, np.random.Generator)


def test_as_generator_accepts_seed_sequence():
    g = as_generator(np.random.SeedSequence(7))
    assert isinstance(g, np.random.Generator)


def test_as_generator_rejects_strings():
    with pytest.raises(ValidationError):
        as_generator("not a seed")


def test_spawn_generators_deterministic():
    a = [g.normal() for g in spawn_generators(1, 4)]
    b = [g.normal() for g in spawn_generators(1, 4)]
    assert a == b


def test_spawn_generators_independent_streams():
    gens = spawn_generators(0, 3)
    draws = [g.normal(size=8) for g in gens]
    assert not np.allclose(draws[0], draws[1])
    assert not np.allclose(draws[1], draws[2])


def test_spawn_generators_count():
    assert len(spawn_generators(0, 0)) == 0
    assert len(spawn_generators(0, 7)) == 7


def test_spawn_generators_negative_rejected():
    with pytest.raises(ValidationError):
        spawn_generators(0, -1)


def test_spawn_consumes_root_state():
    """Spawning from the same Generator twice yields different children."""
    root = np.random.default_rng(5)
    first = spawn_generators(root, 2)
    second = spawn_generators(root, 2)
    assert first[0].normal() != second[0].normal()


def test_spawn_generators_children_independent_of_sibling_consumption():
    """Draws from one child do not perturb another child's stream."""
    a1, b1 = spawn_generators(9, 2)
    a2, b2 = spawn_generators(9, 2)
    a1.normal(size=100)  # consume heavily from the first child
    np.testing.assert_array_equal(b1.normal(size=8), b2.normal(size=8))


def test_spawn_generators_distinct_seeds_distinct_streams():
    a = spawn_generators(0, 1)[0].normal(size=8)
    b = spawn_generators(1, 1)[0].normal(size=8)
    assert not np.allclose(a, b)

"""Window arithmetic: bounds, partial windows, views, unit properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.windows import (
    iter_windows,
    num_windows,
    sliding_window_view_2d,
    window_bounds,
    window_size_frames,
)


class TestWindowSizeFrames:
    def test_paper_values_at_120hz(self):
        """50/100/150/200 ms at 120 Hz are 6/12/18/24 frames."""
        assert window_size_frames(50, 120) == 6
        assert window_size_frames(100, 120) == 12
        assert window_size_frames(150, 120) == 18
        assert window_size_frames(200, 120) == 24

    def test_rounds_to_nearest_frame(self):
        assert window_size_frames(55, 120) == 7  # 6.6 frames

    def test_floor_of_one_frame(self):
        assert window_size_frames(1, 120) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            window_size_frames(0, 120)
        with pytest.raises(ValidationError):
            window_size_frames(50, 0)


class TestWindowBounds:
    def test_exact_division(self):
        assert window_bounds(12, 4) == [(0, 4), (4, 8), (8, 12)]

    def test_partial_window_kept_above_half(self):
        # remainder of 3 frames >= 0.5 * 4
        assert window_bounds(11, 4)[-1] == (8, 11)

    def test_partial_window_dropped_below_half(self):
        # remainder of 1 frame < 0.5 * 4
        assert window_bounds(9, 4) == [(0, 4), (4, 8)]

    def test_overlapping_stride(self):
        assert window_bounds(10, 4, stride=2) == [
            (0, 4), (2, 6), (4, 8), (6, 10), (8, 10),
        ]

    def test_stream_shorter_than_window(self):
        """A too-short stream still yields one (whole) window."""
        assert window_bounds(3, 10) == [(0, 3)]

    def test_empty_stream(self):
        assert window_bounds(0, 4) == []

    def test_min_fraction_zero_keeps_everything(self):
        assert window_bounds(9, 4, min_fraction=0.0)[-1] == (8, 9)

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            window_bounds(10, 0)
        with pytest.raises(ValidationError):
            window_bounds(10, 4, stride=0)
        with pytest.raises(ValidationError):
            window_bounds(10, 4, min_fraction=1.5)

    @given(
        n=st.integers(1, 500),
        window=st.integers(1, 60),
        stride=st.integers(1, 60),
    )
    @settings(max_examples=200)
    def test_bounds_are_valid_ranges(self, n, window, stride):
        bounds = window_bounds(n, window, stride)
        assert bounds, "non-empty stream must yield at least one window"
        for start, stop in bounds:
            assert 0 <= start < stop <= n
            assert stop - start <= window
        starts = [b[0] for b in bounds]
        assert starts == sorted(starts)

    @given(n=st.integers(1, 500), window=st.integers(1, 60))
    @settings(max_examples=100)
    def test_default_stride_windows_are_disjoint_and_ordered(self, n, window):
        bounds = window_bounds(n, window)
        for (s1, e1), (s2, e2) in zip(bounds, bounds[1:]):
            assert e1 <= s2


class TestNumWindows:
    def test_matches_bounds(self):
        for n in (0, 1, 5, 100, 101):
            assert num_windows(n, 7) == len(window_bounds(n, 7))

    def test_counter_recorded_only_by_materializing_path(self):
        """Regression: num_windows used to delegate to window_bounds, so a
        count-then-iterate caller double-counted ``utils.windows.produced``."""
        from repro.obs.config import capture

        with capture() as state:
            n = num_windows(100, 7)
            bounds = window_bounds(100, 7)
        assert n == len(bounds)
        counter = state.registry.counter("utils.windows.produced")
        assert counter.value == len(bounds)

    def test_num_windows_alone_records_nothing(self):
        from repro.obs.config import capture

        with capture() as state:
            num_windows(100, 7)
        assert state.registry.counter("utils.windows.produced").value == 0


class TestIterWindows:
    def test_yields_views(self):
        data = np.arange(20.0).reshape(10, 2)
        chunks = list(iter_windows(data, 4))
        assert [c.shape[0] for c in chunks] == [4, 4, 2]
        assert chunks[0].base is not None  # a view, not a copy

    def test_concatenation_covers_stream(self):
        data = np.arange(24.0).reshape(12, 2)
        joined = np.vstack(list(iter_windows(data, 4)))
        np.testing.assert_array_equal(joined, data)

    def test_rejects_scalars(self):
        with pytest.raises(ValidationError):
            list(iter_windows(np.float64(3.0), 4))


class TestSlidingWindowView:
    def test_shape_and_content(self):
        data = np.arange(20.0).reshape(10, 2)
        view = sliding_window_view_2d(data, window=4, stride=3)
        assert view.shape == (3, 4, 2)
        np.testing.assert_array_equal(view[1], data[3:7])

    def test_short_input_gives_empty(self):
        data = np.zeros((2, 3))
        assert sliding_window_view_2d(data, 5, 1).shape[0] == 0

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            sliding_window_view_2d(np.zeros(5), 2, 1)

    @given(
        n=st.integers(1, 100),
        window=st.integers(1, 20),
        stride=st.integers(1, 20),
    )
    @settings(max_examples=100)
    def test_matches_manual_slicing(self, n, window, stride):
        data = np.arange(n * 2, dtype=float).reshape(n, 2)
        view = sliding_window_view_2d(data, window, stride)
        expected = [
            data[s : s + window]
            for s in range(0, n - window + 1, stride)
        ]
        assert view.shape[0] == len(expected)
        for got, want in zip(view, expected):
            np.testing.assert_array_equal(got, want)


class TestShortStreamEdges:
    """Regression tier for the short/odd-stream edges: typed errors in,
    whole-stream fallbacks out — never a raw numpy failure."""

    def test_one_frame_stream_yields_one_window(self):
        assert window_bounds(1, 12) == [(0, 1)]
        assert num_windows(1, 12) == 1

    def test_short_stream_whole_window_fallback_any_stride(self):
        for stride in (1, 3, 50):
            assert window_bounds(4, 10, stride=stride) == [(0, 4)]

    def test_zero_frames_is_empty_not_fallback(self):
        assert window_bounds(0, 4) == []
        assert num_windows(0, 4) == 0

    def test_negative_frames_is_typed(self):
        with pytest.raises(ValidationError):
            window_bounds(-1, 4)

    def test_negative_stride_is_typed(self):
        with pytest.raises(ValidationError):
            window_bounds(10, 4, stride=-1)

    def test_bad_min_fraction_is_typed(self):
        with pytest.raises(ValidationError):
            window_bounds(10, 4, min_fraction=1.5)

    def test_iter_windows_short_stream_yields_whole_chunk(self):
        data = np.arange(6.0).reshape(3, 2)
        chunks = list(iter_windows(data, window=10, stride=10))
        assert len(chunks) == 1
        np.testing.assert_array_equal(chunks[0], data)

    def test_sliding_view_zero_columns(self):
        view = sliding_window_view_2d(np.zeros((10, 0)), window=4, stride=3)
        assert view.shape == (3, 4, 0)

    def test_trailing_partial_window_is_odd_sized(self):
        # 13 frames, window 4: the 1-frame tail is dropped at the default
        # half-window threshold but kept at min_fraction=0.
        assert window_bounds(13, 4)[-1] == (8, 12)
        assert window_bounds(13, 4, min_fraction=0.0)[-1] == (12, 13)

"""Kinematic analysis utilities."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mocap.analysis import (
    joint_angle_series,
    mean_speed,
    path_length,
    range_of_motion,
    smoothness_sal,
)
from repro.mocap.trajectory import MotionCaptureData


def capture_from(positions, fps=120.0):
    return MotionCaptureData.from_positions(
        positions, list(positions), fps=fps
    )


class TestJointAngleSeries:
    def test_straight_chain_reads_pi(self):
        n = 10
        pos = {
            "a": np.tile([0.0, 0.0, 2.0], (n, 1)),
            "b": np.tile([0.0, 0.0, 1.0], (n, 1)),
            "c": np.tile([0.0, 0.0, 0.0], (n, 1)),
        }
        angles = joint_angle_series(capture_from(pos), "a", "b", "c")
        np.testing.assert_allclose(angles, np.pi, atol=1e-9)

    def test_right_angle(self):
        n = 5
        pos = {
            "a": np.tile([0.0, 0.0, 1.0], (n, 1)),
            "b": np.tile([0.0, 0.0, 0.0], (n, 1)),
            "c": np.tile([1.0, 0.0, 0.0], (n, 1)),
        }
        angles = joint_angle_series(capture_from(pos), "a", "b", "c")
        np.testing.assert_allclose(angles, np.pi / 2, atol=1e-9)

    def test_elbow_flexion_on_simulated_capture(self, small_hand_dataset):
        """During a drink-from-cup trial the elbow angle decreases from
        near-extension to deep flexion and comes back."""
        record = small_hand_dataset.by_label("drink_from_cup")[0]
        angles = joint_angle_series(
            record.mocap, "clavicle_r", "humerus_r", "radius_r"
        )
        assert angles.min() < angles[0] - 0.5  # flexes substantially
        assert abs(angles[-1] - angles[0]) < 0.6  # returns near the start

    def test_degenerate_chain_rejected(self):
        n = 4
        pos = {
            "a": np.zeros((n, 3)),
            "b": np.zeros((n, 3)),
            "c": np.ones((n, 3)),
        }
        with pytest.raises(ValidationError):
            joint_angle_series(capture_from(pos), "a", "b", "c")


class TestTrajectoryMetrics:
    def test_range_of_motion(self):
        t = np.linspace(0, 1, 50)
        pos = {"p": np.stack([100 * t, -50 * t, 0 * t], axis=1)}
        rom = range_of_motion(capture_from(pos), "p")
        assert rom == pytest.approx({"x": 100.0, "y": 50.0, "z": 0.0})

    def test_path_length_of_line(self):
        t = np.linspace(0, 1, 100)
        pos = {"p": np.stack([300 * t, 0 * t, 400 * t], axis=1)}
        assert path_length(capture_from(pos), "p") == pytest.approx(500.0)

    def test_mean_speed(self):
        t = np.linspace(0, 1, 121)  # 1 s at 120 fps
        pos = {"p": np.stack([120 * t, 0 * t, 0 * t], axis=1)}
        cap = capture_from(pos)
        assert mean_speed(cap, "p") == pytest.approx(
            path_length(cap, "p") / cap.duration_s
        )

    def test_static_segment(self):
        pos = {"p": np.tile([1.0, 2.0, 3.0], (30, 1))}
        assert path_length(capture_from(pos), "p") == pytest.approx(0.0)


class TestSmoothness:
    def test_smooth_beats_jerky(self, rng):
        t = np.linspace(0, 1, 240)
        smooth_traj = {"p": np.stack(
            [200 * (10 * t**3 - 15 * t**4 + 6 * t**5), 0 * t, 0 * t], axis=1
        )}
        jerky = smooth_traj["p"] + rng.normal(0, 3.0, size=(240, 3))
        jerky_traj = {"p": jerky}
        s_smooth = smoothness_sal(capture_from(smooth_traj), "p")
        s_jerky = smoothness_sal(capture_from(jerky_traj), "p")
        assert s_smooth > s_jerky  # both negative; smoother is nearer zero

    def test_static_segment_rejected(self):
        pos = {"p": np.tile([0.0, 0.0, 0.0], (50, 1))}
        with pytest.raises(ValidationError):
            smoothness_sal(capture_from(pos), "p")

    def test_too_short_rejected(self):
        pos = {"p": np.random.default_rng(0).normal(size=(4, 3))}
        with pytest.raises(ValidationError):
            smoothness_sal(capture_from(pos), "p")

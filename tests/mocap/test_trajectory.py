"""MotionCaptureData container semantics."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mocap.trajectory import MotionCaptureData


@pytest.fixture
def capture(rng):
    pos = {
        "pelvis": rng.normal(size=(10, 3)) * 10 + 1000,
        "hand_r": rng.normal(size=(10, 3)) * 10 + 1200,
        "radius_r": rng.normal(size=(10, 3)) * 10 + 1100,
    }
    return MotionCaptureData.from_positions(pos, ["pelvis", "hand_r", "radius_r"]), pos


class TestConstruction:
    def test_from_positions_column_order(self, capture):
        data, pos = capture
        np.testing.assert_array_equal(data.joint_matrix("hand_r"), pos["hand_r"])
        assert data.segments == ("pelvis", "hand_r", "radius_r")

    def test_column_count_enforced(self):
        with pytest.raises(ValidationError, match="columns"):
            MotionCaptureData(segments=("a",), matrix_mm=np.zeros((5, 4)))

    def test_duplicate_segments_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            MotionCaptureData(segments=("a", "a"), matrix_mm=np.zeros((5, 6)))

    def test_missing_position_rejected(self):
        with pytest.raises(ValidationError, match="missing"):
            MotionCaptureData.from_positions({"a": np.zeros((5, 3))}, ["a", "b"])

    def test_frame_count_mismatch_rejected(self):
        pos = {"a": np.zeros((5, 3)), "b": np.zeros((6, 3))}
        with pytest.raises(ValidationError, match="frames"):
            MotionCaptureData.from_positions(pos, ["a", "b"])

    def test_nan_rejected(self):
        with pytest.raises(ValidationError, match="non-finite"):
            MotionCaptureData(segments=("a",), matrix_mm=np.full((5, 3), np.nan))

    def test_matrix_is_immutable(self, capture):
        data, _ = capture
        with pytest.raises(ValueError):
            data.matrix_mm[0, 0] = 99.0

    def test_bad_fps_rejected(self):
        with pytest.raises(ValidationError):
            MotionCaptureData(segments=("a",), matrix_mm=np.zeros((5, 3)), fps=0.0)


class TestAccessors:
    def test_basic_properties(self, capture):
        data, _ = capture
        assert data.n_frames == 10
        assert data.n_segments == 3
        assert data.duration_s == pytest.approx(10 / 120.0)

    def test_unknown_segment(self, capture):
        data, _ = capture
        with pytest.raises(ValidationError, match="not captured"):
            data.joint_matrix("ghost")

    def test_positions_roundtrip(self, capture):
        data, pos = capture
        out = data.positions()
        for name in pos:
            np.testing.assert_array_equal(out[name], pos[name])


class TestTransforms:
    def test_select_reorders(self, capture):
        data, pos = capture
        sub = data.select(["radius_r", "hand_r"])
        assert sub.segments == ("radius_r", "hand_r")
        np.testing.assert_array_equal(sub.joint_matrix("hand_r"), pos["hand_r"])

    def test_to_pelvis_local(self, capture):
        data, pos = capture
        local = data.to_pelvis_local()
        np.testing.assert_allclose(local.joint_matrix("pelvis"), 0.0)
        np.testing.assert_allclose(
            local.joint_matrix("hand_r"), pos["hand_r"] - pos["pelvis"]
        )

    def test_slice_frames(self, capture):
        data, pos = capture
        window = data.slice_frames(2, 6)
        assert window.n_frames == 4
        np.testing.assert_array_equal(
            window.joint_matrix("hand_r"), pos["hand_r"][2:6]
        )

    def test_slice_frames_bounds_checked(self, capture):
        data, _ = capture
        with pytest.raises(ValidationError):
            data.slice_frames(5, 3)
        with pytest.raises(ValidationError):
            data.slice_frames(0, 99)

    def test_equality(self, capture):
        data, pos = capture
        same = MotionCaptureData.from_positions(pos, list(data.segments))
        assert data == same
        assert data != same.select(["pelvis", "hand_r"])
        assert data.__eq__(42) is NotImplemented

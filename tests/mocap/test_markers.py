"""Marker clusters, placement, and joint reconstruction."""

import numpy as np
import pytest

from repro.errors import SkeletonError, ValidationError
from repro.mocap.markers import (
    MarkerCluster,
    default_marker_set,
    marker_positions,
    reconstruct_joints,
)
from repro.mocap.vicon import ViconSystem
from repro.mocap.noise import MarkerNoiseModel
from repro.motions.base import get_motion_class
from repro.skeleton.body import default_body
from repro.skeleton.kinematics import forward_kinematics


@pytest.fixture
def plan():
    return get_motion_class("raise_arm").plan(fps=120.0, seed=0)


@pytest.fixture
def body():
    return default_body()


class TestMarkerCluster:
    def test_valid_cluster(self):
        offsets = np.array([[40.0, 0, 0], [-20.0, 34.6, 0], [-20.0, -34.6, 0]])
        cluster = MarkerCluster(segment="hand_r", offsets_mm=offsets)
        assert cluster.n_markers == 3

    def test_non_centred_rejected(self):
        with pytest.raises(ValidationError, match="not centred"):
            MarkerCluster(segment="x", offsets_mm=np.array([[1.0, 0, 0],
                                                            [1.0, 0, 0]]))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValidationError):
            MarkerCluster(segment="x", offsets_mm=np.zeros((3, 2)))


class TestDefaultMarkerSet:
    def test_centred_clusters_for_all_segments(self):
        clusters = default_marker_set(["hand_r", "radius_r"], n_markers=4)
        assert set(clusters) == {"hand_r", "radius_r"}
        for cluster in clusters.values():
            assert cluster.n_markers == 4
            np.testing.assert_allclose(
                np.asarray(cluster.offsets_mm).mean(axis=0), 0.0, atol=1e-9
            )

    def test_markers_at_requested_radius(self):
        clusters = default_marker_set(["hand_r"], radius_mm=40.0)
        radii = np.linalg.norm(np.asarray(clusters["hand_r"].offsets_mm), axis=1)
        np.testing.assert_allclose(radii, 40.0)

    def test_minimum_two_markers(self):
        with pytest.raises(Exception):
            default_marker_set(["hand_r"], n_markers=1)


class TestMarkerPositionsAndReconstruction:
    def test_noiseless_reconstruction_is_exact(self, body, plan):
        """Cluster centroids equal the true joint trajectories."""
        clusters = default_marker_set(["hand_r", "radius_r"], seed=3)
        clouds = marker_positions(body, plan.animation, clusters)
        joints = reconstruct_joints(clouds)
        truth = forward_kinematics(body, plan.animation, ["hand_r", "radius_r"])
        for segment in joints:
            np.testing.assert_allclose(joints[segment], truth[segment],
                                       atol=1e-9)

    def test_markers_ride_rigidly(self, body, plan):
        """Inter-marker distances stay constant through the motion."""
        clusters = default_marker_set(["hand_r"], seed=0)
        cloud = marker_positions(body, plan.animation, clusters)["hand_r"]
        d01 = np.linalg.norm(cloud[:, 0] - cloud[:, 1], axis=1)
        np.testing.assert_allclose(d01, d01[0], atol=1e-9)

    def test_averaging_beats_single_marker_noise(self, body, plan, rng):
        """Reconstruction error < raw marker noise (the 1/sqrt(k) win)."""
        clusters = default_marker_set(["hand_r"], n_markers=4, seed=1)
        cloud = marker_positions(body, plan.animation, clusters)["hand_r"]
        sigma = 1.0
        noisy = cloud + rng.normal(0, sigma, size=cloud.shape)
        joints = reconstruct_joints({"hand_r": noisy})
        truth = forward_kinematics(body, plan.animation, ["hand_r"])["hand_r"]
        err = np.linalg.norm(joints["hand_r"] - truth, axis=1)
        # Expected per-axis error sigma/2 for k=4.
        assert err.mean() < 0.75 * sigma * np.sqrt(3)

    def test_occluded_markers_ignored_framewise(self, body, plan):
        clusters = default_marker_set(["hand_r"], n_markers=3, seed=0)
        cloud = marker_positions(body, plan.animation, clusters)["hand_r"].copy()
        cloud[10:14, 1, :] = np.nan  # one marker drops for 4 frames
        joints = reconstruct_joints({"hand_r": cloud})
        assert np.all(np.isfinite(joints["hand_r"]))

    def test_fully_occluded_frame_rejected(self, body, plan):
        clusters = default_marker_set(["hand_r"], n_markers=2, seed=0)
        cloud = marker_positions(body, plan.animation, clusters)["hand_r"].copy()
        cloud[5, :, :] = np.nan
        with pytest.raises(SkeletonError, match="occluded"):
            reconstruct_joints({"hand_r": cloud})

    def test_unknown_segment_rejected(self, body, plan):
        clusters = default_marker_set(["ghost"], seed=0)
        with pytest.raises(Exception):
            marker_positions(body, plan.animation, clusters)


class TestViconMarkerLevelCapture:
    def test_matches_joint_level_when_clean(self, body, plan):
        joint_level = ViconSystem(noise=None, occlusion=None)
        marker_level = ViconSystem(noise=None, occlusion=None,
                                   markers_per_joint=3)
        a = joint_level.capture(body, plan.animation, ["hand_r"], seed=0)
        b = marker_level.capture(body, plan.animation, ["hand_r"], seed=0)
        np.testing.assert_allclose(
            a.joint_matrix("hand_r"), b.joint_matrix("hand_r"), atol=1e-6
        )

    def test_cluster_averaging_reduces_noise(self, body, plan):
        truth = forward_kinematics(body, plan.animation, ["hand_r"])["hand_r"]
        noise = MarkerNoiseModel(sigma_mm=2.0)
        errs = {}
        for markers in (0, 4):
            vicon = ViconSystem(noise=noise, occlusion=None,
                                markers_per_joint=markers)
            data = vicon.capture(body, plan.animation, ["hand_r"], seed=0)
            errs[markers] = np.abs(
                data.joint_matrix("hand_r") - truth
            ).std()
        assert errs[4] < 0.75 * errs[0]

    def test_marker_level_with_occlusion_stays_finite(self, body, plan):
        from repro.mocap.noise import OcclusionModel

        vicon = ViconSystem(
            occlusion=OcclusionModel(dropout_rate_per_s=5.0),
            markers_per_joint=3,
        )
        data = vicon.capture(body, plan.animation, ["hand_r"], seed=0)
        assert np.all(np.isfinite(data.matrix_mm))

    def test_single_marker_per_joint_rejected(self):
        with pytest.raises(Exception):
            ViconSystem(markers_per_joint=1)

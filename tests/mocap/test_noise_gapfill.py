"""Marker noise, occlusion, and gap-filling."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.mocap.gapfill import fill_gaps, gap_statistics
from repro.mocap.noise import MarkerNoiseModel, OcclusionModel


class TestMarkerNoise:
    def test_jitter_magnitude(self, rng):
        pos = np.zeros((5000, 3))
        out = MarkerNoiseModel(sigma_mm=0.8).apply(pos, seed=0)
        assert abs(out.std() - 0.8) < 0.05

    def test_zero_sigma_is_copy(self, rng):
        pos = rng.normal(size=(10, 3))
        out = MarkerNoiseModel(sigma_mm=0.0).apply(pos, seed=0)
        np.testing.assert_array_equal(out, pos)
        assert out is not pos

    def test_deterministic(self, rng):
        pos = rng.normal(size=(20, 6))
        a = MarkerNoiseModel().apply(pos, seed=5)
        b = MarkerNoiseModel().apply(pos, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_negative_sigma_rejected(self):
        with pytest.raises(Exception):
            MarkerNoiseModel(sigma_mm=-1.0)


class TestOcclusion:
    def test_produces_nan_gaps(self, rng):
        pos = rng.normal(size=(600, 6))
        out = OcclusionModel(dropout_rate_per_s=5.0, max_gap_frames=4).apply(
            pos, fps=120.0, seed=0
        )
        assert np.isnan(out).any()

    def test_gaps_affect_whole_marker_triples(self, rng):
        pos = rng.normal(size=(600, 6))
        out = OcclusionModel(dropout_rate_per_s=5.0).apply(pos, fps=120.0, seed=0)
        nan_mask = np.isnan(out)
        for marker in range(2):
            cols = nan_mask[:, 3 * marker : 3 * marker + 3]
            # All three coordinates of a marker drop together.
            assert np.all(cols.all(axis=1) == cols.any(axis=1))

    def test_first_and_last_frames_never_dropped(self, rng):
        pos = rng.normal(size=(200, 3))
        for seed in range(10):
            out = OcclusionModel(dropout_rate_per_s=20.0, max_gap_frames=8).apply(
                pos, fps=120.0, seed=seed
            )
            assert not np.isnan(out[0]).any()
            assert not np.isnan(out[-1]).any()

    def test_zero_rate_is_clean(self, rng):
        pos = rng.normal(size=(100, 3))
        out = OcclusionModel(dropout_rate_per_s=0.0).apply(pos, fps=120.0, seed=0)
        np.testing.assert_array_equal(out, pos)

    def test_gap_lengths_bounded(self, rng):
        """Single events are capped; independent events may merge, so the
        observed longest run is bounded by a small multiple of the cap."""
        pos = rng.normal(size=(1000, 3))
        out = OcclusionModel(dropout_rate_per_s=10.0, max_gap_frames=3).apply(
            pos, fps=120.0, seed=1
        )
        stats = gap_statistics(out)
        assert 0 < stats["longest_gap"] <= 3 * 3


class TestFillGaps:
    def test_linear_interpolation_exact_on_lines(self):
        t = np.arange(20, dtype=float)
        pos = np.stack([2 * t, -t], axis=1)
        gappy = pos.copy()
        gappy[5:8, 0] = np.nan
        gappy[12, 1] = np.nan
        filled = fill_gaps(gappy)
        np.testing.assert_allclose(filled, pos, atol=1e-12)

    def test_leading_gap_extrapolates_nearest(self):
        col = np.array([np.nan, np.nan, 3.0, 4.0])
        filled = fill_gaps(col[:, None])
        np.testing.assert_allclose(filled[:, 0], [3.0, 3.0, 3.0, 4.0])

    def test_no_gaps_is_unchanged(self, rng):
        pos = rng.normal(size=(10, 3))
        np.testing.assert_array_equal(fill_gaps(pos), pos)

    def test_all_nan_column_rejected(self):
        with pytest.raises(SignalError, match="entirely NaN"):
            fill_gaps(np.full((5, 2), np.nan))

    def test_rejects_1d(self):
        with pytest.raises(SignalError):
            fill_gaps(np.zeros(5))

    def test_roundtrip_with_occlusion(self, rng):
        """Occlude then fill: result is finite and close to the original."""
        t = np.linspace(0, 2 * np.pi, 400)
        pos = np.stack([np.sin(t) * 100, np.cos(t) * 100, t * 10], axis=1)
        gappy = OcclusionModel(dropout_rate_per_s=5.0, max_gap_frames=5).apply(
            pos, fps=120.0, seed=3
        )
        filled = fill_gaps(gappy)
        assert np.all(np.isfinite(filled))
        assert np.abs(filled - pos).max() < 1.0  # short gaps on a smooth curve


class TestGapStatistics:
    def test_counts_runs(self):
        col = np.array([1.0, np.nan, np.nan, 2.0, np.nan, 3.0])
        stats = gap_statistics(col[:, None])
        assert stats == {"n_gaps": 2, "n_nan_samples": 3, "longest_gap": 2}

    def test_trailing_run_counted(self):
        col = np.array([1.0, 2.0, np.nan])
        assert gap_statistics(col[:, None])["n_gaps"] == 1

    def test_clean_data(self, rng):
        stats = gap_statistics(rng.normal(size=(10, 4)))
        assert stats == {"n_gaps": 0, "n_nan_samples": 0, "longest_gap": 0}

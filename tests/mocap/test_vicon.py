"""The Vicon-like capture simulator."""

import numpy as np
import pytest

from repro.errors import AcquisitionError
from repro.mocap.noise import MarkerNoiseModel, OcclusionModel
from repro.mocap.vicon import ViconSystem
from repro.motions.base import get_motion_class
from repro.skeleton.body import default_body
from repro.skeleton.kinematics import forward_kinematics


@pytest.fixture
def plan():
    return get_motion_class("raise_arm").plan(fps=120.0, seed=0)


@pytest.fixture
def body():
    return default_body()


class TestViconSystem:
    def test_default_rate_matches_paper(self):
        assert ViconSystem().fps == 120.0

    def test_rejects_bad_fps(self):
        with pytest.raises(AcquisitionError):
            ViconSystem(fps=0.0)

    def test_capture_shape(self, body, plan):
        vicon = ViconSystem()
        data = vicon.capture(body, plan.animation, ["hand_r"], seed=0)
        assert data.n_frames == plan.n_frames
        assert data.fps == 120.0

    def test_root_always_appended(self, body, plan):
        data = ViconSystem().capture(body, plan.animation, ["hand_r"], seed=0)
        assert "pelvis" in data.segments

    def test_all_segments_by_default(self, body, plan):
        data = ViconSystem().capture(body, plan.animation, seed=0)
        assert set(data.segments) == set(body.names)

    def test_noiseless_capture_equals_fk(self, body, plan):
        vicon = ViconSystem(noise=None, occlusion=None)
        data = vicon.capture(body, plan.animation, ["hand_r"], seed=0)
        truth = forward_kinematics(body, plan.animation, ["hand_r"])["hand_r"]
        np.testing.assert_allclose(data.joint_matrix("hand_r"), truth)

    def test_noise_perturbs_at_expected_scale(self, body, plan):
        vicon = ViconSystem(noise=MarkerNoiseModel(sigma_mm=0.8), occlusion=None)
        data = vicon.capture(body, plan.animation, ["hand_r"], seed=0)
        truth = forward_kinematics(body, plan.animation, ["hand_r"])["hand_r"]
        err = data.joint_matrix("hand_r") - truth
        assert 0.4 < err.std() < 1.6

    def test_occlusion_output_is_gap_filled(self, body, plan):
        vicon = ViconSystem(
            noise=None,
            occlusion=OcclusionModel(dropout_rate_per_s=10.0, max_gap_frames=5),
        )
        data = vicon.capture(body, plan.animation, ["hand_r"], seed=0)
        assert np.all(np.isfinite(data.matrix_mm))

    def test_capture_deterministic_given_seed(self, body, plan):
        vicon = ViconSystem()
        a = vicon.capture(body, plan.animation, ["hand_r"], seed=4)
        b = vicon.capture(body, plan.animation, ["hand_r"], seed=4)
        assert a == b

    def test_unknown_segment_rejected(self, body, plan):
        with pytest.raises(Exception, match="ghost"):
            ViconSystem().capture(body, plan.animation, ["ghost"], seed=0)

"""Chaos tests for the parallel feature pipeline and its cache.

The fan-out promises in :mod:`repro.parallel` read nicely when everything
cooperates; this module asks what happens when it does not — workers that
raise or emit NaN mid-fan-out, cache writers racing on one key, the cache
directory vanishing (or turning into a file) between lookup and store.
The contract under test: **clean typed propagation or full recovery,
never a hang, never a partial merge, never a poisoned cache entry.**

Run with ``pytest -m chaos``.
"""

from __future__ import annotations

import shutil
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.model import MotionClassifier
from repro.data.dataset import MotionDataset
from repro.errors import CacheError, FeatureError, ReproError, ValidationError
from repro.features.base import WindowFeatures
from repro.features.combine import WindowFeaturizer
from repro.parallel.cache import FeatureCache, record_cache_key
from repro.parallel.runner import featurize_records
from tests.factories import synthetic_record, toy_motion_dataset

pytestmark = pytest.mark.chaos

BACKENDS = ("serial", "thread", "process")


class ExplodingFeaturizer:
    """Featurizes normally until it meets the poisoned record, then raises.

    Module-level (picklable) so the process backend can ship it to workers.
    """

    def __init__(self, poison_key: str):
        self.poison_key = poison_key
        self.base = WindowFeaturizer(window_ms=100.0)

    def cache_fingerprint(self) -> str:
        return f"exploding/{self.base.cache_fingerprint()}"

    def features(self, record):
        if record.key == self.poison_key:
            raise ValidationError(f"worker exploded on {record.key}")
        return self.base.features(record)


class NaNFeaturizer:
    """Returns a raw NaN feature object, bypassing WindowFeatures validation.

    Models a buggy third-party featurizer: the duck-typed protocol only
    promises ``.features()`` and ``.cache_fingerprint()``, so the model's
    own finite-feature guard is the last line of defense.
    """

    window_ms = 100.0
    stride_ms = None

    def cache_fingerprint(self) -> str:
        return "nan-featurizer"

    def features(self, record):
        base = WindowFeaturizer(window_ms=100.0).features(record)
        matrix = base.matrix.copy()
        matrix[0, :] = np.nan
        return SimpleNamespace(matrix=matrix, bounds=base.bounds,
                               names=base.names, n_windows=base.n_windows)


class NoneFeaturizer:
    """Returns None — the worst-behaved featurizer the protocol allows."""

    def cache_fingerprint(self) -> str:
        return "none-featurizer"

    def features(self, record):
        return None


class StrictNaNFeaturizer:
    """Builds a real WindowFeatures from NaN values — must raise *inside*."""

    def cache_fingerprint(self) -> str:
        return "strict-nan-featurizer"

    def features(self, record):
        base = WindowFeaturizer(window_ms=100.0).features(record)
        matrix = base.matrix.copy()
        matrix[0, :] = np.nan
        return WindowFeatures(matrix=matrix, bounds=base.bounds,
                              names=base.names)


@pytest.fixture()
def records():
    return [synthetic_record("walk", n_frames=240, seed=s, trial=s)
            for s in range(4)]


# ----------------------------------------------------------------------
# Workers that raise / return garbage mid-fan-out
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_worker_exception_propagates_cleanly(backend, records):
    featurizer = ExplodingFeaturizer(poison_key=records[2].key)
    with pytest.raises(ValidationError, match="exploded"):
        featurize_records(featurizer, records, n_jobs=2, backend=backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_worker_nan_features_raise_typed_in_worker(backend, records):
    """NaN matrices die at WindowFeatures construction, inside the worker."""
    featurizer = StrictNaNFeaturizer()
    with pytest.raises(ValidationError):
        featurize_records(featurizer, records, n_jobs=2, backend=backend)


def test_worker_exception_leaves_no_cache_entries(records, tmp_path):
    """A failed fan-out must not leave behind partially stored features."""
    cache = FeatureCache(tmp_path / "cache")
    featurizer = ExplodingFeaturizer(poison_key=records[1].key)
    with pytest.raises(ValidationError):
        featurize_records(featurizer, records, n_jobs=2, backend="thread",
                          cache=cache)
    stored = list((tmp_path / "cache").rglob("*.npz"))
    assert stored == []
    assert cache.stats.stores == 0


def test_none_returning_featurizer_is_a_typed_error_not_a_hole(records):
    with pytest.raises(FeatureError, match="partial merge"):
        featurize_records(NoneFeaturizer(), records)


def test_none_features_never_stored(records, tmp_path):
    cache = FeatureCache(tmp_path / "cache")
    with pytest.raises(FeatureError):
        featurize_records(NoneFeaturizer(), records, cache=cache)
    assert list((tmp_path / "cache").rglob("*.npz")) == []


def test_model_fit_guards_against_nan_duck_featurizer():
    """A duck-typed featurizer smuggling NaN past validation hits the
    model's own finite guard — a typed FeatureError, not a silent NaN fit."""
    dataset = toy_motion_dataset()
    model = MotionClassifier(n_clusters=4, featurizer=NaNFeaturizer())
    with pytest.raises(FeatureError, match="non-finite"):
        model.fit(dataset, seed=0)


def test_nan_record_fails_typed_end_to_end(records):
    """A NaN stream with no robust policy raises ReproError everywhere."""
    from repro.robust import NaNBurst

    faulted = NaNBurst(stream="emg", bursts_per_s=5.0).apply(records[0], seed=0)
    featurizer = WindowFeaturizer(window_ms=100.0)
    with pytest.raises(ReproError, match="robust"):
        featurize_records(featurizer, [faulted])


# ----------------------------------------------------------------------
# Cache races and disappearing directories
# ----------------------------------------------------------------------


def test_concurrent_writers_racing_on_one_key(records, tmp_path):
    """Many threads storing the same key: last write wins, entry readable."""
    featurizer = WindowFeaturizer(window_ms=100.0)
    features = featurizer.features(records[0])
    key = record_cache_key(records[0], featurizer.cache_fingerprint())
    cache = FeatureCache(tmp_path / "cache")

    errors = []
    barrier = threading.Barrier(8)

    def writer():
        try:
            barrier.wait(timeout=10)
            for _ in range(10):
                cache.store(key, features)
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in threads), "writer hung"
    assert errors == []
    loaded = cache.load(key)
    assert loaded is not None
    assert loaded.matrix.tobytes() == features.matrix.tobytes()


def test_concurrent_reader_and_writer_never_see_torn_entry(records, tmp_path):
    featurizer = WindowFeaturizer(window_ms=100.0)
    features = featurizer.features(records[0])
    key = record_cache_key(records[0], featurizer.cache_fingerprint())
    cache = FeatureCache(tmp_path / "cache")
    cache.store(key, features)

    stop = threading.Event()
    torn = []

    def reader():
        while not stop.is_set():
            loaded = cache.load(key)
            # A miss (None) is acceptable mid-replace; a torn matrix is not.
            if loaded is not None and (
                loaded.matrix.shape != features.matrix.shape
                or loaded.matrix.tobytes() != features.matrix.tobytes()
            ):
                torn.append(loaded)
                return

    t = threading.Thread(target=reader)
    t.start()
    for _ in range(50):
        cache.store(key, features)
    stop.set()
    t.join(timeout=30)
    assert not t.is_alive(), "reader hung"
    assert torn == []


def test_cache_dir_deleted_between_lookup_and_store(records, tmp_path):
    """rmtree after the miss, before the store: the store recreates it."""
    cache_dir = tmp_path / "cache"
    cache = FeatureCache(cache_dir)
    featurizer = WindowFeaturizer(window_ms=100.0)
    key = record_cache_key(records[0], featurizer.cache_fingerprint())
    assert cache.load(key) is None
    cache_dir.mkdir(parents=True, exist_ok=True)
    shutil.rmtree(cache_dir)

    features = featurizer.features(records[0])
    cache.store(key, features)
    recovered = cache.load(key)
    assert recovered is not None
    assert recovered.matrix.tobytes() == features.matrix.tobytes()


def test_cache_dir_deleted_mid_featurize_run_recovers(records, tmp_path):
    """Deleting the directory between two runs only costs recomputation."""
    cache_dir = tmp_path / "cache"
    cache = FeatureCache(cache_dir)
    featurizer = WindowFeaturizer(window_ms=100.0)
    first = featurize_records(featurizer, records, cache=cache)
    shutil.rmtree(cache_dir)
    second = featurize_records(featurizer, records, cache=cache)
    for a, b in zip(first, second):
        assert a.matrix.tobytes() == b.matrix.tobytes()


def test_cache_path_replaced_by_file_raises_cache_error(records, tmp_path):
    """The entry's parent directory turning into a file is a typed error."""
    cache_dir = tmp_path / "cache"
    cache = FeatureCache(cache_dir)
    featurizer = WindowFeaturizer(window_ms=100.0)
    key = record_cache_key(records[0], featurizer.cache_fingerprint())
    features = featurizer.features(records[0])
    cache_dir.mkdir(parents=True, exist_ok=True)
    # Occupy the two-level fan-out path with a plain file.
    (cache_dir / key[:2]).write_text("not a directory")
    with pytest.raises(CacheError, match="could not write"):
        cache.store(key, features)


def test_corrupt_entry_is_evicted_and_recomputed(records, tmp_path):
    cache = FeatureCache(tmp_path / "cache")
    featurizer = WindowFeaturizer(window_ms=100.0)
    key = record_cache_key(records[0], featurizer.cache_fingerprint())
    features = featurizer.features(records[0])
    path = cache.store(key, features)
    path.write_bytes(b"garbage, not an npz payload")
    assert cache.load(key) is None
    assert cache.stats.evictions == 1
    result = featurize_records(featurizer, [records[0]], cache=cache)[0]
    assert result.matrix.tobytes() == features.matrix.tobytes()


def test_robust_and_plain_features_never_collide_in_cache(records, tmp_path):
    """Same record, same cache dir, different policies → different keys."""
    from repro.robust import REPAIR, NaNBurst, RobustFeaturizer

    faulted = NaNBurst(stream="emg", bursts_per_s=3.0).apply(records[0], seed=1)
    base = WindowFeaturizer(window_ms=100.0)
    robust = RobustFeaturizer(base, REPAIR)
    cache = FeatureCache(tmp_path / "cache")
    robust_wf = featurize_records(robust, [faulted], cache=cache)[0]
    assert np.isfinite(robust_wf.matrix).all()
    key_base = record_cache_key(faulted, base.cache_fingerprint())
    key_robust = record_cache_key(faulted, robust.cache_fingerprint())
    assert key_base != key_robust
    assert cache.load(key_base) is None  # the plain key was never stored


def test_degraded_dataset_fit_survives_process_backend(tmp_path):
    """End-to-end chaos: faulted records, process fan-out, cache on."""
    from repro.robust import EMGChannelDropout, inject

    dataset = toy_motion_dataset()
    faulted_records = [
        inject(rec, [EMGChannelDropout(n_channels=1)], seed=i)
        if i % 3 == 0 else rec
        for i, rec in enumerate(dataset)
    ]
    degraded = MotionDataset(name="degraded-toy", records=faulted_records)
    model = MotionClassifier(
        n_clusters=4, window_ms=100.0, robust_policy="repair",
        n_jobs=2, backend="process", cache_dir=tmp_path / "cache",
    )
    model.fit(degraded, seed=0)
    result = model.classify_with_report(faulted_records[0], k=1)
    assert result.label in {r.label for r in dataset}
    # Second fit from the warm cache is byte-identical.
    model2 = MotionClassifier(
        n_clusters=4, window_ms=100.0, robust_policy="repair",
        cache_dir=tmp_path / "cache",
    )
    model2.fit(degraded, seed=0)
    assert (model.database_signatures.tobytes()
            == model2.database_signatures.tobytes())

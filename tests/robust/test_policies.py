"""Tier-1 tests for diagnosis, degradation policies and the robust featurizer.

These pin the *semantics* of the degradation layer on hand-built cases;
the statistical sweep over the whole fault matrix is the chaos tier
(``test_fault_matrix.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import MotionClassifier, RobustQueryResult
from repro.errors import DegradationError
from repro.features.combine import WindowFeaturizer
from repro.robust import (
    MASK,
    POLICY_NAMES,
    REPAIR,
    STRICT,
    DegradationPolicy,
    DegradationReport,
    EMGChannelDropout,
    MarkerOcclusion,
    NaNBurst,
    RobustFeaturizer,
    diagnose_record,
    inject,
    mask_emg_channels,
    resolve_policy,
)
from tests.factories import synthetic_record, toy_motion_dataset


@pytest.fixture()
def record():
    return synthetic_record("walk", n_frames=240, seed=3)


@pytest.fixture()
def featurizer():
    return WindowFeaturizer(window_ms=100.0)


# ----------------------------------------------------------------------
# resolve_policy
# ----------------------------------------------------------------------


def test_resolve_policy_presets():
    assert resolve_policy(None) is None
    assert resolve_policy("off") is None
    assert resolve_policy("strict") is STRICT
    assert resolve_policy("mask") is MASK
    assert resolve_policy("repair") is REPAIR
    custom = DegradationPolicy(name="custom", min_valid_fraction=0.8)
    assert resolve_policy(custom) is custom
    assert set(POLICY_NAMES) == {"strict", "mask", "repair"}


def test_resolve_policy_rejects_unknown():
    with pytest.raises(DegradationError):
        resolve_policy("lenient")
    with pytest.raises(DegradationError):
        resolve_policy(3.14)  # type: ignore[arg-type]


def test_policy_validates_fields():
    with pytest.raises(DegradationError):
        DegradationPolicy(name="x", on_fault="explode")


# ----------------------------------------------------------------------
# Diagnosis
# ----------------------------------------------------------------------


def test_diagnose_clean_record(record):
    diag = diagnose_record(record)
    assert diag.is_clean
    assert diag.valid_fraction == 1.0
    assert diag.faults_detected() == ()
    assert diag.frame_valid.shape == (record.n_frames,)


def test_diagnose_dead_and_gap(record):
    faulted = inject(
        record,
        [EMGChannelDropout(n_channels=1, mode="nan"),
         MarkerOcclusion(dropout_rate_per_s=2.0, max_gap_frames=5)],
        seed=4,
    )
    diag = diagnose_record(faulted)
    assert not diag.is_clean
    assert len(diag.emg_dead_channels) == 1
    assert diag.mocap_gap_count > 0
    assert diag.mocap_longest_gap >= 1
    # The dead channel must not condemn every frame: validity is voted by
    # recoverable columns only.
    assert diag.valid_fraction > 0.0
    assert len(diag.faults_detected()) >= 2


def test_diagnose_frame_valid_marks_nan_frames(record):
    faulted = NaNBurst(stream="emg", bursts_per_s=3.0, max_burst=6).apply(
        record, seed=5
    )
    diag = diagnose_record(faulted)
    nan_frames = np.isnan(faulted.emg.data_volts).any(axis=1)
    assert np.array_equal(diag.frame_valid, ~nan_frames)


# ----------------------------------------------------------------------
# RobustFeaturizer semantics
# ----------------------------------------------------------------------


def test_clean_record_is_byte_identical_to_base(record, featurizer):
    for policy in (MASK, REPAIR):
        robust = RobustFeaturizer(featurizer, policy)
        wf, report = robust.features_with_report(record)
        base = featurizer.features(record)
        assert wf.matrix.tobytes() == base.matrix.tobytes()
        assert wf.bounds == base.bounds
        assert report.clean and not report.degraded
        assert report.n_windows_dropped == 0


def test_strict_raises_on_degraded_record(record, featurizer):
    faulted = EMGChannelDropout(n_channels=1).apply(record, seed=1)
    robust = RobustFeaturizer(featurizer, STRICT)
    with pytest.raises(DegradationError, match="degraded"):
        robust.features(faulted)


def test_strict_passes_clean_record(record, featurizer):
    robust = RobustFeaturizer(featurizer, STRICT)
    wf = robust.features(record)
    assert wf.matrix.tobytes() == featurizer.features(record).matrix.tobytes()


def test_robust_featurizer_rejects_off_policy(featurizer):
    with pytest.raises(DegradationError):
        RobustFeaturizer(featurizer, "off")


def test_masking_renormalizes_iav(record, featurizer):
    faulted = EMGChannelDropout(n_channels=1, mode="nan").apply(record, seed=1)
    robust = RobustFeaturizer(featurizer, MASK)
    wf, report = robust.features_with_report(faulted)
    n = record.emg.n_channels
    fpc = featurizer.emg_extractor.features_per_channel
    masked_idx = [record.emg.channels.index(c) for c in report.channels_masked]
    assert len(masked_idx) == 1
    # Masked channel's IAV columns are exactly zero...
    for j in masked_idx:
        assert np.all(wf.matrix[:, j * fpc:(j + 1) * fpc] == 0.0)
    # ...and the surviving channels are scaled by n / (n - 1) relative to
    # featurizing the masked record without renormalization.
    plain = featurizer.features(
        mask_emg_channels(faulted, report.channels_masked)
    )
    for j in range(n):
        if j in masked_idx:
            continue
        np.testing.assert_allclose(
            wf.matrix[:len(plain.matrix), j * fpc:(j + 1) * fpc],
            plain.matrix[:, j * fpc:(j + 1) * fpc] * (n / (n - 1)),
        )


def test_window_dropping_respects_min_valid_fraction(record, featurizer):
    faulted = NaNBurst(stream="emg", bursts_per_s=3.0, max_burst=8).apply(
        record, seed=6
    )
    strict_mask = RobustFeaturizer(featurizer, MASK)
    lenient = RobustFeaturizer(
        featurizer, DegradationPolicy(name="lenient", min_valid_fraction=0.0)
    )
    wf_mask, rep_mask = strict_mask.features_with_report(faulted)
    wf_lenient, rep_lenient = lenient.features_with_report(faulted)
    assert rep_mask.n_windows_dropped > 0
    assert rep_lenient.n_windows_dropped == 0
    assert wf_mask.n_windows < wf_lenient.n_windows
    # Every surviving MASK window is fully valid.
    diag = diagnose_record(faulted)
    for start, stop in wf_mask.bounds:
        assert diag.frame_valid[start:stop].all()


def test_fallback_keeps_all_windows_when_none_survive(featurizer):
    record = synthetic_record("walk", n_frames=240, seed=3)
    # Every window gets at least one NaN frame: burst every few samples.
    faulted = NaNBurst(stream="emg", bursts_per_s=60.0, max_burst=2).apply(
        record, seed=7
    )
    robust = RobustFeaturizer(featurizer, MASK)
    wf, report = robust.features_with_report(faulted)
    assert report.fallback_all_windows
    assert wf.n_windows == report.n_windows_total
    assert np.isfinite(wf.matrix).all()


def test_report_is_consistent(record, featurizer):
    faulted = inject(
        record,
        [EMGChannelDropout(n_channels=1),
         MarkerOcclusion(dropout_rate_per_s=2.0, max_gap_frames=5)],
        seed=8,
    )
    robust = RobustFeaturizer(featurizer, REPAIR)
    wf, report = robust.features_with_report(faulted)
    assert report.policy == "repair"
    assert not report.clean
    assert report.faults_detected
    assert report.n_windows_total == wf.n_windows + report.n_windows_dropped
    assert report.n_samples_filled > 0
    payload = report.to_dict()
    assert payload["policy"] == "repair"
    assert isinstance(payload["faults_detected"], list)
    assert "degraded" in report.summary()


def test_cache_fingerprint_depends_on_policy(featurizer):
    fp_mask = RobustFeaturizer(featurizer, MASK).cache_fingerprint()
    fp_repair = RobustFeaturizer(featurizer, REPAIR).cache_fingerprint()
    assert fp_mask != fp_repair
    assert featurizer.cache_fingerprint() in fp_mask


def test_featurizer_protocol_delegation(featurizer):
    robust = RobustFeaturizer(featurizer, MASK)
    assert robust.window_ms == featurizer.window_ms
    assert robust.stride_ms == featurizer.stride_ms
    assert robust.use_emg and robust.use_mocap


# ----------------------------------------------------------------------
# Model integration
# ----------------------------------------------------------------------


def test_clean_fit_and_signatures_byte_identical():
    dataset = toy_motion_dataset()
    base = MotionClassifier(n_clusters=4, window_ms=100.0).fit(dataset, seed=0)
    robust = MotionClassifier(
        n_clusters=4, window_ms=100.0, robust_policy="mask"
    ).fit(dataset, seed=0)
    assert (base.database_signatures.tobytes()
            == robust.database_signatures.tobytes())
    record = dataset[0]
    assert (base.signature(record).vector.tobytes()
            == robust.signature(record).vector.tobytes())


def test_classify_with_report_off_policy():
    dataset = toy_motion_dataset()
    model = MotionClassifier(n_clusters=4, window_ms=100.0).fit(dataset, seed=0)
    result = model.classify_with_report(dataset[0], k=1)
    assert isinstance(result, RobustQueryResult)
    assert result.label == dataset[0].label
    assert result.report.policy == "off"
    assert result.report.clean
    assert result.neighbors and result.neighbors[0].key == dataset[0].key


def test_classify_with_report_degraded_query():
    dataset = toy_motion_dataset()
    model = MotionClassifier(
        n_clusters=4, window_ms=100.0, robust_policy="repair"
    ).fit(dataset, seed=0)
    faulted = EMGChannelDropout(n_channels=1).apply(dataset[0], seed=1)
    result = model.classify_with_report(faulted, k=1)
    assert result.report.degraded
    assert result.report.channels_masked
    assert result.label in {r.label for r in dataset}


def test_strict_model_fit_raises_on_degraded_database():
    dataset = toy_motion_dataset()
    records = list(dataset)
    records[0] = EMGChannelDropout(n_channels=1).apply(records[0], seed=1)
    from repro.data.dataset import MotionDataset

    degraded = MotionDataset(name="degraded-toy", records=records)
    model = MotionClassifier(
        n_clusters=4, window_ms=100.0, robust_policy="strict"
    )
    with pytest.raises(DegradationError):
        model.fit(degraded, seed=0)


def test_degradation_counters_exported():
    from repro.obs.config import capture

    dataset = toy_motion_dataset()
    model = MotionClassifier(
        n_clusters=4, window_ms=100.0, robust_policy="mask"
    ).fit(dataset, seed=0)
    faulted = EMGChannelDropout(n_channels=1).apply(dataset[0], seed=1)
    with capture() as state:
        model.classify_with_report(faulted, k=1)
    counters = state.registry.to_dict()["counters"]
    assert counters.get("robust.records_degraded", 0) >= 1
    assert counters.get("robust.degraded_queries", 0) >= 1
    assert "robust.channels_masked" in counters


def test_default_report_is_minimal():
    report = DegradationReport(policy="off", clean=True)
    assert not report.degraded
    assert report.summary().startswith("[off] clean")

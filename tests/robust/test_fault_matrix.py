"""The chaos fault-matrix tier: every fault × every policy, end to end.

A classifier is fitted per policy on the clean toy campaign; every record
is then faulted under every scenario of
:func:`repro.robust.default_fault_suite` and queried.  The tier asserts:

* **no crash** — every degrading policy answers every faulted query;
* **honest reporting** — the :class:`DegradationReport` is populated and
  internally consistent for every answer;
* **bounded accuracy drop** — per-scenario accuracy over the whole
  campaign stays inside a declared envelope (tight for mild severities,
  loose-but-nonzero for severe ones);
* **strict is strict** — the ``strict`` policy refuses every *detectably*
  degraded record with a typed error and accepts every clean one.

Run with ``pytest -m chaos``; the tier is excluded from ``-m tier1``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import MotionClassifier
from repro.errors import DegradationError, ReproError
from repro.robust import default_fault_suite, diagnose_record, inject
from tests.factories import toy_motion_dataset

pytestmark = pytest.mark.chaos

SUITE = default_fault_suite()

#: Minimum fraction of the 12-query campaign classified correctly per
#: scenario.  Measured accuracy (mask/repair, seeds 100..111) is 9–12 of
#: 12; the envelope leaves head-room for platform-level numeric noise
#: while still catching a real regression (accuracy collapse to chance
#: is 1/3).  Severe scenarios only promise graceful degradation.
ACCURACY_ENVELOPE = {
    "occlusion_mild": 0.75,
    "occlusion_severe": 0.5,
    "emg_dropout_nan": 0.5,
    "emg_dropout_flat": 0.5,
    "emg_saturation": 0.5,
    "nan_burst_emg": 0.75,
    "nan_burst_both": 0.75,
    "clock_drift_mild": 0.75,
    "clock_drift_severe": 0.5,
    "truncated_tail": 0.75,
    "compound": 0.5,
}

POLICIES = ("mask", "repair")


@pytest.fixture(scope="module")
def dataset():
    return toy_motion_dataset()


@pytest.fixture(scope="module")
def fitted(dataset):
    """One fitted classifier per degrading policy (plus the baseline)."""
    models = {
        policy: MotionClassifier(
            n_clusters=4, window_ms=100.0, robust_policy=policy
        ).fit(dataset, seed=0)
        for policy in POLICIES
    }
    models["off"] = MotionClassifier(n_clusters=4, window_ms=100.0).fit(
        dataset, seed=0
    )
    return models


def test_envelope_covers_the_whole_suite():
    assert set(ACCURACY_ENVELOPE) == set(SUITE)


def test_clean_baseline_is_perfect(dataset, fitted):
    for policy in POLICIES:
        model = fitted[policy]
        assert all(
            model.classify_with_report(rec, k=1).label == rec.label
            for rec in dataset
        )


@pytest.mark.parametrize("scenario", sorted(SUITE), ids=str)
@pytest.mark.parametrize("policy", POLICIES)
def test_fault_matrix_no_crash_and_envelope(scenario, policy, dataset, fitted):
    model = fitted[policy]
    faults = SUITE[scenario]
    correct = 0
    for i, record in enumerate(dataset):
        faulted = inject(record, faults, seed=100 + i)
        result = model.classify_with_report(faulted, k=1)

        # Report consistency on every single answer.
        report = result.report
        assert report.policy == policy
        assert report.n_windows_total > 0
        assert 0 <= report.n_windows_dropped <= report.n_windows_total
        if report.fallback_all_windows:
            assert report.n_windows_dropped == 0
        diagnosis = diagnose_record(faulted)
        assert report.clean == diagnosis.is_clean
        if not report.clean:
            assert report.faults_detected

        correct += int(result.label == record.label)
    accuracy = correct / len(dataset)
    assert accuracy >= ACCURACY_ENVELOPE[scenario], (
        f"{scenario} under {policy}: accuracy {accuracy:.2f} fell out of "
        f"the declared envelope {ACCURACY_ENVELOPE[scenario]:.2f}"
    )


@pytest.mark.parametrize("scenario", sorted(SUITE), ids=str)
def test_strict_policy_splits_on_detectability(scenario, dataset):
    """Strict raises on detectably degraded records, answers clean ones."""
    model = MotionClassifier(
        n_clusters=4, window_ms=100.0, robust_policy="strict"
    ).fit(dataset, seed=0)
    record = dataset[0]
    faulted = inject(record, SUITE[scenario], seed=100)
    if diagnose_record(faulted).is_clean:
        # Undetectable faults (clock drift, truncation) must still answer.
        result = model.classify_with_report(faulted, k=1)
        assert result.report.clean
    else:
        with pytest.raises(DegradationError):
            model.classify(faulted, k=1)


def test_unprotected_pipeline_fails_typed_not_raw(dataset, fitted):
    """Without a policy, NaN faults fail with a *typed* repro error.

    The pre-robust pipeline crashed here too — the layer's contract is
    that the failure is a ReproError pointing at repro.robust, never a
    bare numpy error or a silent NaN propagation.
    """
    model = fitted["off"]
    record = dataset[0]
    faulted = inject(record, SUITE["nan_burst_emg"], seed=100)
    with pytest.raises(ReproError, match="robust"):
        model.classify(faulted, k=1)


def test_matrix_answers_are_deterministic(dataset, fitted):
    model = fitted["mask"]
    record = dataset[3]
    faulted = inject(record, SUITE["compound"], seed=103)
    first = model.classify_with_report(faulted, k=1)
    second = model.classify_with_report(faulted, k=1)
    assert first.label == second.label
    assert first.report == second.report
    assert np.isclose(first.neighbors[0].distance,
                      second.neighbors[0].distance)

"""Property-based tests for the robustness layer's two core identities.

1. **Masking commutes with featurization**: zeroing an EMG channel and
   featurizing equals featurizing the record with the channel dropped and
   re-inserting zero columns — the IAV kernel is per-channel, so a masked
   channel can never bleed into its neighbours (renormalization off).
2. **Zero-severity faults are byte-identities** on both stream buffers,
   for every fault kind, under any seed.

Skipped entirely when ``hypothesis`` is not installed — the environment
only guarantees numpy.
"""

from __future__ import annotations

import numpy as np
import pytest

pytestmark = pytest.mark.properties

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.features.combine import WindowFeaturizer  # noqa: E402
from repro.robust import (  # noqa: E402
    ClockDrift,
    EMGChannelDropout,
    EMGSaturation,
    MarkerOcclusion,
    NaNBurst,
    StreamTruncation,
    drop_emg_channels,
    mask_emg_channels,
)
from tests.factories import synthetic_record  # noqa: E402

SETTINGS = settings(max_examples=25, deadline=None)

N_CHANNELS = 4

record_st = st.fixed_dictionaries({
    "n_frames": st.integers(min_value=60, max_value=300),
    "seed": st.integers(min_value=0, max_value=50),
    "label": st.sampled_from(["walk", "raise_arm", "kick"]),
})
# Non-empty proper subsets of channel indices: at least one channel survives.
masked_st = st.sets(
    st.integers(min_value=0, max_value=N_CHANNELS - 1),
    min_size=1, max_size=N_CHANNELS - 1,
)

zero_fault_st = st.sampled_from([
    MarkerOcclusion(dropout_rate_per_s=0.0),
    EMGChannelDropout(n_channels=0, mode="nan"),
    EMGChannelDropout(n_channels=0, mode="flat"),
    EMGSaturation(n_channels=0),
    EMGSaturation(fraction=0.0),
    NaNBurst(stream="emg", bursts_per_s=0.0),
    NaNBurst(stream="both", bursts_per_s=0.0),
    ClockDrift(drift=0.0, stream="emg"),
    ClockDrift(drift=0.0, stream="mocap"),
    StreamTruncation(fraction=0.0),
])


@SETTINGS
@given(params=record_st, masked=masked_st)
def test_mask_then_featurize_equals_featurize_then_drop(params, masked):
    record = synthetic_record(
        params["label"], n_frames=params["n_frames"],
        n_channels=N_CHANNELS, seed=params["seed"],
    )
    featurizer = WindowFeaturizer(window_ms=100.0)
    fpc = featurizer.emg_extractor.features_per_channel
    names = [record.emg.channels[j] for j in sorted(masked)]

    wf_masked = featurizer.features(mask_emg_channels(record, names))
    wf_dropped = featurizer.features(drop_emg_channels(record, names))
    assert wf_masked.bounds == wf_dropped.bounds

    survivors = [j for j in range(N_CHANNELS) if j not in masked]
    # Surviving channels: equal IAV columns, just at shifted positions.
    # (Tolerance of a few ULP: numpy's pairwise summation regroups the
    # per-window |x| sum when the channel count changes.)
    for pos, j in enumerate(survivors):
        np.testing.assert_allclose(
            wf_masked.matrix[:, j * fpc:(j + 1) * fpc],
            wf_dropped.matrix[:, pos * fpc:(pos + 1) * fpc],
            rtol=1e-12, atol=1e-18,
        )
    # Masked channels: exactly-zero IAV columns (|0| integrates to 0).
    for j in sorted(masked):
        assert np.all(wf_masked.matrix[:, j * fpc:(j + 1) * fpc] == 0.0)
    # The mocap block is untouched by EMG surgery.
    np.testing.assert_array_equal(
        wf_masked.matrix[:, N_CHANNELS * fpc:],
        wf_dropped.matrix[:, len(survivors) * fpc:],
    )


@SETTINGS
@given(params=record_st, fault=zero_fault_st,
       seed=st.integers(min_value=0, max_value=1000))
def test_zero_severity_fault_is_stream_byte_identity(params, fault, seed):
    record = synthetic_record(
        params["label"], n_frames=params["n_frames"],
        n_channels=N_CHANNELS, seed=params["seed"],
    )
    faulted = fault.apply(record, seed=seed)
    assert faulted.emg.data_volts.tobytes() == record.emg.data_volts.tobytes()
    assert (faulted.mocap.matrix_mm.tobytes()
            == record.mocap.matrix_mm.tobytes())
    assert faulted.n_frames == record.n_frames


@SETTINGS
@given(params=record_st, seed=st.integers(min_value=0, max_value=1000))
def test_masking_nothing_is_the_identity(params, seed):
    record = synthetic_record(
        params["label"], n_frames=params["n_frames"],
        n_channels=N_CHANNELS, seed=params["seed"],
    )
    masked = mask_emg_channels(record, [])
    assert masked.emg.data_volts.tobytes() == record.emg.data_volts.tobytes()

"""Chaos tier: fault-injection, degradation policies, parallel failure modes."""

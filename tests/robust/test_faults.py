"""Unit tests for the fault-injection API (tier-1: they must always pass).

The chaos *matrix* lives in ``test_fault_matrix.py``; here we pin the
contract every individual :class:`FaultSpec` obeys — determinism, zero
severity as byte-identity, stream-alignment preservation, and typed errors
on bad parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultInjectionError, ValidationError
from repro.robust import (
    ClockDrift,
    EMGChannelDropout,
    EMGSaturation,
    FaultSpec,
    MarkerOcclusion,
    NaNBurst,
    StreamTruncation,
    default_fault_suite,
    inject,
)
from repro.robust.faults import rebuild_record
from tests.factories import synthetic_record

ALL_FAULTS = [
    MarkerOcclusion(dropout_rate_per_s=2.0, max_gap_frames=6),
    EMGChannelDropout(n_channels=1, mode="nan"),
    EMGChannelDropout(n_channels=1, mode="flat"),
    EMGSaturation(n_channels=2, fraction=0.5, rail_scale=0.4),
    NaNBurst(stream="emg", bursts_per_s=2.0, max_burst=6),
    NaNBurst(stream="mocap", bursts_per_s=2.0, max_burst=6),
    NaNBurst(stream="both", bursts_per_s=2.0, max_burst=6),
    ClockDrift(drift=0.02, stream="emg"),
    ClockDrift(drift=-0.02, stream="mocap"),
    StreamTruncation(fraction=0.3),
]

ZERO_FAULTS = [
    MarkerOcclusion(dropout_rate_per_s=0.0),
    EMGChannelDropout(n_channels=0),
    EMGSaturation(n_channels=0),
    EMGSaturation(fraction=0.0),
    NaNBurst(bursts_per_s=0.0),
    ClockDrift(drift=0.0),
    StreamTruncation(fraction=0.0),
]


def _bytes(record):
    return (record.emg.data_volts.tobytes(), record.mocap.matrix_mm.tobytes())


@pytest.fixture()
def record():
    return synthetic_record("walk", n_frames=240, seed=3)


@pytest.mark.parametrize("fault", ALL_FAULTS, ids=lambda f: f.fingerprint())
def test_fault_is_deterministic(fault, record):
    a = fault.apply(record, seed=7)
    b = fault.apply(record, seed=7)
    assert _bytes(a) == _bytes(b)


@pytest.mark.parametrize("fault", ALL_FAULTS, ids=lambda f: f.fingerprint())
def test_fault_never_mutates_input(fault, record):
    before = _bytes(record)
    fault.apply(record, seed=7)
    assert _bytes(record) == before


@pytest.mark.parametrize("fault", ALL_FAULTS, ids=lambda f: f.fingerprint())
def test_fault_preserves_record_validity(fault, record):
    faulted = fault.apply(record, seed=7)
    # RecordedMotion construction enforces alignment; also check identity
    # metadata survived.
    assert faulted.n_frames == faulted.emg.n_samples
    assert faulted.label == record.label
    assert faulted.key == record.key
    assert faulted.emg.channels == record.emg.channels
    assert faulted.mocap.segments == record.mocap.segments


@pytest.mark.parametrize("fault", ZERO_FAULTS, ids=lambda f: f.fingerprint())
def test_zero_severity_is_byte_identity(fault, record):
    assert _bytes(fault.apply(record, seed=9)) == _bytes(record)


def test_inject_empty_fault_list_returns_same_object(record):
    assert inject(record, [], seed=0) is record


def test_inject_is_deterministic_and_composes(record):
    faults = [
        MarkerOcclusion(dropout_rate_per_s=1.0, max_gap_frames=4),
        EMGChannelDropout(n_channels=1),
        StreamTruncation(fraction=0.1),
    ]
    a = inject(record, faults, seed=5)
    b = inject(record, faults, seed=5)
    assert _bytes(a) == _bytes(b)
    # Truncation ran last: both streams shortened together.
    assert a.n_frames < record.n_frames
    assert a.n_frames == a.emg.n_samples
    # The dropout left exactly one all-NaN channel.
    dead = np.all(np.isnan(a.emg.data_volts), axis=0)
    assert int(dead.sum()) == 1


def test_inject_different_seeds_differ(record):
    faults = [NaNBurst(stream="emg", bursts_per_s=3.0, max_burst=6)]
    a = inject(record, faults, seed=1)
    b = inject(record, faults, seed=2)
    assert _bytes(a) != _bytes(b)


def test_inject_rejects_non_faultspec(record):
    with pytest.raises(FaultInjectionError):
        inject(record, ["not-a-fault"], seed=0)  # type: ignore[list-item]


def test_occlusion_punches_nan_gaps(record):
    faulted = MarkerOcclusion(dropout_rate_per_s=4.0, max_gap_frames=8).apply(
        record, seed=2
    )
    assert np.isnan(faulted.mocap.matrix_mm).any()
    assert not np.isnan(faulted.emg.data_volts).any()


def test_dropout_flat_mode_zeroes_channel(record):
    faulted = EMGChannelDropout(n_channels=1, mode="flat").apply(record, seed=2)
    flat = [
        j for j in range(faulted.emg.n_channels)
        if np.all(faulted.emg.data_volts[:, j] == 0.0)
    ]
    assert len(flat) == 1


def test_dropout_clamps_to_channel_count(record):
    faulted = EMGChannelDropout(n_channels=99, mode="nan").apply(record, seed=2)
    assert np.all(np.isnan(faulted.emg.data_volts))


def test_saturation_creates_plateaus(record):
    faulted = EMGSaturation(n_channels=1, fraction=0.6, rail_scale=0.3).apply(
        record, seed=2
    )
    data = faulted.emg.data_volts
    plateau_frac = max(
        float(np.mean(np.abs(np.diff(data[:, j])) <= 0.0))
        for j in range(data.shape[1])
    )
    assert plateau_frac > 0.05
    assert np.isfinite(data).all()


def test_clock_drift_shifts_content_but_not_length(record):
    faulted = ClockDrift(drift=0.05, stream="emg").apply(record, seed=2)
    assert faulted.n_frames == record.n_frames
    assert faulted.emg.data_volts.tobytes() != record.emg.data_volts.tobytes()
    assert faulted.mocap.matrix_mm.tobytes() == record.mocap.matrix_mm.tobytes()


def test_truncation_keeps_at_least_two_frames():
    short = synthetic_record("walk", n_frames=3, seed=0)
    faulted = StreamTruncation(fraction=0.9).apply(short, seed=0)
    assert faulted.n_frames >= 2


@pytest.mark.parametrize("bad", [
    lambda: MarkerOcclusion(dropout_rate_per_s=-1.0),
    lambda: EMGChannelDropout(mode="wrong"),
    lambda: EMGChannelDropout(n_channels=-1),
    lambda: EMGSaturation(fraction=1.5),
    lambda: EMGSaturation(rail_scale=0.0),
    lambda: NaNBurst(stream="wrong"),
    lambda: ClockDrift(drift=0.9),
    lambda: ClockDrift(stream="both"),
    lambda: StreamTruncation(fraction=1.0),
])
def test_bad_parameters_raise_typed_errors(bad):
    with pytest.raises((FaultInjectionError, ValidationError)):
        bad()


def test_default_suite_covers_every_fault_kind():
    suite = default_fault_suite()
    kinds = {type(f) for faults in suite.values() for f in faults}
    assert kinds == {
        MarkerOcclusion, EMGChannelDropout, EMGSaturation,
        NaNBurst, ClockDrift, StreamTruncation,
    }
    assert all(
        isinstance(f, FaultSpec) for faults in suite.values() for f in faults
    )


def test_fingerprints_distinguish_parameters():
    a = MarkerOcclusion(dropout_rate_per_s=1.0).fingerprint()
    b = MarkerOcclusion(dropout_rate_per_s=2.0).fingerprint()
    assert a != b


def test_rebuild_record_validates_shapes(record):
    with pytest.raises(ValidationError):
        rebuild_record(record, emg_data=np.zeros(5))

"""EMG analysis: spectral statistics, fatigue trend, onset detection."""

import numpy as np
import pytest

from repro.emg.analysis import (
    detect_onsets,
    fatigue_trend,
    mean_frequency,
    median_frequency,
)
from repro.errors import SignalError
from repro.signal.filters import butter_bandpass

FS = 1000.0


def band_noise(rng, low, high, n=8000):
    filt = butter_bandpass(low, high, FS, order=4)
    return filt.apply_zero_phase(rng.normal(size=n))


class TestSpectralStatistics:
    def test_median_frequency_of_narrow_band(self, rng):
        x = band_noise(rng, 90, 110)
        assert 80 < median_frequency(x, FS) < 120

    def test_mean_frequency_of_narrow_band(self, rng):
        x = band_noise(rng, 90, 110)
        assert 80 < mean_frequency(x, FS) < 130

    def test_higher_band_gives_higher_statistics(self, rng):
        low_band = band_noise(rng, 40, 80)
        high_band = band_noise(rng, 200, 300)
        assert median_frequency(high_band, FS) > median_frequency(low_band, FS)
        assert mean_frequency(high_band, FS) > mean_frequency(low_band, FS)

    def test_silent_signal_rejected(self):
        with pytest.raises(SignalError):
            median_frequency(np.zeros(1000), FS)
        with pytest.raises(SignalError):
            mean_frequency(np.zeros(1000), FS)


class TestFatigueTrend:
    def test_detects_spectral_compression(self, rng):
        """A signal whose band slides downward shows a negative MDF slope."""
        epochs = []
        for i in range(8):
            center = 180 - 12 * i  # compressing spectrum
            epochs.append(band_noise(rng, center - 25, center + 25, n=1500))
        x = np.concatenate(epochs)
        slope, mdfs = fatigue_trend(x, FS, n_epochs=8)
        assert slope < -2.0
        assert len(mdfs) == 8

    def test_stationary_signal_has_flat_trend(self, rng):
        x = band_noise(rng, 80, 220, n=12000)
        slope, _ = fatigue_trend(x, FS, n_epochs=8)
        assert abs(slope) < 3.0

    def test_too_short_rejected(self, rng):
        with pytest.raises(SignalError):
            fatigue_trend(rng.normal(size=100), FS, n_epochs=8)


class TestDetectOnsets:
    def make_bursty(self, rng, bursts, n=1200, amp=5e-5, floor=2e-6):
        x = np.abs(rng.normal(0, floor, size=n))
        for start, stop in bursts:
            x[start:stop] += amp * np.abs(np.sin(
                np.pi * np.arange(stop - start) / (stop - start)
            ))
        return x

    def test_finds_all_bursts(self, rng):
        bursts = [(100, 250), (500, 700), (900, 1100)]
        x = self.make_bursty(rng, bursts)
        found = detect_onsets(x, fs=120.0)
        assert len(found) == 3
        for burst, (start, stop) in zip(found, bursts):
            assert abs(burst.onset - start) < 30
            assert abs(burst.offset - stop) < 30
            assert burst.peak_volts > 1e-5

    def test_quiet_signal_has_no_bursts(self, rng):
        x = np.abs(rng.normal(0, 2e-6, size=600))
        assert detect_onsets(x, fs=120.0) == []

    def test_min_duration_filters(self, rng):
        x = self.make_bursty(rng, [(100, 104)])  # 4-sample blip
        assert detect_onsets(x, fs=120.0, min_duration_s=0.2) == []

    def test_burst_running_to_the_end(self, rng):
        x = self.make_bursty(rng, [(1000, 1200)])
        found = detect_onsets(x, fs=120.0)
        assert len(found) == 1
        assert found[0].offset >= 1150

    def test_negative_signal_rejected(self):
        with pytest.raises(SignalError):
            detect_onsets(np.array([-1.0, 1.0]), fs=120.0)

    def test_real_conditioned_channel(self, small_hand_dataset):
        """On a simulated trial, the biceps bursts during a raise-arm."""
        record = small_hand_dataset.by_label("raise_arm")[0]
        biceps = record.emg.channel("biceps_r")
        found = detect_onsets(biceps, fs=record.fps)
        assert 1 <= len(found) <= 4
        assert max(b.peak_volts for b in found) > 5e-6

"""EMGRecording container semantics."""

import numpy as np
import pytest

from repro.emg.recording import EMGRecording
from repro.errors import ValidationError


@pytest.fixture
def recording(rng):
    data = np.abs(rng.normal(size=(100, 3))) * 1e-5
    return EMGRecording(channels=("a", "b", "c"), data_volts=data, fs=1000.0), data


class TestConstruction:
    def test_from_channel_dict(self, rng):
        signals = {"x": rng.normal(size=50), "y": rng.normal(size=50)}
        rec = EMGRecording.from_channel_dict(signals, ["y", "x"], fs=1000.0)
        assert rec.channels == ("y", "x")
        np.testing.assert_array_equal(rec.channel("x"), signals["x"])

    def test_missing_channel_rejected(self, rng):
        with pytest.raises(ValidationError, match="missing"):
            EMGRecording.from_channel_dict({"x": rng.normal(size=5)}, ["x", "y"], 1000.0)

    def test_length_mismatch_rejected(self, rng):
        signals = {"x": rng.normal(size=5), "y": rng.normal(size=6)}
        with pytest.raises(ValidationError, match="samples"):
            EMGRecording.from_channel_dict(signals, ["x", "y"], 1000.0)

    def test_column_count_enforced(self):
        with pytest.raises(ValidationError, match="columns"):
            EMGRecording(channels=("a", "b"), data_volts=np.zeros((5, 3)), fs=1000.0)

    def test_duplicate_channels_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            EMGRecording(channels=("a", "a"), data_volts=np.zeros((5, 2)), fs=1000.0)

    def test_immutability(self, recording):
        rec, _ = recording
        with pytest.raises(ValueError):
            rec.data_volts[0, 0] = 1.0

    def test_bad_fs_rejected(self):
        with pytest.raises(ValidationError):
            EMGRecording(channels=("a",), data_volts=np.zeros((5, 1)), fs=-1.0)


class TestAccessors:
    def test_properties(self, recording):
        rec, _ = recording
        assert rec.n_samples == 100
        assert rec.n_channels == 3
        assert rec.duration_s == pytest.approx(0.1)

    def test_channel_and_dict(self, recording):
        rec, data = recording
        np.testing.assert_array_equal(rec.channel("b"), data[:, 1])
        out = rec.to_dict()
        assert set(out) == {"a", "b", "c"}

    def test_unknown_channel(self, recording):
        rec, _ = recording
        with pytest.raises(ValidationError, match="not recorded"):
            rec.channel("nope")

    def test_slice_samples(self, recording):
        rec, data = recording
        part = rec.slice_samples(10, 20)
        assert part.n_samples == 10
        np.testing.assert_array_equal(part.data_volts, data[10:20])

    def test_slice_bounds(self, recording):
        rec, _ = recording
        with pytest.raises(ValidationError):
            rec.slice_samples(50, 40)

    def test_equality(self, recording):
        rec, data = recording
        same = EMGRecording(channels=rec.channels, data_volts=data, fs=rec.fs)
        assert rec == same
        other = EMGRecording(channels=rec.channels, data_volts=data * 2, fs=rec.fs)
        assert rec != other

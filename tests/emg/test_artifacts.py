"""EMG artifact models and their interaction with the conditioning chain."""

import numpy as np
import pytest

from repro.emg.artifacts import (
    BaselineDrift,
    CompositeArtifacts,
    FatigueDrift,
    PowerlineInterference,
    default_artifacts,
)
from repro.signal.filters import butter_bandpass
from repro.signal.spectral import band_power

FS = 1000.0


@pytest.fixture
def signal(rng):
    return rng.normal(0.0, 1e-5, size=4000)


class TestBaselineDrift:
    def test_adds_subhertz_content(self, signal):
        out = BaselineDrift(amplitude_volts=5e-5, frequency_hz=0.3).apply(
            signal, FS, seed=0
        )
        drift = out - signal
        assert np.abs(drift).max() > 2e-5
        assert band_power(drift, FS, 0.0, 2.0, nperseg=2048) > 0.9

    def test_bandpass_removes_drift(self, signal):
        """The paper's 20-450 Hz front-end exists exactly for this."""
        dirty = BaselineDrift(amplitude_volts=1e-4).apply(signal, FS, seed=0)
        band = butter_bandpass(20.0, 450.0, FS, order=4)
        cleaned = band.apply_zero_phase(dirty)
        reference = band.apply_zero_phase(signal)
        assert np.abs(cleaned - reference).max() < 2e-6

    def test_frequency_must_sit_below_band(self):
        with pytest.raises(Exception):
            BaselineDrift(frequency_hz=30.0)


class TestPowerlineInterference:
    def test_adds_60hz_tone(self, signal):
        out = PowerlineInterference(amplitude_volts=2e-5).apply(signal, FS, seed=0)
        tone = out - signal
        assert band_power(tone, FS, 55.0, 65.0, nperseg=2048) > 0.9

    def test_survives_bandpass(self, signal):
        """60 Hz sits inside 20-450 Hz and is NOT removed — a real nuisance."""
        dirty = PowerlineInterference(amplitude_volts=2e-5).apply(signal, FS, seed=0)
        band = butter_bandpass(20.0, 450.0, FS, order=4)
        cleaned = band.apply_zero_phase(dirty)
        reference = band.apply_zero_phase(signal)
        assert np.abs(cleaned - reference).max() > 1e-5


class TestFatigueDrift:
    def test_amplitude_grows_over_trial(self, rng):
        x = np.ones(1000) * 1e-5
        out = FatigueDrift(max_gain_increase=0.5).apply(x, FS, seed=1)
        assert out[-1] >= out[0]
        assert out[0] == pytest.approx(1e-5)

    def test_zero_increase_is_identity(self, signal):
        out = FatigueDrift(max_gain_increase=0.0).apply(signal, FS, seed=0)
        np.testing.assert_allclose(out, signal)


class TestCompositeArtifacts:
    def test_applies_all_stages(self, signal):
        comp = CompositeArtifacts([
            BaselineDrift(amplitude_volts=5e-5),
            PowerlineInterference(amplitude_volts=2e-5),
        ])
        out = comp.apply(signal, FS, seed=0)
        extra = out - signal
        assert band_power(extra, FS, 0.0, 2.0, nperseg=2048) > 0.2
        assert band_power(extra, FS, 55.0, 65.0, nperseg=2048) > 0.1

    def test_stage_independence_from_seed(self, signal):
        """Removing a stage does not change the other stage's draw pattern
        shape (each stage gets its own spawned generator)."""
        single = CompositeArtifacts([PowerlineInterference()])
        double = CompositeArtifacts([PowerlineInterference(), FatigueDrift(0.0)])
        a = single.apply(signal, FS, seed=5)
        b = double.apply(signal, FS, seed=5)
        np.testing.assert_allclose(a, b)

    def test_deterministic(self, signal):
        comp = default_artifacts()
        np.testing.assert_array_equal(
            comp.apply(signal, FS, seed=3), comp.apply(signal, FS, seed=3)
        )

    def test_empty_composite_is_identity(self, signal):
        out = CompositeArtifacts([]).apply(signal, FS, seed=0)
        np.testing.assert_array_equal(out, signal)


def test_default_stack_contents():
    stages = default_artifacts().stages
    kinds = {type(s) for s in stages}
    assert kinds == {BaselineDrift, PowerlineInterference, FatigueDrift}

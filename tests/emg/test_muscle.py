"""Activation dynamics."""

import numpy as np
import pytest

from repro.emg.muscle import ActivationDynamics
from repro.errors import SignalError


class TestActivationDynamics:
    def test_step_response_rises_to_drive(self):
        dyn = ActivationDynamics()
        drive = np.concatenate([np.zeros(100), np.ones(400)])
        act = dyn.apply(drive, fs=1000.0)
        assert act[99] == pytest.approx(0.0, abs=1e-9)
        assert act[-1] == pytest.approx(1.0, abs=0.01)

    def test_activation_faster_than_deactivation(self):
        """tau_act < tau_deact: onset is steeper than offset."""
        dyn = ActivationDynamics(tau_act_s=0.015, tau_deact_s=0.050)
        fs = 1000.0
        pulse = np.concatenate([np.zeros(50), np.ones(300), np.zeros(400)])
        act = dyn.apply(pulse, fs)
        # Samples needed to reach 63% on the way up vs to fall to 37% down.
        up = np.argmax(act[50:] >= 0.63)
        down = np.argmax(act[350:] <= 0.37)
        assert up < down

    def test_smooths_sharp_edges(self):
        dyn = ActivationDynamics()
        square = np.concatenate([np.zeros(20), np.ones(20)] * 10)
        act = dyn.apply(square, fs=1000.0)
        assert np.abs(np.diff(act)).max() < np.abs(np.diff(square)).max()

    def test_output_bounded_by_drive_range(self):
        dyn = ActivationDynamics()
        rng = np.random.default_rng(0)
        drive = np.abs(rng.normal(size=500))
        act = dyn.apply(drive, fs=1000.0)
        assert act.min() >= 0.0
        assert act.max() <= drive.max() + 1e-12

    def test_constant_drive_is_fixed_point(self):
        dyn = ActivationDynamics()
        drive = np.full(200, 0.6)
        act = dyn.apply(drive, fs=1000.0)
        np.testing.assert_allclose(act, 0.6, atol=1e-12)

    def test_rejects_negative_drive(self):
        with pytest.raises(SignalError):
            ActivationDynamics().apply(np.array([0.1, -0.1]), fs=1000.0)

    def test_rejects_bad_time_constants(self):
        with pytest.raises(Exception):
            ActivationDynamics(tau_act_s=0.0)
        with pytest.raises(Exception):
            ActivationDynamics(tau_deact_s=-0.1)

    def test_starts_from_first_sample(self):
        act = ActivationDynamics().apply(np.full(10, 0.5), fs=100.0)
        assert act[0] == 0.5

"""Surface-EMG synthesis: amplitude tracking, spectrum, non-stationarity."""

import numpy as np
import pytest

from repro.emg.synthesis import SurfaceEMGSynthesizer
from repro.errors import SignalError
from repro.signal.envelope import linear_envelope
from repro.signal.spectral import band_power


def clean_synth(**kw):
    """A synthesizer with artifacts disabled for precise assertions."""
    return SurfaceEMGSynthesizer(artifacts=None, **kw)


class TestSynthesize:
    def test_output_length_matches_duration(self):
        synth = clean_synth()
        env = np.ones(120)  # 1 s at 120 Hz
        out = synth.synthesize(env, activation_fs=120.0, seed=0)
        assert len(out) == 1000

    def test_duration_override(self):
        synth = clean_synth()
        out = synth.synthesize(np.ones(120), 120.0, duration_s=2.0, seed=0)
        assert len(out) == 2000

    def test_amplitude_tracks_activation(self):
        synth = clean_synth()
        env = np.concatenate([np.zeros(120), np.ones(120), np.zeros(120)])
        out = synth.synthesize(env, 120.0, seed=0)
        rest = np.sqrt(np.mean(out[:800] ** 2))
        active = np.sqrt(np.mean(out[1100:1900] ** 2))
        assert active > 10 * rest

    def test_rms_at_full_activation_near_mvc(self):
        synth = clean_synth(mvc_amplitude_volts=6e-5, noise_floor_volts=0.0)
        out = synth.synthesize(np.ones(240), 120.0, seed=1)
        rms = np.sqrt(np.mean(out[500:1500] ** 2))
        assert 4e-5 < rms < 8e-5

    def test_noise_floor_at_rest(self):
        synth = clean_synth(noise_floor_volts=2e-6)
        out = synth.synthesize(np.zeros(240), 120.0, seed=0)
        rms = np.sqrt(np.mean(out**2))
        assert 1e-6 < rms < 4e-6

    def test_spectrum_in_physiological_band(self):
        synth = clean_synth()
        out = synth.synthesize(np.ones(480), 120.0, seed=0)
        assert band_power(out, 1000.0, 20.0, 450.0) > 0.95

    def test_envelope_recovers_commanded_activation(self):
        """The classical linear envelope correlates with the command."""
        synth = clean_synth()
        t = np.linspace(0, 1, 360)
        env = 0.5 * (1 + np.sin(2 * np.pi * 0.8 * t))
        out = synth.synthesize(env, 120.0, seed=2)
        recovered = linear_envelope(out, 1000.0, cutoff_hz=3.0)
        t_cmd = np.arange(len(out)) / 1000.0
        cmd = np.interp(t_cmd, np.arange(len(env)) / 120.0, env)
        rho = np.corrcoef(recovered[300:-300], cmd[300:-300])[0, 1]
        assert rho > 0.85

    def test_non_stationarity_across_seeds(self):
        """Identical commands give different signals — the paper's premise."""
        synth = clean_synth()
        env = np.ones(120)
        a = synth.synthesize(env, 120.0, seed=1)
        b = synth.synthesize(env, 120.0, seed=2)
        assert np.corrcoef(a, b)[0, 1] < 0.2

    def test_deterministic_given_seed(self):
        synth = SurfaceEMGSynthesizer()  # with artifacts
        env = np.ones(120)
        np.testing.assert_array_equal(
            synth.synthesize(env, 120.0, seed=7),
            synth.synthesize(env, 120.0, seed=7),
        )

    def test_rejects_negative_activation(self):
        with pytest.raises(SignalError):
            clean_synth().synthesize(np.array([-0.1, 0.2]), 120.0, seed=0)

    def test_rejects_bad_band(self):
        with pytest.raises(SignalError):
            SurfaceEMGSynthesizer(carrier_band_hz=(450.0, 20.0))
        with pytest.raises(SignalError):
            SurfaceEMGSynthesizer(carrier_band_hz=(20.0, 600.0))  # above Nyquist

"""The Myomonitor acquisition and conditioning chain (paper Section 5)."""

import numpy as np
import pytest

from repro.emg.channels import hand_montage, leg_montage
from repro.emg.myomonitor import Myomonitor
from repro.emg.synthesis import SurfaceEMGSynthesizer
from repro.errors import AcquisitionError
from repro.signal.spectral import band_power


@pytest.fixture
def activations():
    t = np.linspace(0, 1, 240)
    bump = np.clip(np.sin(np.pi * t), 0, None)
    return {
        "biceps_r": bump,
        "triceps_r": 0.3 * bump,
        "upper_forearm_r": 0.5 * bump,
        "lower_forearm_r": 0.2 * bump,
    }


class TestAcquire:
    def test_paper_configuration_defaults(self):
        myo = Myomonitor()
        assert myo.fs == 1000.0
        assert myo.band_hz == (20.0, 450.0)
        assert myo.output_fs == 120.0

    def test_raw_recording_shape(self, activations):
        myo = Myomonitor()
        raw = myo.acquire(activations, 120.0, hand_montage("r"), seed=0)
        assert raw.fs == 1000.0
        assert raw.n_channels == 4
        assert raw.n_samples == 2000  # 2 s at 1000 Hz

    def test_raw_spectrum_band_limited(self, activations):
        myo = Myomonitor()
        raw = myo.acquire(activations, 120.0, hand_montage("r"), seed=0)
        assert band_power(raw.channel("biceps_r"), 1000.0, 20.0, 450.0) > 0.95

    def test_channel_amplitudes_follow_commands(self, activations):
        myo = Myomonitor()
        raw = myo.acquire(activations, 120.0, hand_montage("r"), seed=0)
        rms = {c: np.sqrt(np.mean(raw.channel(c) ** 2)) for c in raw.channels}
        assert rms["biceps_r"] > rms["triceps_r"]
        assert rms["upper_forearm_r"] > rms["lower_forearm_r"]

    def test_missing_activation_rejected(self, activations):
        del activations["triceps_r"]
        with pytest.raises(AcquisitionError, match="triceps_r"):
            Myomonitor().acquire(activations, 120.0, hand_montage("r"), seed=0)

    def test_deterministic(self, activations):
        myo = Myomonitor()
        a = myo.acquire(activations, 120.0, hand_montage("r"), seed=5)
        b = myo.acquire(activations, 120.0, hand_montage("r"), seed=5)
        assert a == b

    def test_channels_get_independent_noise(self, activations):
        myo = Myomonitor()
        activations["triceps_r"] = activations["biceps_r"]
        raw = myo.acquire(activations, 120.0, hand_montage("r"), seed=0)
        rho = np.corrcoef(raw.channel("biceps_r"), raw.channel("triceps_r"))[0, 1]
        assert abs(rho) < 0.2


class TestCondition:
    def test_output_rate_and_nonnegativity(self, activations):
        myo = Myomonitor()
        raw = myo.acquire(activations, 120.0, hand_montage("r"), seed=0)
        cond = myo.condition(raw)
        assert cond.fs == 120.0
        assert np.all(cond.data_volts >= 0.0)

    def test_n_out_override(self, activations):
        myo = Myomonitor()
        raw = myo.acquire(activations, 120.0, hand_montage("r"), seed=0)
        cond = myo.condition(raw, n_out=240)
        assert cond.n_samples == 240

    def test_conditioned_envelope_tracks_command(self, activations):
        """The 120 Hz conditioned stream peaks where the command peaks."""
        myo = Myomonitor()
        cond = myo.acquire_conditioned(
            activations, 120.0, hand_montage("r"), n_out=240, seed=0
        )
        biceps = cond.channel("biceps_r")
        command_peak = np.argmax(activations["biceps_r"])
        signal_peak = np.argmax(np.convolve(biceps, np.ones(21) / 21, mode="same"))
        assert abs(int(signal_peak) - int(command_peak)) < 40

    def test_amplitude_scale_matches_paper_figure2(self, activations):
        """Figure 2 shows rectified EMG of a few times 1e-5 V."""
        myo = Myomonitor()
        cond = myo.acquire_conditioned(
            activations, 120.0, hand_montage("r"), seed=0
        )
        peak = cond.data_volts.max()
        assert 1e-5 < peak < 3e-4

    def test_wrong_rate_recording_rejected(self, activations):
        myo = Myomonitor()
        raw = myo.acquire(activations, 120.0, hand_montage("r"), seed=0)
        other = Myomonitor(fs=2000.0, synthesizer=SurfaceEMGSynthesizer(fs=2000.0))
        with pytest.raises(AcquisitionError, match="rate"):
            other.condition(raw)


class TestValidation:
    def test_band_must_fit_under_nyquist(self):
        """At 800 Hz the 20-450 band exceeds Nyquist; either the synthesizer
        or the device must refuse."""
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            Myomonitor(fs=800.0, synthesizer=SurfaceEMGSynthesizer(fs=800.0))

    def test_synthesizer_rate_must_match(self):
        with pytest.raises(AcquisitionError, match="synthesizer"):
            Myomonitor(fs=2000.0)

    def test_leg_montage_works(self):
        t = np.linspace(0, 1, 120)
        acts = {"front_shin_r": np.abs(np.sin(np.pi * t)),
                "back_shin_r": 0.5 * np.abs(np.sin(np.pi * t))}
        cond = Myomonitor().acquire_conditioned(acts, 120.0, leg_montage("r"), seed=0)
        assert cond.n_channels == 2

"""Electrode montages match the paper's Section 5 protocol."""

import pytest

from repro.emg.channels import Electrode, ElectrodeMontage, hand_montage, leg_montage
from repro.errors import AcquisitionError


class TestPaperMontages:
    def test_hand_has_four_channels(self):
        """"On each hand, four electrodes ... biceps, triceps, upper
        forearm, and lower forearm."""
        montage = hand_montage("r")
        assert montage.channels == [
            "biceps_r", "triceps_r", "upper_forearm_r", "lower_forearm_r",
        ]

    def test_leg_has_two_channels(self):
        """"On each leg, two electrodes ... front side of shin and on
        backside of shin."""
        montage = leg_montage("r")
        assert montage.channels == ["front_shin_r", "back_shin_r"]

    def test_left_side_variants(self):
        assert hand_montage("l").channels[0] == "biceps_l"
        assert leg_montage("l").channels == ["front_shin_l", "back_shin_l"]

    def test_invalid_side_rejected(self):
        with pytest.raises(AcquisitionError):
            hand_montage("x")
        with pytest.raises(AcquisitionError):
            leg_montage("both")


class TestElectrodeMontage:
    def test_index_lookup(self):
        montage = hand_montage("r")
        assert montage.index("triceps_r") == 1
        with pytest.raises(AcquisitionError, match="not in montage"):
            montage.index("deltoid_r")

    def test_contains_and_len(self):
        montage = leg_montage("r")
        assert "front_shin_r" in montage
        assert "biceps_r" not in montage
        assert len(montage) == 2

    def test_duplicate_channels_rejected(self):
        e = Electrode("c1", "m", "p")
        with pytest.raises(AcquisitionError, match="duplicate"):
            ElectrodeMontage("bad", [e, e])

    def test_empty_montage_rejected(self):
        with pytest.raises(AcquisitionError):
            ElectrodeMontage("empty", [])

    def test_empty_channel_name_rejected(self):
        with pytest.raises(AcquisitionError):
            Electrode("", "m", "p")

    def test_iteration_preserves_order(self):
        montage = hand_montage("r")
        assert [e.channel for e in montage] == montage.channels

    def test_repr_mentions_channels(self):
        assert "biceps_r" in repr(hand_montage("r"))

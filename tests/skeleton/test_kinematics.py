"""Forward kinematics: rotation math and hierarchical composition."""

import numpy as np
import pytest

from repro.errors import SkeletonError
from repro.skeleton.body import default_body
from repro.skeleton.kinematics import JointAngles, euler_to_matrix, forward_kinematics
from repro.skeleton.model import Segment, Skeleton


class TestEulerToMatrix:
    def test_identity_at_zero(self):
        np.testing.assert_allclose(euler_to_matrix(np.zeros(3)), np.eye(3), atol=1e-15)

    def test_single_axis_rotations(self):
        a = np.pi / 2
        rx = euler_to_matrix(np.array([a, 0, 0]))
        np.testing.assert_allclose(rx @ [0, 1, 0], [0, 0, 1], atol=1e-12)
        ry = euler_to_matrix(np.array([0, a, 0]))
        np.testing.assert_allclose(ry @ [0, 0, 1], [1, 0, 0], atol=1e-12)
        rz = euler_to_matrix(np.array([0, 0, a]))
        np.testing.assert_allclose(rz @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_orthonormality(self, rng):
        angles = rng.uniform(-np.pi, np.pi, size=(50, 3))
        mats = euler_to_matrix(angles)
        prods = mats @ np.transpose(mats, (0, 2, 1))
        np.testing.assert_allclose(prods, np.broadcast_to(np.eye(3), prods.shape),
                                   atol=1e-12)
        np.testing.assert_allclose(np.linalg.det(mats), 1.0, atol=1e-12)

    def test_composition_order_xyz(self, rng):
        """R = Rx @ Ry @ Rz by definition."""
        a = rng.uniform(-1, 1, size=3)
        rx = euler_to_matrix(np.array([a[0], 0, 0]))
        ry = euler_to_matrix(np.array([0, a[1], 0]))
        rz = euler_to_matrix(np.array([0, 0, a[2]]))
        np.testing.assert_allclose(euler_to_matrix(a), rx @ ry @ rz, atol=1e-12)

    def test_rejects_wrong_last_dim(self):
        with pytest.raises(SkeletonError):
            euler_to_matrix(np.zeros((5, 2)))


class TestJointAngles:
    def test_validates_shapes(self):
        with pytest.raises(Exception):
            JointAngles(n_frames=10, angles_rad={"a": np.zeros((5, 3))})

    def test_angles_for_missing_returns_zeros(self):
        anim = JointAngles(n_frames=4, angles_rad={})
        np.testing.assert_array_equal(anim.angles_for("anything"), np.zeros((4, 3)))

    def test_root_position_validated(self):
        with pytest.raises(Exception):
            JointAngles(n_frames=4, angles_rad={}, root_position_mm=np.zeros((3, 3)))

    def test_rejects_zero_frames(self):
        with pytest.raises(SkeletonError):
            JointAngles(n_frames=0, angles_rad={})


class TestForwardKinematics:
    def test_bind_pose_matches_offsets(self):
        body = default_body()
        anim = JointAngles(n_frames=1, angles_rad={})
        pos = forward_kinematics(body, anim)
        # Pelvis at origin; spine directly above it by its offset.
        np.testing.assert_allclose(pos["pelvis"][0], [0, 0, 0])
        np.testing.assert_allclose(pos["spine"][0], body["spine"].offset)

    def test_chain_lengths_preserved_under_rotation(self, rng):
        """Rotations never change segment lengths."""
        body = default_body()
        n = 20
        angles = {
            "humerus_r": rng.uniform(-1, 1, size=(n, 3)),
            "radius_r": rng.uniform(-1, 1, size=(n, 3)),
        }
        pos = forward_kinematics(body, JointAngles(n_frames=n, angles_rad=angles))
        forearm = np.linalg.norm(pos["radius_r"] - pos["humerus_r"], axis=1)
        np.testing.assert_allclose(forearm, body["radius_r"].length_mm, atol=1e-9)

    def test_shoulder_flexion_raises_hand(self):
        body = default_body()
        n = 2
        angles = {"humerus_r": np.array([[0.0, 0, 0], [np.pi / 2, 0, 0]])}
        pos = forward_kinematics(body, JointAngles(n_frames=n, angles_rad=angles))
        hand = pos["hand_r"]
        assert hand[1, 2] > hand[0, 2]  # hand goes up
        assert hand[1, 1] > hand[0, 1]  # and forward

    def test_root_translation_moves_everything(self):
        body = default_body()
        n = 3
        shift = np.array([[0, 0, 0], [100, 0, 0], [200, 0, 0]], dtype=float)
        anim = JointAngles(n_frames=n, angles_rad={}, root_position_mm=shift)
        pos = forward_kinematics(body, anim)
        for seg in ("hand_r", "toe_l", "head"):
            np.testing.assert_allclose(pos[seg][1] - pos[seg][0], [100, 0, 0])

    def test_parent_rotation_carries_children(self):
        """Rotating the humerus moves the hand but not the clavicle."""
        body = default_body()
        angles = {"humerus_r": np.array([[0.5, 0, 0]])}
        moved = forward_kinematics(body, JointAngles(1, angles))
        rest = forward_kinematics(body, JointAngles(1, {}))
        assert not np.allclose(moved["hand_r"], rest["hand_r"])
        np.testing.assert_allclose(moved["clavicle_r"], rest["clavicle_r"])

    def test_segments_filter(self):
        body = default_body()
        pos = forward_kinematics(body, JointAngles(1, {}), segments=["hand_r"])
        assert set(pos) == {"hand_r"}

    def test_unknown_animated_segment_rejected(self):
        body = default_body()
        anim = JointAngles(1, {"ghost": np.zeros((1, 3))})
        with pytest.raises(SkeletonError, match="ghost"):
            forward_kinematics(body, anim)

    def test_unknown_output_segment_rejected(self):
        body = default_body()
        with pytest.raises(SkeletonError):
            forward_kinematics(body, JointAngles(1, {}), segments=["ghost"])

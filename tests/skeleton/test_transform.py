"""Pelvis-local transformation (paper Section 3.2)."""

import numpy as np
import pytest

from repro.errors import SkeletonError
from repro.skeleton.transform import heading_rotation, to_pelvis_frame


def make_positions(n=5, shift=(0.0, 0.0, 0.0)):
    shift = np.asarray(shift)
    pelvis = np.tile(shift, (n, 1)) + np.linspace(0, 10, n)[:, None]
    hand = pelvis + np.array([100.0, 50.0, 200.0])
    return {"pelvis": pelvis, "hand_r": hand}


class TestToPelvisFrame:
    def test_pelvis_becomes_origin(self):
        local = to_pelvis_frame(make_positions())
        np.testing.assert_allclose(local["pelvis"], 0.0)

    def test_relative_geometry_preserved(self):
        local = to_pelvis_frame(make_positions())
        np.testing.assert_allclose(local["hand_r"], [[100.0, 50.0, 200.0]] * 5)

    def test_translation_invariance(self):
        """The paper's motivation: motions at different locations compare equal."""
        a = to_pelvis_frame(make_positions(shift=(0, 0, 0)))
        b = to_pelvis_frame(make_positions(shift=(5000.0, -3000.0, 10.0)))
        np.testing.assert_allclose(a["hand_r"], b["hand_r"], atol=1e-9)

    def test_requires_pelvis(self):
        with pytest.raises(SkeletonError, match="pelvis"):
            to_pelvis_frame({"hand_r": np.zeros((5, 3))})

    def test_custom_root_name(self):
        pos = {"hips": np.ones((4, 3)), "knee": np.ones((4, 3)) * 2}
        local = to_pelvis_frame(pos, pelvis_name="hips")
        np.testing.assert_allclose(local["knee"], 1.0)

    def test_frame_count_mismatch_rejected(self):
        pos = {"pelvis": np.zeros((5, 3)), "hand_r": np.zeros((4, 3))}
        with pytest.raises(Exception):
            to_pelvis_frame(pos)

    def test_heading_alignment(self):
        """Rotating the whole scene about Z is undone by heading_rad."""
        base = make_positions()
        theta = 0.7
        c, s = np.cos(theta), np.sin(theta)
        rot = np.array([[c, -s, 0], [s, c, 0], [0, 0, 1]])
        rotated = {k: v @ rot.T for k, v in base.items()}
        aligned = to_pelvis_frame(rotated, heading_rad=theta)
        plain = to_pelvis_frame(base)
        np.testing.assert_allclose(aligned["hand_r"], plain["hand_r"], atol=1e-9)


class TestHeadingRotation:
    def test_zero_heading_is_identity(self):
        np.testing.assert_allclose(heading_rotation(0.0), np.eye(3))

    def test_preserves_vertical(self):
        rot = heading_rotation(1.2)
        np.testing.assert_allclose(rot @ [0, 0, 1], [0, 0, 1], atol=1e-12)

    def test_orthonormal(self):
        rot = heading_rotation(-0.4)
        np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-12)

"""The default body model and its protocol segment inventories."""

import numpy as np
import pytest

from repro.skeleton.body import (
    DEFAULT_SEGMENT_OFFSETS,
    HAND_SEGMENTS,
    LEG_SEGMENTS,
    default_body,
    scaled_body,
)


def test_paper_hand_inventory():
    """Section 5: clavicle, humerus, radius, hand."""
    assert HAND_SEGMENTS == ("clavicle_r", "humerus_r", "radius_r", "hand_r")


def test_paper_leg_inventory():
    """Section 5: tibia, foot, toe."""
    assert LEG_SEGMENTS == ("tibia_r", "foot_r", "toe_r")


def test_root_is_pelvis():
    assert default_body().root.name == "pelvis"


def test_protocol_segments_exist_in_body():
    body = default_body()
    body.validate_segment_names(HAND_SEGMENTS)
    body.validate_segment_names(LEG_SEGMENTS)


def test_hand_chain_reaches_pelvis_through_arm():
    chain = default_body().chain_to_root("hand_r")
    assert chain == [
        "hand_r", "radius_r", "humerus_r", "clavicle_r", "thorax", "spine", "pelvis",
    ]


def test_leg_chain_reaches_pelvis():
    chain = default_body().chain_to_root("toe_r")
    assert chain == ["toe_r", "foot_r", "tibia_r", "femur_r", "pelvis"]


def test_body_is_left_right_symmetric():
    body = default_body()
    for right in ("clavicle_r", "humerus_r", "radius_r", "hand_r",
                  "femur_r", "tibia_r", "foot_r", "toe_r"):
        left = right[:-2] + "_l"
        r_off = body[right].offset
        l_off = body[left].offset
        # Mirror across the X (right/left) axis.
        np.testing.assert_allclose(l_off, r_off * np.array([-1.0, 1.0, 1.0]))


def test_scaled_body_scales_all_lengths():
    base = default_body()
    small = scaled_body(0.8)
    for seg in base:
        np.testing.assert_allclose(small[seg.name].offset, 0.8 * seg.offset)


def test_scaled_body_rejects_nonpositive():
    with pytest.raises(ValueError):
        scaled_body(0.0)
    with pytest.raises(ValueError):
        scaled_body(-1.0)


def test_all_offsets_have_parents_defined():
    names = set(DEFAULT_SEGMENT_OFFSETS)
    for name, (parent, _) in DEFAULT_SEGMENT_OFFSETS.items():
        if parent:
            assert parent in names, f"{name} references missing {parent}"


def test_anthropometry_plausible():
    """Arm (shoulder to hand) is longer than the forearm alone, legs longer than arms."""
    body = default_body()
    arm = sum(body[s].length_mm for s in ("humerus_r", "radius_r", "hand_r"))
    leg = sum(body[s].length_mm for s in ("femur_r", "tibia_r", "foot_r"))
    assert 500 < arm < 1000
    assert leg > arm

"""Skeleton data-model invariants."""

import numpy as np
import pytest

from repro.errors import SkeletonError
from repro.skeleton.model import Segment, Skeleton


def make_chain():
    return [
        Segment("root", None, (0, 0, 0)),
        Segment("a", "root", (0, 0, 10)),
        Segment("b", "a", (0, 0, 10)),
        Segment("c", "root", (10, 0, 0)),
    ]


class TestSegment:
    def test_offset_as_array(self):
        seg = Segment("x", None, (1, 2, 3))
        np.testing.assert_array_equal(seg.offset, [1.0, 2.0, 3.0])

    def test_length(self):
        assert Segment("x", None, (3, 4, 0)).length_mm == 5.0

    def test_rejects_empty_name(self):
        with pytest.raises(SkeletonError):
            Segment("", None, (0, 0, 0))

    def test_rejects_self_parent(self):
        with pytest.raises(SkeletonError):
            Segment("x", "x", (0, 0, 0))

    def test_rejects_wrong_offset_shape(self):
        with pytest.raises(SkeletonError):
            Segment("x", None, (1, 2))  # type: ignore[arg-type]


class TestSkeleton:
    def test_topological_order_parents_first(self):
        sk = Skeleton(make_chain())
        names = sk.names
        assert names.index("root") < names.index("a") < names.index("b")

    def test_single_root_enforced(self):
        with pytest.raises(SkeletonError, match="exactly one root"):
            Skeleton([Segment("r1", None, (0, 0, 0)), Segment("r2", None, (0, 0, 0))])

    def test_unknown_parent_rejected(self):
        with pytest.raises(SkeletonError, match="unknown parent"):
            Skeleton([Segment("root", None, (0, 0, 0)), Segment("a", "ghost", (0, 0, 1))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SkeletonError, match="duplicate"):
            Skeleton([Segment("root", None, (0, 0, 0)),
                      Segment("a", "root", (0, 0, 1)),
                      Segment("a", "root", (0, 0, 2))])

    def test_cycle_detected(self):
        # a <-> b cycle disconnected from root.
        with pytest.raises(SkeletonError, match="not reachable"):
            Skeleton([
                Segment("root", None, (0, 0, 0)),
                Segment("a", "b", (0, 0, 1)),
                Segment("b", "a", (0, 0, 1)),
            ])

    def test_empty_rejected(self):
        with pytest.raises(SkeletonError):
            Skeleton([])

    def test_lookup_and_contains(self):
        sk = Skeleton(make_chain())
        assert "a" in sk
        assert sk["a"].parent == "root"
        with pytest.raises(SkeletonError, match="unknown segment"):
            sk["nope"]

    def test_children(self):
        sk = Skeleton(make_chain())
        assert sorted(sk.children("root")) == ["a", "c"]
        assert sk.children("b") == []
        with pytest.raises(SkeletonError):
            sk.children("nope")

    def test_chain_to_root(self):
        sk = Skeleton(make_chain())
        assert sk.chain_to_root("b") == ["b", "a", "root"]
        assert sk.chain_to_root("root") == ["root"]

    def test_subtree(self):
        sk = Skeleton(make_chain())
        assert set(sk.subtree("root")) == {"root", "a", "b", "c"}
        assert sk.subtree("a") == ["a", "b"]

    def test_validate_segment_names(self):
        sk = Skeleton(make_chain())
        sk.validate_segment_names(["a", "b"])  # no raise
        with pytest.raises(SkeletonError, match="ghost"):
            sk.validate_segment_names(["a", "ghost"])

    def test_len_and_iter(self):
        sk = Skeleton(make_chain())
        assert len(sk) == 4
        assert [s.name for s in sk] == sk.names

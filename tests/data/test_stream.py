"""Continuous streams built from recorded trials."""

import numpy as np
import pytest

from repro.data.stream import ContinuousStream, StreamAnnotation, concatenate_records
from repro.errors import DatasetError


class TestStreamAnnotation:
    def test_basic(self):
        ann = StreamAnnotation(start=10, stop=30, label="x")
        assert ann.n_frames == 20

    def test_invalid_range(self):
        with pytest.raises(DatasetError):
            StreamAnnotation(start=5, stop=5, label="x")
        with pytest.raises(DatasetError):
            StreamAnnotation(start=-1, stop=5, label="x")

    def test_overlap(self):
        ann = StreamAnnotation(start=10, stop=30, label="x")
        assert ann.overlap(0, 10) == 0
        assert ann.overlap(20, 40) == 10
        assert ann.overlap(0, 100) == 20


class TestConcatenateRecords:
    def test_layout_and_length(self, make_record):
        records = [make_record(label="a"), make_record(label="b", seed=1)]
        stream = concatenate_records(records, rest_s=1.0, seed=0)
        total_motion = sum(r.n_frames for r in records)
        n_rest = 3 * 120  # rest before, between, after
        assert stream.n_frames == total_motion + n_rest
        assert stream.mocap.segments == records[0].mocap.segments

    def test_annotations_aligned_with_content(self, make_record):
        records = [make_record(label="a"), make_record(label="b", seed=1)]
        stream = concatenate_records(records, rest_s=0.5, seed=0)
        assert len(stream.annotations) == 2
        for ann, rec in zip(stream.annotations, records):
            assert ann.label == rec.label
            segment = stream.mocap.matrix_mm[ann.start:ann.stop]
            np.testing.assert_array_equal(segment, rec.mocap.matrix_mm)

    def test_zero_rest(self, make_record):
        records = [make_record(label="a"), make_record(label="b", seed=1)]
        stream = concatenate_records(records, rest_s=0.0, seed=0)
        assert stream.n_frames == sum(r.n_frames for r in records)
        assert stream.annotations[1].start == records[0].n_frames

    def test_rest_periods_are_quiet(self, make_record):
        records = [make_record(label="a")]
        stream = concatenate_records(records, rest_s=1.0, seed=0)
        ann = stream.annotations[0]
        rest_emg = np.asarray(stream.emg.data_volts)[: ann.start]
        motion_emg = np.asarray(stream.emg.data_volts)[ann.start:ann.stop]
        assert rest_emg.mean() < motion_emg.mean()

    def test_segment_extraction_roundtrip(self, make_record):
        records = [make_record(label="a")]
        stream = concatenate_records(records, rest_s=0.5, seed=0)
        ann = stream.annotations[0]
        cut = stream.segment(ann.start, ann.stop, label="a")
        np.testing.assert_array_equal(cut.mocap.matrix_mm,
                                      records[0].mocap.matrix_mm)

    def test_layout_mismatch_rejected(self, make_record):
        with pytest.raises(DatasetError):
            concatenate_records(
                [make_record(n_segments=4), make_record(n_segments=2)]
            )

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            concatenate_records([])

    def test_deterministic(self, make_record):
        records = [make_record(label="a")]
        a = concatenate_records(records, rest_s=1.0, seed=3)
        b = concatenate_records(records, rest_s=1.0, seed=3)
        np.testing.assert_array_equal(a.mocap.matrix_mm, b.mocap.matrix_mm)


class TestContinuousStream:
    def test_misaligned_rejected(self, make_record):
        rec = make_record()
        with pytest.raises(DatasetError):
            ContinuousStream(
                mocap=rec.mocap,
                emg=rec.emg.slice_samples(0, rec.n_frames - 1),
                annotations=(),
            )

    def test_annotation_beyond_stream_rejected(self, make_record):
        rec = make_record(n_frames=50)
        with pytest.raises(DatasetError):
            ContinuousStream(
                mocap=rec.mocap,
                emg=rec.emg,
                annotations=(StreamAnnotation(0, 100, "x"),),
            )

"""Study protocols and the synthetic capture campaign."""

import pytest

from repro.data.protocol import StudyProtocol, build_dataset, hand_protocol, leg_protocol
from repro.emg.channels import hand_montage
from repro.errors import DatasetError


class TestProtocols:
    def test_hand_protocol_matches_paper(self):
        """Section 5: 4 mocap attributes + 4 EMG channels for the hand."""
        proto = hand_protocol()
        assert proto.segments == ("clavicle_r", "humerus_r", "radius_r", "hand_r")
        assert proto.montage.channels == [
            "biceps_r", "triceps_r", "upper_forearm_r", "lower_forearm_r",
        ]

    def test_leg_protocol_matches_paper(self):
        """Section 5: 3 mocap attributes + 2 EMG channels for the leg."""
        proto = leg_protocol()
        assert proto.segments == ("tibia_r", "foot_r", "toe_r")
        assert proto.montage.channels == ["front_shin_r", "back_shin_r"]

    def test_protocol_motions_match_limb(self):
        for proto in (hand_protocol(), leg_protocol()):
            motions = proto.motions()
            assert motions
            assert all(m.limb == proto.limb for m in motions)

    def test_empty_segments_rejected(self):
        with pytest.raises(DatasetError):
            StudyProtocol(name="x", limb="hand_r", segments=(),
                          montage=hand_montage("r"))


class TestBuildDataset:
    def test_campaign_size_and_layout(self, small_hand_dataset):
        proto = hand_protocol()
        n_classes = len(proto.motions())
        assert len(small_hand_dataset) == 1 * 2 * n_classes
        first = small_hand_dataset[0]
        assert first.mocap.segments == proto.segments
        assert tuple(first.emg.channels) == tuple(proto.montage.channels)

    def test_streams_are_pelvis_local(self, small_hand_dataset):
        """Positions are bounded by limb reach, not lab coordinates."""
        import numpy as np

        for rec in small_hand_dataset:
            assert np.abs(np.asarray(rec.mocap.matrix_mm)).max() < 2500.0

    def test_reproducible_given_seed(self):
        a = build_dataset(hand_protocol(), n_participants=1, trials_per_motion=1,
                          seed=3)
        b = build_dataset(hand_protocol(), n_participants=1, trials_per_motion=1,
                          seed=3)
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            assert ra.mocap == rb.mocap
            assert ra.emg == rb.emg

    def test_different_seeds_differ(self):
        a = build_dataset(hand_protocol(), n_participants=1, trials_per_motion=1,
                          seed=3)
        b = build_dataset(hand_protocol(), n_participants=1, trials_per_motion=1,
                          seed=4)
        assert a[0].mocap != b[0].mocap

    def test_trials_vary_within_class(self, small_hand_dataset):
        group = small_hand_dataset.by_label("raise_arm")
        assert group[0].mocap != group[1].mocap
        assert group[0].emg != group[1].emg

    def test_metadata_records_variation(self, small_hand_dataset):
        meta = small_hand_dataset[0].metadata
        assert "amplitude" in meta and "speed" in meta

    def test_invalid_counts_rejected(self):
        with pytest.raises(Exception):
            build_dataset(hand_protocol(), n_participants=0)

    def test_leg_campaign(self, small_leg_dataset):
        proto = leg_protocol()
        assert set(small_leg_dataset.labels) == {m.name for m in proto.motions()}


class TestWholeBodyProtocol:
    def test_inventory_is_union_of_studies(self):
        from repro.data.protocol import whole_body_protocol

        proto = whole_body_protocol()
        assert proto.segments == (
            "clavicle_r", "humerus_r", "radius_r", "hand_r",
            "tibia_r", "foot_r", "toe_r",
        )
        assert proto.montage.channels == [
            "biceps_r", "triceps_r", "upper_forearm_r", "lower_forearm_r",
            "front_shin_r", "back_shin_r",
        ]

    def test_motions_cover_both_limbs(self):
        from repro.data.protocol import hand_protocol, leg_protocol, whole_body_protocol

        whole = {m.name for m in whole_body_protocol().motions()}
        hand = {m.name for m in hand_protocol().motions()}
        leg = {m.name for m in leg_protocol().motions()}
        assert whole == hand | leg

    def test_build_pads_idle_limb_channels(self):
        import numpy as np

        from repro.data.protocol import build_dataset, whole_body_protocol

        ds = build_dataset(whole_body_protocol(), n_participants=1,
                           trials_per_motion=1, seed=1)
        assert set(ds.labels) == {
            m.name for m in whole_body_protocol().motions()
        }
        kick = ds.by_label("kick_ball")[0]
        # During a leg motion, the active shin channel clearly out-drives
        # the idle biceps, which still carries a non-zero tonic floor.
        biceps = np.asarray(kick.emg.channel("biceps_r"))
        shin = np.asarray(kick.emg.channel("front_shin_r"))
        assert shin.max() > 2 * biceps.max()
        assert biceps.mean() > 0

"""Dataset persistence round-trips."""

import json

import numpy as np
import pytest

from repro.data.serialize import load_dataset, save_dataset
from repro.errors import SerializationError


class TestRoundTrip:
    def test_full_roundtrip(self, toy_dataset, tmp_path):
        path = save_dataset(toy_dataset, tmp_path / "toy")
        loaded = load_dataset(path)
        assert loaded.name == toy_dataset.name
        assert len(loaded) == len(toy_dataset)
        for a, b in zip(toy_dataset, loaded):
            assert a.key == b.key
            assert a.mocap == b.mocap
            assert a.emg == b.emg
            assert a.metadata == b.metadata

    def test_load_by_any_suffix(self, toy_dataset, tmp_path):
        save_dataset(toy_dataset, tmp_path / "toy")
        for suffix in ("", ".json", ".npz"):
            loaded = load_dataset(str(tmp_path / "toy") + suffix)
            assert len(loaded) == len(toy_dataset)

    def test_save_strips_given_suffix(self, toy_dataset, tmp_path):
        path = save_dataset(toy_dataset, tmp_path / "toy.npz")
        assert path.name == "toy.json"
        assert (tmp_path / "toy.npz").exists()

    def test_overwrites_existing(self, toy_dataset, tmp_path):
        save_dataset(toy_dataset, tmp_path / "toy")
        path = save_dataset(toy_dataset, tmp_path / "toy")
        assert path.exists()


class TestErrorPaths:
    def test_missing_files(self, tmp_path):
        with pytest.raises(SerializationError, match="not found"):
            load_dataset(tmp_path / "ghost")

    def test_corrupt_manifest(self, toy_dataset, tmp_path):
        path = save_dataset(toy_dataset, tmp_path / "toy")
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SerializationError, match="manifest"):
            load_dataset(path)

    def test_version_mismatch(self, toy_dataset, tmp_path):
        path = save_dataset(toy_dataset, tmp_path / "toy")
        manifest = json.loads(path.read_text())
        manifest["format_version"] = 999
        path.write_text(json.dumps(manifest))
        with pytest.raises(SerializationError, match="version"):
            load_dataset(path)

    def test_missing_array_detected(self, toy_dataset, tmp_path):
        path = save_dataset(toy_dataset, tmp_path / "toy")
        manifest = json.loads(path.read_text())
        manifest["records"].append(dict(manifest["records"][0]))
        path.write_text(json.dumps(manifest))
        with pytest.raises(SerializationError, match="missing record"):
            load_dataset(path)

    def test_unwritable_target(self, toy_dataset, tmp_path):
        target = tmp_path / "no_such_dir" / "deep" / "toy"
        with pytest.raises(SerializationError):
            save_dataset(toy_dataset, target)


def test_manifest_is_human_readable(toy_dataset, tmp_path):
    path = save_dataset(toy_dataset, tmp_path / "toy")
    manifest = json.loads(path.read_text())
    assert manifest["name"] == "toy"
    rec = manifest["records"][0]
    assert {"label", "participant_id", "segments", "channels"} <= set(rec)

"""RecordedMotion and MotionDataset semantics."""

import numpy as np
import pytest

from repro.data.dataset import MotionDataset
from repro.data.record import RecordedMotion
from repro.errors import DatasetError


class TestRecordedMotion:
    def test_key_format(self, make_record):
        rec = make_record(label="raise_arm", participant="p3", trial=2)
        assert rec.key == "raise_arm/p3/t2"

    def test_alignment_enforced(self, make_record):
        good = make_record()
        bad_emg = good.emg.slice_samples(0, good.n_frames - 5)
        with pytest.raises(DatasetError, match="misaligned"):
            RecordedMotion(
                label=good.label, participant_id="p", trial_id=0,
                mocap=good.mocap, emg=bad_emg,
            )

    def test_rate_mismatch_rejected(self, make_record):
        good = make_record()
        from repro.emg.recording import EMGRecording

        wrong_rate = EMGRecording(
            channels=good.emg.channels,
            data_volts=np.asarray(good.emg.data_volts),
            fs=60.0,
        )
        with pytest.raises(DatasetError, match="rates"):
            RecordedMotion(label="x", participant_id="p", trial_id=0,
                           mocap=good.mocap, emg=wrong_rate)

    def test_empty_label_rejected(self, make_record):
        good = make_record()
        with pytest.raises(DatasetError, match="label"):
            RecordedMotion(label="", participant_id="p", trial_id=0,
                           mocap=good.mocap, emg=good.emg)

    def test_duration(self, make_record):
        rec = make_record(n_frames=240)
        assert rec.duration_s == pytest.approx(2.0)


class TestMotionDataset:
    def test_summary_and_counts(self, toy_dataset):
        assert toy_dataset.counts() == {"alpha": 4, "beta": 4, "gamma": 4}
        text = toy_dataset.summary()
        assert "12 trials" in text and "3 classes" in text

    def test_by_label(self, toy_dataset):
        group = toy_dataset.by_label("beta")
        assert len(group) == 4
        assert all(r.label == "beta" for r in group)
        with pytest.raises(DatasetError, match="alpha"):
            toy_dataset.by_label("delta")

    def test_layout_consistency_enforced(self, toy_dataset, make_record):
        odd = make_record(n_segments=2)
        with pytest.raises(DatasetError, match="segments"):
            toy_dataset.add(odd)

    def test_add_consistent_record(self, toy_dataset, make_record):
        n = len(toy_dataset)
        toy_dataset.add(make_record(label="alpha", trial=99))
        assert len(toy_dataset) == n + 1

    def test_participants(self, toy_dataset):
        assert toy_dataset.participants == ["p0", "p1"]

    def test_getitem_and_iter(self, toy_dataset):
        assert toy_dataset[0] in list(toy_dataset)


class TestTrainTestSplit:
    def test_stratified_and_disjoint(self, toy_dataset):
        train, test = toy_dataset.train_test_split(test_fraction=0.25, seed=0)
        assert len(train) + len(test) == len(toy_dataset)
        assert set(train.labels) == set(test.labels) == {"alpha", "beta", "gamma"}
        train_keys = {r.key for r in train}
        assert all(r.key not in train_keys for r in test)

    def test_every_class_on_both_sides_even_for_tiny_fraction(self, toy_dataset):
        train, test = toy_dataset.train_test_split(test_fraction=0.01, seed=0)
        assert set(test.labels) == set(toy_dataset.labels)

    def test_deterministic(self, toy_dataset):
        a = toy_dataset.train_test_split(0.25, seed=5)
        b = toy_dataset.train_test_split(0.25, seed=5)
        assert [r.key for r in a[1]] == [r.key for r in b[1]]

    def test_fraction_bounds(self, toy_dataset):
        with pytest.raises(DatasetError):
            toy_dataset.train_test_split(0.0)
        with pytest.raises(DatasetError):
            toy_dataset.train_test_split(1.0)

    def test_single_trial_class_rejected(self, make_record):
        ds = MotionDataset(name="tiny", records=[make_record(label="solo")])
        with pytest.raises(DatasetError, match="solo"):
            ds.train_test_split(0.5)


class TestLeaveOneParticipantOut:
    def test_partition(self, toy_dataset):
        train, test = toy_dataset.leave_one_participant_out("p0")
        assert all(r.participant_id != "p0" for r in train)
        assert all(r.participant_id == "p0" for r in test)

    def test_unknown_participant(self, toy_dataset):
        with pytest.raises(DatasetError, match="unknown participant"):
            toy_dataset.leave_one_participant_out("p9")

"""The synthetic signature-population generator."""

import numpy as np
import pytest

from repro.data.population import SyntheticPopulation, synthesize_population
from repro.errors import DatasetError


@pytest.fixture
def base(rng):
    """A small structured base: sorted (min, max) pairs, some (0, 0)."""
    n, c = 12, 5
    pairs = np.sort(rng.uniform(0.0, 1.0, size=(n, c, 2)), axis=2)
    occupied = rng.uniform(size=(n, c)) < 0.6
    pairs[~occupied] = 0.0
    vectors = pairs.reshape(n, 2 * c)
    labels = [f"motion-{i % 4}" for i in range(n)]
    return vectors, labels


class TestStructure:
    def test_shape_and_types(self, base):
        vectors, labels = base
        pop = synthesize_population(vectors, labels, 500, n_tenants=8, seed=1)
        assert isinstance(pop, SyntheticPopulation)
        assert len(pop) == 500
        assert pop.vectors.shape == (500, vectors.shape[1])
        assert len(pop.labels) == len(pop.tenants) == 500
        assert pop.base_rows.shape == (500,)

    def test_values_stay_in_unit_interval(self, base):
        vectors, labels = base
        pop = synthesize_population(vectors, labels, 800, jitter=0.3, seed=2)
        assert pop.vectors.min() >= 0.0
        assert pop.vectors.max() <= 1.0

    def test_min_max_pairs_stay_ordered(self, base):
        vectors, labels = base
        pop = synthesize_population(vectors, labels, 800, jitter=0.3, seed=3)
        pairs = pop.vectors.reshape(len(pop), -1, 2)
        assert np.all(pairs[:, :, 0] <= pairs[:, :, 1])

    def test_unoccupied_clusters_stay_zero(self, base):
        vectors, labels = base
        pop = synthesize_population(vectors, labels, 600, jitter=0.3, seed=4)
        base_pairs = vectors[pop.base_rows].reshape(len(pop), -1, 2)
        unoccupied = (base_pairs[:, :, 0] == 0) & (base_pairs[:, :, 1] == 0)
        pairs = pop.vectors.reshape(len(pop), -1, 2)
        assert np.all(pairs[unoccupied] == 0.0)
        # Occupied clusters generally stay non-zero (jitter rarely zeroes).
        assert pairs[~unoccupied].max() > 0.0

    def test_labels_inherited_from_base_row(self, base):
        vectors, labels = base
        pop = synthesize_population(vectors, labels, 300, seed=5)
        for i in (0, 100, 299):
            assert pop.labels[i] == labels[int(pop.base_rows[i])]

    def test_tenant_keys_and_count(self, base):
        vectors, labels = base
        pop = synthesize_population(vectors, labels, 1000, n_tenants=6,
                                    seed=6, tenant_prefix="clinic")
        assert pop.n_tenants == 6
        assert all(t.startswith("clinic-") for t in pop.tenants)
        assert len({len(t) for t in pop.tenants}) == 1  # fixed width

    def test_zero_jitter_copies_base_rows(self, base):
        vectors, labels = base
        pop = synthesize_population(vectors, labels, 200, jitter=0.0, seed=7)
        assert np.array_equal(pop.vectors, vectors[pop.base_rows])


class TestDeterminism:
    def test_same_seed_same_population(self, base):
        vectors, labels = base
        a = synthesize_population(vectors, labels, 400, seed=42)
        b = synthesize_population(vectors, labels, 400, seed=42)
        assert a.vectors.tobytes() == b.vectors.tobytes()
        assert a.labels == b.labels
        assert a.tenants == b.tenants
        assert np.array_equal(a.base_rows, b.base_rows)

    def test_different_seed_different_population(self, base):
        vectors, labels = base
        a = synthesize_population(vectors, labels, 400, seed=42)
        b = synthesize_population(vectors, labels, 400, seed=43)
        assert a.vectors.tobytes() != b.vectors.tobytes()


class TestValidation:
    def test_odd_dimension_rejected(self, rng):
        with pytest.raises(DatasetError):
            synthesize_population(rng.uniform(size=(4, 7)), ["a"] * 4, 10)

    def test_label_count_mismatch_rejected(self, rng):
        with pytest.raises(DatasetError):
            synthesize_population(rng.uniform(size=(4, 6)), ["a"] * 3, 10)

    def test_bad_jitter_rejected(self, base):
        vectors, labels = base
        with pytest.raises(DatasetError):
            synthesize_population(vectors, labels, 10, jitter=1.5)
        with pytest.raises(DatasetError):
            synthesize_population(vectors, labels, 10, jitter=-0.1)

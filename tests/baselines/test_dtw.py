"""DTW distance, LB_Keogh bound, and the raw-signal baseline classifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dtw import DTWClassifier, dtw_distance, keogh_envelope, lb_keogh
from repro.errors import NotFittedError, RetrievalError, ValidationError


class TestDTWDistance:
    def test_identical_sequences_zero(self, rng):
        a = rng.normal(size=(20, 3))
        assert dtw_distance(a, a) == pytest.approx(0.0)

    def test_symmetry(self, rng):
        a = rng.normal(size=(15, 2))
        b = rng.normal(size=(18, 2))
        assert dtw_distance(a, b, 0.3) == pytest.approx(dtw_distance(b, a, 0.3))

    def test_handles_time_shift_better_than_euclidean(self):
        t = np.linspace(0, 2 * np.pi, 60)
        a = np.sin(t)[:, None]
        b = np.sin(t + 0.4)[:, None]  # phase-shifted copy
        euclid = float(np.linalg.norm(a - b))
        warped = dtw_distance(a, b, band_fraction=0.2)
        assert warped < 0.5 * euclid

    def test_band_zero_is_diagonal_alignment(self, rng):
        a = rng.normal(size=(10, 2))
        b = rng.normal(size=(10, 2))
        d = dtw_distance(a, b, band_fraction=0.0)
        # With band 1 the result can use minimal warping; it is at most the
        # rigid alignment cost.
        rigid = float(np.linalg.norm(a - b))
        assert d <= rigid + 1e-9

    def test_wider_band_never_increases_distance(self, rng):
        a = rng.normal(size=(25, 2))
        b = rng.normal(size=(25, 2))
        narrow = dtw_distance(a, b, 0.05)
        wide = dtw_distance(a, b, 0.5)
        assert wide <= narrow + 1e-9

    def test_different_lengths(self, rng):
        a = rng.normal(size=(20, 2))
        b = rng.normal(size=(33, 2))
        assert np.isfinite(dtw_distance(a, b, 0.1))

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValidationError):
            dtw_distance(rng.normal(size=(5, 2)), rng.normal(size=(5, 3)))

    def test_triangle_like_sanity(self, rng):
        """DTW is not a metric, but distances stay non-negative and finite."""
        seqs = [rng.normal(size=(12, 2)) for _ in range(3)]
        for a in seqs:
            for b in seqs:
                d = dtw_distance(a, b, 0.2)
                assert d >= 0 and np.isfinite(d)


class TestKeoghEnvelope:
    def test_envelope_contains_sequence(self, rng):
        seq = rng.normal(size=(30, 3))
        lower, upper = keogh_envelope(seq, band=3)
        assert np.all(lower <= seq + 1e-12)
        assert np.all(seq <= upper + 1e-12)

    def test_band_one_spans_neighbors(self):
        seq = np.array([[0.0], [10.0], [0.0]])
        lower, upper = keogh_envelope(seq, band=1)
        np.testing.assert_array_equal(upper[:, 0], [10.0, 10.0, 10.0])
        np.testing.assert_array_equal(lower[:, 0], [0.0, 0.0, 0.0])

    def test_wide_band_gives_global_extremes(self, rng):
        seq = rng.normal(size=(10, 2))
        lower, upper = keogh_envelope(seq, band=100)
        np.testing.assert_allclose(lower, np.broadcast_to(seq.min(axis=0), seq.shape))
        np.testing.assert_allclose(upper, np.broadcast_to(seq.max(axis=0), seq.shape))


class TestLBKeogh:
    @given(seed=st.integers(0, 300))
    @settings(max_examples=60, deadline=None)
    def test_lower_bounds_dtw(self, seed):
        """The defining property: LB_Keogh(q, c) <= DTW(q, c)."""
        rng = np.random.default_rng(seed)
        n, d = 24, 2
        band_fraction = 0.15
        band = max(1, int(np.ceil(band_fraction * n)))
        q = rng.normal(size=(n, d))
        c = rng.normal(size=(n, d))
        lower, upper = keogh_envelope(c, band)
        bound = lb_keogh(q, lower, upper)
        true = dtw_distance(q, c, band_fraction)
        assert bound <= true + 1e-9

    def test_zero_when_inside_envelope(self, rng):
        c = rng.normal(size=(20, 2))
        lower, upper = keogh_envelope(c, band=2)
        inside = (lower + upper) / 2
        assert lb_keogh(inside, lower, upper) == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self, rng):
        c = rng.normal(size=(20, 2))
        lower, upper = keogh_envelope(c, band=2)
        with pytest.raises(ValidationError):
            lb_keogh(rng.normal(size=(19, 2)), lower, upper)


class TestDTWClassifier:
    def test_database_self_classification(self, toy_dataset):
        clf = DTWClassifier(resample_length=32).fit(toy_dataset)
        for record in list(toy_dataset)[:4]:
            key, label, dist = clf.kneighbors(record, k=1)[0]
            assert key == record.key
            assert dist == pytest.approx(0.0, abs=1e-9)

    def test_unseen_trial_classified(self, toy_dataset, make_record):
        clf = DTWClassifier(resample_length=32).fit(toy_dataset)
        query = make_record(label="beta", trial=42, seed=99, frequency=1.4)
        assert clf.classify(query) == "beta"

    def test_pruning_preserves_results(self, toy_dataset):
        pruned = DTWClassifier(resample_length=32, use_lower_bound=True)
        full = DTWClassifier(resample_length=32, use_lower_bound=False)
        pruned.fit(toy_dataset)
        full.fit(toy_dataset)
        for record in list(toy_dataset)[:4]:
            a = pruned.kneighbors(record, k=3)
            b = full.kneighbors(record, k=3)
            assert [x[0] for x in a] == [x[0] for x in b]
        # And pruning actually skipped work.
        pruned.kneighbors(toy_dataset[0], k=1)
        full.kneighbors(toy_dataset[0], k=1)
        assert pruned.last_dtw_calls <= full.last_dtw_calls

    def test_unfitted(self, toy_dataset):
        with pytest.raises(NotFittedError):
            DTWClassifier().classify(toy_dataset[0])

    def test_k_bounds(self, toy_dataset):
        clf = DTWClassifier(resample_length=16).fit(toy_dataset)
        with pytest.raises(RetrievalError):
            clf.kneighbors(toy_dataset[0], k=len(toy_dataset) + 1)

    def test_empty_database_rejected(self):
        from repro.data.dataset import MotionDataset

        with pytest.raises(ValidationError):
            DTWClassifier().fit(MotionDataset(name="empty"))

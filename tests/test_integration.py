"""End-to-end integration: full simulated lab → classifier → retrieval.

Uses the session-scoped small campaigns (1 participant, 2 trials per motion)
so the whole acquisition-to-classification path is exercised exactly once.
"""

import numpy as np
import pytest

from repro import (
    MotionClassifier,
    load_dataset,
    membership_matrix,
    run_experiment,
    save_dataset,
)
from repro.features.combine import WindowFeaturizer


class TestHandPipeline:
    def test_paper_dimensionality(self, small_hand_dataset):
        """Right hand: 4 EMG + 4 joints x 3 = 16-dimensional window space."""
        wf = WindowFeaturizer(window_ms=100.0)
        features = wf.features(small_hand_dataset[0])
        assert features.n_dims == 4 + 12

    def test_database_trials_self_classify(self, small_hand_dataset):
        model = MotionClassifier(n_clusters=8, window_ms=100.0)
        model.fit(small_hand_dataset, seed=0)
        for record in small_hand_dataset:
            top = model.kneighbors(record, k=1)[0]
            assert top.key == record.key

    def test_held_out_trials_mostly_classify(self, small_hand_dataset):
        train, test = small_hand_dataset.train_test_split(0.5, seed=1)
        result = run_experiment(train, test, window_ms=100.0, n_clusters=6, seed=0)
        # 1 trial per class in the database: still beats chance (7/8 wrong).
        assert result.misclassification_pct < 60.0

    def test_signature_reflects_eq9_membership(self, small_hand_dataset):
        model = MotionClassifier(n_clusters=5, window_ms=100.0)
        model.fit(small_hand_dataset, seed=0)
        record = small_hand_dataset[0]
        features = model.featurizer.features(record)
        scaled = model.scaler.transform(features.matrix)
        u = membership_matrix(scaled, model.centers, m=2.0)
        sig = model.signature(record)
        np.testing.assert_allclose(sig.window_memberships, u.max(axis=1))


class TestLegPipeline:
    def test_paper_dimensionality(self, small_leg_dataset):
        """Right leg: 2 EMG + 3 joints x 3 = 11-dimensional window space."""
        wf = WindowFeaturizer(window_ms=100.0)
        features = wf.features(small_leg_dataset[0])
        assert features.n_dims == 2 + 9

    def test_leg_classifier_runs(self, small_leg_dataset):
        model = MotionClassifier(n_clusters=6, window_ms=150.0)
        model.fit(small_leg_dataset, seed=0)
        record = small_leg_dataset[0]
        neighbors = model.kneighbors(record, k=3)
        assert neighbors[0].key == record.key


class TestPersistenceIntegration:
    def test_classify_after_reload(self, small_hand_dataset, tmp_path):
        """Training on a reloaded dataset gives identical signatures."""
        path = save_dataset(small_hand_dataset, tmp_path / "hand")
        reloaded = load_dataset(path)
        a = MotionClassifier(n_clusters=5).fit(small_hand_dataset, seed=3)
        b = MotionClassifier(n_clusters=5).fit(reloaded, seed=3)
        np.testing.assert_allclose(
            a.database_signatures, b.database_signatures, atol=1e-12
        )


class TestCrossWindowSizes:
    @pytest.mark.parametrize("window_ms", [50.0, 100.0, 200.0])
    def test_all_paper_window_sizes_run(self, small_hand_dataset, window_ms):
        model = MotionClassifier(n_clusters=4, window_ms=window_ms)
        model.fit(small_hand_dataset, seed=0)
        assert model.classify(small_hand_dataset[0]) in small_hand_dataset.labels

"""Plain-function test-data factories shared by fixtures and harnesses.

``tests/conftest.py`` wraps these in fixtures; modules that need data at
non-function scope (the determinism harness, the golden-fixture generator)
call them directly.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.data.dataset import MotionDataset
from repro.data.record import RecordedMotion
from repro.emg.recording import EMGRecording
from repro.mocap.trajectory import MotionCaptureData

__all__ = ["synthetic_record", "toy_motion_dataset"]


def synthetic_record(
    label: str = "raise_arm",
    n_frames: int = 120,
    n_segments: int = 4,
    n_channels: int = 4,
    fps: float = 120.0,
    participant: str = "p0",
    trial: int = 0,
    seed: int = 0,
    frequency: float = 1.0,
) -> RecordedMotion:
    """A synthetic :class:`RecordedMotion` built directly from arrays.

    Class identity (curve shapes/phases) comes from the label alone; the
    per-trial seed only adds noise, so same-label records are similar and
    different-label records are not.
    """
    class_gen = np.random.default_rng(zlib.crc32(label.encode()))
    gen = np.random.default_rng(seed * 7919 + 13)
    t = np.arange(n_frames) / fps
    segments = tuple(f"seg{j}" for j in range(n_segments))
    channels = tuple(f"ch{j}" for j in range(n_channels))
    mocap_cols = []
    for j in range(3 * n_segments):
        phase = class_gen.uniform(0, 2 * np.pi)
        amp = 100.0 * (1 + j % 3)
        mocap_cols.append(
            amp * np.sin(2 * np.pi * frequency * t + phase)
            + gen.normal(0, 1.0, n_frames)
        )
    emg_cols = []
    for j in range(n_channels):
        env = np.abs(
            np.sin(2 * np.pi * frequency * t + class_gen.uniform(0, np.pi))
        )
        emg_cols.append(5e-5 * env + np.abs(gen.normal(0, 2e-6, n_frames)))
    mocap = MotionCaptureData(
        segments=segments, matrix_mm=np.stack(mocap_cols, axis=1), fps=fps
    )
    emg = EMGRecording(
        channels=channels, data_volts=np.stack(emg_cols, axis=1), fs=fps
    )
    return RecordedMotion(
        label=label,
        participant_id=participant,
        trial_id=trial,
        mocap=mocap,
        emg=emg,
    )


def toy_motion_dataset() -> MotionDataset:
    """A fast 3-class, 12-record dataset built from :func:`synthetic_record`."""
    records = []
    for label, freq in [("alpha", 0.7), ("beta", 1.4), ("gamma", 2.4)]:
        for trial in range(4):
            records.append(
                synthetic_record(
                    label=label,
                    trial=trial,
                    seed=trial,
                    frequency=freq,
                    participant=f"p{trial % 2}",
                )
            )
    return MotionDataset(name="toy", records=records)

"""The repro-motions command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data.serialize import save_dataset


@pytest.fixture
def saved_toy(toy_dataset, tmp_path):
    save_dataset(toy_dataset, tmp_path / "toy")
    return str(tmp_path / "toy")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build", "-o", "/tmp/x"])
        assert args.study == "hand"
        assert args.participants == 2

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate", "ds"])
        assert args.clusters == 15
        assert args.window_ms == 100.0
        assert args.k == 5

    def test_sweep_grid_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "ds", "--clusters", "2", "4", "--windows-ms", "50"]
        )
        assert args.clusters == [2, 4]
        assert args.windows_ms == [50.0]


class TestCommands:
    def test_info(self, saved_toy, capsys):
        assert main(["info", saved_toy]) == 0
        out = capsys.readouterr().out
        assert "3 classes" in out
        assert "alpha" in out

    def test_info_without_dataset_reports_environment(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro-motions" in out
        assert "module" in out  # optional-extras table
        assert "observability:" in out

    def test_info_missing_dataset_is_graceful(self, tmp_path, capsys):
        code = main(["info", str(tmp_path / "ghost")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_evaluate(self, saved_toy, capsys):
        code = main([
            "evaluate", saved_toy, "--clusters", "3", "--window-ms", "100",
            "--k", "3", "--test-fraction", "0.25",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "misclassification" in out
        assert "kNN classified" in out

    def test_evaluate_with_kmeans_and_stride(self, saved_toy, capsys):
        code = main([
            "evaluate", saved_toy, "--clusters", "3", "--clusterer", "kmeans",
            "--stride-ms", "50", "--k", "2",
        ])
        assert code == 0

    def test_sweep(self, saved_toy, capsys):
        code = main([
            "sweep", saved_toy, "--windows-ms", "100", "--clusters", "2", "4",
            "--k", "2", "--stride-ms", "50",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Misclassification rate" in out
        assert "kNN classified percent" in out

    def test_build_and_info_roundtrip(self, tmp_path, capsys):
        stem = str(tmp_path / "built")
        code = main([
            "build", "--study", "leg", "--participants", "1", "--trials", "1",
            "--seed", "5", "-o", stem,
        ])
        assert code == 0
        assert main(["info", stem]) == 0
        out = capsys.readouterr().out
        assert "right_leg" in out


def test_sweep_csv_export(tmp_path, toy_dataset):
    from repro.data.serialize import save_dataset

    save_dataset(toy_dataset, tmp_path / "toy")
    prefix = str(tmp_path / "out")
    code = main([
        "sweep", str(tmp_path / "toy"), "--windows-ms", "100",
        "--clusters", "2", "4", "--k", "2", "--stride-ms", "50",
        "--csv", prefix,
    ])
    assert code == 0
    mis = (tmp_path / "out_misclassification.csv").read_text()
    knn = (tmp_path / "out_knn.csv").read_text()
    assert mis.startswith("window_ms,clusters,misclassification")
    assert knn.startswith("window_ms,clusters,knn")
    assert len(mis.strip().splitlines()) == 3  # header + 2 grid points


class TestParallelFlags:
    """The --n-jobs / --backend / --cache-dir knobs (repro.parallel)."""

    @pytest.mark.parametrize("command, tail", [
        ("build", ["-o", "/tmp/x"]),
        ("evaluate", ["ds"]),
        ("sweep", ["ds"]),
        ("profile", []),
    ])
    def test_defaults_on_every_subcommand(self, command, tail):
        args = build_parser().parse_args([command, *tail])
        assert args.n_jobs == 1
        assert args.backend == "auto"
        assert args.cache_dir is None

    def test_help_documents_the_knobs(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--help"])
        out = capsys.readouterr().out
        assert "--n-jobs" in out
        assert "--backend" in out
        assert "--cache-dir" in out
        assert "byte-identical" in out

    def test_backend_choices_are_validated(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "ds", "--backend", "mpi"])
        assert "invalid choice" in capsys.readouterr().err

    def test_evaluate_with_parallel_and_cache(self, saved_toy, tmp_path,
                                              capsys):
        cache_dir = tmp_path / "feature_cache"
        argv = [
            "evaluate", saved_toy, "--clusters", "3", "--k", "2",
            "--n-jobs", "2", "--backend", "thread",
            "--cache-dir", str(cache_dir),
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert "misclassification" in serial_out
        assert cache_dir.is_dir()  # entries were stored

        # Warm re-run through the cache: identical report.
        assert main(argv) == 0
        assert capsys.readouterr().out == serial_out

    def test_build_warms_the_cache(self, tmp_path, capsys):
        stem = str(tmp_path / "built")
        cache_dir = tmp_path / "warm"
        code = main([
            "build", "--study", "leg", "--participants", "1", "--trials", "1",
            "--seed", "5", "-o", stem, "--cache-dir", str(cache_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache" in out.lower()
        assert any(cache_dir.rglob("*.npz"))


class TestRobustFlag:
    @pytest.mark.parametrize("command, tail", [
        (["build", "--output", "m"], []),
        (["evaluate", "d"], []),
        (["profile"], []),
    ])
    def test_default_is_off(self, command, tail):
        args = build_parser().parse_args(command + tail)
        assert args.robust_policy == "off"

    def test_accepts_every_policy(self):
        parser = build_parser()
        for policy in ("off", "strict", "mask", "repair"):
            args = parser.parse_args(["evaluate", "d",
                                      "--robust-policy", policy])
            assert args.robust_policy == policy

    def test_rejects_unknown_policy(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "d",
                                       "--robust-policy", "lenient"])

    def test_evaluate_with_robust_policy(self, saved_toy, capsys):
        code = main([
            "evaluate", saved_toy, "--clusters", "3", "--window-ms", "100",
            "--robust-policy", "mask",
        ])
        assert code == 0
        assert "misclassification" in capsys.readouterr().out

    def test_build_with_robust_policy_warms_cache(self, tmp_path, capsys):
        code = main([
            "build", "--trials", "2", "--output", str(tmp_path / "model"),
            "--robust-policy", "repair",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        assert list((tmp_path / "cache").rglob("*.npz"))

    def test_help_documents_the_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--help"])
        assert "--robust-policy" in capsys.readouterr().out


class TestSelftest:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["selftest"])
        assert args.tests == "tests"
        assert args.skip_tests is False

    def test_skip_tests_runs_lint_only(self, capsys):
        code = main(["selftest", "--skip-tests"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lint OK" in out
        assert "tier-1" not in out

    def test_missing_tests_dir_exits_2(self, tmp_path, capsys):
        code = main(["selftest", "--tests", str(tmp_path / "nope")])
        assert code == 2

    def test_runs_tier1_tests_in_given_dir(self, tmp_path, capsys):
        tests_dir = tmp_path / "minitests"
        tests_dir.mkdir()
        (tests_dir / "test_trivial.py").write_text(
            "import pytest\n\n"
            "@pytest.mark.tier1\n"
            "def test_passes():\n"
            "    assert True\n"
        )
        code = main(["selftest", "--tests", str(tests_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "lint OK" in out
        assert "tier-1 OK" in out

    def test_failing_tests_exit_1(self, tmp_path, capsys):
        tests_dir = tmp_path / "minitests"
        tests_dir.mkdir()
        (tests_dir / "test_trivial.py").write_text(
            "import pytest\n\n"
            "@pytest.mark.tier1\n"
            "def test_fails():\n"
            "    assert False\n"
        )
        code = main(["selftest", "--tests", str(tests_dir)])
        assert code == 1
        assert "tier-1 FAILED" in capsys.readouterr().out


class TestHealthCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["health"])
        assert args.study == "hand"
        assert args.clusters == 8
        assert args.drift_fault == "none"
        assert args.detector_window == 32
        assert args.detector_min_samples == 4
        assert args.watch is None
        assert args.robust_policy == "off"

    def test_rejects_unknown_fault(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["health", "--drift-fault", "meteor"])

    def test_clean_check_exits_0(self, tmp_path, capsys):
        om_path = tmp_path / "health.om"
        code = main([
            "health", "--clusters", "4", "--seed", "0",
            "--openmetrics-out", str(om_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "healthy" in out
        assert "drift detectors" in out
        assert "slo rules" in out
        # The exposition is valid OpenMetrics and carries the health gauges.
        from repro.obs.openmetrics import parse_openmetrics
        families = parse_openmetrics(om_path.read_text())
        assert "repro_health_drift_firing" in families
        assert families["repro_health_drift_firing"]["samples"][
            "repro_health_drift_firing"] == 0.0

    def test_drifted_check_exits_1_and_writes_alerts(self, tmp_path, capsys):
        alerts_path = tmp_path / "alerts.jsonl"
        code = main([
            "health", "--clusters", "4", "--seed", "0",
            "--drift-fault", "emg-dropout",
            "--alerts-out", str(alerts_path),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "UNHEALTHY" in out
        assert "appended" in out
        import json as _json
        lines = alerts_path.read_text().splitlines()
        assert lines
        assert any(_json.loads(line)["severity"] == "critical"
                   for line in lines)

    def test_custom_rules_file(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        # An impossible SLO so the run breaches deterministically.
        rules.write_text("model.queries < 1 severity=critical name=impossible\n")
        code = main([
            "health", "--clusters", "4", "--rules", str(rules),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "impossible" in out

    def test_watch_with_ticks_runs_bounded(self, capsys):
        code = main([
            "health", "--clusters", "4", "--watch", "0", "--ticks", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("healthy") >= 2
        assert "watch: next check" in out


class TestStoreCommand:
    """The ``store`` subcommand group (ingest/compact/stats/query)."""

    def _ingest(self, store_dir, signatures=400, **extra):
        argv = [
            "store", "ingest", "--store", str(store_dir),
            "--base", "random", "--signatures", str(signatures),
            "--tenants", "5", "--clusters", "6", "--batch-size", "150",
            "--seed", "0",
        ]
        for flag, value in extra.items():
            argv += [f"--{flag}", str(value)]
        return main(argv)

    def test_parser_requires_store_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["store", "query", "--store", "s"]
        )
        assert args.store_command == "query"
        assert args.k == 5
        assert args.shards == 4
        assert args.mode == "tenant"
        assert args.backend == "linear"
        assert args.tenant is None

    def test_ingest_then_stats(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert self._ingest(store_dir) == 0
        out = capsys.readouterr().out
        assert "ingested 400 signatures" in out
        assert "3 new segment(s)" in out  # 400 records / 150 per batch

        assert main(["store", "stats", "--store", str(store_dir),
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "records" in out
        assert "400" in out
        assert "passed their CRC checks" in out

    def test_reingest_same_seed_appends_new_ids(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        self._ingest(store_dir, signatures=200)
        self._ingest(store_dir, signatures=200)
        capsys.readouterr()
        assert main(["store", "stats", "--store", str(store_dir)]) == 0
        assert "400" in capsys.readouterr().out

    def test_compact(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        self._ingest(store_dir)
        capsys.readouterr()
        assert main(["store", "compact", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "compacted 3 segment(s) -> 1" in out
        assert main(["store", "stats", "--store", str(store_dir),
                     "--verify"]) == 0

    def test_query_passes_oracle_check(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        self._ingest(store_dir)
        capsys.readouterr()
        code = main([
            "store", "query", "--store", str(store_dir),
            "--queries", "16", "--k", "3", "--shards", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "oracle check OK" in out

    def test_query_idistance_backend_and_tenant_filter(self, tmp_path,
                                                       capsys):
        store_dir = tmp_path / "store"
        self._ingest(store_dir)
        capsys.readouterr()
        code = main([
            "store", "query", "--store", str(store_dir),
            "--queries", "8", "--k", "2", "--backend", "idistance",
            "--tenant", "tenant-00000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 shard(s)" in out
        assert "oracle check OK" in out

    def test_query_empty_store_exits_2(self, tmp_path, capsys):
        code = main(["store", "query", "--store", str(tmp_path / "none")])
        assert code == 2
        assert "empty" in capsys.readouterr().err

    def test_stats_detects_corruption(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        self._ingest(store_dir, signatures=150)
        seg = next(store_dir.glob("seg-*.sig"))
        raw = bytearray(seg.read_bytes())
        raw[-5] ^= 0xFF
        seg.write_bytes(bytes(raw))
        capsys.readouterr()
        code = main(["store", "stats", "--store", str(store_dir),
                     "--verify"])
        assert code == 1
        assert "verify:" in capsys.readouterr().err

"""Determinism harness: every backend and cache state is byte-identical.

The contract under test (the whole point of ``repro.parallel``): the fitted
signatures, the per-motion window memberships, the classifications and the
``repro.obs`` metric exports of a pipeline run must not change when the work
is fanned out over threads or processes, or served from a warm cache.

Comparison rules
----------------
* Arrays are compared as raw bytes (``tobytes()``), not with tolerances —
  parallelism must not change a single bit.
* Metric exports are compared over counters, gauges and series.  Spans and
  histograms carry wall-clock timings and per-thread ordering, so they are
  execution *descriptions*, not results, and are excluded.
* Cold- vs warm-cache runs compare outputs only: the ``parallel.cache.*``
  counters intentionally differ (that difference is asserted separately).
"""

from __future__ import annotations

import pytest

from repro.core.model import MotionClassifier
from repro.obs.clock import ManualClock
from repro.obs.config import capture
from tests.factories import toy_motion_dataset

N_CLUSTERS = 4


def run_pipeline(dataset, **model_kwargs):
    """Fit + query the full pipeline under a fresh capture session.

    Returns a dict of byte-level outputs plus the comparable slice of the
    metric export.
    """
    with capture(clock=ManualClock()) as state:
        model = MotionClassifier(n_clusters=N_CLUSTERS, window_ms=100.0,
                                 **model_kwargs)
        model.fit(dataset, seed=0)
        signatures = model.database_signatures.tobytes()
        queries = []
        for record in dataset:
            sig = model.signature(record)
            queries.append(
                (
                    sig.vector.tobytes(),
                    sig.window_memberships.tobytes(),
                    sig.window_clusters.tobytes(),
                )
            )
        predictions = [model.classify(record) for record in dataset]
        metrics = state.registry.to_dict()
    return {
        "signatures": signatures,
        "queries": queries,
        "predictions": predictions,
        "metrics": {k: metrics[k] for k in ("counters", "gauges", "series")},
        "cache_stats": (
            model.feature_cache.stats.as_dict()
            if model.feature_cache is not None else None
        ),
    }


@pytest.fixture(scope="module")
def toy_dataset_module():
    # Module-scoped dataset so the serial baseline is fitted once for the
    # whole harness.
    return toy_motion_dataset()


@pytest.fixture(scope="module")
def serial_baseline(toy_dataset_module):
    return run_pipeline(toy_dataset_module)


class TestParallelBackends:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_n_jobs_4_matches_serial(self, toy_dataset_module, serial_baseline,
                                     backend):
        parallel = run_pipeline(toy_dataset_module, n_jobs=4, backend=backend)
        assert parallel["signatures"] == serial_baseline["signatures"]
        assert parallel["queries"] == serial_baseline["queries"]
        assert parallel["predictions"] == serial_baseline["predictions"]
        assert parallel["metrics"] == serial_baseline["metrics"]

    def test_auto_backend_matches_serial(self, toy_dataset_module,
                                         serial_baseline):
        parallel = run_pipeline(toy_dataset_module, n_jobs=2, backend="auto")
        assert parallel["signatures"] == serial_baseline["signatures"]
        assert parallel["queries"] == serial_baseline["queries"]
        assert parallel["metrics"] == serial_baseline["metrics"]


class TestCacheStates:
    def test_cold_and_warm_cache_match_serial(self, toy_dataset_module,
                                              serial_baseline, tmp_path):
        cache_dir = tmp_path / "features"

        cold = run_pipeline(toy_dataset_module, cache_dir=cache_dir)
        assert cold["signatures"] == serial_baseline["signatures"]
        assert cold["queries"] == serial_baseline["queries"]
        assert cold["predictions"] == serial_baseline["predictions"]
        # Every record missed once at fit time, then hit on both query-side
        # passes (signature + classify).
        n = len(toy_dataset_module)
        assert cold["cache_stats"]["misses"] == n
        assert cold["cache_stats"]["stores"] == n
        assert cold["cache_stats"]["hits"] == 2 * n

        warm = run_pipeline(toy_dataset_module, cache_dir=cache_dir)
        assert warm["signatures"] == serial_baseline["signatures"]
        assert warm["queries"] == serial_baseline["queries"]
        assert warm["predictions"] == serial_baseline["predictions"]
        assert warm["cache_stats"]["misses"] == 0
        assert warm["cache_stats"]["stores"] == 0
        assert warm["cache_stats"]["hits"] == 3 * n  # fit + signature + classify

    def test_warm_cache_with_process_pool_matches_serial(
            self, toy_dataset_module, serial_baseline, tmp_path):
        cache_dir = tmp_path / "features"
        run_pipeline(toy_dataset_module, cache_dir=cache_dir)  # warm it up
        mixed = run_pipeline(toy_dataset_module, n_jobs=4, backend="process",
                             cache_dir=cache_dir)
        assert mixed["signatures"] == serial_baseline["signatures"]
        assert mixed["queries"] == serial_baseline["queries"]
        assert mixed["cache_stats"]["misses"] == 0

"""Worker-pool executor: order stability, backend resolution, error paths."""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ValidationError
from repro.parallel.executor import (
    BACKENDS,
    effective_n_jobs,
    payload_picklable,
    pool_map,
    resolve_backend,
)


def _square(x):
    return x * x


def _sleepy_negate(x):
    # Later items sleep less, so a pool finishes them first; pool_map must
    # still return results in input order.
    time.sleep(0.03 / (1 + x))
    return -x


def _explode_on_three(x):
    if x == 3:
        raise ValueError("boom at 3")
    return x


class TestEffectiveNJobs:
    def test_positive_passthrough(self):
        assert effective_n_jobs(1) == 1
        assert effective_n_jobs(7) == 7

    def test_minus_one_is_cpu_count(self):
        assert effective_n_jobs(-1) == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [0, -2, -17])
    def test_rejects_other_non_positive(self, bad):
        with pytest.raises(ValidationError):
            effective_n_jobs(bad)


class TestResolveBackend:
    def test_explicit_backends_pass_through(self):
        for backend in ("serial", "thread", "process"):
            assert resolve_backend(backend, 4) == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="unknown parallel backend"):
            resolve_backend("greenlet", 4)

    def test_auto_one_job_is_serial(self):
        assert resolve_backend("auto", 1, _square, 1) == "serial"

    def test_auto_picklable_payload_is_process(self):
        assert payload_picklable(_square, [1, 2, 3])
        assert resolve_backend("auto", 4, _square, 1) == "process"

    def test_auto_unpicklable_payload_falls_back_to_thread(self):
        unpicklable = lambda x: x  # noqa: E731 - lambdas do not pickle
        assert not payload_picklable(unpicklable)
        assert resolve_backend("auto", 4, unpicklable, 1) == "thread"

    def test_backends_tuple_is_the_contract(self):
        assert BACKENDS == ("auto", "serial", "thread", "process")


class TestPoolMap:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_matches_list_comprehension(self, backend):
        items = list(range(10))
        assert pool_map(_square, items, n_jobs=4, backend=backend) == [
            _square(i) for i in items
        ]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_order_stable_under_out_of_order_completion(self, backend):
        items = list(range(8))
        result = pool_map(_sleepy_negate, items, n_jobs=4, backend=backend)
        assert result == [-i for i in items]

    def test_empty_items(self):
        assert pool_map(_square, [], n_jobs=4, backend="auto") == []

    def test_single_item_runs_inline(self):
        assert pool_map(_square, [5], n_jobs=4, backend="thread") == [25]

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_worker_exception_propagates(self, backend):
        with pytest.raises(ValueError, match="boom at 3"):
            pool_map(_explode_on_three, list(range(6)), n_jobs=2, backend=backend)

    def test_unpicklable_fn_works_on_auto(self):
        # auto detects the unpicklable closure and picks the thread pool.
        offset = 10
        result = pool_map(lambda x: x + offset, list(range(4)), n_jobs=2,
                          backend="auto")
        assert result == [10, 11, 12, 13]

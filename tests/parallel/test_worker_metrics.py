"""Regression: worker-side metric state survives the process backend.

Process-pool workers run with fresh observability state; the parent must
fold each worker's ``MetricsRegistry`` snapshot (including the P² quantile
digest state) back into its own registry, in input order.  The contract
asserted here: a histogram fed one deterministic observation per record
exports the *same* summary — count, totals and the p50/p95/p99 estimates —
whether the featurization ran serially or fanned out over processes.

The instrumented featurizer emits exactly one observation per record, so
each worker ships a raw sorted-buffer digest (<5 counts) that replays
exactly during the merge; with the merge in input order the parent's P²
state is bit-identical to the serial run's.
"""

from __future__ import annotations

import numpy as np

from repro.features.combine import WindowFeaturizer
from repro.obs.clock import ManualClock
from repro.obs.config import capture, record_counter, record_histogram
from repro.parallel.runner import featurize_records
from tests.factories import toy_motion_dataset

HISTOGRAM_NAME = "test.worker.feature_mass"
COUNTER_NAME = "test.worker.records"


class InstrumentedFeaturizer:
    """Picklable featurizer emitting one deterministic observation per record.

    Module-level so the process backend can pickle it; the observed value is
    a pure function of the record, so serial and process runs see the same
    observation sequence.
    """

    def __init__(self) -> None:
        self._inner = WindowFeaturizer(window_ms=100.0)

    def features(self, record):
        feats = self._inner.features(record)
        record_counter(COUNTER_NAME)
        record_histogram(HISTOGRAM_NAME, float(np.abs(feats.matrix).sum()))
        return feats

    def cache_fingerprint(self) -> str:
        return "instrumented/" + self._inner.cache_fingerprint()


def run_featurize(records, backend: str, n_jobs: int):
    """Featurize under a fresh capture session; return (features, export)."""
    with capture(clock=ManualClock()) as state:
        features = featurize_records(
            InstrumentedFeaturizer(), records, n_jobs=n_jobs, backend=backend
        )
        exported = state.registry.to_dict()
    return features, exported


class TestProcessBackendMetricsMerge:
    def test_histogram_summary_matches_serial(self):
        records = list(toy_motion_dataset())
        serial_feats, serial = run_featurize(records, "serial", 1)
        process_feats, process = run_featurize(records, "process", 4)

        # The outputs themselves must be byte-identical (sanity: the same
        # work actually ran on both paths).
        assert len(process_feats) == len(serial_feats)
        for a, b in zip(serial_feats, process_feats):
            assert a.matrix.tobytes() == b.matrix.tobytes()

        # Counters recorded inside workers merge into the parent.
        assert serial["counters"][COUNTER_NAME] == len(records)
        assert process["counters"][COUNTER_NAME] == len(records)

        # The full histogram export — count, total, min/max/mean, every
        # quantile estimate AND the mergeable P² state — matches the serial
        # run exactly: the merge replays the same observation sequence.
        assert process["histograms"][HISTOGRAM_NAME] == \
            serial["histograms"][HISTOGRAM_NAME]

    def test_histogram_count_and_p95_explicit(self):
        # The headline contract, spelled out: fan-out must not lose
        # observations or distort the tail estimate.
        records = list(toy_motion_dataset())
        _, serial = run_featurize(records, "serial", 1)
        _, process = run_featurize(records, "process", 4)

        summary = process["histograms"][HISTOGRAM_NAME]
        assert summary["count"] == len(records)
        assert summary["p95"] == serial["histograms"][HISTOGRAM_NAME]["p95"]

    def test_thread_backend_loses_nothing(self):
        # Threads share the parent registry directly; observation *order*
        # across threads is scheduler-dependent, so only order-independent
        # fields are compared.
        records = list(toy_motion_dataset())
        _, serial = run_featurize(records, "serial", 1)
        _, threaded = run_featurize(records, "thread", 4)

        assert threaded["counters"][COUNTER_NAME] == len(records)
        got = threaded["histograms"][HISTOGRAM_NAME]
        want = serial["histograms"][HISTOGRAM_NAME]
        assert got["count"] == want["count"]
        assert got["min"] == want["min"]
        assert got["max"] == want["max"]
        np.testing.assert_allclose(got["total"], want["total"])

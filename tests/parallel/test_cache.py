"""Feature cache: content addressing, dtype/layout keys, corruption recovery."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.errors import CacheError
from repro.features.combine import WindowFeaturizer
from repro.parallel.cache import (
    FEATURE_CACHE_VERSION,
    FeatureCache,
    hash_stream,
    record_cache_key,
)
from repro.parallel.runner import featurize_records


def _digest_of(array: np.ndarray) -> str:
    hasher = hashlib.sha256()
    hash_stream(hasher, array)
    return hasher.hexdigest()


class TestHashStream:
    def test_equal_arrays_hash_equal(self):
        a = np.arange(12.0).reshape(3, 4)
        assert _digest_of(a) == _digest_of(a.copy())

    def test_dtype_is_part_of_the_key(self):
        # float32 data must never hit a float64 entry even when the values
        # are exactly representable in both dtypes.
        values = np.asarray([[1.0, 2.0], [3.0, 4.0]])
        assert _digest_of(values.astype(np.float64)) != _digest_of(
            values.astype(np.float32)
        )

    def test_memory_layout_is_normalized(self):
        # A Fortran-ordered copy holds different bytes in memory but is the
        # same logical array, so it maps to the same entry.
        c_order = np.arange(12.0).reshape(3, 4)
        f_order = np.asfortranarray(c_order)
        assert not f_order.flags["C_CONTIGUOUS"]
        assert _digest_of(c_order) == _digest_of(f_order)

    def test_shape_is_part_of_the_key(self):
        flat = np.arange(12.0)
        assert _digest_of(flat.reshape(3, 4)) != _digest_of(flat.reshape(4, 3))


class TestRecordCacheKey:
    def test_deterministic_and_fingerprint_sensitive(self, make_record):
        record = make_record(seed=3)
        fp_a = WindowFeaturizer(window_ms=100.0).cache_fingerprint()
        fp_b = WindowFeaturizer(window_ms=50.0).cache_fingerprint()
        assert record_cache_key(record, fp_a) == record_cache_key(record, fp_a)
        assert record_cache_key(record, fp_a) != record_cache_key(record, fp_b)

    def test_different_streams_different_keys(self, make_record):
        fp = WindowFeaturizer().cache_fingerprint()
        assert record_cache_key(make_record(seed=0), fp) != record_cache_key(
            make_record(seed=1), fp
        )

    def test_version_constant_pins_the_format(self):
        # Bumping this constant must invalidate every existing entry; the
        # pin makes version changes an explicit, reviewed event.
        assert FEATURE_CACHE_VERSION == 1


class TestFeatureCache:
    def test_store_then_load_round_trips(self, tmp_path, make_record):
        cache = FeatureCache(tmp_path / "cache")
        featurizer = WindowFeaturizer(window_ms=100.0)
        record = make_record()
        features = featurizer.features(record)
        key = record_cache_key(record, featurizer.cache_fingerprint())

        assert cache.load(key) is None  # cold
        cache.store(key, features)
        loaded = cache.load(key)

        assert loaded is not None
        assert loaded.matrix.tobytes() == features.matrix.tobytes()
        assert loaded.bounds == features.bounds
        assert loaded.names == features.names
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "stores": 1, "evictions": 0,
            "hit_rate": 0.5,
        }

    def test_float32_entry_round_trips_in_its_dtype(self, tmp_path,
                                                    make_record):
        """The float32 fast path must survive the cache: stored float32
        matrices load back as float32, byte-identical, under a key that can
        never collide with float64 (the fingerprint includes the dtype)."""
        cache = FeatureCache(tmp_path / "cache")
        f32 = WindowFeaturizer(window_ms=100.0, dtype="float32")
        f64 = WindowFeaturizer(window_ms=100.0)
        record = make_record()
        features = f32.features(record)
        assert features.matrix.dtype == np.float32
        key32 = record_cache_key(record, f32.cache_fingerprint())
        assert key32 != record_cache_key(record, f64.cache_fingerprint())

        cache.store(key32, features)
        loaded = cache.load(key32)
        assert loaded is not None
        assert loaded.matrix.dtype == np.float32
        assert loaded.matrix.tobytes() == features.matrix.tobytes()

    def test_two_level_fanout(self, tmp_path):
        cache = FeatureCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache.path_for(key)
        assert path.parent == tmp_path / "ab"
        assert path.name == f"{key}.npz"

    def test_existing_file_as_cache_dir_raises(self, tmp_path):
        bogus = tmp_path / "not_a_dir"
        bogus.write_text("occupied")
        with pytest.raises(CacheError, match="not a directory"):
            FeatureCache(bogus)

    def test_corrupted_entry_is_evicted_and_recomputed(self, tmp_path, make_record):
        cache = FeatureCache(tmp_path / "cache")
        featurizer = WindowFeaturizer(window_ms=100.0)
        record = make_record()
        expected = featurizer.features(record)
        key = record_cache_key(record, featurizer.cache_fingerprint())
        cache.store(key, expected)

        # Truncated/garbage entry, as after a crashed writer or disk fault.
        cache.path_for(key).write_bytes(b"this is not an npz file")

        result = featurize_records(featurizer, [record], cache=cache)
        assert result[0].matrix.tobytes() == expected.matrix.tobytes()
        assert cache.stats.evictions == 1
        # The bad entry was replaced by a fresh store; the next load hits.
        assert cache.load(key) is not None

    def test_entry_missing_arrays_is_a_miss(self, tmp_path, make_record):
        cache = FeatureCache(tmp_path / "cache")
        featurizer = WindowFeaturizer(window_ms=100.0)
        record = make_record()
        key = record_cache_key(record, featurizer.cache_fingerprint())
        # A well-formed npz that lacks the expected arrays (foreign file).
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(path, unrelated=np.zeros(3))
        assert cache.load(key) is None
        assert cache.stats.evictions == 1

    def test_evict_missing_entry_is_a_noop(self, tmp_path):
        cache = FeatureCache(tmp_path)
        assert cache.evict("0" * 64) is False
        assert cache.stats.evictions == 0


class TestFeaturizeRecordsCaching:
    def test_cold_then_warm_byte_identical(self, tmp_path, make_record):
        featurizer = WindowFeaturizer(window_ms=100.0)
        records = [make_record(seed=i, trial=i) for i in range(4)]
        reference = [featurizer.features(r) for r in records]

        cache = FeatureCache(tmp_path / "cache")
        cold = featurize_records(featurizer, records, cache=cache)
        assert cache.stats.misses == 4 and cache.stats.stores == 4

        warm = featurize_records(featurizer, records, cache=cache)
        assert cache.stats.hits == 4

        for ref, c, w in zip(reference, cold, warm):
            assert c.matrix.tobytes() == ref.matrix.tobytes()
            assert w.matrix.tobytes() == ref.matrix.tobytes()
            assert c.bounds == ref.bounds == w.bounds

"""The 2c motion signature (paper Eqs. 5–8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FeatureError
from repro.core.signature import MotionSignature, motion_signature


def normalize(u):
    return u / u.sum(axis=1, keepdims=True)


class TestMotionSignature:
    def test_hand_example(self):
        """Three windows, two clusters, worked by hand."""
        u = np.array([
            [0.9, 0.1],   # highest 0.9 -> cluster 0
            [0.6, 0.4],   # highest 0.6 -> cluster 0
            [0.2, 0.8],   # highest 0.8 -> cluster 1
        ])
        sig = motion_signature(u)
        np.testing.assert_allclose(sig.minima, [0.6, 0.8])
        np.testing.assert_allclose(sig.maxima, [0.9, 0.8])
        np.testing.assert_array_equal(sig.window_clusters, [0, 0, 1])
        np.testing.assert_allclose(sig.window_memberships, [0.9, 0.6, 0.8])

    def test_unused_cluster_contributes_zero(self):
        """Clusters winning no window sit at (0, 0), as in Figure 4."""
        u = np.array([[0.7, 0.2, 0.1]])
        sig = motion_signature(u)
        np.testing.assert_allclose(sig.minima, [0.7, 0.0, 0.0])
        np.testing.assert_allclose(sig.maxima, [0.7, 0.0, 0.0])
        assert sig.occupied_clusters() == (0,)

    def test_vector_layout_interleaved_min_max(self):
        u = np.array([[0.9, 0.1], [0.2, 0.8]])
        sig = motion_signature(u)
        np.testing.assert_allclose(sig.vector, [0.9, 0.9, 0.8, 0.8])
        assert len(sig.vector) == 2 * sig.n_clusters

    def test_single_window_min_equals_max(self):
        u = normalize(np.array([[0.5, 0.3, 0.2]]))
        sig = motion_signature(u)
        np.testing.assert_allclose(sig.minima[0], sig.maxima[0])

    def test_expected_cluster_count_checked(self):
        u = np.array([[0.6, 0.4]])
        with pytest.raises(FeatureError, match="clusters"):
            motion_signature(u, n_clusters=5)

    def test_rejects_out_of_range_memberships(self):
        with pytest.raises(FeatureError):
            motion_signature(np.array([[1.4, -0.4]]))

    def test_rejects_empty(self):
        with pytest.raises(Exception):
            motion_signature(np.zeros((0, 3)))

    def test_min_cannot_exceed_max_in_constructor(self):
        with pytest.raises(FeatureError):
            MotionSignature(
                minima=np.array([0.9]),
                maxima=np.array([0.5]),
                window_clusters=np.array([0]),
                window_memberships=np.array([0.9]),
            )

    @given(
        n_windows=st.integers(1, 40),
        c=st.integers(2, 10),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=100)
    def test_invariants_on_random_memberships(self, n_windows, c, seed):
        rng = np.random.default_rng(seed)
        u = normalize(rng.uniform(0.01, 1.0, size=(n_windows, c)))
        sig = motion_signature(u)
        assert sig.n_clusters == c
        assert np.all(sig.minima <= sig.maxima)
        assert np.all((sig.minima >= 0) & (sig.maxima <= 1))
        # Eq. 5: highest membership per window >= 1/c.
        assert np.all(sig.window_memberships >= 1.0 / c - 1e-12)
        # Occupied clusters carry positive maxima, unused carry zeros.
        occupied = set(sig.window_clusters.tolist())
        for cluster in range(c):
            if cluster in occupied:
                assert sig.maxima[cluster] > 0
            else:
                assert sig.maxima[cluster] == sig.minima[cluster] == 0

    def test_signature_separates_motions_by_cluster_usage(self):
        """Motions occupying different clusters get distant signatures —
        the mechanism Figure 4 illustrates."""
        a = motion_signature(np.array([[0.9, 0.05, 0.05]] * 4))
        b = motion_signature(np.array([[0.05, 0.9, 0.05]] * 4))
        assert np.linalg.norm(a.vector - b.vector) > 1.0

"""The end-to-end MotionClassifier (paper Sections 3–4)."""

import numpy as np
import pytest

from repro.core.model import MotionClassifier
from repro.errors import ClusteringError, NotFittedError
from repro.retrieval.idistance import IDistanceIndex


@pytest.fixture
def fitted(toy_dataset):
    model = MotionClassifier(n_clusters=4, window_ms=100.0)
    model.fit(toy_dataset, seed=0)
    return model


class TestFit:
    def test_signature_matrix_shape(self, fitted, toy_dataset):
        sigs = fitted.database_signatures
        assert sigs.shape == (len(toy_dataset), 2 * 4)
        assert fitted.database_labels == [r.label for r in toy_dataset]

    def test_unfitted_access_raises(self, toy_dataset):
        model = MotionClassifier(n_clusters=4)
        with pytest.raises(NotFittedError):
            model.centers
        with pytest.raises(NotFittedError):
            model.classify(toy_dataset[0])
        with pytest.raises(NotFittedError):
            model.signature(toy_dataset[0])

    def test_empty_database_rejected(self):
        from repro.data.dataset import MotionDataset

        with pytest.raises(ClusteringError):
            MotionClassifier(n_clusters=2).fit(MotionDataset(name="empty"))

    def test_too_many_clusters_rejected(self, make_record):
        from repro.data.dataset import MotionDataset

        tiny = MotionDataset(name="tiny", records=[make_record(n_frames=24)])
        with pytest.raises(ClusteringError, match="windows"):
            MotionClassifier(n_clusters=50, window_ms=100.0).fit(tiny)

    def test_deterministic_given_seed(self, toy_dataset):
        a = MotionClassifier(n_clusters=4).fit(toy_dataset, seed=2)
        b = MotionClassifier(n_clusters=4).fit(toy_dataset, seed=2)
        np.testing.assert_array_equal(a.database_signatures, b.database_signatures)


class TestQueries:
    def test_training_record_classified_correctly(self, fitted, toy_dataset):
        """A database motion retrieves itself (distance 0) and its class."""
        for record in list(toy_dataset)[:3]:
            assert fitted.classify(record) == record.label
            top = fitted.kneighbors(record, k=1)[0]
            assert top.key == record.key
            assert top.distance == pytest.approx(0.0, abs=1e-9)

    def test_unseen_trial_classified(self, fitted, make_record):
        query = make_record(label="beta", trial=99, seed=77, frequency=1.4)
        assert fitted.classify(query) == "beta"

    def test_kneighbors_sorted_by_distance(self, fitted, toy_dataset):
        neighbors = fitted.kneighbors(toy_dataset[0], k=5)
        distances = [n.distance for n in neighbors]
        assert distances == sorted(distances)

    def test_knn_class_fraction_range(self, fitted, toy_dataset):
        frac = fitted.knn_class_fraction(toy_dataset[0], k=4)
        assert 0.0 <= frac <= 1.0

    def test_signature_matches_database_row_for_training_data(
        self, fitted, toy_dataset
    ):
        """Eq. 9 on a training motion's windows reproduces its stored
        signature (memberships equal the FCM's converged U rows)."""
        sig = fitted.signature(toy_dataset[0]).vector
        np.testing.assert_allclose(
            sig, fitted.database_signatures[0], atol=1e-4
        )

    def test_classify_with_k_vote(self, fitted, toy_dataset):
        label = fitted.classify(toy_dataset[0], k=3)
        assert label in toy_dataset.labels


class TestConfigurations:
    def test_kmeans_ablation_runs(self, toy_dataset):
        model = MotionClassifier(n_clusters=4, clusterer="kmeans")
        model.fit(toy_dataset, seed=0)
        assert model.classify(toy_dataset[0]) == toy_dataset[0].label
        # Crisp memberships -> signature entries are 0 or 1.
        sig = model.signature(toy_dataset[0]).vector
        assert set(np.round(sig, 6)) <= {0.0, 1.0}

    def test_unknown_clusterer_rejected(self, toy_dataset):
        with pytest.raises(ClusteringError, match="unknown clusterer"):
            MotionClassifier(n_clusters=4, clusterer="dbscan").fit(toy_dataset)

    def test_custom_clusterer_factory(self, toy_dataset):
        from repro.fuzzy.cmeans import FuzzyCMeans

        # The classifier's m drives the query-side Eq. 9 memberships and must
        # match the fuzzifier the custom factory uses.
        model = MotionClassifier(
            n_clusters=4, m=1.5,
            clusterer=lambda c: FuzzyCMeans(n_clusters=c, m=1.5),
        )
        model.fit(toy_dataset, seed=0)
        assert model.classify(toy_dataset[0]) == toy_dataset[0].label

    def test_idistance_backend_equals_linear(self, toy_dataset):
        linear = MotionClassifier(n_clusters=4).fit(toy_dataset, seed=0)
        indexed = MotionClassifier(
            n_clusters=4, index_factory=lambda: IDistanceIndex(n_partitions=4)
        ).fit(toy_dataset, seed=0)
        for record in toy_dataset:
            a = [n.key for n in linear.kneighbors(record, k=3)]
            b = [n.key for n in indexed.kneighbors(record, k=3)]
            assert a == b

    def test_scaler_mode_none_still_runs(self, toy_dataset):
        model = MotionClassifier(n_clusters=4, scaler_mode="none")
        model.fit(toy_dataset, seed=0)
        assert model.classify(toy_dataset[0]) in toy_dataset.labels

    def test_signature_length_tracks_cluster_count(self, toy_dataset):
        for c in (2, 6):
            model = MotionClassifier(n_clusters=c).fit(toy_dataset, seed=0)
            assert model.database_signatures.shape[1] == 2 * c

"""Motion spotting in continuous streams."""

import numpy as np
import pytest

from repro.core.model import MotionClassifier
from repro.core.spotting import (
    ActivityDetector,
    DetectedMotion,
    segment_matching_score,
    spot_and_classify,
)
from repro.data.stream import StreamAnnotation, concatenate_records
from repro.errors import ValidationError


def _taper(record):
    """Return a copy of a toy record whose activity tapers to rest at both
    ends (the factory's sinusoids otherwise never pause, which would make a
    concatenated stream active everywhere)."""
    import numpy as np

    from repro.data.record import RecordedMotion
    from repro.emg.recording import EMGRecording
    from repro.mocap.trajectory import MotionCaptureData

    n = record.n_frames
    envelope = np.sin(np.pi * np.arange(n) / (n - 1)) ** 2
    mocap = np.asarray(record.mocap.matrix_mm)
    anchored = mocap[0] + (mocap - mocap[0]) * envelope[:, None]
    emg = np.asarray(record.emg.data_volts) * envelope[:, None] + 1e-6
    return RecordedMotion(
        label=record.label,
        participant_id=record.participant_id,
        trial_id=record.trial_id,
        mocap=MotionCaptureData(segments=record.mocap.segments,
                                matrix_mm=anchored, fps=record.fps),
        emg=EMGRecording(channels=record.emg.channels, data_volts=emg,
                         fs=record.fps),
    )


@pytest.fixture
def stream(make_record):
    records = [
        _taper(make_record(label="alpha", frequency=0.7, seed=0, n_frames=240)),
        _taper(make_record(label="beta", frequency=1.4, seed=1, n_frames=240)),
        _taper(make_record(label="gamma", frequency=2.4, seed=2, n_frames=240)),
    ]
    return concatenate_records(records, rest_s=1.5, seed=0)


class TestActivityDetector:
    def test_activity_bounded(self, stream):
        score = ActivityDetector().activity(stream)
        assert score.shape == (stream.n_frames,)
        assert np.all((score >= 0) & (score <= 1))

    def test_activity_higher_inside_motions(self, stream):
        score = ActivityDetector().activity(stream)
        inside = np.zeros(stream.n_frames, dtype=bool)
        for ann in stream.annotations:
            inside[ann.start:ann.stop] = True
        assert score[inside].mean() > 2 * score[~inside].mean()

    def test_detects_every_annotation(self, stream):
        detections = ActivityDetector().detect(stream)
        result = segment_matching_score(stream.annotations, detections)
        assert result["misses"] == 0
        assert result["false_alarms"] <= 1

    def test_boundaries_close_to_truth(self, stream):
        detections = ActivityDetector().detect(stream)
        assert len(detections) >= len(stream.annotations)
        tol = int(0.5 * stream.fps)
        for ann in stream.annotations:
            best = max(detections, key=lambda d: ann.overlap(d.start, d.stop))
            assert abs(best.start - ann.start) <= tol
            assert abs(best.stop - ann.stop) <= tol

    def test_quiet_stream_yields_nothing(self, make_record):
        rec = make_record(label="alpha")
        stream = concatenate_records([rec], rest_s=2.0, seed=0)
        # Restrict to the rest-only prefix.
        quiet = stream.segment(0, stream.annotations[0].start)
        quiet_stream = type(stream)(
            mocap=quiet.mocap, emg=quiet.emg, annotations=()
        )
        detections = ActivityDetector(on_threshold=0.9).detect(quiet_stream)
        assert detections == []

    def test_hysteresis_validation(self):
        with pytest.raises(ValidationError):
            ActivityDetector(on_threshold=0.1, off_threshold=0.5)

    def test_min_duration_filters_blips(self, stream):
        lax = ActivityDetector(min_duration_s=0.0).detect(stream)
        strict = ActivityDetector(min_duration_s=1.0).detect(stream)
        assert len(strict) <= len(lax)


class TestSpotAndClassify:
    def test_end_to_end(self, toy_dataset, stream):
        model = MotionClassifier(n_clusters=4, window_ms=100.0)
        model.fit(toy_dataset, seed=0)
        detections = spot_and_classify(stream, model)
        assert detections
        assert all(d.label in toy_dataset.labels for d in detections)
        result = segment_matching_score(stream.annotations, detections)
        assert result["hits"] == len(stream.annotations)
        # The toy stream's motions come from the same generator as the
        # database, so most labels should be right.
        assert result["label_accuracy"] >= 2 / 3


class TestSegmentMatchingScore:
    def test_perfect_match(self):
        anns = (StreamAnnotation(0, 100, "a"),)
        dets = [DetectedMotion(start=0, stop=100, score=1.0, label="a")]
        result = segment_matching_score(anns, dets)
        assert result == {"hits": 1, "misses": 0, "false_alarms": 0,
                          "label_accuracy": 1.0}

    def test_miss_and_false_alarm(self):
        anns = (StreamAnnotation(0, 100, "a"),)
        dets = [DetectedMotion(start=500, stop=600, score=1.0, label="a")]
        result = segment_matching_score(anns, dets)
        assert result["misses"] == 1
        assert result["false_alarms"] == 1

    def test_wrong_label_counts_hit_not_accuracy(self):
        anns = (StreamAnnotation(0, 100, "a"),)
        dets = [DetectedMotion(start=5, stop=95, score=1.0, label="b")]
        result = segment_matching_score(anns, dets)
        assert result["hits"] == 1
        assert result["label_accuracy"] == 0.0

    def test_detection_not_double_counted(self):
        anns = (StreamAnnotation(0, 100, "a"), StreamAnnotation(90, 200, "b"))
        dets = [DetectedMotion(start=0, stop=100, score=1.0, label="a")]
        result = segment_matching_score(anns, dets)
        assert result["hits"] == 1
        assert result["misses"] == 1
        assert result["false_alarms"] == 0

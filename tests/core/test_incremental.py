"""Incremental motion-database maintenance."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalMotionDatabase
from repro.core.model import MotionClassifier
from repro.errors import NotFittedError, RetrievalError


@pytest.fixture
def fitted(toy_dataset):
    return MotionClassifier(n_clusters=4, window_ms=100.0).fit(
        toy_dataset, seed=0
    )


@pytest.fixture
def db(fitted):
    return IncrementalMotionDatabase(fitted)


class TestConstruction:
    def test_starts_with_training_database(self, db, toy_dataset):
        assert len(db) == len(toy_dataset)
        assert db.labels == toy_dataset.labels

    def test_requires_fitted_classifier(self, toy_dataset):
        with pytest.raises(NotFittedError):
            IncrementalMotionDatabase(MotionClassifier(n_clusters=4))

    def test_queries_match_static_classifier(self, db, fitted, toy_dataset):
        for record in list(toy_dataset)[:4]:
            static = [n.key for n in fitted.kneighbors(record, k=3)]
            dynamic = [n.key for n in db.kneighbors(record, k=3)]
            assert static == dynamic


class TestAdd:
    def test_added_motion_is_retrievable(self, db, make_record):
        new = make_record(label="beta", trial=77, seed=50, frequency=1.4)
        vid = db.add(new)
        top = db.kneighbors(new, k=1)[0]
        assert top.key == new.key
        assert top.distance == pytest.approx(0.0, abs=1e-9)
        assert len(db) == vid + 1 or new.key == db.kneighbors(new, k=1)[0].key

    def test_added_motion_improves_its_class(self, db, make_record):
        new = make_record(label="gamma", trial=88, seed=60, frequency=2.4)
        db.add(new)
        probe = make_record(label="gamma", trial=89, seed=61, frequency=2.4)
        assert db.classify(probe) == "gamma"

    def test_duplicate_key_rejected(self, db, toy_dataset, make_record):
        clone = make_record(label="alpha", trial=0, seed=0, frequency=0.7,
                            participant="p0")
        with pytest.raises(RetrievalError, match="already indexed"):
            db.add(clone)

    def test_new_class_supported(self, db, make_record):
        new = make_record(label="delta", trial=0, seed=70, frequency=3.3)
        db.add(new)
        assert "delta" in db.labels
        assert db.classify(new) == "delta"


class TestRemove:
    def test_removed_motion_not_retrieved(self, db, fitted, toy_dataset):
        record = toy_dataset[0]
        assert db.remove(0)
        keys = [n.key for n in db.kneighbors(record, k=3)]
        assert record.key not in keys
        assert len(db) == len(toy_dataset) - 1

    def test_remove_missing(self, db):
        assert not db.remove(999)

    def test_key_can_be_readded_after_removal(self, db, toy_dataset):
        record = toy_dataset[0]
        db.remove(0)
        vid = db.add(record)
        assert db.kneighbors(record, k=1)[0].key == record.key
        assert vid >= len(toy_dataset)


class TestDriftTracking:
    def test_no_drift_initially(self, db):
        assert not db.refit_recommended

    def test_in_distribution_additions_keep_drift_low(self, db, make_record):
        for trial in range(3):
            db.add(make_record(label="alpha", trial=100 + trial,
                               seed=200 + trial, frequency=0.7))
        assert not db.refit_recommended

    def test_out_of_distribution_additions_trigger_refit(
        self, db, make_record, rng
    ):
        """Motions from an unseen regime have low membership everywhere."""
        from repro.data.record import RecordedMotion
        from repro.emg.recording import EMGRecording
        from repro.mocap.trajectory import MotionCaptureData

        for trial in range(4):
            gen = np.random.default_rng(300 + trial)
            n = 120
            mocap = MotionCaptureData(
                segments=tuple(f"seg{j}" for j in range(4)),
                matrix_mm=gen.normal(scale=4000.0, size=(n, 12)),
                fps=120.0,
            )
            emg = EMGRecording(
                channels=tuple(f"ch{j}" for j in range(4)),
                data_volts=np.abs(gen.normal(scale=5e-3, size=(n, 4))),
                fs=120.0,
            )
            alien = RecordedMotion(label="alien", participant_id="px",
                                   trial_id=trial, mocap=mocap, emg=emg)
            db.add(alien)
        assert db.refit_recommended

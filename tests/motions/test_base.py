"""Motion-class base machinery and registry."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.motions.base import (
    MotionClass,
    MotionPlan,
    available_motions,
    get_motion_class,
    motions_for_limb,
    register_motion_class,
)
from repro.motions.variation import TrialVariation
from repro.skeleton.kinematics import JointAngles


class _Dummy(MotionClass):
    name = "test_dummy_motion"
    limb = "hand_r"
    nominal_duration_s = 1.0
    muscles = ("m1", "m2")
    animated_segments = ("humerus_r",)

    def _angles(self, s, amplitude):
        return {"humerus_r": np.stack([amplitude * s, 0 * s, 0 * s], axis=1)}

    def _activations(self, s, amplitude):
        return {"m1": amplitude * s, "m2": amplitude * (1 - s)}


class _Incomplete(_Dummy):
    name = "test_incomplete_motion"

    def _activations(self, s, amplitude):
        return {"m1": amplitude * s}  # m2 missing


@pytest.fixture
def dummy():
    return _Dummy()


class TestMotionPlan:
    def test_basic_properties(self, dummy):
        plan = dummy.plan(fps=120.0, seed=0)
        assert plan.n_frames == 120
        assert plan.duration_s == pytest.approx(1.0)
        assert plan.muscles == ["m1", "m2"]
        assert plan.limb == "hand_r"

    def test_activation_length_must_match(self):
        anim = JointAngles(n_frames=10, angles_rad={})
        with pytest.raises(ValidationError, match="frames"):
            MotionPlan(label="x", limb="hand_r", fps=120.0, animation=anim,
                       activations={"m": np.zeros(5)})

    def test_negative_activation_rejected(self):
        anim = JointAngles(n_frames=4, angles_rad={})
        with pytest.raises(ValidationError, match="non-negative"):
            MotionPlan(label="x", limb="hand_r", fps=120.0, animation=anim,
                       activations={"m": np.array([0.1, -0.2, 0.0, 0.0])})


class TestMotionClassPlan:
    def test_speed_variation_changes_duration(self, dummy):
        slow = dummy.plan(TrialVariation(speed=0.5), seed=0)
        fast = dummy.plan(TrialVariation(speed=2.0), seed=0)
        assert slow.n_frames > fast.n_frames
        assert slow.duration_s == pytest.approx(2.0)
        assert fast.duration_s == pytest.approx(0.5)

    def test_amplitude_variation_scales_angles(self, dummy):
        small = dummy.plan(TrialVariation(amplitude=0.5), seed=0)
        big = dummy.plan(TrialVariation(amplitude=1.5), seed=0)
        a_small = small.animation.angles_rad["humerus_r"][-1, 0]
        a_big = big.animation.angles_rad["humerus_r"][-1, 0]
        assert a_big == pytest.approx(3 * a_small)

    def test_activation_gains_applied(self, dummy):
        var = TrialVariation(activation_gains={"m1": 2.0, "m2": 0.5})
        plan = dummy.plan(var, seed=0)
        base = dummy.plan(seed=0)
        np.testing.assert_allclose(
            plan.activations["m1"], 2.0 * base.activations["m1"]
        )
        np.testing.assert_allclose(
            plan.activations["m2"], 0.5 * base.activations["m2"]
        )

    def test_angle_noise_perturbs_angles(self, dummy):
        noisy = dummy.plan(TrialVariation(angle_noise_rad=0.1), seed=0)
        clean = dummy.plan(TrialVariation(angle_noise_rad=0.0), seed=0)
        assert not np.allclose(
            noisy.animation.angles_rad["humerus_r"],
            clean.animation.angles_rad["humerus_r"],
        )

    def test_deterministic_given_seed(self, dummy):
        a = dummy.plan(TrialVariation(angle_noise_rad=0.05), seed=9)
        b = dummy.plan(TrialVariation(angle_noise_rad=0.05), seed=9)
        np.testing.assert_array_equal(
            a.animation.angles_rad["humerus_r"],
            b.animation.angles_rad["humerus_r"],
        )

    def test_missing_muscle_activation_rejected(self):
        with pytest.raises(ValidationError, match="m2"):
            _Incomplete().plan(seed=0)

    def test_rejects_bad_fps(self, dummy):
        with pytest.raises(ValidationError):
            dummy.plan(fps=0.0)

    def test_minimum_frame_floor(self, dummy):
        plan = dummy.plan(TrialVariation(speed=1.6), fps=5.0, seed=0)
        assert plan.n_frames >= 8


class TestRegistry:
    def test_paper_motions_registered(self):
        names = available_motions()
        assert "raise_arm" in names
        assert "throw_ball" in names

    def test_get_unknown_raises_with_choices(self):
        with pytest.raises(ValidationError, match="raise_arm"):
            get_motion_class("no_such_motion")

    def test_limb_partition(self):
        hand = {m.name for m in motions_for_limb("hand_r")}
        leg = {m.name for m in motions_for_limb("leg_r")}
        assert hand and leg
        assert not hand & leg

    def test_unknown_limb_raises(self):
        with pytest.raises(ValidationError):
            motions_for_limb("tail")

    def test_reregistering_same_class_is_idempotent(self):
        before = available_motions()
        register_motion_class(get_motion_class("raise_arm"))
        assert available_motions() == before

    def test_conflicting_name_rejected(self):
        class Imposter(_Dummy):
            name = "raise_arm"

        with pytest.raises(ValidationError, match="already registered"):
            register_motion_class(Imposter())

    def test_unnamed_motion_rejected(self):
        class NoName(_Dummy):
            name = ""

        with pytest.raises(ValidationError):
            register_motion_class(NoName())

"""Left/right mirroring of motion plans."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.motions.base import get_motion_class
from repro.motions.mirror import mirror_name, mirror_plan
from repro.skeleton.body import default_body
from repro.skeleton.kinematics import forward_kinematics

MIRROR_XYZ = np.array([-1.0, 1.0, 1.0])


class TestMirrorName:
    def test_right_to_left(self):
        assert mirror_name("hand_r") == "hand_l"

    def test_left_to_right(self):
        assert mirror_name("biceps_l") == "biceps_r"

    def test_unsided_passthrough(self):
        assert mirror_name("pelvis") == "pelvis"

    def test_involution(self):
        for name in ("hand_r", "toe_l", "spine"):
            assert mirror_name(mirror_name(name)) == name


class TestMirrorPlan:
    @pytest.fixture
    def plan(self):
        return get_motion_class("raise_arm").plan(fps=120.0, seed=0)

    def test_metadata_carries_over(self, plan):
        mirrored = mirror_plan(plan)
        assert mirrored.label == plan.label
        assert mirrored.limb == "hand_l"
        assert mirrored.n_frames == plan.n_frames
        assert mirrored.metadata == plan.metadata

    def test_muscles_swap_side(self, plan):
        mirrored = mirror_plan(plan)
        assert set(mirrored.activations) == {
            "biceps_l", "triceps_l", "upper_forearm_l", "lower_forearm_l",
        }
        np.testing.assert_array_equal(
            mirrored.activations["biceps_l"], plan.activations["biceps_r"]
        )

    def test_double_mirror_is_identity(self, plan):
        twice = mirror_plan(mirror_plan(plan))
        assert twice.limb == plan.limb
        for segment, angles in plan.animation.angles_rad.items():
            np.testing.assert_allclose(
                twice.animation.angles_rad[segment], angles
            )

    def test_unsided_limb_rejected(self, plan):
        plan.limb = "torso"
        with pytest.raises(ValidationError):
            mirror_plan(plan)

    @pytest.mark.parametrize(
        "motion_name", ["raise_arm", "throw_ball", "kick_ball", "squat"]
    )
    def test_kinematics_are_the_mirror_image(self, motion_name):
        """FK of the mirrored plan equals the mirrored FK of the original —
        the defining property of the transformation."""
        body = default_body()
        plan = get_motion_class(motion_name).plan(fps=120.0, seed=0)
        mirrored = mirror_plan(plan)
        original_pos = forward_kinematics(body, plan.animation)
        mirrored_pos = forward_kinematics(body, mirrored.animation)
        for segment, positions in original_pos.items():
            twin = mirror_name(segment)
            np.testing.assert_allclose(
                mirrored_pos[twin], positions * MIRROR_XYZ, atol=1e-9,
                err_msg=f"{motion_name}: {segment} -> {twin}",
            )

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_mirror_property_under_variation(self, seed):
        from repro.motions.variation import VariationModel

        body = default_body()
        vm = VariationModel()
        var = vm.sample_trial(["biceps_r", "triceps_r", "upper_forearm_r",
                               "lower_forearm_r"], seed=seed)
        plan = get_motion_class("wave_hand").plan(variation=var, seed=seed)
        mirrored = mirror_plan(plan)
        pos = forward_kinematics(body, plan.animation, ["hand_r"])["hand_r"]
        twin = forward_kinematics(body, mirrored.animation, ["hand_l"])["hand_l"]
        np.testing.assert_allclose(twin, pos * MIRROR_XYZ, atol=1e-9)

"""The concrete arm and leg motion classes."""

import numpy as np
import pytest

from repro.emg.channels import hand_montage, leg_montage
from repro.motions.arm import ARM_MOTIONS, ARM_MUSCLES
from repro.motions.base import motions_for_limb
from repro.motions.leg import LEG_MOTIONS, LEG_MUSCLES

ALL_MOTIONS = ARM_MOTIONS + LEG_MOTIONS


def test_arm_muscles_match_paper_montage():
    """Section 5: biceps, triceps, upper forearm, lower forearm."""
    assert set(ARM_MUSCLES) == set(hand_montage("r").channels)


def test_leg_muscles_match_paper_montage():
    """Section 5: front shin, back shin."""
    assert set(LEG_MUSCLES) == set(leg_montage("r").channels)


def test_registry_has_all_defined_motions():
    assert {m.name for m in motions_for_limb("hand_r")} == {m.name for m in ARM_MOTIONS}
    assert {m.name for m in motions_for_limb("leg_r")} == {m.name for m in LEG_MOTIONS}


@pytest.mark.parametrize("motion", ALL_MOTIONS, ids=lambda m: m.name)
class TestEveryMotion:
    def test_plan_produces_valid_plan(self, motion):
        plan = motion.plan(fps=120.0, seed=0)
        assert plan.label == motion.name
        assert plan.n_frames >= 8
        assert set(plan.activations) == set(motion.muscles)

    def test_activations_non_negative_and_bounded(self, motion):
        plan = motion.plan(fps=120.0, seed=0)
        for muscle, env in plan.activations.items():
            assert np.all(env >= 0), muscle
            assert env.max() < 3.0, muscle

    def test_every_muscle_actually_activates(self, motion):
        """No dead channels: each montage muscle fires above the tonic floor."""
        plan = motion.plan(fps=120.0, seed=0)
        for muscle, env in plan.activations.items():
            assert env.max() > 0.1, f"{motion.name}/{muscle} never activates"

    def test_angles_are_finite_and_bounded(self, motion):
        plan = motion.plan(fps=120.0, seed=0)
        for seg, arr in plan.animation.angles_rad.items():
            assert np.all(np.isfinite(arr)), seg
            assert np.abs(arr).max() < np.pi, f"{motion.name}/{seg} exceeds pi rad"

    def test_peak_excursion_exceeds_endpoints(self, motion):
        """Motions move: the largest excursion happens mid-motion, not at the
        endpoints (some classes legitimately start from a guard pose or end
        in a follow-through, so endpoints need not be the bind pose)."""
        plan = motion.plan(fps=120.0, seed=0)
        peak = max(np.abs(arr).max() for arr in plan.animation.angles_rad.values())
        endpoint = max(
            max(np.abs(arr[0]).max(), np.abs(arr[-1]).max())
            for arr in plan.animation.angles_rad.values()
        )
        assert peak > 0.2, f"{motion.name} barely moves"
        assert peak >= endpoint - 1e-9

    def test_nominal_duration_plausible(self, motion):
        assert 0.5 <= motion.nominal_duration_s <= 5.0


def test_classes_are_mutually_distinguishable_kinematically():
    """Distinct classes must produce distinct hand/toe trajectories."""
    from repro.skeleton.body import default_body
    from repro.skeleton.kinematics import forward_kinematics

    body = default_body()
    trajectories = {}
    for motion in ALL_MOTIONS:
        plan = motion.plan(fps=120.0, seed=0)
        tip = "hand_r" if motion.limb == "hand_r" else "toe_r"
        pos = forward_kinematics(body, plan.animation, [tip])[tip]
        # Normalize length for comparison.
        idx = np.linspace(0, len(pos) - 1, 50).astype(int)
        trajectories[motion.name] = pos[idx]
    names = list(trajectories)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            diff = np.abs(trajectories[a] - trajectories[b]).max()
            assert diff > 1.0, f"{a} and {b} are kinematically identical"


def test_ballistic_vs_slow_classes_differ_in_duration():
    from repro.motions.base import get_motion_class

    throw = get_motion_class("throw_ball").nominal_duration_s
    reach = get_motion_class("reach_forward").nominal_duration_s
    assert throw < reach

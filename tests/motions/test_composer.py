"""Session-plan composition."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.motions.base import get_motion_class
from repro.motions.composer import compose_plans


@pytest.fixture
def plans():
    return [
        get_motion_class("raise_arm").plan(fps=120.0, seed=0),
        get_motion_class("throw_ball").plan(fps=120.0, seed=1),
    ]


class TestComposePlans:
    def test_total_length(self, plans):
        composed, annotations = compose_plans(plans, rest_s=1.0)
        rests = 3 * 120  # before, between, after
        assert composed.n_frames == sum(p.n_frames for p in plans) + rests
        assert len(annotations) == 2

    def test_annotations_cover_original_content(self, plans):
        composed, annotations = compose_plans(plans, rest_s=0.5)
        for (start, stop, label), plan in zip(annotations, plans):
            assert label == plan.label
            assert stop - start == plan.n_frames
            for seg, angles in plan.animation.angles_rad.items():
                np.testing.assert_array_equal(
                    composed.animation.angles_rad[seg][start:stop], angles
                )
            for muscle, env in plan.activations.items():
                np.testing.assert_array_equal(
                    composed.activations[muscle][start:stop], env
                )

    def test_rest_periods_idle_muscles(self, plans):
        composed, annotations = compose_plans(plans, rest_s=1.0)
        first_start = annotations[0][0]
        for env in composed.activations.values():
            np.testing.assert_allclose(env[:first_start], 0.05)

    def test_rest_blends_poses_smoothly(self, plans):
        composed, annotations = compose_plans(plans, rest_s=1.0)
        stop_first = annotations[0][1]
        start_second = annotations[1][0]
        for seg in composed.animation.angles_rad:
            gap = composed.animation.angles_rad[seg][stop_first:start_second]
            # Blend endpoints equal the adjacent motion poses.
            np.testing.assert_allclose(
                gap[0],
                composed.animation.angles_rad[seg][stop_first - 1], atol=1e-9,
            )
            np.testing.assert_allclose(
                gap[-1],
                composed.animation.angles_rad[seg][start_second], atol=0.05,
            )
            # No jumps larger than within-motion steps.
            assert np.abs(np.diff(gap, axis=0)).max() < 0.2

    def test_zero_rest(self, plans):
        composed, annotations = compose_plans(plans, rest_s=0.0)
        assert composed.n_frames == sum(p.n_frames for p in plans)
        assert annotations[0][0] == 0

    def test_acquirable_through_real_session(self, plans):
        """The composed plan runs through the full acquisition chain."""
        from repro.data.protocol import hand_protocol
        from repro.emg.channels import hand_montage
        from repro.skeleton.body import default_body
        from repro.sync.session import AcquisitionSession

        composed, annotations = compose_plans(plans, rest_s=0.5)
        trial = AcquisitionSession().record_trial(
            default_body(), composed,
            segments=list(hand_protocol().segments),
            montage=hand_montage("r"), seed=0,
        )
        assert trial.n_frames == composed.n_frames

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            compose_plans([])

    def test_rate_mismatch_rejected(self):
        a = get_motion_class("raise_arm").plan(fps=120.0, seed=0)
        b = get_motion_class("raise_arm").plan(fps=60.0, seed=0)
        with pytest.raises(ValidationError, match="rates"):
            compose_plans([a, b])

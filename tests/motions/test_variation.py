"""Inter-trial / inter-participant variability models."""

import numpy as np
import pytest

from repro.motions.variation import ParticipantProfile, TrialVariation, VariationModel

MUSCLES = ["biceps_r", "triceps_r"]


class TestTrialVariation:
    def test_defaults_are_identity(self):
        var = TrialVariation()
        assert var.amplitude == 1.0
        assert var.speed == 1.0
        assert var.gain_for("anything") == 1.0

    def test_gain_lookup(self):
        var = TrialVariation(activation_gains={"biceps_r": 1.5})
        assert var.gain_for("biceps_r") == 1.5
        assert var.gain_for("triceps_r") == 1.0


class TestParticipantProfile:
    def test_strength_lookup(self):
        p = ParticipantProfile("p0", strength_gains={"biceps_r": 0.8})
        assert p.strength_for("biceps_r") == 0.8
        assert p.strength_for("unknown") == 1.0


class TestVariationModel:
    def test_rejects_negative_sigmas(self):
        with pytest.raises(ValueError):
            VariationModel(amplitude_sigma=-0.1)

    def test_sample_trial_deterministic(self):
        vm = VariationModel()
        a = vm.sample_trial(MUSCLES, seed=3)
        b = vm.sample_trial(MUSCLES, seed=3)
        assert a == b

    def test_sample_trial_draws_all_muscles(self):
        var = VariationModel().sample_trial(MUSCLES, seed=0)
        assert set(var.activation_gains) == set(MUSCLES)

    def test_trial_draws_are_clipped(self):
        vm = VariationModel(amplitude_sigma=5.0, speed_sigma=5.0)
        for seed in range(30):
            var = vm.sample_trial(MUSCLES, seed=seed)
            assert 0.5 <= var.amplitude <= 1.6
            assert 0.5 <= var.speed <= 1.6

    def test_zero_sigma_model_is_deterministic_identity(self):
        vm = VariationModel(
            amplitude_sigma=0.0, speed_sigma=0.0, angle_noise_rad=0.0,
            activation_gain_log_sigma=0.0, timing_jitter_fraction=0.0,
        )
        var = vm.sample_trial(MUSCLES, seed=1)
        assert var.amplitude == pytest.approx(1.0)
        assert var.speed == pytest.approx(1.0)
        assert all(g == pytest.approx(1.0) for g in var.activation_gains.values())
        assert var.timing_shift == 0.0

    def test_participant_style_folds_into_trials(self):
        vm = VariationModel(amplitude_sigma=0.0, speed_sigma=0.0,
                            activation_gain_log_sigma=0.0)
        strong = ParticipantProfile("p", style_amplitude=1.2,
                                    strength_gains={"biceps_r": 2.0, "triceps_r": 1.0})
        var = vm.sample_trial(MUSCLES, seed=0, participant=strong)
        assert var.amplitude == pytest.approx(1.2)
        assert var.activation_gains["biceps_r"] == pytest.approx(2.0)

    def test_sample_participant_covers_muscles(self):
        p = VariationModel().sample_participant("p0", MUSCLES, seed=0)
        assert set(p.strength_gains) == set(MUSCLES)
        assert 0.75 <= p.body_scale <= 1.25

    def test_emg_varies_more_than_kinematics(self):
        """The calibrated defaults encode the paper's core observation."""
        vm = VariationModel()
        amps, gains = [], []
        for seed in range(300):
            var = vm.sample_trial(["m"], seed=seed)
            amps.append(var.amplitude)
            gains.append(var.activation_gains["m"])
        cv_amp = np.std(amps) / np.mean(amps)
        cv_gain = np.std(gains) / np.mean(gains)
        assert cv_gain > 2 * cv_amp

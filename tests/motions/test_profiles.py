"""Smooth time-profile primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.motions.profiles import (
    bell,
    minimum_jerk,
    oscillation,
    raised_cosine_pulse,
    ramp_hold,
    smooth_noise,
)


class TestMinimumJerk:
    def test_endpoints(self):
        assert minimum_jerk(np.array([0.0]))[0] == 0.0
        assert minimum_jerk(np.array([1.0]))[0] == 1.0

    def test_midpoint(self):
        assert abs(minimum_jerk(np.array([0.5]))[0] - 0.5) < 1e-12

    def test_monotone_increasing(self):
        s = np.linspace(0, 1, 200)
        assert np.all(np.diff(minimum_jerk(s)) >= 0)

    def test_clamps_outside_unit_interval(self):
        out = minimum_jerk(np.array([-0.5, 1.5]))
        np.testing.assert_array_equal(out, [0.0, 1.0])

    def test_zero_end_velocities(self):
        s = np.linspace(0, 1, 10001)
        v = np.gradient(minimum_jerk(s), s)
        assert abs(v[0]) < 1e-3 and abs(v[-1]) < 1e-3


class TestBell:
    def test_unit_peak_at_center(self):
        s = np.linspace(0, 1, 101)
        out = bell(s, 0.5, 0.1)
        assert abs(out.max() - 1.0) < 1e-12
        assert s[np.argmax(out)] == 0.5

    def test_symmetric(self):
        s = np.linspace(0, 1, 101)
        out = bell(s, 0.5, 0.1)
        np.testing.assert_allclose(out, out[::-1], atol=1e-12)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            bell(np.array([0.5]), 0.5, 0.0)


class TestRaisedCosinePulse:
    def test_zero_outside_support(self):
        s = np.linspace(0, 1, 101)
        out = raised_cosine_pulse(s, 0.3, 0.7)
        assert np.all(out[s < 0.3] == 0.0)
        assert np.all(out[s > 0.7] == 0.0)

    def test_unit_peak_at_support_center(self):
        s = np.linspace(0, 1, 1001)
        out = raised_cosine_pulse(s, 0.2, 0.6)
        assert abs(out.max() - 1.0) < 1e-6
        assert abs(s[np.argmax(out)] - 0.4) < 1e-2

    def test_rejects_degenerate_support(self):
        with pytest.raises(ValueError):
            raised_cosine_pulse(np.array([0.5]), 0.7, 0.7)


class TestRampHold:
    def test_holds_at_one(self):
        s = np.linspace(0, 1, 101)
        out = ramp_hold(s, 0.3, 0.7)
        hold = out[(s > 0.31) & (s < 0.69)]
        np.testing.assert_allclose(hold, 1.0, atol=1e-9)

    def test_starts_and_ends_at_zero(self):
        s = np.linspace(0, 1, 101)
        out = ramp_hold(s, 0.3, 0.7)
        assert out[0] == 0.0
        assert out[-1] < 1e-9

    def test_bounded(self):
        s = np.linspace(0, 1, 500)
        out = ramp_hold(s, 0.4, 0.6)
        assert np.all((out >= 0) & (out <= 1))

    def test_rejects_bad_breakpoints(self):
        s = np.linspace(0, 1, 10)
        with pytest.raises(ValueError):
            ramp_hold(s, 0.7, 0.3)
        with pytest.raises(ValueError):
            ramp_hold(s, 0.0, 0.5)


class TestOscillation:
    def test_cycle_count(self):
        s = np.linspace(0, 1, 10000, endpoint=False)
        wave = oscillation(s, cycles=3.0)
        crossings = np.sum(np.diff(np.signbit(wave)))
        # Two sign changes per cycle; the crossing at s=0 may or may not be
        # counted depending on the sampling grid.
        assert crossings in (5, 6)

    def test_envelope_applied(self):
        s = np.linspace(0, 1, 100)
        env = np.zeros(100)
        assert np.all(oscillation(s, 2.0, envelope=env) == 0.0)


class TestSmoothNoise:
    def test_deterministic_with_seed(self):
        a = smooth_noise(100, np.random.default_rng(3), 0.1)
        b = smooth_noise(100, np.random.default_rng(3), 0.1)
        np.testing.assert_array_equal(a, b)

    def test_scale_and_mean(self):
        out = smooth_noise(5000, np.random.default_rng(0), 0.25)
        assert abs(out.mean()) < 1e-9
        assert abs(out.std() - 0.25) < 1e-9

    def test_smoother_than_white_noise(self):
        rng = np.random.default_rng(1)
        out = smooth_noise(2000, rng, 1.0, smoothness=20)
        white = np.random.default_rng(2).normal(size=2000)
        # Lag-1 autocorrelation should be much higher than white noise's ~0.
        def lag1(x):
            return np.corrcoef(x[:-1], x[1:])[0, 1]
        assert lag1(out) > 0.8 > abs(lag1(white)) + 0.5

    def test_zero_scale_gives_zeros(self):
        np.testing.assert_array_equal(
            smooth_noise(50, np.random.default_rng(0), 0.0), np.zeros(50)
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            smooth_noise(0, np.random.default_rng(0), 0.1)

    @given(n=st.integers(1, 300), scale=st.floats(0.01, 2.0))
    @settings(max_examples=50)
    def test_length_contract(self, n, scale):
        out = smooth_noise(n, np.random.default_rng(0), scale)
        assert out.shape == (n,)
        assert np.all(np.isfinite(out))

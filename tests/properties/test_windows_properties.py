"""Property-based tests for the window arithmetic (paper Section 3.3).

Skipped entirely when ``hypothesis`` is not installed — the environment only
guarantees numpy.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

pytestmark = pytest.mark.properties

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.utils.windows import iter_windows, num_windows, window_bounds  # noqa: E402

SETTINGS = settings(max_examples=50, deadline=None)

n_frames_st = st.integers(min_value=1, max_value=500)
window_st = st.integers(min_value=1, max_value=60)
stride_st = st.integers(min_value=1, max_value=60)
fraction_st = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@SETTINGS
@given(n_frames=n_frames_st, window=window_st, stride=stride_st,
       min_fraction=fraction_st)
def test_bounds_are_valid_half_open_ranges(n_frames, window, stride,
                                           min_fraction):
    bounds = window_bounds(n_frames, window, stride, min_fraction)
    assert bounds, "a non-empty stream always yields at least one window"
    for start, stop in bounds:
        assert 0 <= start < stop <= n_frames
        assert stop - start <= max(window, n_frames)
    starts = [s for s, _ in bounds]
    assert starts == sorted(set(starts)), "starts strictly increase"


@SETTINGS
@given(n_frames=n_frames_st, window=window_st, stride=stride_st,
       min_fraction=fraction_st)
def test_num_windows_matches_bounds(n_frames, window, stride, min_fraction):
    assert num_windows(n_frames, window, stride, min_fraction) == len(
        window_bounds(n_frames, window, stride, min_fraction)
    )


@SETTINGS
@given(n_frames=n_frames_st, window=window_st, stride=stride_st)
def test_zero_min_fraction_is_ceiling_division(n_frames, window, stride):
    # With every partial window kept, the count is the paper's ⌈L/s⌉.
    bounds = window_bounds(n_frames, window, stride, min_fraction=0.0)
    assert len(bounds) == math.ceil(n_frames / stride)


@SETTINGS
@given(n_frames=n_frames_st, window=window_st, stride=stride_st)
def test_full_windows_only_at_min_fraction_one(n_frames, window, stride):
    bounds = window_bounds(n_frames, window, stride, min_fraction=1.0)
    if n_frames >= window:
        # Only complete windows survive: the classic sliding-window count.
        assert len(bounds) == (n_frames - window) // stride + 1
        assert all(stop - start == window for start, stop in bounds)
    else:
        # Whole-stream fallback instead of a featureless motion.
        assert bounds == [(0, n_frames)]


@SETTINGS
@given(n_frames=n_frames_st, window=window_st)
def test_default_stride_tiles_without_overlap(n_frames, window):
    bounds = window_bounds(n_frames, window, stride=None, min_fraction=0.0)
    for (_, stop_a), (start_b, _) in zip(bounds, bounds[1:]):
        assert start_b == stop_a, "default stride == window: exact tiling"
    covered = sum(stop - start for start, stop in bounds)
    assert covered == n_frames


@SETTINGS
@given(n_frames=st.integers(min_value=1, max_value=200), window=window_st,
       stride=stride_st, min_fraction=fraction_st)
def test_iter_windows_slices_match_bounds(n_frames, window, stride,
                                          min_fraction):
    data = np.arange(n_frames, dtype=np.float64)[:, None]
    bounds = window_bounds(n_frames, window, stride, min_fraction)
    slices = list(iter_windows(data, window, stride, min_fraction))
    assert len(slices) == len(bounds)
    for (start, stop), chunk in zip(bounds, slices):
        assert chunk.shape[0] == stop - start
        assert chunk[0, 0] == start and chunk[-1, 0] == stop - 1

"""Property-based tests for the IAV feature (paper Eq. 1).

IAV is a plain per-channel sum of absolute values, so it must be
non-negative, absolutely homogeneous and additive over window concatenation.
Skipped entirely when ``hypothesis`` is not installed.
"""

from __future__ import annotations

import numpy as np
import pytest

pytestmark = pytest.mark.properties

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402
from hypothesis.extra import numpy as hnp  # noqa: E402

from repro.features.iav import IAVExtractor, integral_absolute_value  # noqa: E402

SETTINGS = settings(max_examples=50, deadline=None)

window_st = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 40), st.integers(1, 4)),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                       allow_infinity=False),
)


@SETTINGS
@given(window=window_st)
def test_non_negative_one_value_per_channel(window):
    iav = integral_absolute_value(window)
    assert iav.shape == (window.shape[1],)
    assert np.all(iav >= 0.0)


@SETTINGS
@given(window=window_st)
def test_sign_invariance(window):
    # |x| = |-x|: rectified and raw signals give the same feature.
    np.testing.assert_array_equal(
        integral_absolute_value(window), integral_absolute_value(-window)
    )


@SETTINGS
@given(window=window_st,
       scale=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
def test_absolute_homogeneity(window, scale):
    # IAV(a·x) == |a|·IAV(x) — exact up to float rounding.
    np.testing.assert_allclose(
        integral_absolute_value(scale * window),
        abs(scale) * integral_absolute_value(window),
        rtol=1e-9, atol=1e-12,
    )


@SETTINGS
@given(first=window_st, n_extra=st.integers(1, 40))
def test_additive_over_concatenation(first, n_extra):
    second = np.linspace(-1.0, 1.0, n_extra * first.shape[1]).reshape(
        n_extra, first.shape[1]
    )
    joined = np.vstack([first, second])
    np.testing.assert_allclose(
        integral_absolute_value(joined),
        integral_absolute_value(first) + integral_absolute_value(second),
        rtol=1e-9, atol=1e-12,
    )


@SETTINGS
@given(window=window_st)
def test_extractor_matches_free_function(window):
    np.testing.assert_array_equal(
        IAVExtractor().extract(window), integral_absolute_value(window)
    )

"""Property-based tests for the weighted-SVD joint feature (paper Eqs. 2–3).

The feature is built from normalized singular values and sign-stabilized
right singular vectors, so it must be invariant to positive scaling, row
permutation and self-concatenation of the window.  Near-degenerate inputs
(tied singular values, ambiguous dominant components) are excluded with
``assume`` — there the SVD factors themselves are not unique and no
implementation could promise stability.

Skipped entirely when ``hypothesis`` is not installed.
"""

from __future__ import annotations

import numpy as np
import pytest

pytestmark = pytest.mark.properties

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import assume, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402
from hypothesis.extra import numpy as hnp  # noqa: E402

from repro.features.svd import stabilize_signs, weighted_svd_feature  # noqa: E402

SETTINGS = settings(max_examples=40, deadline=None)

window_st = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(4, 25), st.just(3)),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
                       allow_infinity=False),
)


def _well_conditioned(window: np.ndarray) -> bool:
    """Singular values well separated and dominant components unambiguous."""
    singular = np.linalg.svd(window, compute_uv=False)
    if singular[0] <= 1e-6:
        return False
    gaps = np.diff(singular) / -singular[0]  # negative diffs, normalized
    if np.any(np.abs(gaps) < 1e-3) or singular[-1] / singular[0] < 1e-6:
        return False
    _, _, vt = np.linalg.svd(window, full_matrices=False)
    for row in vt:
        magnitudes = np.sort(np.abs(row))[::-1]
        if magnitudes[0] - magnitudes[1] < 1e-3:
            return False
    return True


@SETTINGS
@given(window=window_st)
def test_feature_is_a_unit_scale_3_vector(window):
    feature = weighted_svd_feature(window)
    assert feature.shape == (3,)
    # Convex combination of unit vectors: norm at most 1.
    assert np.linalg.norm(feature) <= 1.0 + 1e-9
    assert np.all(np.isfinite(feature))


@SETTINGS
@given(window=window_st,
       scale=st.floats(min_value=0.1, max_value=50.0, allow_nan=False))
def test_invariant_to_positive_scaling(window, scale):
    assume(_well_conditioned(window))
    np.testing.assert_allclose(
        weighted_svd_feature(scale * window), weighted_svd_feature(window),
        rtol=1e-7, atol=1e-9,
    )


@SETTINGS
@given(window=window_st, seed=st.integers(0, 2**31 - 1))
def test_invariant_to_row_permutation(window, seed):
    # The Gram matrix AᵀA ignores row order, so V and Σ do too.
    assume(_well_conditioned(window))
    permuted = window[np.random.default_rng(seed).permutation(window.shape[0])]
    np.testing.assert_allclose(
        weighted_svd_feature(permuted), weighted_svd_feature(window),
        rtol=1e-7, atol=1e-9,
    )


@SETTINGS
@given(window=window_st)
def test_invariant_to_self_concatenation(window):
    # [A; A] has Gram matrix 2AᵀA: same V, uniformly scaled Σ, same feature.
    assume(_well_conditioned(window))
    np.testing.assert_allclose(
        weighted_svd_feature(np.vstack([window, window])),
        weighted_svd_feature(window),
        rtol=1e-7, atol=1e-9,
    )


@SETTINGS
@given(window=window_st)
def test_stabilized_signs_make_dominant_components_positive(window):
    _, _, vt = np.linalg.svd(window, full_matrices=False)
    stable = stabilize_signs(vt)
    for row in stable:
        assert row[int(np.argmax(np.abs(row)))] >= 0.0
    # Stabilization is idempotent and only ever flips whole rows.
    np.testing.assert_array_equal(stabilize_signs(stable), stable)
    np.testing.assert_allclose(np.abs(stable), np.abs(vt), rtol=0, atol=0)


def test_zero_window_yields_zero_vector():
    np.testing.assert_array_equal(
        weighted_svd_feature(np.zeros((8, 3))), np.zeros(3)
    )

"""Property-based tests for the signature store and shard router.

Three invariants that must hold for *arbitrary* inputs, not just the
hand-picked fixtures:

* segment round-trip identity — what goes in comes out bit-for-bit,
  through any number of ingest batches and a compaction;
* torn-tail recovery — cut a segment file at any byte offset and
  :func:`scan_segment` recovers exactly the complete records before the
  cut, never a partial one;
* router stability — the tenant→shard assignment is a pure function of
  the key and shard count, identical across router instances and runs.

Skipped entirely when ``hypothesis`` is not installed.
"""

from __future__ import annotations

import numpy as np
import pytest

pytestmark = pytest.mark.properties

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.retrieval.shard import ShardRouter, tenant_shard  # noqa: E402
from repro.retrieval.store import (  # noqa: E402
    SignatureStore,
    record_width,
    scan_segment,
    segment_header_size,
)

SETTINGS = settings(max_examples=25, deadline=None)

batch_st = st.tuples(
    st.integers(min_value=1, max_value=30),   # records
    st.integers(min_value=1, max_value=12),   # dimensions
    st.integers(min_value=0, max_value=2**32 - 1),  # numpy seed
)

tenant_st = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=24,
)


def make_batch(n, dim, seed):
    rng = np.random.default_rng(seed)
    vectors = rng.uniform(-10.0, 10.0, size=(n, dim))
    labels = [f"label-{rng.integers(0, 4)}" for _ in range(n)]
    tenants = [f"tenant-{rng.integers(0, 3)}" for _ in range(n)]
    return vectors, labels, tenants


@SETTINGS
@given(batches=st.lists(batch_st, min_size=1, max_size=4))
def test_round_trip_and_compaction_identity(batches, tmp_path_factory):
    """write → read → compact → read is the identity on every field."""
    root = tmp_path_factory.mktemp("prop") / "store"
    store = SignatureStore(root)
    dim = batches[0][1]
    expected_vecs, expected_labels, expected_tenants = [], [], []
    for n, _, seed in batches:
        vectors, labels, tenants = make_batch(n, dim, seed)
        store.ingest(vectors, labels, tenants)
        expected_vecs.append(vectors)
        expected_labels.extend(labels)
        expected_tenants.extend(tenants)
    expected = np.vstack(expected_vecs)

    before = store.records()
    assert before.vectors.tobytes() == expected.tobytes()
    assert list(before.labels) == expected_labels
    assert list(before.tenants) == expected_tenants

    store.compact()
    after = SignatureStore(root).records()
    assert after.vectors.tobytes() == expected.tobytes()
    assert list(after.labels) == expected_labels
    assert list(after.tenants) == expected_tenants
    assert np.array_equal(after.ids, before.ids)


@SETTINGS
@given(batch=batch_st, cut=st.integers(min_value=0, max_value=10_000))
def test_torn_tail_recovers_every_complete_record(batch, cut,
                                                  tmp_path_factory):
    """Truncating at byte ``cut`` yields exactly the records before it."""
    n, dim, seed = batch
    root = tmp_path_factory.mktemp("torn") / "store"
    store = SignatureStore(root)
    vectors, labels, tenants = make_batch(n, dim, seed)
    result = store.ingest(vectors, labels, tenants)
    seg = root / result.segment
    raw = seg.read_bytes()
    cut = min(cut, len(raw))
    seg.write_bytes(raw[:cut])

    scan = scan_segment(seg)
    header = segment_header_size()
    if cut < header:
        expected_complete = 0
    else:
        expected_complete = min((cut - header) // record_width(dim), n)
    assert scan.n_complete == expected_complete
    # tobytes() sidesteps the (0, 0)-vs-(0, dim) empty-shape distinction.
    assert scan.vectors.tobytes() == vectors[:expected_complete].tobytes()
    assert np.array_equal(
        scan.ids, np.arange(expected_complete, dtype=np.uint64)
    )
    assert scan.truncated == (expected_complete < n) or cut < header


@SETTINGS
@given(tenant=tenant_st, n_shards=st.integers(min_value=1, max_value=64))
def test_router_is_stable_across_instances(tenant, n_shards):
    """Same key → same shard, for any router instance and any run."""
    direct = tenant_shard(tenant, n_shards)
    assert 0 <= direct < n_shards
    assert tenant_shard(tenant, n_shards) == direct
    a = ShardRouter(n_shards=n_shards).fit(np.zeros((1, 2)))
    b = ShardRouter(n_shards=n_shards).fit(np.ones((3, 5)))
    assert a.shard_of_tenant(tenant) == direct
    assert b.shard_of_tenant(tenant) == direct


@SETTINGS
@given(
    tenants=st.lists(tenant_st, min_size=1, max_size=40),
    n_shards=st.integers(min_value=1, max_value=16),
)
def test_router_assign_matches_elementwise(tenants, n_shards):
    router = ShardRouter(n_shards=n_shards).fit(np.zeros((1, 2)))
    assigned = router.assign(tenants, np.zeros((len(tenants), 2)))
    expected = [tenant_shard(t, n_shards) for t in tenants]
    assert list(assigned) == expected

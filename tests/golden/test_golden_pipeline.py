"""Golden end-to-end pipeline test: committed inputs, exact expected outputs.

A small dataset is committed under ``tests/golden/data/`` together with the
expected database signatures and classifications
(``expected_pipeline.json``).  The test replays the full pipeline — load,
split, featurize, cluster, classify — and compares **exactly** (floats
round-trip through JSON ``repr`` without loss), so any numeric drift in the
feature or clustering code is caught, not just gross breakage.

When drift is intentional (an algorithm fix changed the numbers), rerun with
``pytest tests/golden --regen-goldens`` and commit the rewritten files; the
diff in review then documents exactly what moved.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.model import MotionClassifier
from repro.data.serialize import load_dataset, save_dataset
from repro.eval.metrics import misclassification_rate
from tests.factories import toy_motion_dataset

GOLDEN_DIR = Path(__file__).parent
DATASET_STEM = GOLDEN_DIR / "data" / "golden_dataset"
EXPECTED_PATH = GOLDEN_DIR / "expected_pipeline.json"

CONFIG = {
    "n_clusters": 4,
    "window_ms": 100.0,
    "test_fraction": 0.25,
    "seed": 0,
}


def compute_actual() -> dict:
    """Run the pipeline on the committed dataset; plain-JSON result."""
    dataset = load_dataset(DATASET_STEM)
    train, test = dataset.train_test_split(CONFIG["test_fraction"],
                                           seed=CONFIG["seed"])
    model = MotionClassifier(n_clusters=CONFIG["n_clusters"],
                             window_ms=CONFIG["window_ms"])
    model.fit(train, seed=CONFIG["seed"])
    signatures = {
        key: [float(v) for v in vector]
        for key, vector in zip(model.database_keys, model.database_signatures)
    }
    classifications = {rec.key: model.classify(rec) for rec in test}
    true_labels = [rec.label for rec in test]
    return {
        "config": CONFIG,
        "signatures": signatures,
        "classifications": classifications,
        "misclassification_pct": float(
            misclassification_rate(true_labels,
                                   [classifications[r.key] for r in test])
        ),
    }


def describe_drift(expected: dict, actual: dict) -> list:
    """Human-readable description of every difference (empty when equal)."""
    problems = []
    for section in ("signatures", "classifications"):
        exp, act = expected[section], actual[section]
        for key in sorted(set(exp) - set(act)):
            problems.append(f"{section}: {key!r} disappeared")
        for key in sorted(set(act) - set(exp)):
            problems.append(f"{section}: {key!r} is new")
    for key, exp_vec in expected["signatures"].items():
        act_vec = actual["signatures"].get(key)
        if act_vec is None or act_vec == exp_vec:
            continue
        diff = np.abs(np.asarray(act_vec) - np.asarray(exp_vec))
        problems.append(
            f"signatures[{key!r}]: {int((diff > 0).sum())}/{diff.size} "
            f"components drifted, max |Δ| = {diff.max():.3e} "
            f"(first at index {int(np.argmax(diff > 0))})"
        )
    for key, exp_label in expected["classifications"].items():
        act_label = actual["classifications"].get(key)
        if act_label is not None and act_label != exp_label:
            problems.append(
                f"classifications[{key!r}]: expected {exp_label!r}, "
                f"got {act_label!r}"
            )
    if expected["misclassification_pct"] != actual["misclassification_pct"]:
        problems.append(
            f"misclassification_pct: expected "
            f"{expected['misclassification_pct']!r}, got "
            f"{actual['misclassification_pct']!r}"
        )
    if expected["config"] != actual["config"]:
        problems.append(
            f"config: expected {expected['config']}, got {actual['config']}"
        )
    return problems


def regenerate() -> dict:
    """Rewrite the committed dataset and expected outputs."""
    DATASET_STEM.parent.mkdir(parents=True, exist_ok=True)
    save_dataset(toy_motion_dataset(), DATASET_STEM)
    actual = compute_actual()
    with open(EXPECTED_PATH, "w", encoding="utf-8") as handle:
        json.dump(actual, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return actual


def test_pipeline_matches_goldens(regen_goldens):
    if regen_goldens:
        regenerate()
        pytest.skip("golden files regenerated; rerun without --regen-goldens")
    assert EXPECTED_PATH.exists() and DATASET_STEM.with_suffix(".npz").exists(), (
        "golden files missing; generate them with: "
        "pytest tests/golden --regen-goldens"
    )
    with open(EXPECTED_PATH, encoding="utf-8") as handle:
        expected = json.load(handle)
    actual = compute_actual()
    problems = describe_drift(expected, actual)
    assert not problems, (
        "pipeline output drifted from the goldens:\n  "
        + "\n  ".join(problems)
        + "\n(if the change is intentional, refresh with "
        "`pytest tests/golden --regen-goldens` and commit the diff)"
    )


def test_float32_pipeline_tracks_float64_goldens():
    """The float32 fast path, replayed on the committed dataset, must stay
    within the documented band of the float64 goldens: every database
    signature tolerance-close, every classification identical.  (float64
    goldens themselves are byte-identical under the batched default — the
    main golden test covers that.)"""
    from repro.features.combine import WindowFeaturizer

    with open(EXPECTED_PATH, encoding="utf-8") as handle:
        expected = json.load(handle)
    dataset = load_dataset(DATASET_STEM)
    train, test = dataset.train_test_split(CONFIG["test_fraction"],
                                           seed=CONFIG["seed"])
    model = MotionClassifier(
        n_clusters=CONFIG["n_clusters"],
        featurizer=WindowFeaturizer(window_ms=CONFIG["window_ms"],
                                    dtype="float32"),
    )
    model.fit(train, seed=CONFIG["seed"])
    signatures = dict(zip(model.database_keys, model.database_signatures))
    assert sorted(signatures) == sorted(expected["signatures"])
    for key, exp_vec in expected["signatures"].items():
        np.testing.assert_allclose(
            signatures[key], np.asarray(exp_vec), rtol=1e-3, atol=1e-4,
            err_msg=f"float32 signature for {key!r} left the band",
        )
    for rec in test:
        assert model.classify(rec) == expected["classifications"][rec.key]


def test_golden_dataset_loads_and_is_wellformed():
    dataset = load_dataset(DATASET_STEM)
    assert len(dataset) == 12
    assert sorted(set(r.label for r in dataset)) == ["alpha", "beta", "gamma"]

"""The public API surface: exports exist, are documented, and cohere."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.signal",
    "repro.skeleton",
    "repro.motions",
    "repro.mocap",
    "repro.emg",
    "repro.sync",
    "repro.data",
    "repro.features",
    "repro.fuzzy",
    "repro.core",
    "repro.retrieval",
    "repro.baselines",
    "repro.eval",
]


def test_version_is_set():
    assert repro.__version__ == "1.0.0"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_exported_items_are_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented {undocumented}"


def test_library_does_not_import_scipy():
    """The library is numpy-only; scipy is a test oracle exclusively."""
    import subprocess
    import sys

    code = (
        "import sys; sys.modules['scipy'] = None\n"
        "import repro, repro.signal, repro.core, repro.eval, repro.retrieval\n"
        "import repro.baselines, repro.emg, repro.mocap, repro.cli\n"
        "print('clean')"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr
    assert "clean" in proc.stdout


def test_paper_entry_points_exist():
    """The names a reader of the paper would look for."""
    from repro import (  # noqa: F401
        FuzzyCMeans,
        MotionClassifier,
        build_dataset,
        hand_protocol,
        leg_protocol,
        membership_matrix,
        motion_signature,
        run_experiment,
        sweep,
    )
    from repro.features import IAVExtractor, WeightedSVDExtractor  # noqa: F401

"""Integral of Absolute Value (paper Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.errors import ValidationError
from repro.features.iav import IAVExtractor, integral_absolute_value


class TestIntegralAbsoluteValue:
    def test_hand_computation(self):
        window = np.array([[1.0, -2.0], [3.0, -4.0], [-5.0, 6.0]])
        np.testing.assert_array_equal(
            integral_absolute_value(window), [9.0, 12.0]
        )

    def test_per_channel_independence(self, rng):
        window = rng.normal(size=(20, 3))
        full = integral_absolute_value(window)
        for c in range(3):
            single = integral_absolute_value(window[:, [c]])
            assert single[0] == pytest.approx(full[c])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            integral_absolute_value(np.zeros((0, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            integral_absolute_value(np.zeros(5))

    @given(
        arrays(np.float64, (15, 3), elements={"min_value": -1e3, "max_value": 1e3})
    )
    @settings(max_examples=100)
    def test_properties(self, window):
        iav = integral_absolute_value(window)
        # Non-negative, zero iff the channel is silent.
        assert np.all(iav >= 0)
        for c in range(3):
            if np.all(window[:, c] == 0):
                assert iav[c] == 0
        # Scale equivariance: IAV(2x) = 2 IAV(x).
        np.testing.assert_allclose(
            integral_absolute_value(2.0 * window), 2.0 * iav, rtol=1e-12
        )
        # Additivity over window splits.
        first = integral_absolute_value(window[:7])
        second = integral_absolute_value(window[7:])
        np.testing.assert_allclose(first + second, iav, rtol=1e-9, atol=1e-9)

    def test_grows_with_window_size(self, rng):
        """Longer windows accumulate more absolute area (the reason the
        feature depends on the paper's window-size parameter)."""
        signal = np.abs(rng.normal(size=(100, 1))) + 0.1
        short = integral_absolute_value(signal[:10])
        long = integral_absolute_value(signal)
        assert long[0] > short[0]


class TestIAVExtractor:
    def test_extract_matches_function(self, rng):
        window = rng.normal(size=(12, 4))
        np.testing.assert_array_equal(
            IAVExtractor().extract(window), integral_absolute_value(window)
        )

    def test_feature_names(self):
        names = IAVExtractor().feature_names(["biceps_r", "triceps_r"])
        assert names == ["iav:biceps_r", "iav:triceps_r"]

    def test_features_per_channel(self):
        assert IAVExtractor().features_per_channel == 1

"""Per-window combined feature vectors (paper Section 3.3)."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.combine import WindowFeaturizer
from repro.features.emg_extra import RMSExtractor
from repro.features.iav import integral_absolute_value
from repro.features.svd import weighted_svd_feature
from repro.utils.windows import window_bounds


class TestLayout:
    def test_dimensions_emg_first_then_mocap(self, make_record):
        record = make_record(n_segments=4, n_channels=4)
        wf = WindowFeaturizer(window_ms=100.0)
        features = wf.features(record)
        # m = 4 IAV dims, n = 12 SVD dims -> 16 total, as in the paper's
        # right-hand study.
        assert features.n_dims == 16
        assert list(features.names[:4]) == [f"iav:ch{j}" for j in range(4)]
        assert features.names[4].startswith("svd:seg0")

    def test_window_count_matches_bounds(self, make_record):
        record = make_record(n_frames=120)
        wf = WindowFeaturizer(window_ms=100.0)  # 12 frames at 120 Hz
        features = wf.features(record)
        assert features.n_windows == len(window_bounds(120, 12))
        assert features.bounds == tuple(window_bounds(120, 12))

    def test_values_match_manual_extraction(self, make_record):
        record = make_record(n_segments=2, n_channels=3)
        wf = WindowFeaturizer(window_ms=100.0)
        features = wf.features(record)
        start, stop = features.bounds[0]
        emg = np.asarray(record.emg.data_volts)[start:stop]
        mocap = np.asarray(record.mocap.matrix_mm)[start:stop]
        expected = np.concatenate([
            integral_absolute_value(emg),
            weighted_svd_feature(mocap[:, :3]),
            weighted_svd_feature(mocap[:, 3:]),
        ])
        np.testing.assert_allclose(features.matrix[0], expected)

    def test_both_streams_cut_identically(self, make_record):
        """The critical synchronization property of Section 3.3."""
        record = make_record(n_frames=100)
        wf = WindowFeaturizer(window_ms=150.0, stride_ms=50.0)
        features = wf.features(record)
        for start, stop in features.bounds:
            assert 0 <= start < stop <= record.n_frames


class TestModalitySwitches:
    def test_emg_only(self, make_record):
        record = make_record(n_channels=4)
        wf = WindowFeaturizer(window_ms=100.0, use_mocap=False)
        features = wf.features(record)
        assert features.n_dims == 4
        assert all(n.startswith("iav:") for n in features.names)

    def test_mocap_only(self, make_record):
        record = make_record(n_segments=3)
        wf = WindowFeaturizer(window_ms=100.0, use_emg=False)
        features = wf.features(record)
        assert features.n_dims == 9
        assert all(n.startswith("svd:") for n in features.names)

    def test_both_off_rejected(self):
        with pytest.raises(FeatureError):
            WindowFeaturizer(use_emg=False, use_mocap=False)

    def test_fused_is_concatenation_of_single_modalities(self, make_record):
        record = make_record()
        both = WindowFeaturizer(window_ms=100.0).features(record)
        emg = WindowFeaturizer(window_ms=100.0, use_mocap=False).features(record)
        mocap = WindowFeaturizer(window_ms=100.0, use_emg=False).features(record)
        np.testing.assert_allclose(
            both.matrix, np.hstack([emg.matrix, mocap.matrix])
        )


class TestConfiguration:
    def test_custom_emg_extractor(self, make_record):
        record = make_record(n_channels=2)
        wf = WindowFeaturizer(window_ms=100.0, emg_extractor=RMSExtractor(),
                              use_mocap=False)
        features = wf.features(record)
        assert all(n.startswith("rms:") for n in features.names)

    def test_stride_creates_overlapping_windows(self, make_record):
        record = make_record(n_frames=120)
        dense = WindowFeaturizer(window_ms=100.0, stride_ms=25.0).features(record)
        sparse = WindowFeaturizer(window_ms=100.0).features(record)
        assert dense.n_windows > sparse.n_windows

    def test_window_frames_at_paper_rates(self):
        wf = WindowFeaturizer(window_ms=50.0)
        assert wf.window_frames(120.0) == 6
        assert wf.stride_frames(120.0) == 6

    def test_rejects_bad_window(self):
        with pytest.raises(Exception):
            WindowFeaturizer(window_ms=0.0)

    def test_feature_names_align_with_matrix(self, make_record):
        record = make_record()
        wf = WindowFeaturizer(window_ms=100.0)
        features = wf.features(record)
        assert len(features.names) == features.matrix.shape[1]
        assert wf.feature_names(record) == list(features.names)

"""Weighted-SVD joint features (paper Eqs. 2–3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.errors import FeatureError
from repro.features.svd import WeightedSVDExtractor, stabilize_signs, weighted_svd_feature


class TestWeightedSVDFeature:
    def test_matches_manual_computation(self, rng):
        window = rng.normal(size=(20, 3)) * 50
        _, s, vt = np.linalg.svd(window, full_matrices=False)
        vt = stabilize_signs(vt)
        expected = (s / s.sum()) @ vt
        np.testing.assert_allclose(weighted_svd_feature(window), expected, atol=1e-12)

    def test_length_three(self, rng):
        assert weighted_svd_feature(rng.normal(size=(10, 3))).shape == (3,)

    def test_zero_window_gives_zero_feature(self):
        np.testing.assert_array_equal(weighted_svd_feature(np.zeros((8, 3))), 0.0)

    def test_zero_window_keeps_working_dtype(self):
        """Regression: the degenerate path used to return float64 zeros for
        any input, which would poison a float32 batch."""
        out32 = weighted_svd_feature(np.zeros((8, 3), dtype=np.float32))
        assert out32.dtype == np.float32
        out64 = weighted_svd_feature(np.zeros((8, 3)))
        assert out64.dtype == np.float64
        # Non-float inputs still promote to the float64 working dtype.
        assert weighted_svd_feature(np.zeros((8, 3), dtype=int)).dtype == np.float64

    def test_scale_invariance(self, rng):
        """Normalized singular values make the feature scale-free: the
        feature captures *geometry*, as the paper claims."""
        window = rng.normal(size=(15, 3)) * 100
        a = weighted_svd_feature(window)
        b = weighted_svd_feature(window * 7.3)
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_sign_stability_against_perturbation(self, rng):
        """Tiny noise must not flip the feature's sign — the reason for the
        sign-stabilization rule."""
        window = rng.normal(size=(30, 3)) * 10
        base = weighted_svd_feature(window)
        for _ in range(10):
            noisy = window + rng.normal(0, 1e-6, size=window.shape)
            np.testing.assert_allclose(
                weighted_svd_feature(noisy), base, atol=1e-3
            )

    def test_captures_dominant_direction(self):
        """Motion along one axis puts the dominant weight on that axis."""
        t = np.linspace(0, 1, 50)
        window = np.stack([100 * t, 0 * t, 0 * t], axis=1)
        feature = weighted_svd_feature(window)
        assert abs(feature[0]) > abs(feature[1]) + abs(feature[2])

    def test_distinguishes_different_geometries(self, rng):
        t = np.linspace(0, 2 * np.pi, 40)
        circle_xy = np.stack([np.cos(t), np.sin(t), 0 * t], axis=1)
        line_z = np.stack([0 * t, 0 * t, t], axis=1)
        a = weighted_svd_feature(circle_xy)
        b = weighted_svd_feature(line_z)
        assert np.linalg.norm(a - b) > 0.3

    def test_short_window_few_rows(self):
        out = weighted_svd_feature(np.array([[1.0, 2.0, 3.0]]))
        assert out.shape == (3,)
        assert np.all(np.isfinite(out))

    def test_rejects_wrong_columns(self):
        with pytest.raises(FeatureError):
            weighted_svd_feature(np.zeros((5, 4)))

    @given(
        arrays(np.float64, (12, 3), elements={"min_value": -1e3, "max_value": 1e3})
    )
    @settings(max_examples=100)
    def test_feature_bounded_by_unit_vectors(self, window):
        """The feature is a convex combination of unit vectors: norm <= ~sqrt(3)."""
        feature = weighted_svd_feature(window)
        assert np.all(np.isfinite(feature))
        assert np.linalg.norm(feature) <= np.sqrt(3) + 1e-9


class TestStabilizeSigns:
    def test_dominant_component_positive(self, rng):
        vt = np.linalg.svd(rng.normal(size=(10, 3)))[2]
        fixed = stabilize_signs(vt)
        for row in fixed:
            assert row[np.argmax(np.abs(row))] > 0

    def test_idempotent(self, rng):
        vt = np.linalg.svd(rng.normal(size=(10, 3)))[2]
        once = stabilize_signs(vt)
        np.testing.assert_array_equal(stabilize_signs(once), once)

    def test_flip_invariance(self, rng):
        vt = np.linalg.svd(rng.normal(size=(10, 3)))[2]
        flipped = vt * np.array([[-1.0], [1.0], [-1.0]])
        np.testing.assert_allclose(
            stabilize_signs(vt), stabilize_signs(flipped), atol=1e-12
        )


class TestWeightedSVDExtractor:
    def test_multi_joint_layout(self, rng):
        """extract() concatenates per-joint features joint-major."""
        window = rng.normal(size=(20, 6))
        extractor = WeightedSVDExtractor()
        full = extractor.extract(window)
        assert full.shape == (6,)
        np.testing.assert_allclose(full[:3], weighted_svd_feature(window[:, :3]))
        np.testing.assert_allclose(full[3:], weighted_svd_feature(window[:, 3:]))

    def test_rejects_non_multiple_of_three(self, rng):
        with pytest.raises(FeatureError):
            WeightedSVDExtractor().extract(rng.normal(size=(10, 5)))

    def test_feature_names(self):
        names = WeightedSVDExtractor().feature_names(["hand_r"])
        assert names == ["svd:hand_r:x", "svd:hand_r:y", "svd:hand_r:z"]

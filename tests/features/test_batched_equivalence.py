"""Differential harness: batched kernels vs. the scalar reference oracle.

The batched hot path (``impl="batched"``, :mod:`repro.features.batched`)
must be **bit-identical** to the retained scalar loop (``impl="scalar"``)
in float64 — same LAPACK calls, same ``matmul`` contraction, same pairwise
summation tree — and **tolerance-banded** in float32, where the kernels
compute natively in single precision.  The tolerance policy lives in
docs/TESTING.md; the band constants here mirror it.

Coverage: every extractor with a vectorized kernel, window sizes including
``w < 3`` and ragged tails, overlapping strides, several joint counts, and
both dtypes; hypothesis properties for the stacked sign-stabilization rule
and for strided-view / ``iter_windows`` boundary agreement.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.features.batched import stabilize_signs_batched
from repro.features.combine import WindowFeaturizer
from repro.features.emg_extra import (
    MeanAbsoluteValueExtractor,
    WaveformLengthExtractor,
    ZeroCrossingExtractor,
)
from repro.features.iav import IAVExtractor
from repro.features.svd import WeightedSVDExtractor, stabilize_signs
from repro.utils.windows import iter_windows, window_batches, window_bounds
from tests.factories import synthetic_record

#: float32 band against the float64 oracle (documented in docs/TESTING.md):
#: one SVD + one normalized contraction loses at most a few ULPs beyond
#: single-precision epsilon (~1.2e-7); observed relative error is ~1e-6.
F32_RTOL = 1e-4
F32_ATOL = 1e-5

#: EMG extractors whose ``extract_batch`` is a vectorized kernel (not the
#: base-class loop), paired with a per-window scalar call.
EMG_EXTRACTORS = [
    IAVExtractor(),
    MeanAbsoluteValueExtractor(),
    WaveformLengthExtractor(),
    ZeroCrossingExtractor(),
    ZeroCrossingExtractor(threshold=0.05),
]


def _oracle_stack(extractor, windows):
    """The scalar oracle: extract per window, stacked."""
    return np.stack([extractor.extract(windows[i])
                     for i in range(windows.shape[0])])


class TestEMGKernelEquivalence:
    """Vectorized EMG kernels vs. per-window scalar extraction."""

    @pytest.mark.parametrize("extractor", EMG_EXTRACTORS,
                             ids=lambda e: f"{type(e).__name__}")
    @pytest.mark.parametrize("w", [1, 2, 3, 5, 12, 24])
    @pytest.mark.parametrize("n_channels", [1, 4])
    def test_float64_bit_identical(self, rng, extractor, w, n_channels):
        windows = rng.normal(size=(7, w, n_channels))
        got = extractor.extract_batch(windows)
        want = _oracle_stack(extractor, windows)
        np.testing.assert_array_equal(got, want)
        assert got.dtype == np.float64

    @pytest.mark.parametrize("extractor", EMG_EXTRACTORS,
                             ids=lambda e: f"{type(e).__name__}")
    def test_float32_banded_and_native(self, rng, extractor):
        windows = rng.normal(size=(6, 12, 4)).astype(np.float32)
        got = extractor.extract_batch(windows)
        assert got.dtype == np.float32
        want64 = _oracle_stack(extractor, windows.astype(np.float64))
        np.testing.assert_allclose(got, want64, rtol=F32_RTOL, atol=F32_ATOL)

    def test_rectified_signals_match(self, rng):
        """Conditioned (non-negative) EMG — the real input — agrees too."""
        windows = np.abs(rng.normal(size=(5, 12, 4)))
        for extractor in EMG_EXTRACTORS:
            np.testing.assert_array_equal(
                extractor.extract_batch(windows),
                _oracle_stack(extractor, windows),
            )


class TestSVDKernelEquivalence:
    """Stacked weighted SVD vs. the per-joint scalar Eq. 3 oracle."""

    @pytest.mark.parametrize("w", [1, 2, 3, 6, 12, 24])
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_float64_bit_identical(self, rng, w, k):
        extractor = WeightedSVDExtractor()
        windows = rng.normal(size=(6, w, 3 * k)) * 40
        got = extractor.extract_batch(windows)
        want = _oracle_stack(extractor, windows)
        np.testing.assert_array_equal(got, want)
        assert got.dtype == np.float64

    def test_float32_banded_and_native(self, rng):
        extractor = WeightedSVDExtractor()
        windows = (rng.normal(size=(6, 12, 6)) * 40).astype(np.float32)
        got = extractor.extract_batch(windows)
        assert got.dtype == np.float32
        want64 = _oracle_stack(extractor, windows.astype(np.float64))
        np.testing.assert_allclose(got, want64, rtol=F32_RTOL, atol=F32_ATOL)

    def test_zero_motion_windows_inside_a_batch(self, rng):
        """Degenerate all-zero joints zero out without poisoning neighbours."""
        extractor = WeightedSVDExtractor()
        windows = rng.normal(size=(4, 10, 6))
        windows[1] = 0.0            # whole window degenerate
        windows[2, :, 3:] = 0.0     # one joint degenerate
        got = extractor.extract_batch(windows)
        want = _oracle_stack(extractor, windows)
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(got[1], 0.0)
        np.testing.assert_array_equal(got[2, 3:], 0.0)
        assert np.all(np.isfinite(got))


class TestFeaturizerEquivalence:
    """End-to-end: WindowFeaturizer impl='batched' vs. impl='scalar'."""

    @pytest.mark.parametrize("n_frames,window_ms,stride_ms", [
        (120, 100.0, None),    # exact division, non-overlapping
        (123, 100.0, None),    # dropped sub-half tail
        (130, 100.0, None),    # kept ragged tail
        (123, 100.0, 25.0),    # overlapping stride, several tail lengths
        (7, 100.0, None),      # stream shorter than the window
        (120, 20.0, 5.0),      # small windows, dense overlap
    ])
    def test_float64_bit_identical(self, n_frames, window_ms, stride_ms):
        record = synthetic_record("wave", n_frames=n_frames, seed=9)
        batched = WindowFeaturizer(window_ms=window_ms, stride_ms=stride_ms,
                                   impl="batched")
        scalar = WindowFeaturizer(window_ms=window_ms, stride_ms=stride_ms,
                                  impl="scalar")
        a, b = batched.features(record), scalar.features(record)
        assert a.bounds == b.bounds
        assert a.names == b.names
        np.testing.assert_array_equal(a.matrix, b.matrix)
        assert a.matrix.dtype == np.float64

    @pytest.mark.parametrize("use_emg,use_mocap",
                             [(True, False), (False, True)])
    def test_single_modality_bit_identical(self, use_emg, use_mocap):
        record = synthetic_record("grasp", n_frames=130, seed=2)
        kwargs = dict(window_ms=100.0, stride_ms=25.0,
                      use_emg=use_emg, use_mocap=use_mocap)
        a = WindowFeaturizer(impl="batched", **kwargs).features(record)
        b = WindowFeaturizer(impl="scalar", **kwargs).features(record)
        np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_float32_banded_against_float64_oracle(self):
        record = synthetic_record("wave", n_frames=240, seed=5)
        m32 = WindowFeaturizer(impl="batched", dtype="float32",
                               stride_ms=25.0).features(record).matrix
        m64 = WindowFeaturizer(impl="scalar",
                               stride_ms=25.0).features(record).matrix
        assert m32.dtype == np.float32
        np.testing.assert_allclose(m32, m64, rtol=F32_RTOL, atol=F32_ATOL)

    def test_float32_scalar_vs_batched_banded(self):
        record = synthetic_record("point", n_frames=130, seed=4)
        a = WindowFeaturizer(impl="batched", dtype="float32").features(record)
        b = WindowFeaturizer(impl="scalar", dtype="float32").features(record)
        assert a.matrix.dtype == b.matrix.dtype == np.float32
        np.testing.assert_allclose(a.matrix, b.matrix,
                                   rtol=F32_RTOL, atol=F32_ATOL)

    def test_default_impl_is_batched(self):
        assert WindowFeaturizer().impl == "batched"
        assert WindowFeaturizer().dtype == "float64"

    def test_fingerprint_shared_in_float64_split_in_float32(self):
        """float64 batched/scalar share cache entries (bit-identical);
        float32 batched/scalar never collide (only tolerance-close)."""
        f64b = WindowFeaturizer(impl="batched").cache_fingerprint()
        f64s = WindowFeaturizer(impl="scalar").cache_fingerprint()
        f32b = WindowFeaturizer(impl="batched",
                                dtype="float32").cache_fingerprint()
        f32s = WindowFeaturizer(impl="scalar",
                                dtype="float32").cache_fingerprint()
        assert f64b == f64s
        assert len({f64b, f32b, f32s}) == 3


class TestStackedSignStabilizationProperties:
    """Hypothesis properties for the batched sign rule."""

    @given(arrays(np.float64, (5, 3, 3),
                  elements={"min_value": -100.0, "max_value": 100.0}))
    @settings(max_examples=60)
    def test_matches_scalar_rule(self, vt):
        batched = stabilize_signs_batched(vt)
        for i in range(vt.shape[0]):
            np.testing.assert_array_equal(batched[i], stabilize_signs(vt[i]))

    @given(arrays(np.float64, (4, 3, 3),
                  elements={"min_value": -100.0, "max_value": 100.0,
                            "allow_subnormal": False}),
           st.lists(st.sampled_from([-1.0, 1.0]), min_size=3, max_size=3))
    @settings(max_examples=60)
    def test_sign_flip_invariance(self, vt, flips):
        """Flipping any rows before stabilization changes nothing after."""
        flipped = vt * np.asarray(flips)[None, :, None]
        np.testing.assert_array_equal(
            stabilize_signs_batched(vt), stabilize_signs_batched(flipped)
        )

    @given(arrays(np.float64, (4, 3, 3),
                  elements={"min_value": -100.0, "max_value": 100.0}))
    @settings(max_examples=60)
    def test_dominant_component_nonnegative(self, vt):
        fixed = stabilize_signs_batched(vt)
        flat = fixed.reshape(-1, fixed.shape[-1])
        dominant = np.argmax(np.abs(flat), axis=-1)
        lead = np.take_along_axis(flat, dominant[:, None], axis=-1)[:, 0]
        assert np.all(lead >= 0)

    @given(arrays(np.float64, (3, 2, 4),
                  elements={"min_value": -10.0, "max_value": 10.0}))
    @settings(max_examples=40)
    def test_idempotent(self, vt):
        once = stabilize_signs_batched(vt)
        np.testing.assert_array_equal(stabilize_signs_batched(once), once)


class TestWindowBatchBoundaries:
    """window_batches vs. iter_windows / window_bounds boundary agreement."""

    @given(n=st.integers(1, 200), window=st.integers(1, 30),
           stride=st.integers(1, 30))
    @settings(max_examples=150)
    def test_batches_cover_iter_windows_exactly(self, n, window, stride):
        data = np.arange(n * 3, dtype=float).reshape(n, 3)
        bounds = window_bounds(n, window, stride)
        batches = window_batches(data, bounds, window, stride)
        rebuilt = [w for _, batch in batches for w in batch]
        expected = list(iter_windows(data, window, stride))
        assert len(rebuilt) == len(expected) == len(bounds)
        for got, want in zip(rebuilt, expected):
            np.testing.assert_array_equal(got, want)

    @given(n=st.integers(1, 200), window=st.integers(1, 30),
           stride=st.integers(1, 30))
    @settings(max_examples=100)
    def test_first_indices_partition_bounds(self, n, window, stride):
        data = np.zeros((n, 2))
        bounds = window_bounds(n, window, stride)
        batches = window_batches(data, bounds, window, stride)
        covered = 0
        for first, batch in batches:
            assert first == covered
            covered += batch.shape[0]
            for row in range(batch.shape[0]):
                a, b = bounds[first + row]
                assert batch.shape[1] == b - a
        assert covered == len(bounds)

    def test_full_window_batch_is_zero_copy(self):
        data = np.arange(48.0).reshape(24, 2)
        bounds = window_bounds(24, 6)
        batches = window_batches(data, bounds, 6)
        assert len(batches) == 1
        assert batches[0][1].base is not None  # a view, not a copy

    def test_empty_bounds_give_no_batches(self):
        assert window_batches(np.zeros((0, 2)), [], 4) == []

"""Feature standardization."""

import numpy as np
import pytest

from repro.errors import FeatureError, NotFittedError
from repro.features.scaling import FeatureScaler


@pytest.fixture
def matrix(rng):
    # Mixed scales: a volts-magnitude column next to order-1 columns,
    # the exact situation that motivates the scaler.
    cols = [rng.normal(2e-3, 5e-4, 200), rng.normal(0, 1, 200), rng.normal(5, 2, 200)]
    return np.stack(cols, axis=1)


class TestZScore:
    def test_standardizes_columns(self, matrix):
        scaled = FeatureScaler("zscore").fit_transform(matrix)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-12)

    def test_transform_uses_fitted_stats(self, matrix, rng):
        scaler = FeatureScaler("zscore").fit(matrix)
        query = rng.normal(size=(5, 3))
        out = scaler.transform(query)
        np.testing.assert_allclose(
            out, (query - matrix.mean(axis=0)) / matrix.std(axis=0)
        )

    def test_inverse_roundtrip(self, matrix):
        scaler = FeatureScaler("zscore").fit(matrix)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(matrix)), matrix, atol=1e-9
        )

    def test_constant_dimension_harmless(self):
        matrix = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = FeatureScaler("zscore").fit_transform(matrix)
        np.testing.assert_allclose(scaled[:, 0], 0.0)
        assert np.all(np.isfinite(scaled))


class TestMinMax:
    def test_maps_to_unit_interval(self, matrix):
        scaled = FeatureScaler("minmax").fit_transform(matrix)
        np.testing.assert_allclose(scaled.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=0), 1.0, atol=1e-12)

    def test_inverse_roundtrip(self, matrix):
        scaler = FeatureScaler("minmax").fit(matrix)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(matrix)), matrix, atol=1e-9
        )


class TestNone:
    def test_identity(self, matrix):
        scaler = FeatureScaler("none")
        out = scaler.fit_transform(matrix)
        np.testing.assert_array_equal(out, matrix)
        assert scaler.is_fitted  # "none" needs no statistics


class TestErrors:
    def test_unknown_mode(self):
        with pytest.raises(FeatureError, match="unknown scaling mode"):
            FeatureScaler("robust")

    def test_transform_before_fit(self, matrix):
        with pytest.raises(NotFittedError):
            FeatureScaler("zscore").transform(matrix)

    def test_inverse_before_fit(self, matrix):
        with pytest.raises(NotFittedError):
            FeatureScaler("zscore").inverse_transform(matrix)

    def test_dimension_mismatch(self, matrix, rng):
        scaler = FeatureScaler("zscore").fit(matrix)
        with pytest.raises(FeatureError, match="dims"):
            scaler.transform(rng.normal(size=(4, 5)))


def test_scaling_balances_modalities(matrix):
    """After z-scoring, the microvolt column influences Euclidean distances
    as much as the order-1 columns — the fusion prerequisite."""
    scaled = FeatureScaler("zscore").fit_transform(matrix)
    spread = scaled.std(axis=0)
    assert spread.max() / spread.min() < 1.0001

"""Baseline EMG features (related-work extractors)."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.emg_extra import (
    ARCoefficientsExtractor,
    HistogramExtractor,
    MeanAbsoluteValueExtractor,
    RMSExtractor,
    WaveformLengthExtractor,
    ZeroCrossingExtractor,
)
from repro.features.iav import integral_absolute_value


class TestZeroCrossing:
    def test_counts_sine_crossings(self):
        t = np.linspace(0, 1, 1000, endpoint=False)
        window = np.sin(2 * np.pi * 5 * t)[:, None]
        count = ZeroCrossingExtractor().extract(window)[0]
        assert 9 <= count <= 10  # ~2 crossings per cycle

    def test_threshold_suppresses_chatter(self, rng):
        noise = 1e-6 * rng.normal(size=(500, 1))
        loose = ZeroCrossingExtractor(threshold=0.0).extract(noise)[0]
        strict = ZeroCrossingExtractor(threshold=1e-3).extract(noise)[0]
        assert strict < loose

    def test_constant_signal_zero_crossings(self):
        window = np.full((50, 2), 3.3)
        np.testing.assert_array_equal(
            ZeroCrossingExtractor().extract(window), [0.0, 0.0]
        )

    def test_names(self):
        assert ZeroCrossingExtractor().feature_names(["a"]) == ["zc:a"]


class TestHistogram:
    def test_bins_sum_to_one(self, rng):
        window = np.abs(rng.normal(size=(40, 2)))
        ext = HistogramExtractor(n_bins=5)
        feats = ext.extract(window)
        assert feats.shape == (10,)
        np.testing.assert_allclose(feats[:5].sum(), 1.0)
        np.testing.assert_allclose(feats[5:].sum(), 1.0)

    def test_silent_channel_concentrates_in_first_bin(self):
        window = np.zeros((20, 1))
        feats = HistogramExtractor(n_bins=4).extract(window)
        np.testing.assert_array_equal(feats, [1.0, 0.0, 0.0, 0.0])

    def test_distinguishes_burst_from_steady(self, rng):
        steady = np.full((100, 1), 0.5)
        burst = np.zeros((100, 1))
        burst[45:55] = 1.0
        ext = HistogramExtractor(n_bins=4)
        assert not np.allclose(ext.extract(steady), ext.extract(burst))

    def test_min_bins(self):
        with pytest.raises(Exception):
            HistogramExtractor(n_bins=1)

    def test_names_layout(self):
        names = HistogramExtractor(n_bins=3).feature_names(["a", "b"])
        assert names == ["hist:a:0", "hist:a:1", "hist:a:2",
                         "hist:b:0", "hist:b:1", "hist:b:2"]


class TestARCoefficients:
    def test_recovers_ar1_pole(self, rng):
        """Fitting an AR(1) process recovers its coefficient."""
        phi = 0.7
        n = 5000
        x = np.zeros(n)
        noise = rng.normal(size=n)
        for i in range(1, n):
            x[i] = phi * x[i - 1] + noise[i]
        coef = ARCoefficientsExtractor(order=1).extract(x[:, None])
        assert abs(coef[0] - phi) < 0.05

    def test_white_noise_has_small_coefficients(self, rng):
        x = rng.normal(size=(3000, 1))
        coefs = ARCoefficientsExtractor(order=4).extract(x)
        assert np.abs(coefs).max() < 0.1

    def test_silent_window_returns_zeros(self):
        coefs = ARCoefficientsExtractor(order=3).extract(np.zeros((50, 2)))
        np.testing.assert_array_equal(coefs, np.zeros(6))

    def test_window_must_exceed_order(self):
        with pytest.raises(FeatureError):
            ARCoefficientsExtractor(order=8).extract(np.zeros((5, 1)))

    def test_names(self):
        names = ARCoefficientsExtractor(order=2).feature_names(["a"])
        assert names == ["ar:a:1", "ar:a:2"]


class TestSimpleAmplitudeFeatures:
    def test_rms_of_known_signal(self):
        window = np.array([[3.0], [4.0], [0.0], [0.0]])
        assert RMSExtractor().extract(window)[0] == pytest.approx(2.5)

    def test_mav_is_iav_over_length(self, rng):
        window = rng.normal(size=(25, 3))
        np.testing.assert_allclose(
            MeanAbsoluteValueExtractor().extract(window),
            integral_absolute_value(window) / 25,
        )

    def test_waveform_length_of_monotone_ramp(self):
        window = np.linspace(0, 5, 11)[:, None]
        assert WaveformLengthExtractor().extract(window)[0] == pytest.approx(5.0)

    def test_waveform_length_single_sample(self):
        np.testing.assert_array_equal(
            WaveformLengthExtractor().extract(np.ones((1, 2))), [0.0, 0.0]
        )

    def test_wl_larger_for_jagged_signal(self, rng):
        smooth = np.linspace(0, 1, 100)[:, None]
        jagged = smooth + 0.3 * rng.normal(size=(100, 1))
        wl = WaveformLengthExtractor()
        assert wl.extract(jagged)[0] > wl.extract(smooth)[0]

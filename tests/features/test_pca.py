"""PCA (MUSE-style) mocap feature baseline."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.pca import PCAJointExtractor, pca_joint_feature
from repro.features.svd import weighted_svd_feature


class TestPCAJointFeature:
    def test_length_three(self, rng):
        assert pca_joint_feature(rng.normal(size=(15, 3))).shape == (3,)

    def test_static_window_gives_zero(self):
        window = np.tile([100.0, 200.0, 300.0], (10, 1))
        np.testing.assert_allclose(pca_joint_feature(window), 0.0, atol=1e-9)

    def test_translation_invariance(self, rng):
        """Centering makes PCA features position-free — the key contrast
        with the paper's Eq. 3."""
        window = rng.normal(size=(20, 3)) * 10
        shifted = window + np.array([500.0, -300.0, 1000.0])
        np.testing.assert_allclose(
            pca_joint_feature(window), pca_joint_feature(shifted), atol=1e-9
        )

    def test_svd_feature_is_not_translation_invariant(self, rng):
        """Eq. 3 keeps position information that PCA discards."""
        window = rng.normal(size=(20, 3)) * 10
        shifted = window + np.array([500.0, -300.0, 1000.0])
        assert not np.allclose(
            weighted_svd_feature(window), weighted_svd_feature(shifted),
            atol=1e-3,
        )

    def test_captures_movement_direction(self):
        t = np.linspace(0, 1, 40)
        window = np.stack([50 * t, 0 * t, 0 * t], axis=1) + 1000.0
        feature = pca_joint_feature(window)
        assert abs(feature[0]) > abs(feature[1]) + abs(feature[2])

    def test_rejects_wrong_columns(self):
        with pytest.raises(FeatureError):
            pca_joint_feature(np.zeros((5, 2)))

    def test_deterministic_signs(self, rng):
        window = rng.normal(size=(25, 3))
        base = pca_joint_feature(window)
        noisy = window + rng.normal(0, 1e-8, size=window.shape)
        np.testing.assert_allclose(pca_joint_feature(noisy), base, atol=1e-4)


class TestPCAJointExtractor:
    def test_multi_joint_layout(self, rng):
        window = rng.normal(size=(20, 6))
        full = PCAJointExtractor().extract(window)
        np.testing.assert_allclose(full[:3], pca_joint_feature(window[:, :3]))
        np.testing.assert_allclose(full[3:], pca_joint_feature(window[:, 3:]))

    def test_feature_names(self):
        names = PCAJointExtractor().feature_names(["hand_r"])
        assert names == ["pca:hand_r:x", "pca:hand_r:y", "pca:hand_r:z"]

    def test_drop_in_replacement_in_featurizer(self, make_record):
        from repro.features.combine import WindowFeaturizer

        record = make_record()
        wf = WindowFeaturizer(window_ms=100.0,
                              mocap_extractor=PCAJointExtractor())
        features = wf.features(record)
        assert features.n_dims == 4 + 12
        assert any(n.startswith("pca:") for n in features.names)

"""Shared fixtures.

Two tiers of test data:

* ``make_record`` — a cheap factory building a :class:`RecordedMotion`
  directly from arrays (no simulation), for feature/core/retrieval tests;
* ``small_hand_dataset`` / ``small_leg_dataset`` — session-scoped real
  acquisition campaigns (tiny but end-to-end) for integration-level tests.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.data.dataset import MotionDataset
from repro.data.protocol import build_dataset, hand_protocol, leg_protocol
from repro.data.record import RecordedMotion
from repro.emg.recording import EMGRecording
from repro.mocap.trajectory import MotionCaptureData


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def make_record():
    """Factory for synthetic :class:`RecordedMotion` objects.

    The streams are smooth deterministic curves plus seeded noise so that
    different labels produce genuinely different (but reproducible) data.
    """

    def _make(
        label: str = "raise_arm",
        n_frames: int = 120,
        n_segments: int = 4,
        n_channels: int = 4,
        fps: float = 120.0,
        participant: str = "p0",
        trial: int = 0,
        seed: int = 0,
        frequency: float = 1.0,
    ) -> RecordedMotion:
        # Class identity (curve shapes/phases) comes from the label alone;
        # the per-trial seed only adds noise, so same-label records are
        # similar and different-label records are not.
        class_gen = np.random.default_rng(zlib.crc32(label.encode()))
        gen = np.random.default_rng(seed * 7919 + 13)
        t = np.arange(n_frames) / fps
        segments = tuple(f"seg{j}" for j in range(n_segments))
        channels = tuple(f"ch{j}" for j in range(n_channels))
        mocap_cols = []
        for j in range(3 * n_segments):
            phase = class_gen.uniform(0, 2 * np.pi)
            amp = 100.0 * (1 + j % 3)
            mocap_cols.append(
                amp * np.sin(2 * np.pi * frequency * t + phase)
                + gen.normal(0, 1.0, n_frames)
            )
        emg_cols = []
        for j in range(n_channels):
            env = np.abs(
                np.sin(2 * np.pi * frequency * t + class_gen.uniform(0, np.pi))
            )
            emg_cols.append(5e-5 * env + np.abs(gen.normal(0, 2e-6, n_frames)))
        mocap = MotionCaptureData(
            segments=segments, matrix_mm=np.stack(mocap_cols, axis=1), fps=fps
        )
        emg = EMGRecording(
            channels=channels, data_volts=np.stack(emg_cols, axis=1), fs=fps
        )
        return RecordedMotion(
            label=label,
            participant_id=participant,
            trial_id=trial,
            mocap=mocap,
            emg=emg,
        )

    return _make


@pytest.fixture
def toy_dataset(make_record) -> MotionDataset:
    """A fast 3-class, 12-record dataset built from the record factory."""
    records = []
    for label, freq in [("alpha", 0.7), ("beta", 1.4), ("gamma", 2.4)]:
        for trial in range(4):
            records.append(
                make_record(
                    label=label,
                    trial=trial,
                    seed=trial,
                    frequency=freq,
                    participant=f"p{trial % 2}",
                )
            )
    return MotionDataset(name="toy", records=records)


@pytest.fixture(scope="session")
def small_hand_dataset() -> MotionDataset:
    """A real (simulated end-to-end) hand campaign: 1 participant, 2 trials."""
    return build_dataset(
        hand_protocol(), n_participants=1, trials_per_motion=2, seed=7
    )


@pytest.fixture(scope="session")
def small_leg_dataset() -> MotionDataset:
    """A real (simulated end-to-end) leg campaign: 1 participant, 2 trials."""
    return build_dataset(
        leg_protocol(), n_participants=1, trials_per_motion=2, seed=11
    )

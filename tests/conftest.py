"""Shared fixtures.

Two tiers of test data:

* ``make_record`` — a cheap factory building a :class:`RecordedMotion`
  directly from arrays (no simulation), for feature/core/retrieval tests;
* ``small_hand_dataset`` / ``small_leg_dataset`` — session-scoped real
  acquisition campaigns (tiny but end-to-end) for integration-level tests.

The array-level factories live in :mod:`tests.factories` as plain functions
so non-function-scoped harnesses (determinism, goldens) can call them too.

Golden files
------------
``pytest --regen-goldens`` rewrites the expected-output files under
``tests/golden/`` instead of comparing against them (see
``tests/golden/test_golden_pipeline.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import MotionDataset
from repro.data.protocol import build_dataset, hand_protocol, leg_protocol
from tests.factories import synthetic_record, toy_motion_dataset


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden expected-output files instead of comparing",
    )


@pytest.hookimpl(tryfirst=True)
def pytest_collection_modifyitems(config, items):
    """Every test not explicitly tiered as chaos/properties is tier-1.

    ``-m tier1`` therefore selects exactly the fast default suite (what CI
    and ``repro-motions selftest`` run), while ``-m chaos`` / ``-m
    properties`` select the opt-in tiers.  All tiers run when no ``-m``
    filter is given.  ``tryfirst`` makes the markers land before pytest's
    own ``-m`` deselection pass looks at them.
    """
    for item in items:
        if (item.get_closest_marker("chaos") is None
                and item.get_closest_marker("properties") is None):
            item.add_marker(pytest.mark.tier1)


@pytest.fixture
def regen_goldens(request) -> bool:
    """Whether this run should rewrite golden files instead of asserting."""
    return bool(request.config.getoption("--regen-goldens"))


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def make_record():
    """Factory for synthetic :class:`RecordedMotion` objects.

    The streams are smooth deterministic curves plus seeded noise so that
    different labels produce genuinely different (but reproducible) data.
    """
    return synthetic_record


@pytest.fixture
def toy_dataset() -> MotionDataset:
    """A fast 3-class, 12-record dataset built from the record factory."""
    return toy_motion_dataset()


@pytest.fixture(scope="session")
def small_hand_dataset() -> MotionDataset:
    """A real (simulated end-to-end) hand campaign: 1 participant, 2 trials."""
    return build_dataset(
        hand_protocol(), n_participants=1, trials_per_motion=2, seed=7
    )


@pytest.fixture(scope="session")
def small_leg_dataset() -> MotionDataset:
    """A real (simulated end-to-end) leg campaign: 1 participant, 2 trials."""
    return build_dataset(
        leg_protocol(), n_participants=1, trials_per_motion=2, seed=11
    )

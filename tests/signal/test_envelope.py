"""Moving average and linear-envelope extraction."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.signal.envelope import linear_envelope, moving_average


class TestMovingAverage:
    def test_constant_signal_unchanged(self):
        x = np.full(50, 3.5)
        np.testing.assert_allclose(moving_average(x, 7), x)

    def test_width_one_is_identity(self, rng):
        x = rng.normal(size=30)
        np.testing.assert_allclose(moving_average(x, 1), x)

    def test_smooths_noise(self, rng):
        x = rng.normal(size=2000)
        assert moving_average(x, 50).std() < 0.3 * x.std()

    def test_preserves_shape_2d(self, rng):
        x = rng.normal(size=(40, 3))
        assert moving_average(x, 5).shape == (40, 3)

    def test_width_longer_than_signal_is_clipped(self):
        x = np.array([1.0, 2.0, 3.0])
        out = moving_average(x, 100)
        assert out.shape == (3,)
        assert np.all(np.isfinite(out))

    def test_mean_preserved_in_interior(self, rng):
        x = rng.normal(loc=2.0, size=500)
        out = moving_average(x, 9)
        assert abs(out[50:-50].mean() - x.mean()) < 0.1

    def test_rejects_bad_width(self, rng):
        with pytest.raises(ValidationError):
            moving_average(rng.normal(size=10), 0)


class TestLinearEnvelope:
    def test_tracks_amplitude_modulation(self, rng):
        """The envelope of AM noise recovers the modulator."""
        fs = 1000.0
        t = np.arange(4000) / fs
        modulator = 0.5 * (1 + np.sin(2 * np.pi * 0.5 * t))
        carrier = rng.normal(size=len(t))
        env = linear_envelope(modulator * carrier, fs, cutoff_hz=4.0)
        # Correlation with the true modulator should be strong.
        rho = np.corrcoef(env[200:-200], modulator[200:-200])[0, 1]
        assert rho > 0.9

    def test_non_negative(self, rng):
        env = linear_envelope(rng.normal(size=2000), 1000.0)
        assert np.all(env >= 0)

    def test_silence_gives_near_zero(self):
        env = linear_envelope(np.zeros(500), 1000.0)
        np.testing.assert_allclose(env, 0.0, atol=1e-12)

    def test_2d_input(self, rng):
        env = linear_envelope(rng.normal(size=(1000, 2)), 1000.0)
        assert env.shape == (1000, 2)

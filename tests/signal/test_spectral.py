"""Welch PSD estimation and band power."""

import numpy as np
import pytest
import scipy.signal as ss

from repro.errors import SignalError, ValidationError
from repro.signal.spectral import band_power, welch_psd


class TestWelchPSD:
    def test_peak_at_sinusoid_frequency(self):
        fs = 1000.0
        t = np.arange(8000) / fs
        x = np.sin(2 * np.pi * 80 * t)
        freqs, psd = welch_psd(x, fs, nperseg=512)
        assert abs(freqs[np.argmax(psd)] - 80.0) < 4.0

    def test_total_power_parseval(self, rng):
        """Integrated PSD approximates the signal variance."""
        x = rng.normal(size=20000)
        freqs, psd = welch_psd(x, 1000.0, nperseg=1024)
        total = np.trapezoid(psd, freqs)
        assert abs(total - x.var()) / x.var() < 0.15

    def test_close_to_scipy_welch(self, rng):
        x = rng.normal(size=4096)
        f1, p1 = welch_psd(x, 1000.0, nperseg=256, overlap=0.5)
        f2, p2 = ss.welch(x, fs=1000.0, nperseg=256, noverlap=128,
                          window="hann", detrend="constant")
        np.testing.assert_allclose(f1, f2)
        # Same estimator family; allow a modest overall tolerance.
        np.testing.assert_allclose(p1[2:-2], p2[2:-2], rtol=0.3)

    def test_rejects_2d(self, rng):
        with pytest.raises(ValidationError):
            welch_psd(rng.normal(size=(10, 2)), 1000.0)

    def test_short_signal_uses_one_segment(self, rng):
        freqs, psd = welch_psd(rng.normal(size=100), 1000.0, nperseg=256)
        assert len(freqs) == 100 // 2 + 1


class TestBandPower:
    def test_sinusoid_power_in_band(self):
        fs = 1000.0
        t = np.arange(8000) / fs
        x = np.sin(2 * np.pi * 100 * t)
        assert band_power(x, fs, 80, 120) > 0.95
        assert band_power(x, fs, 300, 450) < 0.05

    def test_zero_signal(self):
        assert band_power(np.zeros(1000), 1000.0, 20, 450) == 0.0

    def test_rejects_bad_band(self, rng):
        with pytest.raises(SignalError):
            band_power(rng.normal(size=100), 1000.0, 450, 20)

    def test_empty_band_returns_zero(self, rng):
        x = rng.normal(size=2000)
        # Band between two adjacent bins may contain no frequency sample.
        assert band_power(x, 1000.0, 499.7, 499.9, nperseg=64) == 0.0

"""Filter design and application, validated against the scipy oracle.

The library itself never imports scipy; these tests do, to prove the
from-scratch implementations match the reference within float tolerance.
"""

import numpy as np
import pytest
import scipy.signal as ss

from repro.errors import SignalError
from repro.signal.filters import (
    IIRFilter,
    butter_bandpass,
    butter_highpass,
    butter_lowpass,
    filtfilt,
    lfilter,
    lfilter_zi,
)


class TestDesignAgainstScipy:
    @pytest.mark.parametrize("order", [1, 2, 4, 6])
    @pytest.mark.parametrize("cutoff", [6.0, 50.0, 400.0])
    def test_lowpass_coefficients(self, order, cutoff):
        mine = butter_lowpass(cutoff, 1000.0, order=order)
        b_ref, a_ref = ss.butter(order, cutoff, btype="lowpass", fs=1000.0)
        np.testing.assert_allclose(mine.b, b_ref, atol=1e-10)
        np.testing.assert_allclose(mine.a, a_ref, atol=1e-10)

    @pytest.mark.parametrize("order", [1, 2, 4])
    def test_highpass_coefficients(self, order):
        mine = butter_highpass(20.0, 1000.0, order=order)
        b_ref, a_ref = ss.butter(order, 20.0, btype="highpass", fs=1000.0)
        np.testing.assert_allclose(mine.b, b_ref, atol=1e-10)
        np.testing.assert_allclose(mine.a, a_ref, atol=1e-10)

    @pytest.mark.parametrize("order", [2, 4])
    def test_paper_bandpass_coefficients(self, order):
        """The paper's 20-450 Hz band at 1000 Hz."""
        mine = butter_bandpass(20.0, 450.0, 1000.0, order=order)
        b_ref, a_ref = ss.butter(order, [20.0, 450.0], btype="bandpass", fs=1000.0)
        np.testing.assert_allclose(mine.b, b_ref, atol=1e-9)
        np.testing.assert_allclose(mine.a, a_ref, atol=1e-9)

    def test_bandpass_order_doubles(self):
        filt = butter_bandpass(20.0, 450.0, 1000.0, order=4)
        assert filt.order == 8

    def test_cutoff_must_be_below_nyquist(self):
        with pytest.raises(Exception):
            butter_lowpass(600.0, 1000.0)

    def test_band_edges_must_be_ordered(self):
        with pytest.raises(SignalError):
            butter_bandpass(450.0, 20.0, 1000.0)


class TestFrequencyResponse:
    def test_matches_scipy_freqz(self):
        filt = butter_bandpass(20.0, 450.0, 1000.0, order=4)
        freqs, resp = filt.frequency_response(512, fs=1000.0)
        w_ref, h_ref = ss.freqz(filt.b, filt.a, worN=512, fs=1000.0)
        np.testing.assert_allclose(freqs, w_ref)
        np.testing.assert_allclose(resp, h_ref, atol=1e-9)

    def test_passband_and_stopband_magnitudes(self):
        filt = butter_bandpass(20.0, 450.0, 1000.0, order=4)
        freqs, resp = filt.frequency_response(2048, fs=1000.0)
        mag = np.abs(resp)
        in_band = (freqs > 60) & (freqs < 350)
        below = freqs < 5
        assert mag[in_band].min() > 0.9
        assert mag[below].max() < 0.05


class TestLfilter:
    def test_matches_scipy_multichannel(self, rng):
        filt = butter_bandpass(20.0, 450.0, 1000.0, order=4)
        x = rng.normal(size=(500, 3))
        np.testing.assert_allclose(
            lfilter(filt.b, filt.a, x), ss.lfilter(filt.b, filt.a, x, axis=0),
            atol=1e-10,
        )

    def test_fir_case(self, rng):
        """Pure moving-average (a = [1]) works with no recursive state."""
        b = np.ones(4) / 4
        x = rng.normal(size=50)
        np.testing.assert_allclose(
            lfilter(b, [1.0], x), ss.lfilter(b, [1.0], x), atol=1e-12
        )

    def test_passthrough(self, rng):
        x = rng.normal(size=20)
        np.testing.assert_allclose(lfilter([1.0], [1.0], x), x)

    def test_initial_state(self, rng):
        filt = butter_lowpass(10.0, 1000.0, order=4)
        x = rng.normal(size=100)
        zi = lfilter_zi(filt.b, filt.a) * x[0]
        mine = lfilter(filt.b, filt.a, x, zi=zi[:, None] if zi.ndim == 1 else zi)
        ref, _ = ss.lfilter(filt.b, filt.a, x, zi=zi)
        np.testing.assert_allclose(mine.ravel(), ref, atol=1e-10)

    def test_rejects_zero_leading_denominator(self):
        with pytest.raises(SignalError):
            lfilter([1.0], [0.0, 1.0], np.zeros(4))

    def test_empty_input(self):
        out = lfilter([1.0, 0.5], [1.0], np.zeros(0))
        assert out.size == 0

    def test_axis_argument(self, rng):
        filt = butter_lowpass(10.0, 1000.0, order=2)
        x = rng.normal(size=(3, 200))
        got = lfilter(filt.b, filt.a, x, axis=1)
        want = ss.lfilter(filt.b, filt.a, x, axis=1)
        np.testing.assert_allclose(got, want, atol=1e-10)


class TestLfilterZi:
    @pytest.mark.parametrize("order", [1, 2, 4])
    def test_matches_scipy(self, order):
        filt = butter_lowpass(15.0, 1000.0, order=order)
        np.testing.assert_allclose(
            lfilter_zi(filt.b, filt.a), ss.lfilter_zi(filt.b, filt.a), atol=1e-10
        )

    def test_step_response_starts_settled(self):
        """Seeding with zi makes a unit step pass through unchanged."""
        filt = butter_lowpass(15.0, 1000.0, order=4)
        zi = lfilter_zi(filt.b, filt.a)
        step = np.ones(100)
        out = lfilter(filt.b, filt.a, step, zi=zi)
        np.testing.assert_allclose(out.ravel(), step, atol=1e-9)


class TestFiltfilt:
    def test_matches_scipy(self, rng):
        filt = butter_bandpass(20.0, 450.0, 1000.0, order=4)
        x = rng.normal(size=(800, 2))
        np.testing.assert_allclose(
            filtfilt(filt.b, filt.a, x),
            ss.filtfilt(filt.b, filt.a, x, axis=0),
            atol=1e-9,
        )

    def test_zero_phase_on_sinusoid(self):
        """A passband sinusoid comes out with no phase shift."""
        fs = 1000.0
        t = np.arange(2000) / fs
        x = np.sin(2 * np.pi * 100 * t)
        filt = butter_bandpass(20.0, 450.0, fs, order=4)
        y = filtfilt(filt.b, filt.a, x)
        # Ignore the edges; interior should match closely with zero lag.
        np.testing.assert_allclose(y[200:-200], x[200:-200], atol=0.01)

    def test_short_signal_does_not_crash(self):
        filt = butter_lowpass(10.0, 1000.0, order=4)
        out = filtfilt(filt.b, filt.a, np.ones(5))
        assert out.shape == (5,)
        assert np.all(np.isfinite(out))

    def test_empty_signal(self):
        filt = butter_lowpass(10.0, 1000.0, order=2)
        assert filtfilt(filt.b, filt.a, np.zeros(0)).size == 0


class TestIIRFilterClass:
    def test_normalizes_a0(self):
        filt = IIRFilter(b=[2.0, 0.0], a=[2.0, 1.0])
        assert filt.a[0] == 1.0
        np.testing.assert_allclose(filt.b, [1.0, 0.0])

    def test_rejects_zero_a0(self):
        with pytest.raises(SignalError):
            IIRFilter(b=[1.0], a=[0.0, 1.0])

    def test_order_property(self):
        assert butter_lowpass(10.0, 1000.0, order=4).order == 4

    def test_apply_equals_lfilter(self, rng):
        filt = butter_lowpass(10.0, 1000.0, order=2)
        x = rng.normal(size=100)
        np.testing.assert_allclose(filt.apply(x), lfilter(filt.b, filt.a, x))

"""Decimation and rational down-sampling."""

import numpy as np
import pytest

from repro.errors import SignalError, ValidationError
from repro.signal.resample import decimate, downsample_to_rate


class TestDecimate:
    def test_factor_one_is_copy(self, rng):
        x = rng.normal(size=(100, 2))
        out = decimate(x, 1, fs=1000.0)
        np.testing.assert_array_equal(out, x)
        assert out is not x

    def test_output_length(self, rng):
        x = rng.normal(size=(1000, 2))
        assert decimate(x, 5, fs=1000.0).shape == (200, 2)

    def test_preserves_low_frequency_content(self):
        fs = 1000.0
        t = np.arange(2000) / fs
        x = np.sin(2 * np.pi * 5 * t)
        y = decimate(x, 4, fs=fs)
        t_out = np.arange(len(y)) * 4 / fs
        np.testing.assert_allclose(y[50:-50], np.sin(2 * np.pi * 5 * t_out)[50:-50],
                                   atol=0.02)

    def test_removes_aliasing_content(self, rng):
        """Content above the output Nyquist is attenuated before picking."""
        fs = 1000.0
        t = np.arange(4000) / fs
        high = np.sin(2 * np.pi * 400 * t)  # far above 125 Hz output Nyquist
        y = decimate(high, 4, fs=fs)
        assert np.abs(y).max() < 0.05

    def test_rejects_bad_factor(self, rng):
        with pytest.raises(ValidationError):
            decimate(rng.normal(size=100), 0, fs=1000.0)


class TestDownsampleToRate:
    def test_paper_rates_1000_to_120(self, rng):
        """The paper's 1000 Hz -> 120 Hz conditioning rate change."""
        x = np.abs(rng.normal(size=3000))
        y = downsample_to_rate(x, 1000.0, 120.0)
        expected = int(np.floor((2999 / 1000.0) * 120.0)) + 1
        assert len(y) == expected

    def test_n_out_override(self, rng):
        x = np.abs(rng.normal(size=3000))
        y = downsample_to_rate(x, 1000.0, 120.0, n_out=360)
        assert len(y) == 360

    def test_2d_columns_independent(self):
        fs_in = 1000.0
        t = np.arange(2000) / fs_in
        x = np.stack([np.sin(2 * np.pi * 3 * t), np.cos(2 * np.pi * 3 * t)], axis=1)
        y = downsample_to_rate(x, fs_in, 120.0)
        t_out = np.arange(len(y)) / 120.0
        np.testing.assert_allclose(y[10:-10, 0],
                                   np.sin(2 * np.pi * 3 * t_out)[10:-10], atol=0.02)
        np.testing.assert_allclose(y[10:-10, 1],
                                   np.cos(2 * np.pi * 3 * t_out)[10:-10], atol=0.02)

    def test_no_antialias_is_pure_interpolation(self):
        x = np.linspace(0.0, 1.0, 101)  # a ramp survives interpolation exactly
        y = downsample_to_rate(x, 100.0, 20.0, antialias=False)
        np.testing.assert_allclose(y, np.linspace(0.0, 1.0, 21), atol=1e-12)

    def test_rejects_upsampling(self, rng):
        with pytest.raises(SignalError):
            downsample_to_rate(rng.normal(size=100), 100.0, 200.0)

    def test_rejects_too_short(self):
        with pytest.raises(SignalError):
            downsample_to_rate(np.zeros(1), 100.0, 50.0)

    def test_rejects_3d(self, rng):
        with pytest.raises(SignalError):
            downsample_to_rate(rng.normal(size=(10, 2, 2)), 100.0, 50.0)

    def test_same_rate_identity_on_grid(self, rng):
        x = rng.normal(size=200)
        y = downsample_to_rate(x, 100.0, 100.0, antialias=False)
        np.testing.assert_allclose(y, x, atol=1e-12)

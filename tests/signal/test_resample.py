"""Decimation and rational down-sampling."""

import numpy as np
import pytest

from repro.errors import SignalError, ValidationError
from repro.signal.resample import decimate, downsample_to_rate


class TestDecimate:
    def test_factor_one_is_copy(self, rng):
        x = rng.normal(size=(100, 2))
        out = decimate(x, 1, fs=1000.0)
        np.testing.assert_array_equal(out, x)
        assert out is not x

    def test_output_length(self, rng):
        x = rng.normal(size=(1000, 2))
        assert decimate(x, 5, fs=1000.0).shape == (200, 2)

    def test_preserves_low_frequency_content(self):
        fs = 1000.0
        t = np.arange(2000) / fs
        x = np.sin(2 * np.pi * 5 * t)
        y = decimate(x, 4, fs=fs)
        t_out = np.arange(len(y)) * 4 / fs
        np.testing.assert_allclose(y[50:-50], np.sin(2 * np.pi * 5 * t_out)[50:-50],
                                   atol=0.02)

    def test_removes_aliasing_content(self, rng):
        """Content above the output Nyquist is attenuated before picking."""
        fs = 1000.0
        t = np.arange(4000) / fs
        high = np.sin(2 * np.pi * 400 * t)  # far above 125 Hz output Nyquist
        y = decimate(high, 4, fs=fs)
        assert np.abs(y).max() < 0.05

    def test_rejects_bad_factor(self, rng):
        with pytest.raises(ValidationError):
            decimate(rng.normal(size=100), 0, fs=1000.0)


class TestDownsampleToRate:
    def test_paper_rates_1000_to_120(self, rng):
        """The paper's 1000 Hz -> 120 Hz conditioning rate change."""
        x = np.abs(rng.normal(size=3000))
        y = downsample_to_rate(x, 1000.0, 120.0)
        expected = int(np.floor((2999 / 1000.0) * 120.0)) + 1
        assert len(y) == expected

    def test_n_out_override(self, rng):
        x = np.abs(rng.normal(size=3000))
        y = downsample_to_rate(x, 1000.0, 120.0, n_out=360)
        assert len(y) == 360

    def test_2d_columns_independent(self):
        fs_in = 1000.0
        t = np.arange(2000) / fs_in
        x = np.stack([np.sin(2 * np.pi * 3 * t), np.cos(2 * np.pi * 3 * t)], axis=1)
        y = downsample_to_rate(x, fs_in, 120.0)
        t_out = np.arange(len(y)) / 120.0
        np.testing.assert_allclose(y[10:-10, 0],
                                   np.sin(2 * np.pi * 3 * t_out)[10:-10], atol=0.02)
        np.testing.assert_allclose(y[10:-10, 1],
                                   np.cos(2 * np.pi * 3 * t_out)[10:-10], atol=0.02)

    def test_no_antialias_is_pure_interpolation(self):
        x = np.linspace(0.0, 1.0, 101)  # a ramp survives interpolation exactly
        y = downsample_to_rate(x, 100.0, 20.0, antialias=False)
        np.testing.assert_allclose(y, np.linspace(0.0, 1.0, 21), atol=1e-12)

    def test_rejects_upsampling(self, rng):
        with pytest.raises(SignalError):
            downsample_to_rate(rng.normal(size=100), 100.0, 200.0)

    def test_rejects_too_short(self):
        with pytest.raises(SignalError):
            downsample_to_rate(np.zeros(1), 100.0, 50.0)

    def test_rejects_3d(self, rng):
        with pytest.raises(SignalError):
            downsample_to_rate(rng.normal(size=(10, 2, 2)), 100.0, 50.0)

    def test_same_rate_identity_on_grid(self, rng):
        x = rng.normal(size=200)
        y = downsample_to_rate(x, 100.0, 100.0, antialias=False)
        np.testing.assert_allclose(y, x, atol=1e-12)


class TestShortAndDegenerateStreams:
    """Regression tier: the edges that used to die with raw numpy/scipy
    errors now fail (or succeed) through typed repro.errors exceptions."""

    def test_decimate_empty_1d_is_typed(self):
        with pytest.raises(SignalError, match="empty"):
            decimate(np.zeros(0), 2, fs=100.0)

    def test_decimate_empty_2d_is_typed(self):
        with pytest.raises(SignalError, match="empty"):
            decimate(np.zeros((0, 3)), 2, fs=100.0)

    def test_decimate_rejects_3d(self, rng):
        with pytest.raises(SignalError, match="1-D or 2-D"):
            decimate(rng.normal(size=(4, 2, 2)), 2, fs=100.0)

    def test_decimate_survives_three_frames(self):
        # Shorter than the order-8 filter's natural pad length.
        out = decimate(np.ones(3), 2, fs=100.0)
        assert out.shape == (2,)
        assert np.isfinite(out).all()

    def test_decimate_odd_length_2d(self):
        out = decimate(np.ones((5, 2)), 2, fs=100.0)
        assert out.shape == (3, 2)
        assert np.isfinite(out).all()

    def test_downsample_zero_columns_is_typed(self):
        with pytest.raises(SignalError, match="zero columns"):
            downsample_to_rate(np.ones((10, 0)), 100.0, 50.0)

    def test_downsample_minimum_two_samples(self):
        out = downsample_to_rate(np.ones(2), 100.0, 50.0, antialias=False)
        assert out.shape == (1,)

    def test_downsample_one_sample_is_typed(self):
        with pytest.raises(SignalError, match="two samples"):
            downsample_to_rate(np.ones(1), 100.0, 50.0)

    def test_downsample_odd_short_rational_ratio(self):
        # 3 samples at 1000 Hz span 2 ms: exactly one 120 Hz sample fits.
        out = downsample_to_rate(np.ones(3), 1000.0, 120.0, antialias=False)
        assert out.shape == (1,)
        assert np.isfinite(out).all()

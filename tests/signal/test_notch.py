"""The IIR notch filter, validated against scipy."""

import numpy as np
import pytest
import scipy.signal as ss

from repro.signal.notch import notch_filter
from repro.signal.spectral import band_power

FS = 1000.0


class TestDesign:
    @pytest.mark.parametrize("freq", [50.0, 60.0, 120.0])
    @pytest.mark.parametrize("quality", [10.0, 30.0])
    def test_matches_scipy_iirnotch(self, freq, quality):
        mine = notch_filter(freq, FS, quality)
        b_ref, a_ref = ss.iirnotch(freq, quality, fs=FS)
        np.testing.assert_allclose(mine.b, b_ref, atol=1e-12)
        np.testing.assert_allclose(mine.a, a_ref, atol=1e-12)

    def test_null_at_center_unit_gain_elsewhere(self):
        filt = notch_filter(60.0, FS, quality=30.0)
        # Exact response at the notch frequency (off the FFT grid).
        w0 = 2 * np.pi * 60.0 / FS
        z = np.exp(-1j * w0)
        h0 = np.polyval(filt.b[::-1], z) / np.polyval(filt.a[::-1], z)
        assert abs(h0) < 1e-10  # a true null
        freqs, resp = filt.frequency_response(4096, fs=FS)
        mag = np.abs(resp)
        far = mag[(freqs < 40) | (freqs > 90)]
        assert far.min() > 0.9

    def test_rejects_out_of_band_frequency(self):
        with pytest.raises(Exception):
            notch_filter(600.0, FS)
        with pytest.raises(Exception):
            notch_filter(0.0, FS)


class TestApplication:
    def test_removes_hum_keeps_signal(self, rng):
        t = np.arange(8000) / FS
        signal = np.sin(2 * np.pi * 110 * t)
        hum = 0.8 * np.sin(2 * np.pi * 60 * t)
        filt = notch_filter(60.0, FS, quality=30.0)
        cleaned = filt.apply_zero_phase(signal + hum)
        assert band_power(cleaned, FS, 55, 65, nperseg=2048) < 0.02
        assert band_power(cleaned, FS, 100, 120, nperseg=2048) > 0.9

    def test_cleans_contaminated_synthetic_emg(self, rng):
        """End-to-end with the library's own artifact model."""
        from repro.emg.artifacts import PowerlineInterference

        emg = rng.normal(0, 1e-5, size=6000)
        dirty = PowerlineInterference(amplitude_volts=3e-5).apply(emg, FS, seed=0)
        cleaned = notch_filter(60.0, FS).apply_zero_phase(dirty)
        assert band_power(dirty, FS, 55, 65, nperseg=2048) > 0.2
        assert band_power(cleaned, FS, 55, 65, nperseg=2048) < 0.05
        # The broadband EMG content survives.
        rms_before = np.sqrt(np.mean(emg**2))
        rms_after = np.sqrt(np.mean(cleaned**2))
        assert abs(rms_after - rms_before) / rms_before < 0.1

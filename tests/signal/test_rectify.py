"""Full-wave rectification."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis.extra.numpy import arrays

from repro.errors import ValidationError
from repro.signal.rectify import full_wave_rectify


def test_rectifies_negative_values():
    out = full_wave_rectify(np.array([-1.0, 2.0, -3.0]))
    np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])


def test_preserves_shape_2d(rng):
    x = rng.normal(size=(10, 4))
    assert full_wave_rectify(x).shape == (10, 4)


def test_rejects_nan():
    with pytest.raises(ValidationError):
        full_wave_rectify(np.array([1.0, np.nan]))


@given(
    arrays(
        dtype=np.float64,
        shape=(20,),
        elements={"min_value": -1e6, "max_value": 1e6},
    )
)
def test_output_non_negative_and_idempotent(x):
    once = full_wave_rectify(x)
    assert np.all(once >= 0)
    np.testing.assert_array_equal(full_wave_rectify(once), once)
    # Magnitude is preserved.
    np.testing.assert_array_equal(once, np.abs(x))

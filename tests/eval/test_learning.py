"""Learning-curve harness."""

import pytest

from repro.data.dataset import MotionDataset
from repro.errors import DatasetError
from repro.eval.learning import learning_curve


@pytest.fixture
def split(toy_dataset):
    return toy_dataset.train_test_split(test_fraction=0.25, seed=0)


class TestLearningCurve:
    def test_point_sizes(self, split):
        train, test = split
        points = learning_curve(train, test, trials_per_class=(1, 2, 3),
                                window_ms=100.0, n_clusters=3, k=2, seed=0)
        assert [p.trials_per_class for p in points] == [1, 2, 3]
        n_classes = len(train.labels)
        assert [p.n_train for p in points] == [
            1 * n_classes, 2 * n_classes, 3 * n_classes,
        ]

    def test_oversized_points_skipped(self, split):
        train, test = split
        points = learning_curve(train, test, trials_per_class=(1, 50),
                                window_ms=100.0, n_clusters=3, k=2, seed=0)
        assert [p.trials_per_class for p in points] == [1]

    def test_more_data_does_not_hurt_much(self, split):
        """Accuracy at the full size is at least as good as at one trial
        per class (up to quantization of a small query set)."""
        train, test = split
        points = learning_curve(train, test, trials_per_class=(1, 3),
                                window_ms=100.0, n_clusters=3, k=2, seed=0)
        small, large = points[0].result, points[-1].result
        assert large.misclassification_pct <= small.misclassification_pct + 34.0

    def test_all_sizes_unusable_rejected(self, split):
        train, test = split
        with pytest.raises(DatasetError, match="no usable"):
            learning_curve(train, test, trials_per_class=(99,),
                           window_ms=100.0, n_clusters=3, k=2)

    def test_empty_grid_rejected(self, split):
        train, test = split
        with pytest.raises(DatasetError):
            learning_curve(train, test, trials_per_class=())

    def test_deterministic(self, split):
        train, test = split
        a = learning_curve(train, test, trials_per_class=(2,),
                           window_ms=100.0, n_clusters=3, k=2, seed=5)
        b = learning_curve(train, test, trials_per_class=(2,),
                           window_ms=100.0, n_clusters=3, k=2, seed=5)
        assert (a[0].result.misclassification_pct
                == b[0].result.misclassification_pct)

    def test_classifier_factory(self, split):
        from repro.core.model import MotionClassifier

        train, test = split
        calls = []

        def factory():
            calls.append(1)
            return MotionClassifier(n_clusters=3, window_ms=100.0)

        learning_curve(train, test, trials_per_class=(1, 2), k=2, seed=0,
                       classifier_factory=factory)
        assert len(calls) == 2

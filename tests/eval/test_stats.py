"""Bootstrap intervals and the McNemar paired test."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.eval.stats import (
    bootstrap_ci,
    knn_percent_ci,
    mcnemar_test,
    misclassification_ci,
)


class TestBootstrapCI:
    def test_interval_contains_estimate(self, rng):
        values = rng.normal(10.0, 2.0, size=100)
        result = bootstrap_ci(values, seed=0)
        assert result.low <= result.estimate <= result.high

    def test_interval_narrows_with_more_data(self, rng):
        small = bootstrap_ci(rng.normal(0, 1, size=20), seed=0)
        large = bootstrap_ci(rng.normal(0, 1, size=2000), seed=0)
        assert (large.high - large.low) < (small.high - small.low)

    def test_degenerate_data_gives_point_interval(self):
        result = bootstrap_ci([5.0] * 30, seed=0)
        assert result.low == result.high == result.estimate == 5.0

    def test_deterministic(self, rng):
        values = rng.normal(size=50)
        a = bootstrap_ci(values, seed=3)
        b = bootstrap_ci(values, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_coverage_on_known_distribution(self):
        """~95% of intervals cover the true mean."""
        true_mean = 2.0
        hits = 0
        master = np.random.default_rng(0)
        trials = 100
        for t in range(trials):
            data = master.normal(true_mean, 1.0, size=60)
            ci = bootstrap_ci(data, n_resamples=300, seed=t)
            hits += ci.low <= true_mean <= ci.high
        assert hits >= 85  # loose: exact coverage isn't the point here

    def test_custom_statistic(self, rng):
        values = rng.normal(size=200)
        result = bootstrap_ci(values, statistic=np.median, seed=0)
        assert result.estimate == pytest.approx(np.median(values))

    def test_validation(self):
        with pytest.raises(ValidationError):
            bootstrap_ci([])
        with pytest.raises(ValidationError):
            bootstrap_ci([1.0], confidence=1.0)

    def test_str_format(self):
        result = bootstrap_ci([1.0, 2.0, 3.0], seed=0)
        text = str(result)
        assert "95% CI" in text


class TestMetricCIs:
    def test_misclassification_ci(self):
        true = ["a"] * 8 + ["b"] * 8
        pred = ["a"] * 6 + ["b"] * 2 + ["b"] * 8
        result = misclassification_ci(true, pred, seed=0)
        assert result.estimate == pytest.approx(12.5)
        assert 0.0 <= result.low <= result.estimate <= result.high <= 100.0

    def test_knn_percent_ci(self):
        result = knn_percent_ci([0.8, 1.0, 0.6, 0.8], seed=0)
        assert result.estimate == pytest.approx(80.0)

    def test_knn_fraction_validation(self):
        with pytest.raises(ValidationError):
            knn_percent_ci([1.2])

    def test_misclassification_length_check(self):
        with pytest.raises(ValidationError):
            misclassification_ci(["a"], ["a", "b"])


class TestMcNemar:
    def test_identical_classifiers(self):
        true = ["a", "b", "a", "b"]
        pred = ["a", "b", "b", "b"]
        p, only_a, only_b = mcnemar_test(true, pred, pred)
        assert p == 1.0
        assert only_a == only_b == 0

    def test_one_sided_dominance_is_significant(self):
        """One classifier fixes 12 errors and introduces none."""
        true = ["a"] * 20
        a = ["a"] * 20
        b = ["b"] * 12 + ["a"] * 8
        p, only_a, only_b = mcnemar_test(true, a, b)
        assert only_a == 12 and only_b == 0
        assert p < 0.01

    def test_balanced_disagreement_not_significant(self):
        true = ["a"] * 8
        a = ["a", "a", "a", "a", "b", "b", "a", "a"]
        b = ["b", "b", "a", "a", "a", "a", "a", "a"]
        p, only_a, only_b = mcnemar_test(true, a, b)
        assert only_a == only_b == 2
        assert p > 0.5

    def test_symmetry(self):
        true = ["a"] * 10
        a = ["a"] * 7 + ["b"] * 3
        b = ["b"] * 2 + ["a"] * 8
        p_ab = mcnemar_test(true, a, b)[0]
        p_ba = mcnemar_test(true, b, a)[0]
        assert p_ab == pytest.approx(p_ba)

    def test_validation(self):
        with pytest.raises(ValidationError):
            mcnemar_test(["a"], ["a"], ["a", "b"])
        with pytest.raises(ValidationError):
            mcnemar_test([], [], [])

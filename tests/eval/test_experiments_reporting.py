"""Experiment drivers and ASCII reporting."""

import pytest

from repro.errors import ValidationError
from repro.eval.experiments import ExperimentResult, SweepResult, run_experiment, sweep
from repro.eval.reporting import format_series, format_table


@pytest.fixture
def split(toy_dataset):
    return toy_dataset.train_test_split(test_fraction=0.25, seed=0)


class TestRunExperiment:
    def test_result_fields(self, split):
        train, test = split
        result = run_experiment(train, test, window_ms=100.0, n_clusters=3,
                                k=3, seed=0)
        assert result.n_queries == len(test)
        assert 0.0 <= result.misclassification_pct <= 100.0
        assert 0.0 <= result.knn_classified_pct <= 100.0
        assert result.window_ms == 100.0
        assert result.n_clusters == 3
        assert len(result.true_labels) == len(result.predicted_labels) == len(test)

    def test_toy_classes_are_learnable(self, split):
        train, test = split
        result = run_experiment(train, test, window_ms=100.0, n_clusters=4,
                                k=3, seed=0)
        assert result.misclassification_pct <= 34.0

    def test_confusion_accessor(self, split):
        train, test = split
        result = run_experiment(train, test, window_ms=100.0, n_clusters=3, seed=0)
        labels, matrix = result.confusion()
        assert matrix.sum() == result.n_queries
        assert set(labels) >= set(result.true_labels)

    def test_empty_test_rejected(self, toy_dataset):
        from repro.data.dataset import MotionDataset

        with pytest.raises(ValidationError):
            run_experiment(toy_dataset, MotionDataset(name="none"))

    def test_classifier_kwargs_forwarded(self, split):
        train, test = split
        result = run_experiment(train, test, window_ms=100.0, n_clusters=3,
                                seed=0, clusterer="kmeans")
        assert result.n_queries == len(test)


class TestSweep:
    @pytest.fixture
    def sweep_result(self, split):
        train, test = split
        return sweep(train, test, window_sizes_ms=(50.0, 100.0),
                     cluster_counts=(2, 4), k=3, seed=0)

    def test_grid_size(self, sweep_result):
        assert len(sweep_result.results) == 4

    def test_series_layout(self, sweep_result):
        series = sweep_result.series("misclassification_pct")
        assert set(series) == {50.0, 100.0}
        clusters, values = series[50.0]
        assert clusters == [2, 4]
        assert len(values) == 2

    def test_knn_series(self, sweep_result):
        series = sweep_result.series("knn_classified_pct")
        for clusters, values in series.values():
            assert all(0.0 <= v <= 100.0 for v in values)

    def test_best(self, sweep_result):
        best = sweep_result.best("misclassification_pct")
        assert best.misclassification_pct == min(
            r.misclassification_pct for r in sweep_result.results
        )
        best_knn = sweep_result.best("knn_classified_pct")
        assert best_knn.knn_classified_pct == max(
            r.knn_classified_pct for r in sweep_result.results
        )

    def test_unknown_metric(self, sweep_result):
        with pytest.raises(ValidationError):
            sweep_result.series("f1")
        with pytest.raises(ValidationError):
            sweep_result.best("f1")

    def test_empty_grid_rejected(self, split):
        train, test = split
        with pytest.raises(ValidationError):
            sweep(train, test, window_sizes_ms=(), cluster_counts=(2,))


class TestFormatTable:
    def test_layout(self):
        text = format_table(["name", "value"], [["a", 1.25], ["bb", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.2" in lines[2]  # one-decimal float rendering

    def test_row_width_validated(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValidationError):
            format_table([], [])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_renders_all_windows(self):
        series = {
            50.0: ([2, 4], [30.0, 10.0]),
            100.0: ([2, 4], [25.0, 12.0]),
        }
        text = format_series("Figure 6", series, y_label="miscls %")
        assert "Figure 6" in text
        assert "50 ms" in text and "100 ms" in text
        assert "30.0" in text and "12.0" in text

    def test_mismatched_axes_rejected(self):
        series = {50.0: ([2, 4], [1.0, 2.0]), 100.0: ([2, 8], [1.0, 2.0])}
        with pytest.raises(ValidationError, match="cluster axis"):
            format_series("t", series)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            format_series("t", {50.0: ([2, 4], [1.0])})

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            format_series("t", {})


class TestSeriesToCSV:
    def test_long_format(self):
        from repro.eval.reporting import series_to_csv

        series = {50.0: ([2, 4], [30.0, 10.0]), 100.0: ([2, 4], [25.0, 12.5])}
        csv = series_to_csv(series, value_name="mis")
        lines = csv.strip().splitlines()
        assert lines[0] == "window_ms,clusters,mis"
        assert "50,2,30" in lines[1]
        assert len(lines) == 5
        assert csv.endswith("\n")

    def test_empty_rejected(self):
        from repro.eval.reporting import series_to_csv

        with pytest.raises(ValidationError):
            series_to_csv({})

    def test_mismatched_lengths_rejected(self):
        from repro.eval.reporting import series_to_csv

        with pytest.raises(ValidationError):
            series_to_csv({50.0: ([2], [1.0, 2.0])})

"""Stratified k-fold cross-validation."""

import pytest

from repro.data.dataset import MotionDataset
from repro.errors import DatasetError
from repro.eval.crossval import cross_validate, stratified_folds


class TestStratifiedFolds:
    def test_partition_properties(self, toy_dataset):
        folds = stratified_folds(toy_dataset, n_folds=4, seed=0)
        assert len(folds) == 4
        seen = []
        for train, test in folds:
            assert len(train) + len(test) == len(toy_dataset)
            assert set(test.labels) == set(toy_dataset.labels)
            train_keys = {r.key for r in train}
            assert all(r.key not in train_keys for r in test)
            seen.extend(r.key for r in test)
        # Every trial tested exactly once.
        assert sorted(seen) == sorted(r.key for r in toy_dataset)

    def test_too_few_trials_rejected(self, toy_dataset):
        with pytest.raises(DatasetError, match="need >="):
            stratified_folds(toy_dataset, n_folds=5)

    def test_deterministic(self, toy_dataset):
        a = stratified_folds(toy_dataset, n_folds=2, seed=3)
        b = stratified_folds(toy_dataset, n_folds=2, seed=3)
        assert [r.key for r in a[0][1]] == [r.key for r in b[0][1]]

    def test_minimum_two_folds(self, toy_dataset):
        with pytest.raises(Exception):
            stratified_folds(toy_dataset, n_folds=1)


class TestCrossValidate:
    def test_aggregates_all_folds(self, toy_dataset):
        result = cross_validate(toy_dataset, n_folds=2, window_ms=100.0,
                                n_clusters=3, k=3, seed=0)
        assert result.n_folds == 2
        assert result.n_queries == len(toy_dataset)
        assert result.misclassification.low <= result.misclassification.estimate
        assert result.misclassification.estimate <= result.misclassification.high
        assert 0.0 <= result.knn_classified.estimate <= 100.0

    def test_toy_classes_learnable_across_folds(self, toy_dataset):
        result = cross_validate(toy_dataset, n_folds=2, window_ms=100.0,
                                n_clusters=4, k=3, seed=0)
        assert result.misclassification.estimate <= 40.0

    def test_classifier_factory_used(self, toy_dataset):
        from repro.core.model import MotionClassifier

        calls = []

        def factory():
            calls.append(1)
            return MotionClassifier(n_clusters=3, window_ms=100.0)

        cross_validate(toy_dataset, n_folds=2, k=2, seed=0,
                       classifier_factory=factory)
        assert len(calls) == 2

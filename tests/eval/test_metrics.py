"""Evaluation metrics."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.eval.metrics import (
    confusion_matrix,
    knn_classified_percent,
    misclassification_rate,
)


class TestMisclassificationRate:
    def test_all_correct(self):
        assert misclassification_rate(["a", "b"], ["a", "b"]) == 0.0

    def test_all_wrong(self):
        assert misclassification_rate(["a", "b"], ["b", "a"]) == 100.0

    def test_partial(self):
        rate = misclassification_rate(["a", "a", "b", "b"], ["a", "b", "b", "b"])
        assert rate == pytest.approx(25.0)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            misclassification_rate(["a"], ["a", "b"])

    def test_empty(self):
        with pytest.raises(ValidationError):
            misclassification_rate([], [])


class TestKnnClassifiedPercent:
    def test_average(self):
        assert knn_classified_percent([1.0, 0.6, 0.8]) == pytest.approx(80.0)

    def test_bounds_checked(self):
        with pytest.raises(ValidationError):
            knn_classified_percent([1.2])
        with pytest.raises(ValidationError):
            knn_classified_percent([-0.1])

    def test_empty(self):
        with pytest.raises(ValidationError):
            knn_classified_percent([])

    def test_paper_k5_fractions(self):
        """Fractions out of k=5 land on multiples of 20%."""
        assert knn_classified_percent([4 / 5, 4 / 5]) == pytest.approx(80.0)


class TestConfusionMatrix:
    def test_counts(self):
        labels, matrix = confusion_matrix(
            ["a", "a", "b", "b", "b"], ["a", "b", "b", "b", "a"]
        )
        assert labels == ["a", "b"]
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 2]])

    def test_diagonal_sum_is_correct_count(self):
        true = ["a", "b", "c", "a"]
        pred = ["a", "b", "a", "a"]
        _, matrix = confusion_matrix(true, pred)
        correct = sum(t == p for t, p in zip(true, pred))
        assert matrix.trace() == correct

    def test_explicit_label_order(self):
        labels, matrix = confusion_matrix(["a", "b"], ["a", "b"], labels=["b", "a"])
        assert labels == ["b", "a"]
        np.testing.assert_array_equal(matrix, [[1, 0], [0, 1]])

    def test_missing_label_in_explicit_list(self):
        with pytest.raises(ValidationError, match="missing classes"):
            confusion_matrix(["a", "z"], ["a", "z"], labels=["a"])

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            confusion_matrix(["a"], [])

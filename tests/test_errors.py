"""The exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_validation_error_is_value_error():
    assert issubclass(errors.ValidationError, ValueError)
    with pytest.raises(ValueError):
        raise errors.ValidationError("bad input")


def test_not_fitted_is_clustering_error():
    assert issubclass(errors.NotFittedError, errors.ClusteringError)


def test_catching_base_catches_all():
    for name in errors.__all__:
        cls = getattr(errors, name)
        if cls is errors.ReproError:
            continue
        try:
            raise cls("boom")
        except errors.ReproError as exc:
            assert "boom" in str(exc)

"""The persistent signature store: segments, manifest, compaction, recovery."""

import json
import zlib

import numpy as np
import pytest

from repro.errors import StoreError
from repro.retrieval.store import (
    MANIFEST_NAME,
    SignatureStore,
    record_width,
    scan_segment,
    segment_header_size,
)
from repro.utils import atomicio


def make_batch(rng, n=40, dim=6, n_tenants=3, n_labels=4):
    vectors = rng.uniform(0.0, 1.0, size=(n, dim))
    labels = [f"motion-{i % n_labels}" for i in range(n)]
    tenants = [f"tenant-{i % n_tenants}" for i in range(n)]
    return vectors, labels, tenants


class TestIngest:
    def test_ingest_creates_segment_and_manifest(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng)
        result = store.ingest(vectors, labels, tenants)
        assert result.n_written == 40
        assert result.n_skipped == 0
        assert (tmp_path / "store" / result.segment).exists()
        assert (tmp_path / "store" / MANIFEST_NAME).exists()
        assert store.n_segments == 1
        assert store.n_records == 40

    def test_records_round_trip_identity(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng)
        store.ingest(vectors, labels, tenants)
        contents = store.records()
        assert np.array_equal(contents.vectors, vectors)
        assert contents.vectors.tobytes() == vectors.tobytes()
        assert list(contents.labels) == labels
        assert list(contents.tenants) == tenants
        assert np.array_equal(contents.ids, np.arange(40, dtype=np.uint64))

    def test_reopen_sees_same_contents(self, rng, tmp_path):
        vectors, labels, tenants = make_batch(rng)
        SignatureStore(tmp_path / "store").ingest(vectors, labels, tenants)
        reopened = SignatureStore(tmp_path / "store")
        contents = reopened.records()
        assert np.array_equal(contents.vectors, vectors)
        assert list(contents.tenants) == tenants

    def test_multi_segment_id_sorted_concatenation(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        v1, l1, t1 = make_batch(rng, n=10)
        v2, l2, t2 = make_batch(rng, n=15)
        store.ingest(v1, l1, t1)
        store.ingest(v2, l2, t2)
        contents = store.records()
        assert store.n_segments == 2
        assert np.array_equal(contents.ids, np.arange(25, dtype=np.uint64))
        assert np.array_equal(contents.vectors, np.vstack([v1, v2]))

    def test_single_tenant_string_broadcasts(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, _ = make_batch(rng, n=8)
        store.ingest(vectors, labels, "clinic-a")
        assert set(store.records().tenants) == {"clinic-a"}

    def test_tenant_filtered_records(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng, n_tenants=4)
        store.ingest(vectors, labels, tenants)
        sub = store.records(tenant="tenant-1")
        assert len(sub) == 10
        assert set(sub.tenants) == {"tenant-1"}
        assert np.array_equal(sub.ids, np.arange(1, 40, 4, dtype=np.uint64))

    def test_explicit_ids_skipped_when_present(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng, n=10)
        ids = np.arange(100, 110)
        first = store.ingest(vectors, labels, tenants, ids=ids)
        again = store.ingest(vectors, labels, tenants, ids=ids)
        assert first.n_written == 10
        assert again.n_written == 0
        assert again.n_skipped == 10
        assert again.segment is None
        assert store.n_records == 10

    def test_partial_overlap_writes_only_new_ids(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng, n=10)
        store.ingest(vectors[:6], labels[:6], tenants[:6],
                     ids=np.arange(6))
        result = store.ingest(vectors, labels, tenants, ids=np.arange(10))
        assert result.n_written == 4
        assert result.n_skipped == 6
        contents = store.records()
        assert np.array_equal(contents.vectors, vectors)

    def test_auto_ids_continue_above_explicit_ids(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng, n=5)
        store.ingest(vectors, labels, tenants, ids=np.array([7, 3, 11, 2, 9]))
        result = store.ingest(vectors, labels, tenants)
        assert result.n_written == 5
        assert store.records().ids.max() == 16  # 12..16 after max id 11

    def test_rejections(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng, n=10, dim=4)
        store.ingest(vectors, labels, tenants)
        with pytest.raises(StoreError):
            store.ingest(rng.uniform(size=(3, 7)), ["a"] * 3, "t")  # dim
        with pytest.raises(StoreError):
            store.ingest(rng.uniform(size=(3, 4)), ["a"] * 2, "t")  # labels
        with pytest.raises(StoreError):
            store.ingest(rng.uniform(size=(3, 4)), ["a"] * 3, ["t"] * 2)
        with pytest.raises(StoreError):
            store.ingest(rng.uniform(size=(3, 4)), ["a"] * 3, "t",
                         ids=np.array([1, 1, 2]))  # duplicate ids in batch


class TestCompaction:
    def test_compact_merges_to_one_segment(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        batches = [make_batch(rng, n=12) for _ in range(4)]
        for vectors, labels, tenants in batches:
            store.ingest(vectors, labels, tenants)
        before = store.records()
        result = store.compact()
        assert result.n_segments_before == 4
        assert result.n_segments_after == 1
        assert store.n_segments == 1
        after = store.records()
        assert np.array_equal(after.ids, before.ids)
        assert after.vectors.tobytes() == before.vectors.tobytes()
        assert after.labels == before.labels
        assert after.tenants == before.tenants

    def test_compact_removes_old_segment_files(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        for _ in range(3):
            vectors, labels, tenants = make_batch(rng, n=10)
            store.ingest(vectors, labels, tenants)
        old = {s.name for s in (tmp_path / "store").glob("seg-*.sig")}
        store.compact()
        new = {s.name for s in (tmp_path / "store").glob("seg-*.sig")}
        assert len(new) == 1
        assert not (old & new)

    def test_compact_single_segment_is_noop(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng)
        store.ingest(vectors, labels, tenants)
        result = store.compact()
        assert result.n_segments_before == result.n_segments_after == 1
        assert store.stats().n_compactions == 0

    def test_ingest_after_compact_keeps_ids_unique(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        for _ in range(2):
            vectors, labels, tenants = make_batch(rng, n=10)
            store.ingest(vectors, labels, tenants)
        store.compact()
        vectors, labels, tenants = make_batch(rng, n=10)
        store.ingest(vectors, labels, tenants)
        ids = store.records().ids
        assert len(np.unique(ids)) == 30


class TestIntegrity:
    def test_verify_clean_store(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng)
        store.ingest(vectors, labels, tenants)
        report = store.verify()
        assert report.ok
        assert report.n_records == 40

    def test_flipped_byte_fails_file_crc(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng)
        result = store.ingest(vectors, labels, tenants)
        seg = tmp_path / "store" / result.segment
        raw = bytearray(seg.read_bytes())
        raw[segment_header_size() + 10] ^= 0xFF
        seg.write_bytes(bytes(raw))
        with pytest.raises(StoreError):
            store.records()
        assert not store.verify().ok

    def test_scan_recovers_prefix_before_corruption(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng, n=20, dim=5)
        result = store.ingest(vectors, labels, tenants)
        seg = tmp_path / "store" / result.segment
        raw = bytearray(seg.read_bytes())
        # Corrupt the 8th record's payload: records 0..6 stay intact.
        offset = segment_header_size() + 7 * record_width(5) + 3
        raw[offset] ^= 0xFF
        seg.write_bytes(bytes(raw))
        scan = scan_segment(seg)
        assert scan.n_complete == 7
        assert scan.truncated
        assert np.array_equal(scan.vectors, vectors[:7])

    def test_scan_of_clean_segment_is_complete(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng, n=9, dim=3)
        result = store.ingest(vectors, labels, tenants)
        scan = scan_segment(tmp_path / "store" / result.segment)
        assert scan.n_complete == scan.n_expected == 9
        assert not scan.truncated
        assert scan.vectors.tobytes() == vectors.tobytes()

    def test_scan_of_garbage_file_yields_nothing(self, tmp_path):
        path = tmp_path / "junk.sig"
        path.write_bytes(b"this is not a segment file at all........")
        scan = scan_segment(path)
        assert scan.n_complete == 0

    def test_unreadable_manifest_raises_store_error(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(StoreError):
            SignatureStore(root)

    def test_wrong_schema_rejected(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / MANIFEST_NAME).write_text(
            json.dumps({"schema": "something/else"}), encoding="utf-8"
        )
        with pytest.raises(StoreError):
            SignatureStore(root)


class TestCrashRecovery:
    """Kill mid-ingest (injected write failure), reopen, re-ingest."""

    @staticmethod
    def _torn_atomic_write(fraction):
        """An atomic_write stand-in that crashes after a partial raw write.

        Simulates the worst case atomicity is meant to prevent: bytes
        land directly at the destination (no temp file) and the process
        dies midway, leaving a torn file on disk.
        """
        from contextlib import contextmanager

        @contextmanager
        def torn(destination, mode="wb", encoding=None):
            class TearingHandle:
                def write(self, data):
                    keep = max(1, int(len(data) * fraction))
                    with open(destination, "ab") as real:  # noqa: lint by design
                        real.write(data[:keep])
                    raise OSError("injected crash: disk gone mid-write")

            yield TearingHandle()

        return torn

    def test_partial_segment_is_invisible_and_reingest_heals(
        self, rng, tmp_path, monkeypatch
    ):
        root = tmp_path / "store"
        store = SignatureStore(root)
        v1, l1, t1 = make_batch(rng, n=10, dim=4)
        store.ingest(v1, l1, t1, ids=np.arange(10))

        v2, l2, t2 = make_batch(rng, n=10, dim=4)
        import repro.retrieval.store as store_mod

        monkeypatch.setattr(store_mod, "atomic_write",
                            self._torn_atomic_write(0.4))
        with pytest.raises(OSError):
            store.ingest(v2, l2, t2, ids=np.arange(10, 20))
        monkeypatch.setattr(store_mod, "atomic_write", atomicio.atomic_write)

        # A torn segment file exists on disk but the manifest never
        # named it: every reader ignores it.
        orphans = sorted(p.name for p in root.glob("seg-*.sig"))
        assert len(orphans) == 2
        reopened = SignatureStore(root)
        assert reopened.n_segments == 1
        contents = reopened.records()
        assert len(contents) == 10
        assert np.array_equal(contents.vectors, v1)
        assert reopened.verify().ok

        # The torn orphan holds no complete record the scanner would trust
        # beyond its verified prefix.
        orphan = root / "seg-000002.sig"
        scan = scan_segment(orphan)
        assert scan.n_complete < 10

        # Replaying the exact same ingest is idempotent and heals the store.
        result = reopened.ingest(v2, l2, t2, ids=np.arange(10, 20))
        assert result.n_written == 10
        healed = reopened.records()
        assert len(healed) == 20
        assert np.array_equal(healed.vectors, np.vstack([v1, v2]))
        assert reopened.verify().ok
        replay = reopened.ingest(v2, l2, t2, ids=np.arange(10, 20))
        assert replay.n_written == 0

    def test_crash_during_manifest_write_leaves_store_unchanged(
        self, rng, tmp_path, monkeypatch
    ):
        root = tmp_path / "store"
        store = SignatureStore(root)
        v1, l1, t1 = make_batch(rng, n=8, dim=4)
        store.ingest(v1, l1, t1)
        manifest_before = (root / MANIFEST_NAME).read_bytes()

        import repro.retrieval.store as store_mod

        real = atomicio.atomic_write
        calls = {"n": 0}

        from contextlib import contextmanager

        @contextmanager
        def fail_on_manifest(destination, mode="wb", encoding=None):
            if str(destination).endswith(MANIFEST_NAME):
                calls["n"] += 1
                raise OSError("injected crash before manifest commit")
            with real(destination, mode=mode, encoding=encoding) as handle:
                yield handle

        monkeypatch.setattr(store_mod, "atomic_write", fail_on_manifest)
        v2, l2, t2 = make_batch(rng, n=8, dim=4)
        with pytest.raises(OSError):
            store.ingest(v2, l2, t2)
        monkeypatch.setattr(store_mod, "atomic_write", real)

        assert calls["n"] == 1
        assert (root / MANIFEST_NAME).read_bytes() == manifest_before
        reopened = SignatureStore(root)
        assert reopened.n_records == 8
        assert reopened.verify().ok


class TestStats:
    def test_stats_counts(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng, n=30, dim=6,
                                              n_tenants=5, n_labels=3)
        store.ingest(vectors, labels, tenants)
        stats = store.stats()
        assert stats.n_segments == 1
        assert stats.n_records == 30
        assert stats.dim == 6
        assert stats.n_tenants == 5
        assert stats.n_labels == 3
        assert stats.n_bytes > 30 * record_width(6)
        assert stats.next_id == 30

    def test_empty_store(self, tmp_path):
        store = SignatureStore(tmp_path / "store")
        assert store.dim is None
        assert store.n_records == 0
        assert len(store.records()) == 0
        assert store.verify().ok

    def test_file_crc_matches_manifest(self, rng, tmp_path):
        store = SignatureStore(tmp_path / "store")
        vectors, labels, tenants = make_batch(rng, n=5, dim=2)
        result = store.ingest(vectors, labels, tenants)
        manifest = json.loads(
            (tmp_path / "store" / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        seg = manifest["segments"][0]
        assert seg["name"] == result.segment
        raw = (tmp_path / "store" / result.segment).read_bytes()
        assert zlib.crc32(raw) == seg["file_crc"]

"""B+-tree: ordering, range scans, rebalancing, invariants under churn."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RetrievalError
from repro.retrieval.bptree import BPlusTree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert list(tree.items()) == []
        assert tree.range_search(-1e9, 1e9) == []

    def test_insert_and_iterate_sorted(self, rng):
        tree = BPlusTree(branching=4)
        keys = rng.permutation(50).astype(float)
        for k in keys:
            tree.insert(k, int(k))
        assert len(tree) == 50
        got = [k for k, _ in tree.items()]
        assert got == sorted(keys.tolist())

    def test_duplicate_keys_kept(self):
        tree = BPlusTree(branching=4)
        for v in range(5):
            tree.insert(7.0, v)
        pairs = tree.range_search(7.0, 7.0)
        assert sorted(v for _, v in pairs) == [0, 1, 2, 3, 4]

    def test_nan_key_rejected(self):
        with pytest.raises(RetrievalError):
            BPlusTree().insert(float("nan"), 0)

    def test_min_branching(self):
        with pytest.raises(Exception):
            BPlusTree(branching=2)

    def test_height_grows_logarithmically(self, rng):
        tree = BPlusTree(branching=8)
        for k in rng.permutation(1000).astype(float):
            tree.insert(k, None)
        assert tree.height() <= 5


class TestRangeSearch:
    @pytest.fixture
    def tree(self, rng):
        tree = BPlusTree(branching=5)
        for k in rng.permutation(200).astype(float):
            tree.insert(k, f"v{int(k)}")
        return tree

    def test_inclusive_bounds(self, tree):
        pairs = tree.range_search(10.0, 20.0)
        assert [k for k, _ in pairs] == list(map(float, range(10, 21)))

    def test_empty_range(self, tree):
        assert tree.range_search(10.5, 10.6) == []
        assert tree.range_search(20.0, 10.0) == []

    def test_range_covers_everything(self, tree):
        assert len(tree.range_search(-1.0, 1000.0)) == 200

    def test_open_ended_ranges(self, tree):
        assert len(tree.range_search(-np.inf, 49.0)) == 50
        assert len(tree.range_search(150.0, np.inf)) == 50


class TestDeletion:
    def test_delete_existing(self):
        tree = BPlusTree(branching=4)
        for k in range(20):
            tree.insert(float(k), k)
        assert tree.delete(7.0, 7)
        assert len(tree) == 19
        assert tree.range_search(7.0, 7.0) == []
        tree.check_invariants()

    def test_delete_missing_value(self):
        tree = BPlusTree()
        tree.insert(1.0, "a")
        assert not tree.delete(1.0, "b")
        assert not tree.delete(2.0, "a")
        assert len(tree) == 1

    def test_delete_one_duplicate(self):
        tree = BPlusTree(branching=4)
        for v in range(6):
            tree.insert(3.0, v)
        assert tree.delete(3.0, 4)
        remaining = sorted(v for _, v in tree.range_search(3.0, 3.0))
        assert remaining == [0, 1, 2, 3, 5]
        tree.check_invariants()

    def test_delete_everything(self, rng):
        tree = BPlusTree(branching=4)
        keys = rng.permutation(60).astype(float)
        for k in keys:
            tree.insert(k, int(k))
        for k in rng.permutation(keys):
            assert tree.delete(k, int(k))
            tree.check_invariants()
        assert len(tree) == 0

    def test_duplicates_straddling_separators(self):
        """Mass-duplicate keys force duplicates across leaf boundaries."""
        tree = BPlusTree(branching=4)
        for v in range(30):
            tree.insert(5.0, v)
        for v in range(30):
            assert tree.delete(5.0, v), v
            tree.check_invariants()
        assert len(tree) == 0


class TestInvariantsUnderChurn:
    @given(seed=st.integers(0, 500), branching=st.integers(3, 16))
    @settings(max_examples=40, deadline=None)
    def test_random_workload(self, seed, branching):
        rng = np.random.default_rng(seed)
        tree = BPlusTree(branching=branching)
        alive = []
        for step in range(300):
            if alive and rng.random() < 0.4:
                idx = rng.integers(len(alive))
                key, value = alive.pop(int(idx))
                assert tree.delete(key, value)
            else:
                key = float(rng.integers(0, 50))
                value = step
                tree.insert(key, value)
                alive.append((key, value))
        tree.check_invariants()
        assert len(tree) == len(alive)
        expected = sorted(k for k, _ in alive)
        assert [k for k, _ in tree.items()] == expected

    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_range_search_matches_naive(self, seed):
        rng = np.random.default_rng(seed)
        tree = BPlusTree(branching=5)
        pairs = []
        for i in range(150):
            key = float(np.round(rng.uniform(0, 30), 1))
            tree.insert(key, i)
            pairs.append((key, i))
        low, high = sorted(rng.uniform(0, 30, size=2))
        expected = sorted(
            [(k, v) for k, v in pairs if low <= k <= high]
        )
        got = sorted(tree.range_search(low, high))
        assert got == expected

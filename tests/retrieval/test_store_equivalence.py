"""Differential harness: sharded batched k-NN vs the linear-scan oracle.

The contract under test (ROADMAP item 2): a :class:`ShardedSignatureIndex`
answering over persisted, partitioned segments must return **bit-identical**
neighbour ids *and* distances to one global :class:`LinearScanIndex` over
the same id-sorted matrix — for every shard count, backend, k, tenant
filter and tie pattern.  Equality is asserted with ``np.array_equal`` on
both arrays: no tolerance, no sorting slack.
"""

import numpy as np
import pytest

from repro.errors import NotFittedError, RetrievalError
from repro.retrieval import (
    LinearScanIndex,
    ShardedSignatureIndex,
    SignatureStore,
)

SHARD_COUNTS = [1, 4, 16]
BACKENDS = ["linear", "idistance"]


def population(rng, n=300, dim=8, n_tenants=7):
    vectors = rng.uniform(0.0, 1.0, size=(n, dim))
    # Inject exact duplicates so ties are real, not hypothetical: rows
    # 10/11/12 and 50/51 are byte-identical.
    vectors[11] = vectors[10]
    vectors[12] = vectors[10]
    vectors[51] = vectors[50]
    labels = [f"motion-{i % 5}" for i in range(n)]
    tenants = [f"tenant-{i % n_tenants}" for i in range(n)]
    return vectors, labels, tenants


def oracle_answers(vectors, queries, k):
    """Ground truth straight from the seed linear index."""
    oracle = LinearScanIndex().fit(vectors)
    ids = np.empty((len(queries), k), dtype=np.int64)
    dists = np.empty((len(queries), k))
    for qi, q in enumerate(queries):
        ids[qi], dists[qi] = oracle.query(q, k)
    return ids, dists


@pytest.fixture(scope="module")
def store_and_queries(tmp_path_factory):
    rng = np.random.default_rng(2024)
    vectors, labels, tenants = population(rng)
    store = SignatureStore(tmp_path_factory.mktemp("eqstore") / "store")
    # Three segments, so the sharded side reads a genuinely partitioned
    # store rather than one contiguous file.
    store.ingest(vectors[:100], labels[:100], tenants[:100])
    store.ingest(vectors[100:220], labels[100:220], tenants[100:220])
    store.ingest(vectors[220:], labels[220:], tenants[220:])
    queries = rng.uniform(0.0, 1.0, size=(32, vectors.shape[1]))
    # A handful of queries equidistant from duplicate rows.
    queries[0] = vectors[10]
    queries[1] = vectors[50]
    return store, vectors, tenants, queries


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestShardedEqualsOracle:
    def test_batched_knn_bit_identical(self, store_and_queries, n_shards,
                                       backend):
        store, vectors, _, queries = store_and_queries
        index = ShardedSignatureIndex(
            n_shards=n_shards, backend=backend, seed=0
        ).fit_store(store)
        assert index.n_indexed == len(vectors)
        for k in (1, 3, 10, 25):
            ids, dists = index.query_batch(queries, k)
            oracle_ids, oracle_dists = oracle_answers(vectors, queries, k)
            assert np.array_equal(ids, oracle_ids)
            assert np.array_equal(dists, oracle_dists)

    def test_tenant_filter_matches_filtered_oracle(self, store_and_queries,
                                                   n_shards, backend):
        store, _, tenants, queries = store_and_queries
        for tenant in ("tenant-0", "tenant-3"):
            contents = store.records(tenant=tenant)
            index = ShardedSignatureIndex(
                n_shards=n_shards, backend=backend, seed=0
            ).fit_store(store)
            ids, dists = index.query_batch(queries, 5, tenant=tenant)
            oracle_ids, oracle_dists = oracle_answers(
                contents.vectors, queries, 5
            )
            # The oracle returns row positions into the tenant-filtered
            # matrix; map them back to store ids.
            assert np.array_equal(ids, contents.ids[oracle_ids])
            assert np.array_equal(dists, oracle_dists)

    def test_single_query_matches_batched(self, store_and_queries, n_shards,
                                          backend):
        store, _, _, queries = store_and_queries
        index = ShardedSignatureIndex(
            n_shards=n_shards, backend=backend, seed=0
        ).fit_store(store)
        batch_ids, batch_dists = index.query_batch(queries[:4], 7)
        for qi in range(4):
            ids, dists = index.query(queries[qi], 7)
            assert np.array_equal(ids, batch_ids[qi])
            assert np.array_equal(dists, batch_dists[qi])

    def test_tie_order_is_ascending_id(self, store_and_queries, n_shards,
                                       backend):
        """Duplicate vectors resolve by ascending record id, like the oracle."""
        store, vectors, _, queries = store_and_queries
        index = ShardedSignatureIndex(
            n_shards=n_shards, backend=backend, seed=0
        ).fit_store(store)
        ids, dists = index.query_batch(queries[:1], 3)
        assert list(ids[0]) == [10, 11, 12]
        assert dists[0, 0] == dists[0, 1] == dists[0, 2] == 0.0


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_region_mode_matches_oracle(store_and_queries, n_shards):
    store, vectors, _, queries = store_and_queries
    index = ShardedSignatureIndex(
        n_shards=n_shards, backend="linear", mode="region", seed=3
    ).fit_store(store)
    ids, dists = index.query_batch(queries, 8)
    oracle_ids, oracle_dists = oracle_answers(vectors, queries, 8)
    assert np.array_equal(ids, oracle_ids)
    assert np.array_equal(dists, oracle_dists)


def test_fit_arrays_with_sparse_ids_matches_oracle(rng):
    """Non-contiguous ids (post-compaction stores) map back correctly."""
    vectors = rng.uniform(size=(120, 6))
    ids = np.arange(1000, 1000 + 240, 2, dtype=np.uint64)
    tenants = [f"t-{i % 3}" for i in range(120)]
    index = ShardedSignatureIndex(n_shards=4, seed=0).fit_arrays(
        ids, vectors, tenants
    )
    queries = rng.uniform(size=(8, 6))
    got_ids, got_dists = index.query_batch(queries, 6)
    oracle_ids, oracle_dists = oracle_answers(vectors, queries, 6)
    assert np.array_equal(got_ids, ids[oracle_ids])
    assert np.array_equal(got_dists, oracle_dists)


def test_tenant_mode_probes_one_shard(store_and_queries):
    store, _, _, queries = store_and_queries
    index = ShardedSignatureIndex(n_shards=16, seed=0).fit_store(store)
    index.query_batch(queries[:2], 3, tenant="tenant-0")
    assert index.last_shards_probed == 1
    index.query_batch(queries[:2], 3)
    assert index.last_shards_probed > 1


class TestValidation:
    def test_unknown_tenant_rejected(self, store_and_queries):
        store, _, _, queries = store_and_queries
        index = ShardedSignatureIndex(n_shards=4, seed=0).fit_store(store)
        with pytest.raises(RetrievalError):
            index.query_batch(queries[:1], 3, tenant="no-such-tenant")

    def test_k_larger_than_population_rejected(self, store_and_queries):
        store, vectors, _, queries = store_and_queries
        index = ShardedSignatureIndex(n_shards=4, seed=0).fit_store(store)
        with pytest.raises(RetrievalError):
            index.query_batch(queries[:1], len(vectors) + 1)

    def test_unfitted_query_raises(self, rng):
        with pytest.raises(NotFittedError):
            ShardedSignatureIndex().query(rng.uniform(size=4), 1)

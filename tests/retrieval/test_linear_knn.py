"""Linear-scan k-NN and the voting helper."""

import numpy as np
import pytest

from repro.errors import NotFittedError, RetrievalError
from repro.retrieval.knn import knn_vote
from repro.retrieval.linear import LinearScanIndex


@pytest.fixture
def index(rng):
    vectors = rng.normal(size=(50, 6))
    return LinearScanIndex().fit(vectors), vectors


class TestLinearScan:
    def test_nearest_is_exact_match(self, index):
        idx, vectors = index
        indices, distances = idx.query(vectors[17], k=1)
        assert indices[0] == 17
        assert distances[0] == pytest.approx(0.0)

    def test_results_sorted(self, index, rng):
        idx, _ = index
        _, distances = idx.query(rng.normal(size=6), k=10)
        assert np.all(np.diff(distances) >= 0)

    def test_matches_brute_force(self, index, rng):
        idx, vectors = index
        q = rng.normal(size=6)
        truth = np.argsort(np.linalg.norm(vectors - q, axis=1))[:5]
        got, _ = idx.query(q, k=5)
        np.testing.assert_array_equal(got, truth)

    def test_ties_broken_by_index(self):
        vectors = np.zeros((4, 2))
        idx = LinearScanIndex().fit(vectors)
        got, _ = idx.query(np.zeros(2), k=4)
        np.testing.assert_array_equal(got, [0, 1, 2, 3])

    def test_k_bounds(self, index, rng):
        idx, _ = index
        with pytest.raises(RetrievalError, match="exceeds"):
            idx.query(rng.normal(size=6), k=51)
        with pytest.raises(Exception):
            idx.query(rng.normal(size=6), k=0)

    def test_dimension_mismatch(self, index, rng):
        idx, _ = index
        with pytest.raises(RetrievalError, match="dims"):
            idx.query(rng.normal(size=7), k=1)

    def test_unfitted(self, rng):
        with pytest.raises(NotFittedError):
            LinearScanIndex().query(rng.normal(size=3), k=1)
        with pytest.raises(NotFittedError):
            LinearScanIndex().n_indexed

    def test_n_indexed(self, index):
        idx, vectors = index
        assert idx.n_indexed == len(vectors)


class TestKnnVote:
    def test_simple_majority(self):
        label = knn_vote(["a", "b", "a"], np.array([0.1, 0.2, 0.3]))
        assert label == "a"

    def test_tie_goes_to_nearest(self):
        label = knn_vote(["b", "a", "a", "b"], np.array([0.1, 0.2, 0.3, 0.4]))
        assert label == "b"

    def test_single_neighbor(self):
        assert knn_vote(["x"], np.array([0.5])) == "x"

    def test_empty_rejected(self):
        with pytest.raises(RetrievalError):
            knn_vote([], np.array([]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(RetrievalError):
            knn_vote(["a"], np.array([0.1, 0.2]))

    def test_three_way_tie(self):
        label = knn_vote(["c", "a", "b"], np.array([0.1, 0.2, 0.3]))
        assert label == "c"

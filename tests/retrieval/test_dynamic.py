"""Dynamic (B+-tree-backed) iDistance: exactness under churn."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError, RetrievalError
from repro.retrieval.dynamic import DynamicIDistanceIndex
from repro.retrieval.linear import LinearScanIndex


def clustered(rng, n_clusters=5, per=30, dim=6):
    centers = rng.normal(size=(n_clusters, dim)) * 4
    return np.vstack([
        c + rng.normal(0, 0.3, size=(per, dim)) for c in centers
    ])


class TestStaticBehaviour:
    def test_matches_linear_scan(self, rng):
        vectors = clustered(rng)
        dyn = DynamicIDistanceIndex(n_partitions=5).fit(vectors)
        lin = LinearScanIndex().fit(vectors)
        for _ in range(25):
            q = rng.normal(size=6) * 3
            di, dd = dyn.query(q, k=5)
            li, ld = lin.query(q, k=5)
            np.testing.assert_array_equal(di, li)
            np.testing.assert_allclose(dd, ld)

    def test_ids_are_row_indices_after_fit(self, rng):
        vectors = clustered(rng)
        dyn = DynamicIDistanceIndex(n_partitions=4).fit(vectors)
        ids, dists = dyn.query(vectors[13], k=1)
        assert ids[0] == 13
        assert dists[0] == pytest.approx(0.0)

    def test_unfitted(self, rng):
        with pytest.raises(NotFittedError):
            DynamicIDistanceIndex().query(rng.normal(size=3), k=1)
        with pytest.raises(NotFittedError):
            DynamicIDistanceIndex().insert(rng.normal(size=3))


class TestInsertion:
    def test_inserted_vector_found(self, rng):
        vectors = clustered(rng)
        dyn = DynamicIDistanceIndex(n_partitions=5).fit(vectors)
        new = vectors[3] + 0.01
        vid = dyn.insert(new)
        ids, dists = dyn.query(new, k=1)
        assert ids[0] == vid
        assert dists[0] == pytest.approx(0.0)
        assert dyn.n_indexed == len(vectors) + 1

    def test_insert_matches_linear_after_growth(self, rng):
        base = clustered(rng)
        dyn = DynamicIDistanceIndex(n_partitions=5).fit(base)
        extra = clustered(np.random.default_rng(7), n_clusters=5, per=5)
        for row in extra:
            dyn.insert(row)
        all_vectors = np.vstack([base, extra])
        lin = LinearScanIndex().fit(all_vectors)
        for _ in range(15):
            q = rng.normal(size=6) * 3
            di, _ = dyn.query(q, k=4)
            li, _ = lin.query(q, k=4)
            np.testing.assert_array_equal(di, li)

    def test_headroom_violation_rejected(self, rng):
        vectors = rng.normal(size=(30, 4))
        dyn = DynamicIDistanceIndex(n_partitions=3, headroom=1.0).fit(vectors)
        with pytest.raises(RetrievalError, match="rebuild"):
            dyn.insert(np.full(4, 1e6))

    def test_dimension_mismatch(self, rng):
        dyn = DynamicIDistanceIndex(n_partitions=3).fit(rng.normal(size=(20, 4)))
        with pytest.raises(RetrievalError, match="dims"):
            dyn.insert(rng.normal(size=5))


class TestDeletion:
    def test_removed_vector_not_returned(self, rng):
        vectors = clustered(rng)
        dyn = DynamicIDistanceIndex(n_partitions=5).fit(vectors)
        assert dyn.remove(10)
        ids, _ = dyn.query(vectors[10], k=3)
        assert 10 not in ids
        assert dyn.n_indexed == len(vectors) - 1

    def test_remove_missing_id(self, rng):
        dyn = DynamicIDistanceIndex(n_partitions=3).fit(rng.normal(size=(10, 3)))
        assert not dyn.remove(999)

    def test_remove_twice(self, rng):
        dyn = DynamicIDistanceIndex(n_partitions=3).fit(rng.normal(size=(10, 3)))
        assert dyn.remove(4)
        assert not dyn.remove(4)


class TestChurn:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_exactness_under_mixed_workload(self, seed):
        rng = np.random.default_rng(seed)
        base = clustered(rng, n_clusters=4, per=15, dim=5)
        dyn = DynamicIDistanceIndex(n_partitions=4, headroom=6.0).fit(base)
        alive = {i: base[i] for i in range(len(base))}
        for _ in range(60):
            if len(alive) > 8 and rng.random() < 0.45:
                vid = int(rng.choice(list(alive)))
                assert dyn.remove(vid)
                del alive[vid]
            else:
                vec = clustered(rng, n_clusters=4, per=1, dim=5)[
                    rng.integers(4)
                ]
                vid = dyn.insert(vec)
                alive[vid] = vec
        # Compare against brute force over the survivors.
        ids = list(alive)
        matrix = np.vstack([alive[i] for i in ids])
        q = rng.normal(size=5) * 2
        truth_order = np.argsort(np.linalg.norm(matrix - q, axis=1))[:5]
        truth_ids = {ids[i] for i in truth_order}
        got_ids, got_d = dyn.query(q, k=5)
        got_sorted = np.sort(got_d)
        np.testing.assert_allclose(got_d, got_sorted)
        truth_d = np.sort(np.linalg.norm(matrix - q, axis=1))[:5]
        np.testing.assert_allclose(np.sort(got_d), truth_d, atol=1e-9)
        assert set(got_ids) <= set(ids)

"""One contract, four backends.

Every :class:`NearestNeighborIndex` implementation must behave
identically at the API boundary: same validation errors, same tie
ordering, same neighbour sets as the linear-scan oracle.  This file
parametrizes that contract over all four backends so a fifth backend
only needs one new factory entry to inherit the whole suite.
"""

import numpy as np
import pytest

from repro.errors import NotFittedError, RetrievalError, ValidationError
from repro.retrieval import (
    BPlusTree,
    DynamicIDistanceIndex,
    IDistanceIndex,
    LinearScanIndex,
    NearestNeighborIndex,
    ShardedSignatureIndex,
)

BACKENDS = {
    "linear": lambda: LinearScanIndex(),
    "idistance": lambda: IDistanceIndex(n_partitions=4, seed=0),
    "dynamic": lambda: DynamicIDistanceIndex(n_partitions=4, seed=0),
    "sharded": lambda: ShardedSignatureIndex(n_shards=4, seed=0),
}


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def backend(request):
    return BACKENDS[request.param]


@pytest.fixture
def database(rng):
    vectors = rng.uniform(0.0, 1.0, size=(60, 5))
    vectors[7] = vectors[3]  # exact duplicate → guaranteed tie
    return vectors


class TestContract:
    def test_is_a_nearest_neighbor_index(self, backend):
        assert isinstance(backend(), NearestNeighborIndex)

    def test_fit_returns_self(self, backend, database):
        index = backend()
        assert index.fit(database) is index

    def test_matches_linear_oracle(self, backend, database, rng):
        index = backend().fit(database)
        oracle = LinearScanIndex().fit(database)
        for k in (1, 4, 12):
            for _ in range(8):
                q = rng.uniform(size=5)
                ids, dists = index.query(q, k)
                oracle_ids, oracle_dists = oracle.query(q, k)
                np.testing.assert_array_equal(ids, oracle_ids)
                np.testing.assert_allclose(dists, oracle_dists, atol=1e-12)

    def test_results_sorted_ascending(self, backend, database, rng):
        index = backend().fit(database)
        _, dists = index.query(rng.uniform(size=5), 10)
        assert np.all(np.diff(dists) >= 0)

    def test_duplicate_keys_tie_break_by_index(self, backend, database):
        """Rows 3 and 7 are identical; the lower index must come first."""
        index = backend().fit(database)
        ids, dists = index.query(database[3], 2)
        assert list(ids) == [3, 7]
        assert dists[0] == dists[1] == 0.0

    def test_k_equals_n(self, backend, database):
        index = backend().fit(database)
        ids, _ = index.query(database[0], len(database))
        assert sorted(ids) == list(range(len(database)))

    def test_k_beyond_n_rejected(self, backend, database):
        index = backend().fit(database)
        with pytest.raises(RetrievalError):
            index.query(database[0], len(database) + 1)

    def test_nonpositive_k_rejected(self, backend, database):
        index = backend().fit(database)
        with pytest.raises(ValidationError):
            index.query(database[0], 0)

    def test_wrong_query_dim_rejected(self, backend, database):
        index = backend().fit(database)
        with pytest.raises(RetrievalError):
            index.query(np.zeros(9), 1)

    def test_unfitted_raises_not_fitted(self, backend):
        with pytest.raises(NotFittedError):
            backend().query(np.zeros(5), 1)

    def test_nearest_to_database_row_is_itself(self, backend, database):
        index = backend().fit(database)
        for row in (0, 20, 59):
            ids, dists = index.query(database[row], 1)
            assert dists[0] == 0.0
            # Row 7 duplicates row 3, so "itself" is the lower of the pair.
            expected = 3 if row == 7 else row
            assert ids[0] == expected


class TestBPlusTreeEdges:
    """The key structure under iDistance gets its own edge cases."""

    def test_empty_tree(self):
        tree = BPlusTree(branching=4)
        assert len(tree) == 0
        assert tree.range_search(-1e9, 1e9) == []
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_duplicate_keys_all_retained(self):
        tree = BPlusTree(branching=4)
        for value in range(10):
            tree.insert(1.5, value)
        tree.insert(0.5, "low")
        tree.insert(2.5, "high")
        hits = tree.range_search(1.5, 1.5)
        assert sorted(v for _, v in hits) == list(range(10))
        assert len(tree) == 12
        tree.check_invariants()

    def test_delete_one_duplicate_keeps_the_rest(self):
        tree = BPlusTree(branching=4)
        for value in range(6):
            tree.insert(2.0, value)
        assert tree.delete(2.0, 3)
        remaining = sorted(v for _, v in tree.range_search(2.0, 2.0))
        assert remaining == [0, 1, 2, 4, 5]
        assert not tree.delete(2.0, 3)
        tree.check_invariants()

    def test_range_search_empty_interval(self):
        tree = BPlusTree(branching=4)
        for key in range(20):
            tree.insert(float(key), key)
        assert tree.range_search(5.5, 5.9) == []
        assert [v for _, v in tree.range_search(3.0, 5.0)] == [3, 4, 5]

"""The iDistance index: exactness against linear scan, and pruning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError, RetrievalError
from repro.retrieval.idistance import IDistanceIndex
from repro.retrieval.linear import LinearScanIndex


def clustered(rng, n_clusters=6, per=40, dim=8, spread=0.3):
    centers = rng.normal(size=(n_clusters, dim)) * 5
    return np.vstack([
        c + rng.normal(0, spread, size=(per, dim)) for c in centers
    ]), centers


class TestExactness:
    def test_identical_to_linear_scan_on_clustered_data(self, rng):
        vectors, centers = clustered(rng)
        linear = LinearScanIndex().fit(vectors)
        idist = IDistanceIndex(n_partitions=6).fit(vectors)
        for i in range(40):
            q = centers[i % 6] + rng.normal(0, 0.5, size=8)
            li, ld = linear.query(q, k=5)
            ii, idd = idist.query(q, k=5)
            np.testing.assert_array_equal(li, ii)
            np.testing.assert_allclose(ld, idd)

    def test_identical_on_uniform_data(self, rng):
        vectors = rng.uniform(-1, 1, size=(200, 5))
        linear = LinearScanIndex().fit(vectors)
        idist = IDistanceIndex(n_partitions=8).fit(vectors)
        for _ in range(25):
            q = rng.uniform(-1.5, 1.5, size=5)
            li, _ = linear.query(q, k=7)
            ii, _ = idist.query(q, k=7)
            np.testing.assert_array_equal(li, ii)

    def test_query_far_outside_data(self, rng):
        vectors, _ = clustered(rng)
        linear = LinearScanIndex().fit(vectors)
        idist = IDistanceIndex(n_partitions=6).fit(vectors)
        q = np.full(8, 100.0)
        li, _ = linear.query(q, k=3)
        ii, _ = idist.query(q, k=3)
        np.testing.assert_array_equal(li, ii)

    def test_k_equals_n(self, rng):
        vectors = rng.normal(size=(30, 4))
        linear = LinearScanIndex().fit(vectors)
        idist = IDistanceIndex(n_partitions=4).fit(vectors)
        q = rng.normal(size=4)
        li, _ = linear.query(q, k=30)
        ii, _ = idist.query(q, k=30)
        np.testing.assert_array_equal(li, ii)

    @given(seed=st.integers(0, 200), k=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_exactness_property(self, seed, k):
        rng = np.random.default_rng(seed)
        vectors = rng.normal(size=(80, 4)) * rng.uniform(0.5, 5)
        linear = LinearScanIndex().fit(vectors)
        idist = IDistanceIndex(n_partitions=5).fit(vectors)
        q = rng.normal(size=4) * 3
        li, ld = linear.query(q, k=k)
        ii, idd = idist.query(q, k=k)
        np.testing.assert_array_equal(li, ii)
        np.testing.assert_allclose(ld, idd)


class TestPruning:
    def test_prunes_on_clustered_data(self, rng):
        """On well-clustered data most candidates are never examined."""
        vectors, centers = clustered(rng, n_clusters=8, per=80)
        idist = IDistanceIndex(n_partitions=8).fit(vectors)
        examined = 0
        n_queries = 30
        for i in range(n_queries):
            q = centers[i % 8] + rng.normal(0, 0.3, size=8)
            idist.query(q, k=5)
            examined += idist.last_candidates
        assert examined / n_queries < 0.5 * len(vectors)

    def test_statistics_exposed(self, rng):
        vectors, _ = clustered(rng)
        idist = IDistanceIndex(n_partitions=4).fit(vectors)
        idist.query(vectors[0], k=3)
        assert idist.last_candidates >= 3
        assert idist.last_rounds >= 1


class TestEdgeCases:
    def test_single_partition(self, rng):
        vectors = rng.normal(size=(20, 3))
        idist = IDistanceIndex(n_partitions=1).fit(vectors)
        linear = LinearScanIndex().fit(vectors)
        q = rng.normal(size=3)
        np.testing.assert_array_equal(
            idist.query(q, k=4)[0], linear.query(q, k=4)[0]
        )

    def test_more_partitions_than_points(self, rng):
        vectors = rng.normal(size=(5, 3))
        idist = IDistanceIndex(n_partitions=20).fit(vectors)
        assert idist.n_indexed == 5
        ii, _ = idist.query(vectors[2], k=1)
        assert ii[0] == 2

    def test_duplicate_points(self):
        vectors = np.vstack([np.zeros((10, 2)), np.ones((10, 2))])
        idist = IDistanceIndex(n_partitions=2).fit(vectors)
        ii, dd = idist.query(np.zeros(2), k=10)
        assert set(ii) == set(range(10))
        np.testing.assert_allclose(dd, 0.0)

    def test_unfitted(self, rng):
        with pytest.raises(NotFittedError):
            IDistanceIndex().query(rng.normal(size=3), k=1)

    def test_invalid_parameters(self):
        with pytest.raises(RetrievalError):
            IDistanceIndex(initial_radius_fraction=0.0)
        with pytest.raises(RetrievalError):
            IDistanceIndex(radius_growth=1.0)

    def test_k_exceeding_n_rejected(self, rng):
        idist = IDistanceIndex().fit(rng.normal(size=(10, 2)))
        with pytest.raises(RetrievalError):
            idist.query(rng.normal(size=2), k=11)

"""Unit tests for the whole-program graph layer (:mod:`repro.lint.graph`).

Fixture trees are written to ``tmp_path`` and indexed through the same
``iter_python_files``/``ModuleContext`` path a real run uses, so module
keys, import anchoring and suppression parsing behave exactly as they do
on ``src/repro``.
"""

from __future__ import annotations

import ast

from repro.lint.context import ModuleContext
from repro.lint.graph import ProjectGraph, resolve_import
from repro.lint.runner import iter_python_files


def build_graph(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    contexts = [ModuleContext.parse(p, r) for p, r in iter_python_files([root])]
    return ProjectGraph.build(contexts)


def calls_of(graph, qname):
    return [c.callee for c in graph.facts[qname].calls if c.callee is not None]


# ----------------------------------------------------------------------
# Import statement resolution
# ----------------------------------------------------------------------


class TestResolveImport:
    def _node(self, source):
        return ast.parse(source).body[0]

    def test_absolute_import(self):
        node = self._node("from repro.features.svd import extract\n")
        assert resolve_import(("x",), False, node) == ("features", "svd")

    def test_absolute_import_outside_package(self):
        node = self._node("from numpy.linalg import svd\n")
        assert resolve_import(("x",), False, node) is None

    def test_relative_sibling(self):
        node = self._node("from .helpers import f\n")
        assert resolve_import(("pkg", "mod"), False, node) == ("pkg", "helpers")

    def test_relative_from_package_init(self):
        node = self._node("from .impl import f\n")
        assert resolve_import(("pkg",), True, node) == ("pkg", "impl")

    def test_relative_parent(self):
        node = self._node("from ..utils.rng import as_generator\n")
        assert resolve_import(("pkg", "mod"), False, node) == ("utils", "rng")

    def test_relative_past_root(self):
        node = self._node("from ...nowhere import f\n")
        assert resolve_import(("pkg", "mod"), False, node) is None


# ----------------------------------------------------------------------
# Call-graph edge resolution
# ----------------------------------------------------------------------


class TestCallResolution:
    def test_from_import_call_edge(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "def f():\n    return 1\n",
            "b.py": "from repro.a import f\n\ndef g():\n    return f()\n",
        })
        assert calls_of(graph, ("b", "g")) == [("a", "f")]

    def test_aliased_from_import(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "def f():\n    return 1\n",
            "b.py": "from repro.a import f as renamed\n\n"
                    "def g():\n    return renamed()\n",
        })
        assert calls_of(graph, ("b", "g")) == [("a", "f")]

    def test_aliased_module_import(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "def f():\n    return 1\n",
            "b.py": "import repro.a as mod\n\ndef g():\n    return mod.f()\n",
        })
        assert calls_of(graph, ("b", "g")) == [("a", "f")]

    def test_relative_import_edge(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/helpers.py": "def h():\n    return 1\n",
            "pkg/mod.py": "from .helpers import h\n\ndef g():\n    return h()\n",
        })
        assert calls_of(graph, ("pkg", "mod", "g")) == [("pkg", "helpers", "h")]

    def test_reexport_chain_followed(self, tmp_path):
        graph = build_graph(tmp_path, {
            "pkg/__init__.py": "from repro.pkg.impl import f\n\n"
                               "__all__ = [\"f\"]\n",
            "pkg/impl.py": "def f():\n    return 1\n",
            "user.py": "from repro.pkg import f\n\ndef g():\n    return f()\n",
        })
        assert calls_of(graph, ("user", "g")) == [("pkg", "impl", "f")]

    def test_self_method_edge(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "class C:\n"
                    "    def helper(self):\n        return 1\n"
                    "    def run(self):\n        return self.helper()\n",
        })
        assert calls_of(graph, ("a", "C", "run")) == [("a", "C", "helper")]

    def test_inherited_method_edge(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "class Base:\n"
                    "    def helper(self):\n        return 1\n",
            "b.py": "from repro.a import Base\n\n"
                    "class Derived(Base):\n"
                    "    def run(self):\n        return self.helper()\n",
        })
        assert calls_of(graph, ("b", "Derived", "run")) == [("a", "Base", "helper")]

    def test_class_call_resolves_to_init(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "class C:\n"
                    "    def __init__(self):\n        self.x = 1\n",
            "b.py": "from repro.a import C\n\ndef g():\n    return C()\n",
        })
        assert calls_of(graph, ("b", "g")) == [("a", "C", "__init__")]

    def test_nested_function_edge(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "def outer():\n"
                    "    def inner():\n        return 1\n"
                    "    return inner()\n",
        })
        assert calls_of(graph, ("a", "outer")) == [("a", "outer", "inner")]

    def test_locally_shadowed_name_not_resolved(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "def f():\n    return 1\n",
            "b.py": "from repro.a import f\n\n"
                    "def g(f):\n    return f()\n",
        })
        assert calls_of(graph, ("b", "g")) == []

    def test_function_reference_argument_recorded(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "def worker(x):\n    return x\n",
            "b.py": "from repro.a import worker\n\n"
                    "def dispatch(run):\n    return run(worker, [1])\n",
        })
        call, = graph.facts[("b", "dispatch")].calls
        assert call.arg0_func == ("a", "worker")
        assert call.ref_args == (("a", "worker"),)


# ----------------------------------------------------------------------
# Reachability and exception escape
# ----------------------------------------------------------------------


class TestReachability:
    def test_transitive_reach_with_witness_chain(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "def leaf():\n    return 1\n\n"
                    "def mid():\n    return leaf()\n\n"
                    "def top():\n    return mid()\n",
        })
        parents = graph.reachable([("a", "top")])
        assert set(parents) == {("a", "top"), ("a", "mid"), ("a", "leaf")}
        assert graph.chain(parents, ("a", "leaf")) == [
            ("a", "top"), ("a", "mid"), ("a", "leaf"),
        ]

    def test_reach_through_function_reference(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "def worker(x):\n    return x\n\n"
                    "def apply(fn, xs):\n    return [fn(x) for x in xs]\n\n"
                    "def top(xs):\n    return apply(worker, xs)\n",
        })
        parents = graph.reachable([("a", "top")])
        assert ("a", "worker") in parents


class TestEscapeAnalysis:
    def test_raise_propagates_to_caller(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "def inner():\n    raise KeyError(\"boom\")\n\n"
                    "def outer():\n    return inner()\n",
        })
        escapes = graph.escaping_exceptions()
        assert "KeyError" in escapes[("a", "inner")]
        assert "KeyError" in escapes[("a", "outer")]

    def test_try_absorbs_callee_escape(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "def inner():\n    raise KeyError(\"boom\")\n\n"
                    "def outer():\n"
                    "    try:\n        return inner()\n"
                    "    except KeyError:\n        return None\n",
        })
        escapes = graph.escaping_exceptions()
        assert "KeyError" not in escapes[("a", "outer")]

    def test_builtin_base_class_absorbs(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "def inner():\n    raise KeyError(\"boom\")\n\n"
                    "def outer():\n"
                    "    try:\n        return inner()\n"
                    "    except LookupError:\n        return None\n",
        })
        assert "KeyError" not in graph.escaping_exceptions()[("a", "outer")]

    def test_project_hierarchy_absorbs_subclass(self, tmp_path):
        graph = build_graph(tmp_path, {
            "errors.py": "class ReproError(Exception):\n    pass\n\n"
                         "class CacheError(ReproError):\n    pass\n",
            "a.py": "from repro.errors import CacheError, ReproError\n\n"
                    "def inner():\n    raise CacheError(\"boom\")\n\n"
                    "def outer():\n"
                    "    try:\n        return inner()\n"
                    "    except ReproError:\n        return None\n",
        })
        escapes = graph.escaping_exceptions()
        assert "CacheError" in escapes[("a", "inner")]
        assert "CacheError" not in escapes[("a", "outer")]
        assert graph.is_repro_error("CacheError")

    def test_origin_points_at_raise_site(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "def inner():\n    raise KeyError(\"boom\")\n\n"
                    "def outer():\n    return inner()\n",
        })
        path, line = graph.escaping_exceptions()[("a", "outer")]["KeyError"]
        assert path.endswith("a.py")
        assert line == 2


# ----------------------------------------------------------------------
# Module symbol tables
# ----------------------------------------------------------------------


class TestModuleSymbols:
    def test_mutable_globals_detected(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "CACHE = {}\nITEMS = []\nLIMIT = 3\nNAME = \"x\"\n",
        })
        symbols = graph.modules[("a",)]
        assert set(symbols.mutable_globals) == {"CACHE", "ITEMS"}

    def test_shape_contracts_read_from_decorator(self, tmp_path):
        graph = build_graph(tmp_path, {
            "a.py": "from repro.utils.validation import shapes\n\n"
                    "@shapes(x=\"n d\", y=\"n\")\n"
                    "def f(x, y):\n    return x\n",
        })
        assert graph.functions[("a", "f")].shape_specs == {"x": "n d", "y": "n"}

"""Fixture tests: each rule fires on violating code and stays quiet on clean code.

Fixtures are written to ``tmp_path`` and linted through the public API, so
these tests exercise file collection, path relativization, suppression
parsing and the CLI exactly as a real run would.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import LintError, ValidationError
from repro.lint import RULE_IDS, lint_paths, rules_by_id
from repro.lint.cli import main as lint_main


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


def lint(root, files, select=None):
    write_tree(root, files)
    return lint_paths([root], select=select)


def rules_of(report):
    return [v.rule for v in report.violations]


# ----------------------------------------------------------------------
# R1 — global numpy RNG confinement
# ----------------------------------------------------------------------


class TestR1:
    def test_fires_on_np_random_call(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "import numpy as np\nx = np.random.default_rng()\n",
        }, select=["R1"])
        assert rules_of(report) == ["R1"]
        assert "utils/rng.py" in report.violations[0].message

    def test_fires_on_numpy_random_import(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "from numpy.random import default_rng\n",
        }, select=["R1"])
        assert rules_of(report) == ["R1"]

    def test_allowed_inside_utils_rng(self, tmp_path):
        report = lint(tmp_path, {
            "utils/rng.py": "import numpy as np\nx = np.random.default_rng()\n",
        }, select=["R1"])
        assert report.ok

    def test_quiet_on_generator_use(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "def draw(rng):\n    return rng.normal()\n",
        }, select=["R1"])
        assert report.ok


# ----------------------------------------------------------------------
# R2 — errors hierarchy
# ----------------------------------------------------------------------


class TestR2:
    def test_fires_on_bare_builtin_raise(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "def f(x):\n    raise ValueError('bad')\n",
        }, select=["R2"])
        assert rules_of(report) == ["R2"]

    def test_fires_on_uncalled_exception(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "def f():\n    raise RuntimeError\n",
        }, select=["R2"])
        assert rules_of(report) == ["R2"]

    def test_allows_repro_errors_and_reraise(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": (
                "from repro.errors import ValidationError\n"
                "def f(x):\n"
                "    try:\n"
                "        raise ValidationError('bad')\n"
                "    except ValidationError:\n"
                "        raise\n"
            ),
        }, select=["R2"])
        assert report.ok

    def test_allows_not_implemented_error(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "def f():\n    raise NotImplementedError\n",
        }, select=["R2"])
        assert report.ok


# ----------------------------------------------------------------------
# R3 — export surfaces
# ----------------------------------------------------------------------


class TestR3:
    def test_missing_all(self, tmp_path):
        report = lint(tmp_path, {"mod.py": "x = 1\n"}, select=["R3"])
        assert rules_of(report) == ["R3"]
        assert "__all__" in report.violations[0].message

    def test_non_literal_all(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "names = ['x']\n__all__ = names\nx = 1\n",
        }, select=["R3"])
        assert rules_of(report) == ["R3"]
        assert "literal" in report.violations[0].message

    def test_unbound_name(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "__all__ = ['ghost']\n",
        }, select=["R3"])
        assert rules_of(report) == ["R3"]
        assert "ghost" in report.violations[0].message

    def test_duplicate_name(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "__all__ = ['x', 'x']\nx = 1\n",
        }, select=["R3"])
        assert rules_of(report) == ["R3"]
        assert "more than once" in report.violations[0].message

    def test_private_module_exempt(self, tmp_path):
        report = lint(tmp_path, {"_mod.py": "x = 1\n"}, select=["R3"])
        assert report.ok

    def test_clean_module(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "__all__ = ['f']\ndef f():\n    return 1\n",
        }, select=["R3"])
        assert report.ok

    def test_cross_module_private_import(self, tmp_path):
        report = lint(tmp_path, {
            "repro/__init__.py": "__all__ = []\n",
            "repro/a.py": "__all__ = ['f']\ndef f():\n    return 1\n"
                          "def _hidden():\n    return 2\n",
            "repro/b.py": "from repro.a import _hidden\n"
                          "__all__ = ['g']\ndef g():\n    return _hidden()\n",
        }, select=["R3"])
        assert rules_of(report) == ["R3"]
        assert "_hidden" in report.violations[0].message
        assert report.violations[0].path.endswith("b.py")

    def test_cross_module_submodule_import_allowed(self, tmp_path):
        report = lint(tmp_path, {
            "repro/__init__.py": "__all__ = []\n",
            "repro/pkg/__init__.py": "__all__ = []\n",
            "repro/pkg/a.py": "__all__ = ['f']\ndef f():\n    return 1\n",
            "repro/b.py": "from repro.pkg import a\n"
                          "__all__ = ['g']\ndef g():\n    return a.f()\n",
        }, select=["R3"])
        assert report.ok

    def test_cross_module_relative_import(self, tmp_path):
        report = lint(tmp_path, {
            "repro/__init__.py": "__all__ = []\n",
            "repro/a.py": "__all__ = []\ndef _hidden():\n    return 1\n",
            "repro/b.py": "from .a import _hidden\n"
                          "__all__ = ['g']\ndef g():\n    return _hidden()\n",
        }, select=["R3"])
        assert rules_of(report) == ["R3"]


# ----------------------------------------------------------------------
# R4 — numeric hygiene
# ----------------------------------------------------------------------


class TestR4:
    def test_mutable_default(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "def f(x, acc=[]):\n    return acc\n",
        }, select=["R4"])
        assert rules_of(report) == ["R4"]
        assert "mutable default" in report.violations[0].message

    def test_mutable_default_call(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "def f(x, acc=dict()):\n    return acc\n",
        }, select=["R4"])
        assert rules_of(report) == ["R4"]

    def test_float_literal_equality(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "def f(x):\n    return x == 0.5\n",
        }, select=["R4"])
        assert rules_of(report) == ["R4"]
        assert "tolerance" in report.violations[0].message

    def test_float_inequality_allowed(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "def f(x):\n    return x <= 0.5 or x == 3\n",
        }, select=["R4"])
        assert report.ok

    def test_wall_clock_in_core_path(self, tmp_path):
        report = lint(tmp_path, {
            "core/mod.py": "import time\ndef f():\n    return time.time()\n",
        }, select=["R4"])
        assert rules_of(report) == ["R4"]
        assert "wall-clock" in report.violations[0].message

    def test_wall_clock_outside_core_path(self, tmp_path):
        report = lint(tmp_path, {
            "io/mod.py": "import time\ndef f():\n    return time.time()\n",
        }, select=["R4"])
        assert report.ok


# ----------------------------------------------------------------------
# R5 — shape discipline
# ----------------------------------------------------------------------

_ARRAY_FN = (
    "import numpy as np\n"
    "def f(x: np.ndarray) -> np.ndarray:\n"
    "    return x * 2\n"
)


class TestR5:
    def test_fires_on_unvalidated_array_param(self, tmp_path):
        report = lint(tmp_path, {"mod.py": _ARRAY_FN}, select=["R5"])
        assert rules_of(report) == ["R5"]
        assert "'x'" in report.violations[0].message

    def test_check_array_satisfies(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": (
                "import numpy as np\n"
                "from repro.utils.validation import check_array\n"
                "def f(x: np.ndarray) -> np.ndarray:\n"
                "    x = check_array(x, name='x')\n"
                "    return x * 2\n"
            ),
        }, select=["R5"])
        assert report.ok

    def test_shapes_contract_satisfies(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": (
                "import numpy as np\n"
                "from repro.utils.validation import shapes\n"
                "@shapes(x='(n, d)')\n"
                "def f(x: np.ndarray) -> np.ndarray:\n"
                "    return x * 2\n"
            ),
        }, select=["R5"])
        assert report.ok

    def test_private_function_exempt(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "import numpy as np\ndef _f(x: np.ndarray):\n    return x\n",
        }, select=["R5"])
        assert report.ok

    def test_abstract_method_exempt(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": (
                "import abc\nimport numpy as np\n"
                "class A(abc.ABC):\n"
                "    @abc.abstractmethod\n"
                "    def f(self, x: np.ndarray) -> np.ndarray:\n"
                "        ...\n"
            ),
        }, select=["R5"])
        assert report.ok

    def test_non_array_annotations_ignored(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": (
                "import numpy as np\n"
                "from typing import Callable, Mapping\n"
                "def f(fn: Callable[[np.ndarray], float],\n"
                "      table: Mapping[str, np.ndarray]) -> float:\n"
                "    return 0.0\n"
            ),
        }, select=["R5"])
        assert report.ok

    def test_contract_unknown_parameter(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": (
                "import numpy as np\n"
                "from repro.utils.validation import shapes\n"
                "@shapes(y='(n,)')\n"
                "def f(x: np.ndarray) -> np.ndarray:\n"
                "    return x\n"
            ),
        }, select=["R5"])
        assert "unknown parameter 'y'" in report.violations[0].message

    def test_contract_bad_spec(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": (
                "import numpy as np\n"
                "from repro.utils.validation import shapes\n"
                "@shapes(x='n, d')\n"
                "def f(x: np.ndarray) -> np.ndarray:\n"
                "    return x\n"
            ),
        }, select=["R5"])
        assert rules_of(report) == ["R5"]


# ----------------------------------------------------------------------
# R6 — clock discipline (ad-hoc time reads only inside repro.obs)
# ----------------------------------------------------------------------


class TestR6:
    def test_fires_on_perf_counter_call(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "import time\nstart = time.perf_counter()\n",
        }, select=["R6"])
        assert rules_of(report) == ["R6"]
        assert "repro.obs" in report.violations[0].message

    def test_fires_on_time_time_call(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "import time\nstamp = time.time()\n",
        }, select=["R6"])
        assert rules_of(report) == ["R6"]

    def test_fires_on_clock_import(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "from time import perf_counter, monotonic\n",
        }, select=["R6"])
        assert rules_of(report) == ["R6"]

    def test_allowed_inside_obs(self, tmp_path):
        report = lint(tmp_path, {
            "obs/clock.py": "import time\nnow = time.perf_counter()\n",
        }, select=["R6"])
        assert report.ok

    def test_quiet_on_non_clock_time_use(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "import time\ntime.sleep(0.1)\n"
                      "from time import sleep\n",
        }, select=["R6"])
        assert report.ok

    def test_suppressible(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "import time\n"
                      "t = time.time()  # lint: ignore[R6]\n",
        }, select=["R6"])
        assert report.ok


# ----------------------------------------------------------------------
# Suppressions, parse errors, selection
# ----------------------------------------------------------------------


class TestSuppressions:
    def test_line_suppression(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "def f(x):\n"
                      "    raise ValueError('bad')  # lint: ignore[R2]\n",
        }, select=["R2"])
        assert report.ok

    def test_line_suppression_is_rule_specific(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "def f(x):\n"
                      "    raise ValueError('bad')  # lint: ignore[R1]\n",
        }, select=["R2"])
        assert rules_of(report) == ["R2"]

    def test_bare_ignore_suppresses_all_rules(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "def f(x):\n"
                      "    raise ValueError('bad')  # lint: ignore\n",
        }, select=["R2"])
        assert report.ok

    def test_file_wide_suppression(self, tmp_path):
        report = lint(tmp_path, {
            "mod.py": "# lint: ignore-file[R2]\n"
                      "def f(x):\n"
                      "    raise ValueError('one')\n"
                      "def g(x):\n"
                      "    raise ValueError('two')\n",
        }, select=["R2"])
        assert report.ok


class TestRunner:
    def test_syntax_error_reports_e0(self, tmp_path):
        report = lint(tmp_path, {"mod.py": "def broken(:\n"})
        assert rules_of(report) == ["E0"]
        assert not report.ok

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError):
            lint_paths([tmp_path / "nope"])

    def test_select_unknown_rule_raises(self, tmp_path):
        write_tree(tmp_path, {"mod.py": "__all__ = []\n"})
        with pytest.raises(ValidationError):
            lint_paths([tmp_path], select=["R99"])

    def test_violations_sorted_by_path_then_line(self, tmp_path):
        report = lint(tmp_path, {
            "a.py": "def f(x):\n    raise ValueError('a')\n"
                    "def g(x):\n    raise ValueError('b')\n",
            "b.py": "def h(x):\n    raise ValueError('c')\n",
        }, select=["R2"])
        keys = [(v.path, v.line) for v in report.violations]
        assert keys == sorted(keys)


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": "__all__ = []\n"})
        assert lint_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_violations(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": "x = 1\n"})
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R3" in out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_json_format(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": "x = 1\n"})
        assert lint_main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["violations"][0]["rule"] == "R3"
        assert {"rule", "path", "line", "col", "message"} <= set(
            payload["violations"][0]
        )

    def test_select_limits_rules(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": "x = 1\n"})  # violates R3 only
        assert lint_main([str(tmp_path), "--select", "R1"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_umbrella_cli_has_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        write_tree(tmp_path, {"mod.py": "__all__ = []\n"})
        assert repro_main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out


def test_rules_by_id_roundtrip():
    assert [r.id for r in rules_by_id(None)] == list(RULE_IDS)
    assert [r.id for r in rules_by_id(["r2", "R5"])] == ["R2", "R5"]

"""Fixture tests for the whole-program rules R7–R12 and the baseline flow.

Each rule gets at least one fixture proving it fires on bad code and one
proving it stays silent on good code, per the subsystem's acceptance
contract.  Fixtures go through ``lint_paths(..., select=[...])`` so file
collection, graph construction and suppression filtering run exactly as
in a real strict pass.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.errors import LintError
from repro.lint import Baseline, lint_paths
from repro.lint.cli import main as lint_main

#: Minimal executor module making ``pool_map`` resolvable in fixtures.
EXECUTOR = "def pool_map(fn, items, n_jobs=1):\n    return [fn(x) for x in items]\n"

#: Minimal obs facade making span/metric calls resolvable in fixtures.
OBS_CONFIG = (
    "def span(name, **attrs):\n    return None\n\n"
    "def traced(name):\n    def deco(fn):\n        return fn\n    return deco\n\n"
    "def record_counter(name, value=1):\n    return None\n\n"
    "def record_gauge(name, value):\n    return None\n\n"
    "def record_series(name, value):\n    return None\n\n"
    "def record_event(name, **attrs):\n    return None\n\n"
    "def time_histogram(name):\n    return None\n"
)

#: Project error hierarchy for R12 fixtures.
ERRORS = (
    "class ReproError(Exception):\n    pass\n\n"
    "class ValidationError(ReproError, ValueError):\n    pass\n"
)


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


def lint(root, files, select):
    write_tree(root, files)
    return lint_paths([root], select=select)


def rules_of(report):
    return [v.rule for v in report.violations]


# ----------------------------------------------------------------------
# R7 — shared state behind parallel executors
# ----------------------------------------------------------------------


class TestR7:
    def _tree(self, worker_body):
        return {
            "parallel/executor.py": EXECUTOR,
            "work.py": worker_body,
            "driver.py": "from repro.parallel.executor import pool_map\n"
                         "from repro.work import worker\n\n"
                         "def run(items):\n"
                         "    return pool_map(worker, items)\n",
        }

    def test_fires_on_module_global_mutation(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "_CACHE = {}\n\n"
            "def worker(x):\n"
            "    _CACHE[x] = x\n"
            "    return x\n"
        ), select=["R7"])
        assert rules_of(report) == ["R7"]
        violation = report.violations[0]
        assert violation.path.endswith("work.py")
        assert "_CACHE" in violation.message
        assert "work.worker" in violation.message

    def test_fires_transitively_through_helper(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "STATS = []\n\n"
            "def _bump(x):\n"
            "    STATS.append(x)\n\n"
            "def worker(x):\n"
            "    _bump(x)\n"
            "    return x\n"
        ), select=["R7"])
        assert rules_of(report) == ["R7"]
        assert "work.worker -> work._bump" in report.violations[0].message

    def test_silent_when_lock_guarded(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "import threading\n\n"
            "_CACHE = {}\n"
            "_LOCK = threading.Lock()\n\n"
            "def worker(x):\n"
            "    with _LOCK:\n"
            "        _CACHE[x] = x\n"
            "    return x\n"
        ), select=["R7"])
        assert report.ok

    def test_silent_with_owner_marker(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "_CACHE = {}\n\n"
            "def worker(x):\n"
            "    _CACHE[x] = x  # lint: owner[process-local; reset per fork]\n"
            "    return x\n"
        ), select=["R7"])
        assert report.ok

    def test_silent_on_local_state(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "def worker(x):\n"
            "    acc = {}\n"
            "    acc[x] = x\n"
            "    return acc\n"
        ), select=["R7"])
        assert report.ok

    def test_fires_on_captured_mutation_in_dispatched_closure(self, tmp_path):
        report = lint(tmp_path, {
            "parallel/executor.py": EXECUTOR,
            "driver.py": "from repro.parallel.executor import pool_map\n\n"
                         "def run(items):\n"
                         "    seen = []\n"
                         "    def worker(x):\n"
                         "        seen.append(x)\n"
                         "        return x\n"
                         "    return pool_map(worker, items)\n",
        }, select=["R7"])
        assert rules_of(report) == ["R7"]
        assert "captured" in report.violations[0].message


# ----------------------------------------------------------------------
# R8 — atomic persistence writes in cache/retrieval paths
# ----------------------------------------------------------------------


class TestR8:
    def test_fires_on_raw_open_write(self, tmp_path):
        report = lint(tmp_path, {
            "parallel/store.py":
                "def save(path, text):\n"
                "    with open(path, \"w\") as handle:\n"
                "        handle.write(text)\n",
        }, select=["R8"])
        assert rules_of(report) == ["R8"]
        assert "atomic_write" in report.violations[0].message

    def test_fires_on_inline_replace_dance(self, tmp_path):
        report = lint(tmp_path, {
            "retrieval/persist.py":
                "import os\n\n"
                "def save(path, tmp):\n"
                "    os.replace(tmp, path)\n",
        }, select=["R8"])
        assert rules_of(report) == ["R8"]

    def test_silent_inside_atomic_write(self, tmp_path):
        report = lint(tmp_path, {
            "parallel/store.py":
                "from repro.utils.atomicio import atomic_write\n\n"
                "def save(path, text):\n"
                "    with atomic_write(path, mode=\"w\") as handle:\n"
                "        handle.write(text)\n",
        }, select=["R8"])
        assert report.ok

    def test_silent_outside_scoped_dirs(self, tmp_path):
        report = lint(tmp_path, {
            "eval/report.py":
                "def save(path, text):\n"
                "    with open(path, \"w\") as handle:\n"
                "        handle.write(text)\n",
        }, select=["R8"])
        assert report.ok

    def test_silent_on_read_only_open(self, tmp_path):
        report = lint(tmp_path, {
            "parallel/store.py":
                "def load(path):\n"
                "    with open(path, \"rb\") as handle:\n"
                "        return handle.read()\n",
        }, select=["R8"])
        assert report.ok


# ----------------------------------------------------------------------
# R9 — transitive determinism of the numeric pipeline
# ----------------------------------------------------------------------


class TestR9:
    def test_fires_on_transitive_rng_reach(self, tmp_path):
        report = lint(tmp_path, {
            "features/kernel.py":
                "from repro.helpers import jitter\n\n"
                "def extract(x):\n"
                "    return jitter(x)\n",
            "helpers.py":
                "import numpy as np\n\n"
                "def jitter(x):\n"
                "    return x + np.random.rand()\n",
        }, select=["R9"])
        assert rules_of(report) == ["R9"]
        violation = report.violations[0]
        assert violation.path.endswith("helpers.py")
        assert "features.kernel.extract" in violation.message
        assert "np.random.rand" in violation.message

    def test_fires_on_clock_read(self, tmp_path):
        report = lint(tmp_path, {
            "fuzzy/cmeans.py":
                "import time\n\n"
                "def fit(x):\n"
                "    return time.perf_counter()\n",
        }, select=["R9"])
        assert rules_of(report) == ["R9"]
        assert "wall-clock" in report.violations[0].message

    def test_fires_on_env_read(self, tmp_path):
        report = lint(tmp_path, {
            "core/model.py":
                "import os\n\n"
                "def fit(x):\n"
                "    return os.getenv(\"SEED\")\n",
        }, select=["R9"])
        assert rules_of(report) == ["R9"]
        assert "environment read" in report.violations[0].message

    def test_silent_on_seeded_rng_plumbing(self, tmp_path):
        report = lint(tmp_path, {
            "features/kernel.py":
                "from repro.utils.rng import as_generator\n\n"
                "def extract(x, seed=None):\n"
                "    return as_generator(seed)\n",
            "utils/rng.py":
                "import numpy as np\n\n"
                "def as_generator(seed):\n"
                "    return np.random.default_rng(seed)\n",
        }, select=["R9"])
        assert report.ok

    def test_silent_on_private_helpers_without_public_entry(self, tmp_path):
        report = lint(tmp_path, {
            "features/_impl.py":
                "import time\n\n"
                "def _probe(x):\n"
                "    return time.time()\n",
        }, select=["R9"])
        assert report.ok


# ----------------------------------------------------------------------
# R10 — shape-contract flow across call edges
# ----------------------------------------------------------------------


class TestR10:
    def test_fires_on_rank_mismatch(self, tmp_path):
        report = lint(tmp_path, {
            "a.py":
                "from repro.utils.validation import shapes\n"
                "from repro.b import consume\n\n"
                "@shapes(x=\"(n, d)\")\n"
                "def produce(x):\n"
                "    return consume(x)\n",
            "b.py":
                "from repro.utils.validation import shapes\n\n"
                "@shapes(x=\"(n, d, k)\")\n"
                "def consume(x):\n"
                "    return x\n",
        }, select=["R10"])
        assert rules_of(report) == ["R10"]
        assert "rank mismatch" in report.violations[0].message

    def test_fires_on_concrete_dim_conflict(self, tmp_path):
        report = lint(tmp_path, {
            "a.py":
                "from repro.utils.validation import shapes\n"
                "from repro.b import consume\n\n"
                "@shapes(x=\"(n, 3)\")\n"
                "def produce(x):\n"
                "    return consume(x)\n",
            "b.py":
                "from repro.utils.validation import shapes\n\n"
                "@shapes(x=\"(n, 4)\")\n"
                "def consume(x):\n"
                "    return x\n",
        }, select=["R10"])
        assert rules_of(report) == ["R10"]
        assert "3 != 4" in report.violations[0].message

    def test_fires_on_symbol_pinned_to_conflicting_ints(self, tmp_path):
        report = lint(tmp_path, {
            "a.py":
                "from repro.utils.validation import shapes\n"
                "from repro.b import consume\n\n"
                "@shapes(x=\"(n, d)\", y=\"(n, d)\")\n"
                "def produce(x, y):\n"
                "    return consume(x, y)\n",
            "b.py":
                "from repro.utils.validation import shapes\n\n"
                "@shapes(x=\"(m, 3)\", y=\"(m, 4)\")\n"
                "def consume(x, y):\n"
                "    return x\n",
        }, select=["R10"])
        assert rules_of(report) == ["R10"]
        assert "symbol conflict" in report.violations[0].message

    def test_silent_on_consistent_contracts(self, tmp_path):
        report = lint(tmp_path, {
            "a.py":
                "from repro.utils.validation import shapes\n"
                "from repro.b import consume\n\n"
                "@shapes(x=\"(n, d)\")\n"
                "def produce(x):\n"
                "    return consume(x)\n",
            "b.py":
                "from repro.utils.validation import shapes\n\n"
                "@shapes(x=\"(rows, cols)\")\n"
                "def consume(x):\n"
                "    return x\n",
        }, select=["R10"])
        assert report.ok

    def test_silent_with_ellipsis_tail_alignment(self, tmp_path):
        report = lint(tmp_path, {
            "a.py":
                "from repro.utils.validation import shapes\n"
                "from repro.b import consume\n\n"
                "@shapes(x=\"(n, w, d)\")\n"
                "def produce(x):\n"
                "    return consume(x)\n",
            "b.py":
                "from repro.utils.validation import shapes\n\n"
                "@shapes(x=\"(..., d)\")\n"
                "def consume(x):\n"
                "    return x\n",
        }, select=["R10"])
        assert report.ok

    def test_keyword_argument_matched(self, tmp_path):
        report = lint(tmp_path, {
            "a.py":
                "from repro.utils.validation import shapes\n"
                "from repro.b import consume\n\n"
                "@shapes(m=\"(n, 2)\")\n"
                "def produce(m):\n"
                "    return consume(x=m)\n",
            "b.py":
                "from repro.utils.validation import shapes\n\n"
                "@shapes(x=\"(n, 5)\")\n"
                "def consume(x):\n"
                "    return x\n",
        }, select=["R10"])
        assert rules_of(report) == ["R10"]


# ----------------------------------------------------------------------
# R11 — observability naming discipline
# ----------------------------------------------------------------------


class TestR11:
    REGISTRY = (
        "SPAN_NAMES = frozenset({\"model.fit\"})\n"
        "SPAN_PREFIXES = frozenset()\n"
        "METRIC_NAMES = frozenset({\"model.fits\", \"model.latency_s\"})\n"
        "METRIC_PREFIXES = frozenset({\"model.converged.\"})\n"
        "EVENT_NAMES = frozenset({\"query.received\"})\n"
        "EVENT_PREFIXES = frozenset()\n"
    )

    def _tree(self, user_body):
        return {
            "obs/config.py": OBS_CONFIG,
            "obs/names.py": self.REGISTRY,
            "user.py": user_body,
        }

    def test_fires_on_unregistered_span_name(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "from repro.obs.config import span\n\n"
            "def fit(x):\n"
            "    with span(\"model.train\"):\n"
            "        return x\n"
        ), select=["R11"])
        assert rules_of(report) == ["R11"]
        assert "model.train" in report.violations[0].message

    def test_silent_on_registered_names(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "from repro.obs.config import record_counter, span\n\n"
            "def fit(x):\n"
            "    with span(\"model.fit\"):\n"
            "        record_counter(\"model.fits\")\n"
            "    return x\n"
        ), select=["R11"])
        assert report.ok

    def test_fstring_with_registered_prefix_ok(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "from repro.obs.config import record_counter\n\n"
            "def fit(reason):\n"
            "    record_counter(f\"model.converged.{reason}\")\n"
        ), select=["R11"])
        assert report.ok

    def test_fstring_with_unregistered_prefix_fires(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "from repro.obs.config import record_counter\n\n"
            "def fit(reason):\n"
            "    record_counter(f\"model.stopped.{reason}\")\n"
        ), select=["R11"])
        assert rules_of(report) == ["R11"]
        assert "model.stopped." in report.violations[0].message

    def test_fires_on_unregistered_event_name(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "from repro.obs.config import record_event\n\n"
            "def fit(x):\n"
            "    record_event(\"query.mystery\", key=x)\n"
        ), select=["R11"])
        assert rules_of(report) == ["R11"]
        assert "query.mystery" in report.violations[0].message

    def test_silent_on_registered_event_and_timer_names(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "from repro.obs.config import record_event, time_histogram\n\n"
            "def fit(x):\n"
            "    with time_histogram(\"model.latency_s\"):\n"
            "        record_event(\"query.received\", key=x)\n"
            "    return x\n"
        ), select=["R11"])
        assert report.ok

    def test_fires_on_unregistered_timer_name(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "from repro.obs.config import time_histogram\n\n"
            "def fit(x):\n"
            "    with time_histogram(\"model.wall_s\"):\n"
            "        return x\n"
        ), select=["R11"])
        assert rules_of(report) == ["R11"]
        assert "model.wall_s" in report.violations[0].message

    def test_fully_dynamic_name_fires(self, tmp_path):
        report = lint(tmp_path, self._tree(
            "from repro.obs.config import record_counter\n\n"
            "def fit(name):\n"
            "    record_counter(name)\n"
        ), select=["R11"])
        assert rules_of(report) == ["R11"]
        assert "dynamic" in report.violations[0].message

    def test_silent_without_registry_module(self, tmp_path):
        report = lint(tmp_path, {
            "obs/config.py": OBS_CONFIG,
            "user.py": "from repro.obs.config import span\n\n"
                       "def fit(x):\n"
                       "    with span(\"anything.goes\"):\n"
                       "        return x\n",
        }, select=["R11"])
        assert report.ok


# ----------------------------------------------------------------------
# R12 — exception flow out of the public API
# ----------------------------------------------------------------------


class TestR12:
    def test_fires_on_direct_builtin_leak(self, tmp_path):
        report = lint(tmp_path, {
            "api.py": "__all__ = [\"run\"]\n\n"
                      "def run(key):\n"
                      "    raise KeyError(key)\n",
        }, select=["R12"])
        assert rules_of(report) == ["R12"]
        assert "KeyError" in report.violations[0].message

    def test_fires_transitively_and_names_origin(self, tmp_path):
        report = lint(tmp_path, {
            "api.py": "from repro.impl import helper\n\n"
                      "__all__ = [\"run\"]\n\n"
                      "def run(x):\n"
                      "    return helper(x)\n",
            "impl.py": "def helper(x):\n"
                       "    raise ValueError(x)\n",
        }, select=["R12"])
        assert rules_of(report) == ["R12"]
        violation = report.violations[0]
        assert violation.path.endswith("api.py")
        assert "impl.py:2" in violation.message

    def test_silent_on_repro_error_subclass(self, tmp_path):
        report = lint(tmp_path, {
            "errors.py": ERRORS,
            "api.py": "from repro.errors import ValidationError\n\n"
                      "__all__ = [\"run\"]\n\n"
                      "def run(x):\n"
                      "    raise ValidationError(x)\n",
        }, select=["R12"])
        assert report.ok

    def test_silent_when_caught_on_the_way_out(self, tmp_path):
        report = lint(tmp_path, {
            "errors.py": ERRORS,
            "api.py": "from repro.errors import ValidationError\n"
                      "from repro.impl import helper\n\n"
                      "__all__ = [\"run\"]\n\n"
                      "def run(x):\n"
                      "    try:\n"
                      "        return helper(x)\n"
                      "    except ValueError as exc:\n"
                      "        raise ValidationError(str(exc))\n",
            "impl.py": "def helper(x):\n"
                       "    raise ValueError(x)\n",
        }, select=["R12"])
        assert report.ok

    def test_public_method_of_exported_class_checked(self, tmp_path):
        report = lint(tmp_path, {
            "api.py": "__all__ = [\"Model\"]\n\n"
                      "class Model:\n"
                      "    def fit(self, x):\n"
                      "        raise RuntimeError(\"nope\")\n",
        }, select=["R12"])
        assert rules_of(report) == ["R12"]
        assert "Model.fit" in report.violations[0].message

    def test_not_implemented_error_allowed(self, tmp_path):
        report = lint(tmp_path, {
            "api.py": "__all__ = [\"run\"]\n\n"
                      "def run(x):\n"
                      "    raise NotImplementedError\n",
        }, select=["R12"])
        assert report.ok


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------


class TestBaseline:
    BAD = {
        "parallel/store.py":
            "def save(path, text):\n"
            "    with open(path, \"w\") as handle:\n"
            "        handle.write(text)\n",
    }

    def test_baseline_grandfathers_matching_findings(self, tmp_path):
        write_tree(tmp_path, self.BAD)
        dirty = lint_paths([tmp_path], select=["R8"])
        assert not dirty.ok
        baseline_file = tmp_path / "baseline.json"
        Baseline.write(baseline_file, dirty.violations,
                       note="tracked in issue #42")
        baseline = Baseline.load(baseline_file)
        clean = lint_paths([tmp_path], select=["R8"], baseline=baseline)
        assert clean.ok
        assert clean.n_grandfathered == len(dirty.violations)

    def test_baseline_does_not_hide_new_findings(self, tmp_path):
        write_tree(tmp_path, self.BAD)
        dirty = lint_paths([tmp_path], select=["R8"])
        baseline_file = tmp_path / "baseline.json"
        Baseline.write(baseline_file, dirty.violations, note="tracked")
        write_tree(tmp_path, {
            "retrieval/persist.py":
                "import os\n\n"
                "def save(path, tmp):\n"
                "    os.replace(tmp, path)\n",
        })
        report = lint_paths([tmp_path], select=["R8"],
                            baseline=Baseline.load(baseline_file))
        assert rules_of(report) == ["R8"]
        assert report.violations[0].path.endswith("persist.py")

    def test_baseline_without_note_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"entries": [
            {"rule": "R8", "path": "parallel/store.py", "message": "m"},
        ]}))
        with pytest.raises(LintError):
            Baseline.load(path)

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[]")
        with pytest.raises(LintError):
            Baseline.load(path)


# ----------------------------------------------------------------------
# CLI: --strict / --baseline / --write-baseline / --changed / --cache
# ----------------------------------------------------------------------


class TestCli:
    BAD = {
        "parallel/store.py":
            "__all__ = [\"save\"]\n\n"
            "def save(path, text):\n"
            "    with open(path, \"w\") as handle:\n"
            "        handle.write(text)\n",
    }

    def test_strict_flag_enables_graph_rules(self, tmp_path, capsys):
        write_tree(tmp_path, self.BAD)
        assert lint_main([str(tmp_path), "--select", "R3"]) == 0
        assert lint_main([str(tmp_path), "--select", "R3", "--strict"]) == 1
        assert "R8" in capsys.readouterr().out

    def test_write_then_use_baseline(self, tmp_path, capsys):
        write_tree(tmp_path, self.BAD)
        baseline = tmp_path / "lint-baseline.json"
        assert lint_main([str(tmp_path), "--strict",
                          "--write-baseline", str(baseline)]) == 0
        assert baseline.is_file()
        assert lint_main([str(tmp_path), "--strict",
                          "--baseline", str(baseline)]) == 0
        assert "grandfathered" in capsys.readouterr().out

    def test_changed_lints_only_modified_files(self, tmp_path, capsys,
                                               monkeypatch):
        write_tree(tmp_path, {
            "clean.py": "__all__ = []\n",
            "other.py": "__all__ = []\n",
        })
        git = ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        subprocess.run(git + ["add", "."], cwd=tmp_path, check=True)
        subprocess.run(git + ["commit", "-q", "-m", "seed"],
                       cwd=tmp_path, check=True)
        (tmp_path / "other.py").write_text("import numpy as np\n"
                                           "x = np.random.default_rng()\n"
                                           "__all__ = [\"x\"]\n")
        monkeypatch.chdir(tmp_path)
        assert lint_main([str(tmp_path), "--changed"]) == 1
        out = capsys.readouterr().out
        assert "checked 1 file" in out
        assert "other.py" in out

    def test_changed_with_no_modifications_exits_clean(self, tmp_path,
                                                       capsys, monkeypatch):
        write_tree(tmp_path, {"clean.py": "__all__ = []\n"})
        git = ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        subprocess.run(git + ["add", "."], cwd=tmp_path, check=True)
        subprocess.run(git + ["commit", "-q", "-m", "seed"],
                       cwd=tmp_path, check=True)
        monkeypatch.chdir(tmp_path)
        assert lint_main([str(tmp_path), "--changed"]) == 0
        assert "no changed python files" in capsys.readouterr().out

    def test_cache_reuses_report_until_tree_changes(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": "__all__ = []\n"})
        cache = tmp_path / "cache" / "report.json"
        args = [str(tmp_path / "mod.py"), "--strict", "--cache", str(cache)]
        assert lint_main(args) == 0
        payload = json.loads(cache.read_text())
        first_key = payload["key"]
        assert lint_main(args) == 0  # served from cache
        (tmp_path / "mod.py").write_text(
            "__all__ = []\n\ndef f():\n    raise ValueError(\"x\")\n")
        capsys.readouterr()
        assert lint_main([str(tmp_path / "mod.py"), "--strict",
                          "--cache", str(cache)]) == 1
        assert "R2" in capsys.readouterr().out
        assert json.loads(cache.read_text())["key"] != first_key


# ----------------------------------------------------------------------
# Determinism: two analyzer processes, byte-identical JSON
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_repo_strict_reports_are_byte_identical(self):
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        runs = [
            subprocess.run(
                [sys.executable, "-m", "repro.lint", str(src),
                 "--strict", "--format", "json"],
                capture_output=True, text=True,
                env={"PYTHONHASHSEED": str(seed),
                     "PYTHONPATH": str(src.parent),
                     "PATH": "/usr/bin:/bin"},
            )
            for seed in (0, 1)
        ]
        assert runs[0].returncode == 0, runs[0].stdout + runs[0].stderr
        assert runs[1].returncode == 0, runs[1].stdout + runs[1].stderr
        assert runs[0].stdout == runs[1].stdout
        payload = json.loads(runs[0].stdout)
        assert payload["ok"] is True

"""Guard test: the shipped source tree must satisfy its own linter.

This is the tier-1 wiring for the static-analysis subsystem — any commit
that introduces a rule violation in ``src/repro`` fails here, both through
the in-process API and through the real ``python -m repro.lint`` process.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_TREE = REPO_ROOT / "src" / "repro"


def test_source_tree_is_clean():
    report = lint_paths([SRC_TREE])
    assert report.ok, "\n".join(v.format_text() for v in report.violations)
    assert report.n_files > 50  # the whole package was walked, not a subset


def test_source_tree_is_strict_clean():
    """The whole-program pass (R7-R12) holds with no baseline entries."""
    report = lint_paths([SRC_TREE], strict=True)
    assert report.ok, "\n".join(v.format_text() for v in report.violations)
    assert report.n_grandfathered == 0


def test_module_invocation_exits_zero_with_json_report():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(SRC_TREE), "--format", "json"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["violations"] == []
    assert payload["files_checked"] > 50

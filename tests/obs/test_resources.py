"""The process-resource sampler (repro.obs.resources)."""

from __future__ import annotations

from repro.obs.clock import ManualClock
from repro.obs.resources import ResourceSampler

EXPECTED_KEYS = {
    "rss_max_kb",
    "cpu_user_s",
    "cpu_system_s",
    "cpu_children_s",
    "gc_collections",
    "gc_tracked_gen0",
    "gc_tracked_gen1",
    "gc_tracked_gen2",
}


class TestRead:
    def test_reading_has_stable_key_set(self):
        reading = ResourceSampler.read()
        assert set(reading) == EXPECTED_KEYS
        assert all(isinstance(v, float) for v in reading.values())

    def test_counters_are_nonnegative(self):
        reading = ResourceSampler.read()
        assert reading["rss_max_kb"] >= 0.0
        assert reading["cpu_user_s"] >= 0.0
        assert reading["gc_collections"] >= 0.0


class TestSampler:
    def test_samples_are_labelled_and_timestamped(self):
        sampler = ResourceSampler(clock=ManualClock(start=5.0,
                                                    auto_advance=1.0))
        sampler.sample("start")
        sampler.sample("end")
        samples = sampler.samples
        assert [s["label"] for s in samples] == ["start", "end"]
        assert samples[1]["ts"] > samples[0]["ts"]
        assert set(samples[0]) == EXPECTED_KEYS | {"label", "ts"}

    def test_samples_returns_copies(self):
        sampler = ResourceSampler(clock=ManualClock())
        sampler.sample("start")
        sampler.samples[0]["label"] = "mutated"
        assert sampler.samples[0]["label"] == "start"

    def test_delta_needs_two_samples(self):
        sampler = ResourceSampler(clock=ManualClock())
        assert sampler.delta() == {}
        sampler.sample("only")
        assert sampler.delta() == {}

    def test_delta_excludes_label_and_ts(self):
        sampler = ResourceSampler(clock=ManualClock())
        sampler.sample("start")
        # Burn a little CPU so the delta has something to measure.
        sum(i * i for i in range(50_000))
        sampler.sample("end")
        delta = sampler.delta()
        assert set(delta) == EXPECTED_KEYS
        assert delta["cpu_user_s"] >= 0.0

    def test_reset_clears_samples(self):
        sampler = ResourceSampler(clock=ManualClock())
        sampler.sample("start")
        sampler.reset()
        assert sampler.samples == []

"""The process-resource sampler (repro.obs.resources)."""

from __future__ import annotations

import importlib
import sys

import repro.obs.resources as resources_module
from repro.obs.clock import ManualClock
from repro.obs.resources import ResourceSampler

EXPECTED_KEYS = {
    "rss_max_kb",
    "cpu_user_s",
    "cpu_system_s",
    "cpu_children_s",
    "gc_collections",
    "gc_tracked_gen0",
    "gc_tracked_gen1",
    "gc_tracked_gen2",
    "resources_partial",
}

#: The numeric counters (everything except the partial-platform flag).
COUNTER_KEYS = EXPECTED_KEYS - {"resources_partial"}


class TestRead:
    def test_reading_has_stable_key_set(self):
        reading = ResourceSampler.read()
        assert set(reading) == EXPECTED_KEYS
        assert all(isinstance(reading[k], float) for k in COUNTER_KEYS)
        assert isinstance(reading["resources_partial"], bool)

    def test_counters_are_nonnegative(self):
        reading = ResourceSampler.read()
        assert reading["rss_max_kb"] >= 0.0
        assert reading["cpu_user_s"] >= 0.0
        assert reading["gc_collections"] >= 0.0

    def test_full_reading_on_posix(self):
        # The test suite runs on a platform with the resource module, so the
        # default reading must be complete.
        assert ResourceSampler.read()["resources_partial"] is False


class TestPartialPlatform:
    """Platforms without the Unix-only ``resource`` module degrade, not fail."""

    def test_partial_reading_without_resource_module(self, monkeypatch):
        monkeypatch.setattr(resources_module, "resource", None)
        reading = ResourceSampler.read()
        assert set(reading) == EXPECTED_KEYS
        assert reading["resources_partial"] is True
        assert reading["rss_max_kb"] == 0.0
        # CPU times fall back to os.times(); the process has burned some.
        assert reading["cpu_user_s"] >= 0.0
        sampler = ResourceSampler(clock=ManualClock())
        assert sampler.partial is True
        sample = sampler.sample("start")
        assert sample["resources_partial"] is True

    def test_import_failure_degrades_to_partial(self, monkeypatch):
        # Stub the import itself away and reload: the module must import
        # cleanly and flag every reading as partial.
        monkeypatch.setitem(sys.modules, "resource", None)
        try:
            reloaded = importlib.reload(resources_module)
            assert reloaded.resource is None
            reading = reloaded.ResourceSampler.read()
            assert reading["resources_partial"] is True
            assert reading["rss_max_kb"] == 0.0
        finally:
            monkeypatch.delitem(sys.modules, "resource", raising=False)
            importlib.reload(resources_module)

    def test_delta_still_works_when_partial(self, monkeypatch):
        monkeypatch.setattr(resources_module, "resource", None)
        sampler = ResourceSampler(clock=ManualClock())
        sampler.sample("start")
        sampler.sample("end")
        delta = sampler.delta()
        assert set(delta) == COUNTER_KEYS
        assert delta["cpu_user_s"] >= 0.0


class TestSampler:
    def test_samples_are_labelled_and_timestamped(self):
        sampler = ResourceSampler(clock=ManualClock(start=5.0,
                                                    auto_advance=1.0))
        sampler.sample("start")
        sampler.sample("end")
        samples = sampler.samples
        assert [s["label"] for s in samples] == ["start", "end"]
        assert samples[1]["ts"] > samples[0]["ts"]
        assert set(samples[0]) == EXPECTED_KEYS | {"label", "ts"}

    def test_samples_returns_copies(self):
        sampler = ResourceSampler(clock=ManualClock())
        sampler.sample("start")
        sampler.samples[0]["label"] = "mutated"
        assert sampler.samples[0]["label"] == "start"

    def test_partial_property_matches_platform(self):
        assert ResourceSampler(clock=ManualClock()).partial is False

    def test_delta_needs_two_samples(self):
        sampler = ResourceSampler(clock=ManualClock())
        assert sampler.delta() == {}
        sampler.sample("only")
        assert sampler.delta() == {}

    def test_delta_excludes_label_ts_and_flag(self):
        sampler = ResourceSampler(clock=ManualClock())
        sampler.sample("start")
        # Burn a little CPU so the delta has something to measure.
        sum(i * i for i in range(50_000))
        sampler.sample("end")
        delta = sampler.delta()
        assert set(delta) == COUNTER_KEYS
        assert delta["cpu_user_s"] >= 0.0

    def test_reset_clears_samples(self):
        sampler = ResourceSampler(clock=ManualClock())
        sampler.sample("start")
        sampler.reset()
        assert sampler.samples == []

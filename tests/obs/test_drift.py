"""Drift detection: baselines, per-query signals, detectors, the monitor."""

import json

import numpy as np
import pytest

from repro.errors import SerializationError, ValidationError
from repro.obs.clock import ManualClock
from repro.obs.config import capture
from repro.obs.drift import (
    BASELINE_SCHEMA_VERSION,
    BaselineSnapshot,
    DegradationRateDetector,
    DriftMonitor,
    FeatureShiftDetector,
    MembershipConfidenceDetector,
    MembershipEntropyDetector,
    ObjectiveTrendDetector,
    QuerySignals,
    default_detectors,
    signals_from_query,
)

DETECTOR_NAMES = (
    "membership_confidence",
    "membership_entropy",
    "objective_trend",
    "feature_shift",
    "degradation_rate",
)


def toy_baseline(**overrides) -> BaselineSnapshot:
    """A hand-built baseline with round numbers the tests reason about."""
    defaults = dict(
        feature_means=np.zeros(2),
        feature_stds=np.ones(2),
        max_membership_mean=0.9,
        membership_entropy_mean=0.2,
        objective_per_window=1.0,
        n_windows=10,
        n_clusters=4,
        feature_names=("iav:a", "svd:b"),
    )
    defaults.update(overrides)
    return BaselineSnapshot(**defaults)


def sig(maxm=0.9, ent=0.2, obj=1.0, means=(0.0, 0.0), degraded=False):
    """A QuerySignals with controllable fields."""
    return QuerySignals(
        max_membership_mean=maxm,
        membership_entropy_mean=ent,
        objective_per_window=obj,
        feature_means=np.asarray(means, dtype=float),
        n_windows=5,
        degraded=degraded,
    )


class TestBaselineSnapshot:
    def test_from_fit_statistics(self):
        # Two windows sitting exactly on two centers with one-hot
        # memberships: objective 0, confidence 1, entropy 0.
        scaled = np.array([[0.0, 0.0], [1.0, 1.0]])
        centers = np.array([[0.0, 0.0], [1.0, 1.0]])
        membership = np.array([[1.0, 0.0], [0.0, 1.0]])
        baseline = BaselineSnapshot.from_fit(
            scaled, centers, membership, feature_names=["f0", "f1"]
        )
        assert baseline.n_windows == 2
        assert baseline.n_clusters == 2
        assert baseline.feature_names == ("f0", "f1")
        np.testing.assert_allclose(baseline.feature_means, [0.5, 0.5])
        assert baseline.max_membership_mean == pytest.approx(1.0)
        assert baseline.membership_entropy_mean == pytest.approx(0.0, abs=1e-9)
        assert baseline.objective_per_window == pytest.approx(0.0)

    def test_from_fit_uniform_membership_has_unit_entropy(self):
        scaled = np.array([[0.0, 0.0], [1.0, 1.0]])
        centers = np.array([[0.0, 0.0], [1.0, 1.0]])
        membership = np.full((2, 2), 0.5)
        baseline = BaselineSnapshot.from_fit(scaled, centers, membership)
        assert baseline.membership_entropy_mean == pytest.approx(1.0)
        # Each window is distance 0 from one center and 2 from the other:
        # J = sum(u^m * d2) = 2 * (0.25 * 2) = 1.0 over 2 windows.
        assert baseline.objective_per_window == pytest.approx(0.5)

    def test_round_trip_dict(self):
        baseline = toy_baseline()
        clone = BaselineSnapshot.from_dict(baseline.to_dict())
        np.testing.assert_array_equal(clone.feature_means,
                                      baseline.feature_means)
        np.testing.assert_array_equal(clone.feature_stds,
                                      baseline.feature_stds)
        assert clone.max_membership_mean == baseline.max_membership_mean
        assert clone.feature_names == baseline.feature_names
        assert clone.n_windows == baseline.n_windows

    def test_round_trip_file(self, tmp_path):
        baseline = toy_baseline()
        path = baseline.save(tmp_path / "baseline.json")
        loaded = BaselineSnapshot.load(path)
        assert loaded.to_dict() == baseline.to_dict()
        # The persisted form embeds the schema tag.
        raw = json.loads(path.read_text())
        assert raw["schema"] == BASELINE_SCHEMA_VERSION

    def test_unknown_schema_rejected(self):
        payload = toy_baseline().to_dict()
        payload["schema"] = "repro.obs.baseline/v999"
        with pytest.raises(SerializationError, match="unsupported"):
            BaselineSnapshot.from_dict(payload)

    def test_missing_key_rejected(self):
        payload = toy_baseline().to_dict()
        del payload["feature_means"]
        with pytest.raises(SerializationError, match="malformed"):
            BaselineSnapshot.from_dict(payload)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SerializationError, match="could not read"):
            BaselineSnapshot.load(tmp_path / "ghost.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError, match="not valid JSON"):
            BaselineSnapshot.load(path)


class TestQuerySignals:
    def test_signals_from_confident_query(self):
        scaled = np.array([[0.0, 0.0], [1.0, 1.0]])
        centers = np.array([[0.0, 0.0], [1.0, 1.0]])
        membership = np.array([[1.0, 0.0], [0.0, 1.0]])
        signals = signals_from_query(scaled, centers, membership)
        assert signals.max_membership_mean == pytest.approx(1.0)
        assert signals.membership_entropy_mean == pytest.approx(0.0, abs=1e-9)
        assert signals.objective_per_window == pytest.approx(0.0)
        assert signals.n_windows == 2
        assert signals.degraded is False
        np.testing.assert_allclose(signals.feature_means, [0.5, 0.5])

    def test_degraded_flag_carried(self):
        scaled = np.ones((3, 2))
        centers = np.zeros((1, 2))
        membership = np.ones((3, 1))
        assert signals_from_query(scaled, centers, membership,
                                  degraded=True).degraded is True


class TestDetectorVerdicts:
    def feed(self, detector, signals, n=8):
        for _ in range(n):
            detector.update(signals)
        return detector.report()

    def test_warming_below_min_samples(self):
        detector = MembershipConfidenceDetector(toy_baseline(), min_samples=8)
        report = self.feed(detector, sig(), n=3)
        assert report.status == "warming"
        assert report.n_samples == 3
        assert not report.firing

    def test_membership_confidence_fires_on_drop(self):
        detector = MembershipConfidenceDetector(toy_baseline(), max_drop=0.2,
                                                min_samples=4)
        # Floor is 0.9 * 0.8 = 0.72: 0.8 stays healthy, 0.6 fires.
        assert self.feed(detector, sig(maxm=0.8)).status == "ok"
        detector.reset()
        report = self.feed(detector, sig(maxm=0.6))
        assert report.status == "drift"
        assert report.firing
        assert report.threshold == pytest.approx(0.72)
        assert report.baseline == pytest.approx(0.9)

    def test_membership_entropy_fires_on_increase(self):
        detector = MembershipEntropyDetector(toy_baseline(), max_increase=0.15,
                                             min_samples=4)
        assert self.feed(detector, sig(ent=0.3)).status == "ok"
        detector.reset()
        report = self.feed(detector, sig(ent=0.5))
        assert report.status == "drift"
        assert report.threshold == pytest.approx(0.35)

    def test_objective_trend_fires_on_ratio(self):
        detector = ObjectiveTrendDetector(toy_baseline(), max_ratio=1.5,
                                          min_samples=4)
        assert self.feed(detector, sig(obj=1.2)).status == "ok"
        detector.reset()
        report = self.feed(detector, sig(obj=2.0))
        assert report.status == "drift"
        assert report.threshold == pytest.approx(1.5)

    def test_objective_trend_zero_baseline_uses_eps_floor(self):
        detector = ObjectiveTrendDetector(
            toy_baseline(objective_per_window=0.0), min_samples=1
        )
        detector.update(sig(obj=1.0))
        # Any real quantization error fires against a zero baseline.
        assert detector.report().status == "drift"

    def test_feature_shift_names_worst_feature(self):
        detector = FeatureShiftDetector(toy_baseline(), max_shift_stds=1.0,
                                        min_samples=4)
        assert self.feed(detector, sig(means=(0.5, 0.0))).status == "ok"
        detector.reset()
        report = self.feed(detector, sig(means=(0.0, 2.5)))
        assert report.status == "drift"
        assert report.value == pytest.approx(2.5)
        assert "'svd:b'" in report.detail

    def test_degradation_rate_fires_on_fraction(self):
        detector = DegradationRateDetector(max_fraction=0.25, min_samples=4)
        for _ in range(6):
            detector.update(sig(degraded=False))
        for _ in range(2):
            detector.update(sig(degraded=True))
        assert detector.report().status == "ok"  # 2/8 = 0.25, not above
        detector.update(sig(degraded=True))
        assert detector.report().status == "drift"  # 3/9 > 0.25

    def test_sliding_window_recovers(self):
        # Window 4: four bad observations fire, four good ones evict them.
        detector = MembershipConfidenceDetector(toy_baseline(), window=4,
                                                min_samples=4)
        for _ in range(4):
            detector.update(sig(maxm=0.5))
        assert detector.report().status == "drift"
        for _ in range(4):
            detector.update(sig(maxm=0.9))
        assert detector.report().status == "ok"

    def test_reset_clears_feature_shift_state(self):
        detector = FeatureShiftDetector(toy_baseline(), min_samples=1)
        detector.update(sig(means=(5.0, 0.0)))
        assert detector.report().status == "drift"
        detector.reset()
        assert detector.n_samples == 0
        assert detector.report().status == "warming"
        assert detector.report().detail == ""

    def test_report_to_dict_keys(self):
        detector = DegradationRateDetector(min_samples=1)
        detector.update(sig())
        payload = detector.report().to_dict()
        assert set(payload) == {"detector", "status", "value", "baseline",
                                "threshold", "n_samples", "detail"}


class TestDetectorValidation:
    def test_window_and_min_samples(self):
        with pytest.raises(ValidationError):
            DegradationRateDetector(window=0)
        with pytest.raises(ValidationError):
            DegradationRateDetector(window=4, min_samples=5)
        with pytest.raises(ValidationError):
            DegradationRateDetector(window=4, min_samples=0)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5])
    def test_max_drop_range(self, bad):
        with pytest.raises(ValidationError):
            MembershipConfidenceDetector(toy_baseline(), max_drop=bad)

    def test_max_increase_positive(self):
        with pytest.raises(ValidationError):
            MembershipEntropyDetector(toy_baseline(), max_increase=0.0)

    def test_max_ratio_exceeds_one(self):
        with pytest.raises(ValidationError):
            ObjectiveTrendDetector(toy_baseline(), max_ratio=1.0)

    def test_max_shift_positive(self):
        with pytest.raises(ValidationError):
            FeatureShiftDetector(toy_baseline(), max_shift_stds=0.0)

    @pytest.mark.parametrize("bad", [0.0, 1.5])
    def test_max_fraction_range(self, bad):
        with pytest.raises(ValidationError):
            DegradationRateDetector(max_fraction=bad)


class TestDriftMonitor:
    def test_default_detector_set(self):
        detectors = default_detectors(toy_baseline(), window=16, min_samples=2)
        assert tuple(d.name for d in detectors) == DETECTOR_NAMES
        assert all(d.window == 16 for d in detectors)

    def test_observe_feeds_every_detector_and_telemetry(self):
        monitor = DriftMonitor(
            toy_baseline(),
            default_detectors(toy_baseline(), window=8, min_samples=2),
        )
        with capture(clock=ManualClock()) as state:
            for _ in range(4):
                monitor.observe(sig())
            reports = monitor.reports()
            metrics = state.registry.to_dict()
        assert monitor.n_queries == 4
        assert [r.detector for r in reports] == list(DETECTOR_NAMES)
        assert all(r.status == "ok" for r in reports)
        assert metrics["counters"]["health.queries"] == 4
        assert metrics["histograms"]["health.query.max_membership"]["count"] == 4
        for name in DETECTOR_NAMES:
            assert metrics["gauges"][f"health.drift.{name}"] == 0.0

    def test_firing_detector_flips_gauge_and_ok(self):
        monitor = DriftMonitor(
            toy_baseline(),
            default_detectors(toy_baseline(), window=8, min_samples=2),
        )
        with capture(clock=ManualClock()) as state:
            for _ in range(4):
                monitor.observe(sig(maxm=0.4, ent=0.9))
            assert monitor.ok is False
            gauges = state.registry.to_dict()["gauges"]
        assert gauges["health.drift.membership_confidence"] == 1.0
        assert gauges["health.drift.membership_entropy"] == 1.0
        assert gauges["health.drift.degradation_rate"] == 0.0

    def test_to_dict_summary(self):
        monitor = DriftMonitor(toy_baseline())
        monitor.observe(sig())
        payload = monitor.to_dict()
        assert payload["queries"] == 1
        assert len(payload["reports"]) == len(DETECTOR_NAMES)
        assert all(r["status"] == "warming" for r in payload["reports"])

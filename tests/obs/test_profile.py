"""Integration: run_profile stage contract, CLI profile and --trace/--metrics-out."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.data.serialize import save_dataset
from repro.errors import ValidationError
from repro.obs.clock import ManualClock
from repro.obs.config import configure
from repro.obs.export import SCHEMA_VERSION, to_json
from repro.obs.profile import REQUIRED_STAGES, run_profile

PROFILE_KWARGS = dict(participants=1, trials=2, clusters=4, k=3, seed=0)


@pytest.fixture(autouse=True)
def _obs_disabled():
    configure(enabled=False, reset=True)
    yield
    configure(enabled=False, reset=True)


@pytest.fixture(scope="module")
def payload():
    return run_profile(**PROFILE_KWARGS)


@pytest.fixture
def saved_toy(toy_dataset, tmp_path):
    save_dataset(toy_dataset, tmp_path / "toy")
    return str(tmp_path / "toy")


class TestRunProfile:
    def test_schema_and_required_stages(self, payload):
        assert payload["schema"] == SCHEMA_VERSION
        missing = [s for s in REQUIRED_STAGES if s not in payload["stages"]]
        assert not missing, f"profile run missing stages: {missing}"
        for stat in payload["stages"].values():
            assert stat["calls"] >= 1
            assert stat["total_s"] >= 0.0

    def test_fcm_convergence_series(self, payload):
        objective = payload["series"]["fcm.objective"]
        shift = payload["series"]["fcm.membership_shift"]
        assert len(objective) >= 2
        assert len(shift) == len(objective)
        assert objective[-1] <= objective[0]  # J_m decreases
        assert payload["counters"]["fcm.fits"] >= 1.0
        assert any(name.startswith("fcm.converged.")
                   for name in payload["counters"])

    def test_meta_describes_the_run(self, payload):
        meta = payload["meta"]
        assert meta["study"] == "hand"
        assert meta["n_clusters"] == 4
        assert meta["n_train"] > 0 and meta["n_queries"] > 0
        assert 0.0 <= meta["misclassification_pct"] <= 100.0

    def test_leaves_global_obs_disabled(self, payload):
        from repro.obs.config import is_enabled

        assert not is_enabled()

    def test_unknown_study_rejected(self):
        with pytest.raises(ValidationError):
            run_profile(study="torso")

    def test_deterministic_with_injected_clock(self):
        def run():
            return run_profile(clock=ManualClock(auto_advance=1e-6),
                               **PROFILE_KWARGS)

        assert to_json(run()) == to_json(run())


class TestQuantilesInPayload:
    def test_stage_dicts_carry_quantiles(self, payload):
        for name, stat in payload["stages"].items():
            for key in ("p50_s", "p95_s", "p99_s"):
                assert key in stat, f"stage {name} missing {key}"
            assert stat["min_s"] <= stat["p50_s"] <= stat["p95_s"] \
                <= stat["p99_s"] <= stat["max_s"] + 1e-12

    def test_query_latency_histogram_has_quantiles(self, payload):
        latency = payload["histograms"]["model.query_latency_s"]
        assert latency["count"] >= 1
        for key in ("p50", "p95", "p99"):
            assert key in latency
        assert "p2" not in latency  # internal merge state never exported


class TestProvenanceInPayload:
    def test_every_query_emits_lifecycle_events(self, payload):
        events = payload["events"]
        assert payload["events_dropped"] == 0
        names = {event["name"] for event in events}
        assert {"query.received", "query.retrieved",
                "query.classified"} <= names
        received = [e for e in events if e["name"] == "query.received"]
        # classify() + knn_class_fraction() per test record: at least
        # one received event per query in meta.
        assert len(received) >= payload["meta"]["n_queries"]

    def test_query_ids_correlate_a_full_query(self, payload):
        by_id: dict = {}
        for event in payload["events"]:
            if event["query_id"] is not None:
                by_id.setdefault(event["query_id"], set()).add(event["name"])
        assert by_id, "no correlated events in profile payload"
        assert all(qid.startswith("q") for qid in by_id)
        # At least one query id must span the classify lifecycle.
        assert any({"query.received", "query.classified"} <= names
                   for names in by_id.values())

    def test_resources_default_empty(self, payload):
        assert payload["resources"] == []

    def test_sample_resources_populates_payload(self):
        payload = run_profile(sample_resources=True, **PROFILE_KWARGS)
        labels = [sample["label"] for sample in payload["resources"]]
        assert labels == ["start", "dataset_built", "fitted", "queried"]
        assert all("rss_max_kb" in sample
                   for sample in payload["resources"])


class TestSpanLoss:
    def test_max_spans_surfaces_drop_count(self):
        payload = run_profile(max_spans=5, **PROFILE_KWARGS)
        assert payload["spans_dropped"] > 0
        assert len(payload["spans"]) == 5

    def test_cli_warns_about_dropped_spans(self, tmp_path, capsys):
        code = main([
            "profile", "--participants", "1", "--trials", "2",
            "--clusters", "4", "--k", "3", "--max-spans", "5",
            "-o", str(tmp_path / "p.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "span records dropped" in out
        assert "--max-spans" in out

    def test_cli_resources_flag(self, tmp_path, capsys):
        out_path = tmp_path / "p.json"
        code = main([
            "profile", "--participants", "1", "--trials", "2",
            "--clusters", "4", "--k", "3", "--resources",
            "-o", str(out_path),
        ])
        assert code == 0
        assert "resources: peak RSS" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert len(payload["resources"]) == 4


class TestProfileCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.clusters == 8
        assert args.participants == 1
        assert args.trials == 2
        assert args.output == "profile.json"

    def test_profile_prints_and_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        code = main([
            "profile", "--participants", "1", "--trials", "2",
            "--clusters", "4", "--k", "3", "-o", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "stage" in out  # the breakdown table header
        assert "FCM:" in out and "iterations" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        for stage in REQUIRED_STAGES:
            assert stage in payload["stages"]


class TestBenchCLI:
    @staticmethod
    def synthetic_record(scale: float) -> dict:
        from repro.obs.ledger import record_from_payload

        total = 0.2 * scale
        return record_from_payload(
            {
                "stages": {"model.fit": {
                    "calls": 1, "total_s": total, "mean_s": total,
                    "min_s": total, "max_s": total, "p50_s": total,
                    "p95_s": total, "p99_s": total, "errors": 0,
                }},
                "meta": {"study": "hand", "seed": 0},
            },
            sha="test000", ts=0.0,
        )

    def write_ledger(self, path, scales):
        from repro.obs.ledger import Ledger

        ledger = Ledger(path)
        for scale in scales:
            ledger.append(self.synthetic_record(scale))
        return ledger

    def test_run_appends_a_record(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        code = main([
            "bench", "run", "--participants", "1", "--trials", "2",
            "--clusters", "4", "--k", "3", "--ledger", str(ledger_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recorded run:" in out and "fingerprint=" in out
        from repro.obs.ledger import Ledger

        records = Ledger(ledger_path).read()
        assert len(records) == 1
        assert "model.fit" in records[0]["stages"]

    def test_check_flags_injected_slowdown(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        self.write_ledger(ledger_path,
                          [1.00, 0.98, 1.03, 1.01, 0.99, 2.0])
        code = main(["bench", "check", "--ledger", str(ledger_path)])
        assert code == 1
        assert "regressed" in capsys.readouterr().out

    def test_check_passes_unchanged_rerun(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        self.write_ledger(ledger_path,
                          [1.00, 0.98, 1.03, 1.01, 0.99, 1.0])
        code = main(["bench", "check", "--ledger", str(ledger_path)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_check_without_baseline_passes(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        assert main(["bench", "check", "--ledger", str(ledger_path)]) == 0
        assert "empty" in capsys.readouterr().out
        self.write_ledger(ledger_path, [1.0])
        assert main(["bench", "check", "--ledger", str(ledger_path)]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_list_prints_history(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        self.write_ledger(ledger_path, [1.0, 1.1])
        assert main(["bench", "list", "--ledger", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out and "test000" in out


class TestTraceAndMetricsFlags:
    def test_evaluate_trace_prints_stage_table(self, saved_toy, capsys):
        code = main([
            "evaluate", saved_toy, "--clusters", "3", "--k", "2", "--trace",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for stage in ("features.iav", "features.svd", "fcm.fit",
                      "signature.build", "retrieval.knn_query"):
            assert stage in out, f"--trace table missing stage {stage}"

    def test_evaluate_metrics_out_writes_payload(self, saved_toy, tmp_path,
                                                 capsys):
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "evaluate", saved_toy, "--clusters", "3", "--k", "2",
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["meta"]["command"] == "evaluate"
        for stage in ("model.fit", "fcm.fit", "signature.build",
                      "retrieval.knn_query"):
            assert stage in payload["stages"]
        assert len(payload["series"]["fcm.objective"]) >= 1

    def test_build_metrics_out_covers_acquisition(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "build", "--study", "leg", "--participants", "1", "--trials", "1",
            "--seed", "5", "-o", str(tmp_path / "ds"),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["meta"]["command"] == "build"
        for stage in ("signal.acquire", "signal.preprocess",
                      "signal.filtfilt", "signal.resample"):
            assert stage in payload["stages"]

    def test_flags_leave_obs_disabled_after(self, saved_toy, capsys):
        from repro.obs.config import is_enabled

        main(["evaluate", saved_toy, "--clusters", "3", "--k", "2",
              "--trace"])
        capsys.readouterr()
        assert not is_enabled()

"""Integration: run_profile stage contract, CLI profile and --trace/--metrics-out."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.data.serialize import save_dataset
from repro.errors import ValidationError
from repro.obs.clock import ManualClock
from repro.obs.config import configure
from repro.obs.export import SCHEMA_VERSION, to_json
from repro.obs.profile import REQUIRED_STAGES, run_profile

PROFILE_KWARGS = dict(participants=1, trials=2, clusters=4, k=3, seed=0)


@pytest.fixture(autouse=True)
def _obs_disabled():
    configure(enabled=False, reset=True)
    yield
    configure(enabled=False, reset=True)


@pytest.fixture(scope="module")
def payload():
    return run_profile(**PROFILE_KWARGS)


@pytest.fixture
def saved_toy(toy_dataset, tmp_path):
    save_dataset(toy_dataset, tmp_path / "toy")
    return str(tmp_path / "toy")


class TestRunProfile:
    def test_schema_and_required_stages(self, payload):
        assert payload["schema"] == SCHEMA_VERSION
        missing = [s for s in REQUIRED_STAGES if s not in payload["stages"]]
        assert not missing, f"profile run missing stages: {missing}"
        for stat in payload["stages"].values():
            assert stat["calls"] >= 1
            assert stat["total_s"] >= 0.0

    def test_fcm_convergence_series(self, payload):
        objective = payload["series"]["fcm.objective"]
        shift = payload["series"]["fcm.membership_shift"]
        assert len(objective) >= 2
        assert len(shift) == len(objective)
        assert objective[-1] <= objective[0]  # J_m decreases
        assert payload["counters"]["fcm.fits"] >= 1.0
        assert any(name.startswith("fcm.converged.")
                   for name in payload["counters"])

    def test_meta_describes_the_run(self, payload):
        meta = payload["meta"]
        assert meta["study"] == "hand"
        assert meta["n_clusters"] == 4
        assert meta["n_train"] > 0 and meta["n_queries"] > 0
        assert 0.0 <= meta["misclassification_pct"] <= 100.0

    def test_leaves_global_obs_disabled(self, payload):
        from repro.obs.config import is_enabled

        assert not is_enabled()

    def test_unknown_study_rejected(self):
        with pytest.raises(ValidationError):
            run_profile(study="torso")

    def test_deterministic_with_injected_clock(self):
        def run():
            return run_profile(clock=ManualClock(auto_advance=1e-6),
                               **PROFILE_KWARGS)

        assert to_json(run()) == to_json(run())


class TestProfileCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.clusters == 8
        assert args.participants == 1
        assert args.trials == 2
        assert args.output == "profile.json"

    def test_profile_prints_and_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        code = main([
            "profile", "--participants", "1", "--trials", "2",
            "--clusters", "4", "--k", "3", "-o", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "stage" in out  # the breakdown table header
        assert "FCM:" in out and "iterations" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        for stage in REQUIRED_STAGES:
            assert stage in payload["stages"]


class TestTraceAndMetricsFlags:
    def test_evaluate_trace_prints_stage_table(self, saved_toy, capsys):
        code = main([
            "evaluate", saved_toy, "--clusters", "3", "--k", "2", "--trace",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for stage in ("features.iav", "features.svd", "fcm.fit",
                      "signature.build", "retrieval.knn_query"):
            assert stage in out, f"--trace table missing stage {stage}"

    def test_evaluate_metrics_out_writes_payload(self, saved_toy, tmp_path,
                                                 capsys):
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "evaluate", saved_toy, "--clusters", "3", "--k", "2",
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["meta"]["command"] == "evaluate"
        for stage in ("model.fit", "fcm.fit", "signature.build",
                      "retrieval.knn_query"):
            assert stage in payload["stages"]
        assert len(payload["series"]["fcm.objective"]) >= 1

    def test_build_metrics_out_covers_acquisition(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "build", "--study", "leg", "--participants", "1", "--trials", "1",
            "--seed", "5", "-o", str(tmp_path / "ds"),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["meta"]["command"] == "build"
        for stage in ("signal.acquire", "signal.preprocess",
                      "signal.filtfilt", "signal.resample"):
            assert stage in payload["stages"]

    def test_flags_leave_obs_disabled_after(self, saved_toy, capsys):
        from repro.obs.config import is_enabled

        main(["evaluate", saved_toy, "--clusters", "3", "--k", "2",
              "--trace"])
        capsys.readouterr()
        assert not is_enabled()

"""Merging exported ``repro.obs/v2`` payloads (multi-session fold)."""

import copy

import pytest

from repro.obs.clock import ManualClock
from repro.obs.config import (
    capture,
    record_counter,
    record_event,
    record_gauge,
    record_histogram,
    record_series,
    span,
)
from repro.obs.export import SCHEMA_VERSION, collect_payload, merge_payloads


def session_payload(start: float, counter: float, gauge: float,
                    events=(), observations=()):
    """One real captured session exported at a pinned clock."""
    clock = ManualClock(start=start)
    with capture(clock=clock) as state:
        record_counter("fcm.fits", counter)
        record_gauge("cache.hit_rate", gauge)
        record_series("fcm.objective", counter)
        for value in observations:
            record_histogram("model.query_latency_s", value)
        with span("fcm.fit"):
            clock.advance(0.5)
        for name in events:
            clock.advance(1.0)
            record_event(name)
        payload = collect_payload(state)
    return payload


class TestMergePayloads:
    def test_counters_sum_and_gauges_take_incoming(self):
        base = session_payload(0.0, counter=2.0, gauge=0.25)
        incoming = session_payload(100.0, counter=3.0, gauge=0.75)
        merged = merge_payloads(base, incoming)
        assert merged["schema"] == SCHEMA_VERSION
        assert merged["counters"]["fcm.fits"] == 5.0
        assert merged["gauges"]["cache.hit_rate"] == 0.75  # last write wins

    def test_histograms_fold_and_strip_digest_state(self):
        base = session_payload(0.0, 1.0, 0.5, observations=(0.1, 0.2))
        incoming = session_payload(10.0, 1.0, 0.5, observations=(0.3,))
        merged = merge_payloads(base, incoming)
        summary = merged["histograms"]["model.query_latency_s"]
        assert summary["count"] == 3
        assert summary["total"] == pytest.approx(0.6)
        assert summary["min"] == pytest.approx(0.1)
        assert summary["max"] == pytest.approx(0.3)
        assert "p2" not in summary  # exported payloads stay summary-only

    def test_series_and_spans_concatenate(self):
        base = session_payload(0.0, 1.0, 0.5)
        incoming = session_payload(10.0, 2.0, 0.5)
        merged = merge_payloads(base, incoming)
        assert merged["series"]["fcm.objective"] == [1.0, 2.0]
        assert len(merged["spans"]) == len(base["spans"]) + \
            len(incoming["spans"])
        stage = merged["stages"]["fcm.fit"]
        assert stage["calls"] == 2
        assert stage["total_s"] == pytest.approx(1.0)

    def test_events_reorder_by_timestamp_and_resequence(self):
        # Base events land at ts 1,2; incoming starts earlier at ts 0.5.
        base = session_payload(0.0, 1.0, 0.5,
                               events=("query.received", "query.classified"))
        incoming = session_payload(-0.5, 1.0, 0.5, events=("featurize.batch",))
        merged = merge_payloads(base, incoming)
        names = [e["name"] for e in merged["events"]]
        assert names == ["featurize.batch", "query.received",
                         "query.classified"]
        assert [e["seq"] for e in merged["events"]] == [1, 2, 3]
        assert [e["ts"] for e in merged["events"]] == \
            sorted(e["ts"] for e in merged["events"])

    def test_event_timestamp_ties_keep_base_first(self):
        base = session_payload(0.0, 1.0, 0.5, events=("query.received",))
        incoming = session_payload(0.0, 1.0, 0.5, events=("featurize.batch",))
        merged = merge_payloads(base, incoming)
        assert [e["name"] for e in merged["events"]] == \
            ["query.received", "featurize.batch"]

    def test_drop_counts_sum(self):
        base = session_payload(0.0, 1.0, 0.5)
        incoming = session_payload(1.0, 1.0, 0.5)
        base["events_dropped"] = 3
        base["spans_dropped"] = 1
        incoming["events_dropped"] = 4
        incoming["spans_dropped"] = 2
        merged = merge_payloads(base, incoming)
        assert merged["events_dropped"] == 7
        assert merged["spans_dropped"] == 3

    def test_meta_merges_with_incoming_winning(self):
        base = session_payload(0.0, 1.0, 0.5)
        incoming = session_payload(1.0, 1.0, 0.5)
        base["meta"] = {"run": "a", "keep": True}
        incoming["meta"] = {"run": "b"}
        merged = merge_payloads(base, incoming)
        assert merged["meta"] == {"run": "b", "keep": True}

    def test_inputs_not_mutated(self):
        base = session_payload(0.0, 1.0, 0.5, events=("query.received",))
        incoming = session_payload(-1.0, 2.0, 0.75,
                                   events=("featurize.batch",))
        base_copy = copy.deepcopy(base)
        incoming_copy = copy.deepcopy(incoming)
        merge_payloads(base, incoming)
        assert base == base_copy
        assert incoming == incoming_copy

    def test_merge_is_deterministic(self):
        base = session_payload(0.0, 1.0, 0.5, observations=(0.1,),
                               events=("query.received",))
        incoming = session_payload(5.0, 2.0, 0.75, observations=(0.2,),
                                   events=("query.classified",))
        assert merge_payloads(base, incoming) == \
            merge_payloads(base, incoming)

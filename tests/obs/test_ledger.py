"""The benchmark run ledger and its regression gate (repro.obs.ledger)."""

from __future__ import annotations

import json

from repro.obs.ledger import (
    LEDGER_SCHEMA,
    Ledger,
    check_regression,
    config_fingerprint,
    format_regressions,
    git_sha,
    record_from_payload,
)


def make_payload(scale: float = 1.0, seed_meta: dict | None = None) -> dict:
    """A minimal payload with two stages whose timings scale together."""
    meta = {"study": "hand", "n_clusters": 8, "seed": 0}
    if seed_meta:
        meta.update(seed_meta)
    def stage(total: float, calls: int) -> dict:
        return {
            "calls": calls,
            "total_s": total * scale,
            "mean_s": total * scale / calls,
            "min_s": 0.0,
            "max_s": total * scale,
            "p50_s": total * scale / calls,
            "p95_s": total * scale / calls,
            "p99_s": total * scale / calls,
            "errors": 0,
        }
    return {
        "schema": "repro.obs/v2",
        "stages": {
            "model.fit": stage(0.200, 1),
            "retrieval.knn_query": stage(0.050, 10),
        },
        "meta": meta,
    }


def make_record(scale: float = 1.0, **kwargs) -> dict:
    return record_from_payload(make_payload(scale), sha="abc1234",
                               ts=0.0, **kwargs)


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = config_fingerprint({"x": 1, "y": 2})
        b = config_fingerprint({"y": 2, "x": 1})
        assert a == b
        assert len(a) == 12

    def test_sensitive_to_configuration(self):
        assert config_fingerprint({"clusters": 8}) != \
            config_fingerprint({"clusters": 15})

    def test_excludes_run_outputs(self):
        base = {"study": "hand", "seed": 0}
        with_results = {**base, "misclassification_pct": 12.5,
                        "n_train": 48, "n_queries": 16,
                        "feature_cache": {"hits": 3},
                        "cache_dir": "/tmp/x"}
        assert config_fingerprint(base) == config_fingerprint(with_results)


class TestGitSha:
    def test_inside_repo_returns_short_sha(self, tmp_path):
        # The test process runs inside this repo; outside any repo the
        # helper degrades to "unknown" instead of raising.
        assert git_sha(tmp_path) == "unknown"
        sha = git_sha()
        assert sha == "unknown" or (4 <= len(sha) <= 40
                                    and all(c in "0123456789abcdef"
                                            for c in sha))


class TestRecord:
    def test_record_shape(self):
        record = make_record()
        assert record["schema"] == LEDGER_SCHEMA
        assert record["git_sha"] == "abc1234"
        assert record["label"] == "profile"
        assert set(record["stages"]) == {"model.fit", "retrieval.knn_query"}
        assert record["fingerprint"] == config_fingerprint(record["meta"])

    def test_explicit_fingerprint_wins(self):
        record = record_from_payload(make_payload(), sha="abc1234",
                                     fingerprint="deadbeef0000", ts=0.0)
        assert record["fingerprint"] == "deadbeef0000"


class TestLedgerFile:
    def test_append_read_round_trip(self, tmp_path):
        ledger = Ledger(tmp_path / "sub" / "ledger.jsonl")
        first, second = make_record(), make_record(scale=1.1)
        ledger.append(first)
        ledger.append(second)
        assert ledger.read() == [first, second]

    def test_missing_file_reads_empty(self, tmp_path):
        assert Ledger(tmp_path / "none.jsonl").read() == []

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(path)
        record = make_record()
        ledger.append(record)
        with path.open("a") as fh:
            fh.write("{truncated by a kill -9\n")
            fh.write("\n")
            fh.write(json.dumps({"not": "a record"}) + "\n")
        ledger.append(make_record(scale=2.0))
        records = ledger.read()
        assert len(records) == 2
        assert records[0] == record

    def test_runs_filters_by_fingerprint_and_label(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append(make_record())
        ledger.append(make_record(label="other"))
        fingerprint = make_record()["fingerprint"]
        assert len(ledger.runs(fingerprint=fingerprint)) == 2
        assert len(ledger.runs(label="other")) == 1
        assert ledger.runs(fingerprint="nope") == []


class TestRegressionCheck:
    def baseline(self, n: int = 5) -> list:
        # Mild jitter around 1.0x so the MAD is realistic, not zero.
        jitter = (1.00, 0.98, 1.03, 1.01, 0.99, 1.02, 0.97)
        return [make_record(scale=jitter[i % len(jitter)])
                for i in range(n)]

    def test_unchanged_rerun_passes(self):
        baseline = self.baseline()
        assert check_regression(baseline, make_record(scale=1.0)) == []

    def test_injected_2x_slowdown_is_flagged(self):
        baseline = self.baseline()
        findings = check_regression(baseline, make_record(scale=2.0))
        assert {f["stage"] for f in findings} == \
            {"model.fit", "retrieval.knn_query"}
        worst = findings[0]
        assert worst["ratio"] > 1.8
        assert worst["current_s"] > worst["allowed_s"]

    def test_small_jitter_passes(self):
        baseline = self.baseline()
        assert check_regression(baseline, make_record(scale=1.05)) == []

    def test_empty_baseline_never_flags(self):
        assert check_regression([], make_record(scale=100.0)) == []

    def test_window_limits_baseline(self):
        # Old slow history beyond the window must not mask a regression
        # against the recent (fast) runs.
        history = [make_record(scale=3.0)] * 5 + self.baseline(5)
        findings = check_regression(history, make_record(scale=2.0),
                                    window=5)
        assert findings  # 2x vs the recent 1x window regresses

    def test_tiny_stages_are_ignored(self):
        baseline = self.baseline()
        findings = check_regression(baseline, make_record(scale=2.0),
                                    min_total_s=1.0)
        assert findings == []

    def test_new_stage_has_no_baseline(self):
        current = make_record(scale=1.0)
        current["stages"]["brand.new_stage"] = \
            current["stages"]["model.fit"]
        assert check_regression(self.baseline(), current) == []

    def test_format_regressions(self):
        findings = check_regression(self.baseline(),
                                    make_record(scale=2.0))
        text = format_regressions(findings)
        assert "regressed" in text
        assert "model.fit" in text
        assert format_regressions([]) == "no regressions detected"

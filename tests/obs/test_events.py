"""Per-query provenance: EventLog, query scopes and the JSONL export."""

from __future__ import annotations

import json

import pytest

from repro.obs.clock import ManualClock
from repro.obs.config import (
    capture,
    configure,
    query_scope,
    record_event,
)
from repro.obs.events import (
    EventLog,
    current_query_id,
    write_events_jsonl,
)


@pytest.fixture(autouse=True)
def _reset_obs():
    yield
    configure(enabled=False, reset=True)


class TestEventLog:
    def test_emit_stamps_sequence_and_clock(self):
        log = EventLog(clock=ManualClock(start=10.0, auto_advance=1.0))
        log.emit("query.received", {"key": "a"})
        log.emit("query.classified")
        first, second = log.records()
        assert (first.seq, second.seq) == (1, 2)
        assert second.ts > first.ts
        assert first.attrs == {"key": "a"}
        assert second.attrs == {}

    def test_capacity_drops_are_counted(self):
        log = EventLog(clock=ManualClock(), max_events=2)
        for i in range(5):
            log.emit("query.received", {"i": i})
        assert len(log) == 2
        assert log.dropped == 3
        # Sequence numbers keep counting across drops: loss is visible.
        assert log.records()[-1].seq == 2

    def test_mint_query_id_is_a_deterministic_counter(self):
        log = EventLog(clock=ManualClock())
        assert [log.mint_query_id() for _ in range(3)] == \
            ["q000001", "q000002", "q000003"]
        assert log.n_queries == 3

    def test_reset_restarts_counters(self):
        log = EventLog(clock=ManualClock())
        log.emit("query.received")
        log.mint_query_id()
        log.reset()
        assert len(log) == 0
        assert log.mint_query_id() == "q000001"
        log.emit("query.received")
        assert log.records()[0].seq == 1


class TestQueryScope:
    def test_no_scope_outside_context(self):
        assert current_query_id() is None

    def test_scope_mints_and_pops(self):
        with capture(clock=ManualClock()):
            with query_scope() as query_id:
                assert query_id == "q000001"
                assert current_query_id() == "q000001"
            assert current_query_id() is None

    def test_nested_scope_reuses_outer_id(self):
        # classify_with_report opens a scope, then its internal
        # kneighbors call opens another: both must share one id.
        with capture(clock=ManualClock()):
            with query_scope() as outer:
                with query_scope() as inner:
                    assert inner == outer

    def test_events_inside_scope_are_stamped(self):
        with capture(clock=ManualClock()) as state:
            with query_scope():
                record_event("query.received", key="a")
            record_event("query.received", key="b")
        stamped, unstamped = state.events.records()
        assert stamped.query_id == "q000001"
        assert unstamped.query_id is None

    def test_disabled_scope_is_noop(self):
        configure(enabled=False, reset=True)
        with query_scope() as query_id:
            assert query_id is None
        record_event("query.received")  # must not raise


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog(clock=ManualClock(start=1.0, auto_advance=0.5))
        log.emit("query.received", {"key": "a"})
        log.emit("query.classified", {"label": "walk"})
        path = write_events_jsonl(tmp_path / "events.jsonl", log)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed == log.to_dicts()

    def test_empty_log_writes_empty_file(self, tmp_path):
        path = write_events_jsonl(tmp_path / "events.jsonl",
                                  EventLog(clock=ManualClock()))
        assert path.read_text() == ""

    def test_pinned_clock_export_is_byte_identical(self, tmp_path):
        outputs = []
        for run in range(2):
            log = EventLog(clock=ManualClock(start=100.0, auto_advance=0.25))
            for i in range(4):
                log.emit("query.received", {"i": i})
            path = write_events_jsonl(tmp_path / f"events_{run}.jsonl", log)
            outputs.append(path.read_bytes())
        assert outputs[0] == outputs[1]

"""Tracing spans: nesting, exception safety, threading, the no-op path."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ValidationError
from repro.obs.clock import ManualClock, MonotonicClock
from repro.obs.config import (
    capture,
    configure,
    current_state,
    is_enabled,
    record_counter,
    span,
    traced,
)
from repro.obs.trace import NOOP_SPAN, NoOpSpan, TraceCollector


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Every test starts and ends with observability off and empty."""
    configure(enabled=False, reset=True)
    yield
    configure(enabled=False, reset=True)


def ticking_collector():
    return TraceCollector(ManualClock(auto_advance=1.0), max_spans=100)


class TestSpanNesting:
    def test_parent_child_structure(self):
        collector = ticking_collector()
        with collector.start("outer", {}):
            with collector.start("inner", {}):
                pass
        records = collector.records()
        assert [r.name for r in records] == ["outer", "inner"]
        outer = next(r for r in records if r.name == "outer")
        inner = next(r for r in records if r.name == "inner")
        assert outer.parent_id is None and outer.depth == 0
        assert inner.parent_id == outer.span_id and inner.depth == 1

    def test_sibling_spans_share_parent(self):
        collector = ticking_collector()
        with collector.start("root", {}) as root:
            with collector.start("a", {}):
                pass
            with collector.start("b", {}):
                pass
        by_name = {r.name: r for r in collector.records()}
        assert by_name["a"].parent_id == root.span_id
        assert by_name["b"].parent_id == root.span_id
        assert by_name["a"].depth == by_name["b"].depth == 1

    def test_durations_from_injected_clock(self):
        collector = ticking_collector()
        with collector.start("outer", {}):
            with collector.start("inner", {}):
                pass
        by_name = {r.name: r for r in collector.records()}
        # Ticks: outer start=0, inner start=1, inner end=2, outer end=3.
        assert by_name["inner"].duration == pytest.approx(1.0)
        assert by_name["outer"].duration == pytest.approx(3.0)

    def test_attrs_initial_and_set(self):
        collector = ticking_collector()
        with collector.start("stage", {"k": 1}) as sp:
            sp.set(result=2.5)
        (record,) = collector.records()
        assert record.attrs == {"k": 1, "result": 2.5}

    def test_stage_aggregates_exact(self):
        collector = ticking_collector()
        for _ in range(5):
            with collector.start("stage", {}):
                pass
        stat = collector.stages()["stage"]
        assert stat.calls == 5
        assert stat.total == pytest.approx(5.0)
        assert stat.min == stat.max == pytest.approx(1.0)
        assert stat.errors == 0


class TestExceptionSafety:
    def test_exception_propagates_and_span_closes(self):
        collector = ticking_collector()
        with pytest.raises(ValidationError):
            with collector.start("boom", {}):
                raise ValidationError("bad")
        (record,) = collector.records()
        assert record.error == "ValidationError"
        assert collector.active_depth() == 0
        assert collector.stages()["boom"].errors == 1

    def test_outer_span_survives_inner_failure(self):
        collector = ticking_collector()
        with collector.start("outer", {}):
            with pytest.raises(ValidationError):
                with collector.start("inner", {}):
                    raise ValidationError("bad")
        by_name = {r.name: r for r in collector.records()}
        assert by_name["inner"].error == "ValidationError"
        assert by_name["outer"].error is None
        assert collector.active_depth() == 0

    def test_global_span_helper_is_exception_safe(self):
        configure(enabled=True, clock=ManualClock(auto_advance=1.0))
        with pytest.raises(ValidationError):
            with span("stage"):
                raise ValidationError("bad")
        state = current_state()
        assert state.collector.active_depth() == 0
        assert state.collector.stages()["stage"].errors == 1


class TestThreading:
    def test_span_stacks_are_per_thread(self):
        collector = TraceCollector(MonotonicClock(), max_spans=1000)
        errors = []

        def worker(tag):
            try:
                for _ in range(50):
                    with collector.start(f"outer.{tag}", {}):
                        with collector.start(f"inner.{tag}", {}):
                            pass
                assert collector.active_depth() == 0
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stages = collector.stages()
        for tag in range(4):
            assert stages[f"outer.{tag}"].calls == 50
            # Children recorded under the right parent, in-thread.
            inner = [r for r in collector.records()
                     if r.name == f"inner.{tag}"]
            outer_ids = {r.span_id for r in collector.records()
                         if r.name == f"outer.{tag}"}
            assert all(r.parent_id in outer_ids for r in inner)


class TestMaxSpans:
    def test_overflow_keeps_aggregates(self):
        collector = TraceCollector(ManualClock(auto_advance=1.0), max_spans=3)
        for _ in range(10):
            with collector.start("stage", {}):
                pass
        assert len(collector.records()) == 3
        assert collector.dropped == 7
        assert collector.stages()["stage"].calls == 10

    def test_zero_keeps_aggregates_only(self):
        collector = TraceCollector(ManualClock(auto_advance=1.0), max_spans=0)
        with collector.start("stage", {}):
            pass
        assert collector.records() == ()
        assert collector.dropped == 1
        assert collector.stages()["stage"].calls == 1


class TestNoOpPath:
    def test_disabled_span_is_the_shared_singleton(self):
        assert not is_enabled()
        sp = span("anything", attr=1)
        assert sp is NOOP_SPAN
        assert isinstance(sp, NoOpSpan)
        # And nothing is recorded through it.
        with sp:
            sp.set(more=2)
        assert current_state().collector.records() == ()

    def test_disabled_metrics_do_not_record(self):
        record_counter("c", 5)
        assert current_state().registry.to_dict()["counters"] == {}

    def test_enable_disable_roundtrip(self):
        assert span("x") is NOOP_SPAN
        configure(enabled=True)
        live = span("x")
        assert live is not NOOP_SPAN
        configure(enabled=False)
        assert span("x") is NOOP_SPAN

    def test_noop_overhead_smoke(self):
        """~100k disabled spans finish well under a second."""
        assert not is_enabled()
        start = time.perf_counter()
        for _ in range(100_000):
            with span("hot.loop", i=0):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0


class TestTracedDecorator:
    def test_records_qualified_name_when_enabled(self):
        configure(enabled=True, clock=ManualClock(auto_advance=1.0))

        @traced()
        def add(a, b):
            return a + b

        assert add(1, 2) == 3
        stages = current_state().collector.stages()
        assert any(name.endswith("add") for name in stages)

    def test_explicit_name_and_disabled_passthrough(self):
        @traced("custom.name")
        def mul(a, b):
            return a * b

        assert mul(2, 3) == 6  # disabled: plain call, nothing recorded
        assert current_state().collector.records() == ()
        configure(enabled=True, clock=ManualClock(auto_advance=1.0))
        assert mul(2, 3) == 6
        assert "custom.name" in current_state().collector.stages()


class TestCapture:
    def test_capture_enables_inside_and_retains_after(self):
        assert not is_enabled()
        with capture(clock=ManualClock(auto_advance=1.0)) as state:
            assert is_enabled()
            with span("inside"):
                pass
        assert not is_enabled()
        assert state.collector.stages()["inside"].calls == 1

    def test_capture_disables_even_on_error(self):
        with pytest.raises(ValidationError):
            with capture():
                raise ValidationError("bad")
        assert not is_enabled()

"""The P² streaming quantile estimator (repro.obs.quantiles).

The estimator's contract: exact below five observations (sorted-buffer
interpolation), close to ``numpy.percentile`` beyond (the P² markers are
an O(1)-memory approximation), mergeable via its ``state()`` snapshot,
and strictly validated.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.obs.quantiles import (
    DEFAULT_QUANTILES,
    P2Quantile,
    QuantileDigest,
)


class TestSmallSamples:
    def test_empty_estimate_is_zero(self):
        assert P2Quantile(0.5).estimate == 0.0

    def test_single_value(self):
        est = P2Quantile(0.5)
        est.observe(7.0)
        assert est.estimate == 7.0

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.95, 0.99])
    def test_exact_below_five_observations(self, q):
        values = [4.0, 1.0, 3.0, 2.0]
        est = P2Quantile(q)
        for value in values:
            est.observe(value)
        assert est.estimate == pytest.approx(
            float(np.percentile(values, 100.0 * q)))

    def test_exactly_five_matches_numpy(self):
        # The transition point: the five buffered values become the
        # initial markers, which are exact for n = 5.
        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        est = P2Quantile(0.5)
        for value in values:
            est.observe(value)
        assert est.estimate == pytest.approx(3.0)


class TestAccuracy:
    """P² vs numpy.percentile on seeded streams (tolerance in IQR units)."""

    @pytest.mark.parametrize("q,tol_iqr", [(0.5, 0.05), (0.95, 0.05),
                                           (0.99, 0.10)])
    def test_uniform_stream(self, q, tol_iqr):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 100.0, size=20_000)
        est = P2Quantile(q)
        for value in values:
            est.observe(float(value))
        exact = float(np.percentile(values, 100.0 * q))
        iqr = float(np.percentile(values, 75) - np.percentile(values, 25))
        assert abs(est.estimate - exact) <= tol_iqr * iqr

    @pytest.mark.parametrize("q,tol_iqr", [(0.5, 0.05), (0.95, 0.05),
                                           (0.99, 0.10)])
    def test_normal_stream(self, q, tol_iqr):
        rng = np.random.default_rng(1)
        values = rng.normal(50.0, 10.0, size=20_000)
        est = P2Quantile(q)
        for value in values:
            est.observe(float(value))
        exact = float(np.percentile(values, 100.0 * q))
        iqr = float(np.percentile(values, 75) - np.percentile(values, 25))
        assert abs(est.estimate - exact) <= tol_iqr * iqr

    def test_lognormal_tail(self):
        # Heavy tails are the P² worst case; the p99 estimate must still
        # land within a fraction of the spread.
        rng = np.random.default_rng(2)
        values = rng.lognormal(0.0, 1.0, size=20_000)
        est = P2Quantile(0.99)
        for value in values:
            est.observe(float(value))
        exact = float(np.percentile(values, 99.0))
        iqr = float(np.percentile(values, 75) - np.percentile(values, 25))
        assert abs(est.estimate - exact) <= 0.5 * iqr

    def test_estimate_is_deterministic_for_a_stream(self):
        rng = np.random.default_rng(3)
        values = [float(v) for v in rng.normal(size=500)]
        runs = []
        for _ in range(2):
            est = P2Quantile(0.95)
            for value in values:
                est.observe(value)
            runs.append(est.estimate)
        assert runs[0] == runs[1]


class TestMerge:
    def test_buffer_state_merges_exactly(self):
        src = P2Quantile(0.5)
        for value in (1.0, 9.0, 5.0):
            src.observe(value)
        dst = P2Quantile(0.5)
        dst.merge_state(src.state())
        assert dst.count == 3
        assert dst.estimate == src.estimate == 5.0

    def test_marker_state_merge_is_reasonable(self):
        rng = np.random.default_rng(4)
        values = [float(v) for v in rng.uniform(0.0, 100.0, size=2_000)]
        src = P2Quantile(0.5)
        for value in values:
            src.observe(value)
        dst = P2Quantile(0.5)
        dst.merge_state(src.state())
        exact = float(np.percentile(values, 50.0))
        iqr = float(np.percentile(values, 75) - np.percentile(values, 25))
        assert abs(dst.estimate - exact) <= 0.25 * iqr

    def test_merge_into_nonempty_accumulates_count(self):
        dst = P2Quantile(0.5)
        dst.observe(1.0)
        src = P2Quantile(0.5)
        src.observe(2.0)
        src.observe(3.0)
        dst.merge_state(src.state())
        assert dst.count == 3


class TestDigest:
    def test_default_quantile_keys(self):
        assert DEFAULT_QUANTILES == (0.5, 0.95, 0.99)
        digest = QuantileDigest()
        assert digest.estimates() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_suffix(self):
        digest = QuantileDigest()
        digest.observe(2.0)
        assert digest.estimates(suffix="_s") == {
            "p50_s": 2.0, "p95_s": 2.0, "p99_s": 2.0,
        }

    def test_state_round_trip(self):
        src = QuantileDigest()
        for value in (1.0, 2.0, 3.0, 4.0):
            src.observe(value)
        dst = QuantileDigest()
        dst.merge_state(src.state())
        assert dst.estimates() == src.estimates()

    def test_quantiles_are_ordered(self):
        rng = np.random.default_rng(5)
        digest = QuantileDigest()
        for value in rng.normal(size=1_000):
            digest.observe(float(value))
        est = digest.estimates()
        assert est["p50"] <= est["p95"] <= est["p99"]


class TestValidation:
    @pytest.mark.parametrize("q", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_out_of_range_quantile(self, q):
        with pytest.raises(ValidationError):
            P2Quantile(q)

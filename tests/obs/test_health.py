"""SLO rules, the alerting engine, sinks and the end-to-end health check."""

import json

import pytest

from repro.errors import ValidationError
from repro.obs.clock import ManualClock
from repro.obs.config import capture
from repro.obs.drift import DriftReport
from repro.obs.health import (
    Alert,
    CallbackSink,
    JsonlSink,
    LogSink,
    Rule,
    RulesEngine,
    default_rules,
    format_health_report,
    parse_rule,
    parse_rules,
    resolve_metric,
    run_health_check,
)


def payload(gauges=None, counters=None, histograms=None):
    return {
        "gauges": gauges or {},
        "counters": counters or {},
        "histograms": histograms or {},
    }


class TestParseRule:
    def test_minimal(self):
        rule = parse_rule("cache.hit_rate > 0.8")
        assert rule.metric == "cache.hit_rate"
        assert rule.op == ">"
        assert rule.threshold == pytest.approx(0.8)
        assert rule.name == "cache.hit_rate"  # defaults to the selector
        assert rule.severity == "warning"
        assert rule.for_count == 1

    def test_milliseconds_suffix(self):
        rule = parse_rule("model.query_latency_s.p95 < 250ms")
        assert rule.threshold == pytest.approx(0.25)

    def test_seconds_suffix(self):
        assert parse_rule("a.b < 2s").threshold == pytest.approx(2.0)

    def test_percent_suffix(self):
        assert parse_rule("a.b < 10%").threshold == pytest.approx(0.1)

    def test_options(self):
        rule = parse_rule(
            "robust.degraded_fraction < 0.1 severity=critical for=3 "
            "name=degraded description=too-many-degraded"
        )
        assert rule.name == "degraded"
        assert rule.severity == "critical"
        assert rule.for_count == 3
        assert rule.description == "too-many-degraded"

    @pytest.mark.parametrize("bad", [
        "just.a.metric",                       # too few tokens
        "a.b < 0.5 loose-option",              # option without '='
        "a.b < 0.5 color=red",                 # unknown option key
        "a.b < 0.5 for=soon",                  # non-integer for=
        "a.b < 0.5 for=0",                     # for_count below 1
        "a.b < banana",                        # malformed threshold
        "a.b ~= 0.5",                          # unknown comparator
        "a.b < 0.5 severity=fatal",            # unknown severity
    ])
    def test_malformed_rules_rejected(self, bad):
        with pytest.raises(ValidationError):
            parse_rule(bad)

    def test_parse_rules_skips_comments_and_blanks(self):
        rules = parse_rules(
            "# stock SLOs\n"
            "\n"
            "a.b < 1.0\n"
            "  c.d >= 2.0 severity=info\n"
        )
        assert [r.metric for r in rules] == ["a.b", "c.d"]

    def test_default_rules_have_unique_names(self):
        names = [r.name for r in default_rules()]
        assert len(set(names)) == len(names)
        RulesEngine(rules=default_rules())  # constructor re-validates


class TestResolveMetric:
    def test_gauge_precedence_over_counter(self):
        snap = payload(gauges={"x.y": 1.5}, counters={"x.y": 7.0})
        assert resolve_metric(snap, "x.y") == 1.5

    def test_counter_fallback(self):
        assert resolve_metric(payload(counters={"x.y": 7.0}), "x.y") == 7.0

    def test_histogram_field(self):
        snap = payload(histograms={"lat": {"count": 3, "p95": 0.2}})
        assert resolve_metric(snap, "lat.p95") == pytest.approx(0.2)
        assert resolve_metric(snap, "lat.count") == 3.0

    def test_unknown_selector_is_none(self):
        snap = payload(gauges={"x.y": 1.0},
                       histograms={"lat": {"p95": 0.2}})
        assert resolve_metric(snap, "missing") is None
        assert resolve_metric(snap, "missing.p95") is None
        assert resolve_metric(snap, "lat.p42") is None  # not a summary field


class TestRulesEngine:
    def make_engine(self, rule_text, **kwargs):
        clock = ManualClock()
        return RulesEngine(rules=parse_rules(rule_text), clock=clock,
                           **kwargs), clock

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            RulesEngine(rules=[Rule(name="a", metric="x", op="<",
                                    threshold=1.0),
                               Rule(name="a", metric="y", op="<",
                                    threshold=1.0)])

    def test_pass_and_no_data_statuses(self):
        engine, _ = self.make_engine("a.b < 1.0\nc.d < 1.0")
        results = engine.evaluate(payload(gauges={"a.b": 0.5}))
        assert [r.status for r in results] == ["pass", "no_data"]
        assert engine.dispatched == []

    def test_first_breach_fires_with_default_for(self):
        engine, _ = self.make_engine("a.b < 1.0 severity=critical")
        results = engine.evaluate(payload(gauges={"a.b": 2.0}))
        assert results[0].status == "firing"
        assert len(engine.dispatched) == 1
        alert = engine.dispatched[0]
        assert alert.source == "rule"
        assert alert.severity == "critical"
        assert alert.value == 2.0
        assert alert.threshold == 1.0

    def test_flap_suppression_requires_streak(self):
        engine, _ = self.make_engine("a.b < 1.0 for=2")
        bad = payload(gauges={"a.b": 2.0})
        good = payload(gauges={"a.b": 0.5})

        assert engine.evaluate(bad)[0].status == "breach"
        assert engine.dispatched == []
        # A healthy round resets the streak: the next breach starts over.
        assert engine.evaluate(good)[0].status == "pass"
        assert engine.evaluate(bad)[0].status == "breach"
        assert engine.dispatched == []
        # Two consecutive breaches finally fire.
        result = engine.evaluate(bad)[0]
        assert result.status == "firing"
        assert result.streak == 2
        assert len(engine.dispatched) == 1

    def test_no_data_resets_streak(self):
        engine, _ = self.make_engine("a.b < 1.0 for=2")
        bad = payload(gauges={"a.b": 2.0})
        assert engine.evaluate(bad)[0].status == "breach"
        assert engine.evaluate(payload())[0].status == "no_data"
        assert engine.evaluate(bad)[0].status == "breach"  # streak restarted

    def test_rule_gauges_mirror_status(self):
        engine, _ = self.make_engine("a.b < 1.0 name=slo")
        with capture(clock=ManualClock()) as state:
            engine.evaluate(payload(gauges={"a.b": 2.0}))
            firing_gauges = dict(state.registry.to_dict()["gauges"])
            engine.evaluate(payload(gauges={"a.b": 0.5}))
            pass_gauges = dict(state.registry.to_dict()["gauges"])
        assert firing_gauges["health.rule.slo"] == 1.0
        assert pass_gauges["health.rule.slo"] == 0.0

    def test_alert_timestamps_use_injected_clock(self):
        engine, clock = self.make_engine("a.b < 1.0")
        clock.advance(5.0)
        engine.evaluate(payload(gauges={"a.b": 2.0}))
        assert engine.dispatched[0].ts == pytest.approx(5.0)

    def test_drift_alerts_promote_firing_reports(self):
        engine, _ = self.make_engine("a.b < 1.0")
        reports = [
            DriftReport(detector="feature_shift", status="drift", value=2.0,
                        baseline=0.0, threshold=1.0, n_samples=8,
                        detail="worst feature 'iav:a'"),
            DriftReport(detector="membership_entropy", status="ok", value=0.2,
                        baseline=0.2, threshold=0.35, n_samples=8),
        ]
        alerts = engine.drift_alerts(reports)
        assert [a.name for a in alerts] == ["feature_shift"]
        assert alerts[0].severity == "critical"
        assert alerts[0].source == "drift"
        assert engine.dispatched == alerts


class TestSinks:
    def make_alert(self, **overrides):
        defaults = dict(name="slo", severity="warning", source="rule",
                        message="m", value=2.0, threshold=1.0, ts=1.0)
        defaults.update(overrides)
        return Alert(**defaults)

    def test_log_sink_collects(self):
        sink = LogSink()
        alert = self.make_alert()
        sink.emit(alert)
        assert sink.alerts == [alert]

    def test_jsonl_sink_appends_parseable_lines(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = JsonlSink(path)
        sink.emit(self.make_alert(name="first"))
        sink.emit(self.make_alert(name="second", severity="critical"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["first", "second"]
        # Keys are sorted for stable diffs.
        assert lines[0] == json.dumps(records[0], sort_keys=True)

    def test_jsonl_sink_surfaces_io_errors(self, tmp_path):
        sink = JsonlSink(tmp_path)  # a directory is not appendable
        with pytest.raises(ValidationError, match="could not append"):
            sink.emit(self.make_alert())

    def test_callback_sink_invokes(self):
        seen = []
        engine = RulesEngine(rules=[Rule(name="slo", metric="a.b", op="<",
                                         threshold=1.0)],
                             sinks=[CallbackSink(seen.append)],
                             clock=ManualClock())
        engine.evaluate(payload(gauges={"a.b": 2.0}))
        assert [a.name for a in seen] == ["slo"]

    def test_dispatch_records_provenance_event(self):
        engine = RulesEngine(rules=[Rule(name="slo", metric="a.b", op="<",
                                         threshold=1.0)],
                             clock=ManualClock())
        with capture(clock=ManualClock()) as state:
            engine.evaluate(payload(gauges={"a.b": 2.0}))
            events = state.events.to_dicts()
        assert [e["name"] for e in events] == ["health.alert"]
        assert events[0]["attrs"]["alert"] == "slo"
        assert events[0]["attrs"]["severity"] == "warning"


class TestRunHealthCheck:
    """Seeded end-to-end acceptance: clean run healthy, drifted run fires."""

    @pytest.fixture(scope="class")
    def clean(self):
        return run_health_check(participants=1, trials=2, clusters=4,
                                seed=0, clock=ManualClock())

    def test_clean_run_is_healthy(self, clean):
        assert clean.drift_ok is True
        assert clean.critical_firing is False
        assert clean.alerts == []
        assert all(r.status in ("pass", "no_data")
                   for r in clean.rule_results)
        statuses = {r.detector: r.status for r in clean.drift_reports}
        assert statuses["feature_shift"] == "ok"
        assert statuses["membership_confidence"] == "ok"

    def test_clean_payload_carries_health_telemetry(self, clean):
        gauges = clean.payload["gauges"]
        assert gauges["health.drift_firing"] == 0.0
        assert gauges["robust.degraded_fraction"] == 0.0
        assert clean.payload["counters"]["health.queries"] >= 4
        assert clean.payload["meta"]["drift_fault"] == "none"
        report = format_health_report(clean)
        assert report.endswith("healthy")
        assert "drift detectors" in report and "slo rules" in report

    def test_drifted_run_fires_detector_and_sinks(self, tmp_path):
        alerts_path = tmp_path / "alerts.jsonl"
        result = run_health_check(
            participants=1, trials=2, clusters=4, seed=0,
            clock=ManualClock(), drift_fault="emg-dropout",
            alert_sinks=[LogSink(), JsonlSink(alerts_path)],
        )
        assert result.drift_ok is False
        assert result.critical_firing is True
        firing = {r.detector for r in result.drift_reports if r.firing}
        assert "feature_shift" in firing
        # The drift-detectors stock rule fires off the health.drift_firing
        # gauge the monitor just set.
        rule_status = {r.rule.name: r.status for r in result.rule_results}
        assert rule_status["drift-detectors"] == "firing"
        # Every dispatched alert reached the JSONL sink.
        lines = alerts_path.read_text().splitlines()
        assert len(lines) == len(result.alerts) >= 2
        severities = {json.loads(line)["severity"] for line in lines}
        assert "critical" in severities
        report = format_health_report(result)
        assert "UNHEALTHY" in report and "DRIFT" in report

    def test_deterministic_given_seed(self, clean):
        again = run_health_check(participants=1, trials=2, clusters=4,
                                 seed=0, clock=ManualClock())
        assert again.to_dict() == clean.to_dict()

    def test_unknown_study_rejected(self):
        with pytest.raises(ValidationError, match="unknown study"):
            run_health_check(study="torso")

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValidationError, match="unknown drift fault"):
            run_health_check(drift_fault="meteor")

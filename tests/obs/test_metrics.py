"""Metrics registry: kinds, merge semantics, deterministic export."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ValidationError
from repro.obs.clock import ManualClock
from repro.obs.export import to_json
from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_increments_accumulate(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("c").inc(-1.0)

    def test_create_or_get_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(1.0)
        gauge.set(0.25)
        assert gauge.value == 0.25


class TestHistogram:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.summary() == {
            "count": 3, "total": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
            "p50": 2.0, "p95": pytest.approx(2.9), "p99": pytest.approx(2.98),
        }

    def test_empty_summary_is_zeros(self):
        assert MetricsRegistry().histogram("h").summary() == {
            "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_timer_observes_clock_elapsed(self):
        registry = MetricsRegistry(ManualClock(auto_advance=0.5))
        with registry.timer("h"):
            pass
        summary = registry.histogram("h").summary()
        assert summary["count"] == 1
        assert summary["total"] == pytest.approx(0.5)


class TestSeries:
    def test_append_order_preserved(self):
        registry = MetricsRegistry()
        series = registry.series("s")
        for value in (3.0, 1.0, 2.0):
            series.append(value)
        assert series.values == [3.0, 1.0, 2.0]
        assert len(series) == 3


class TestMerge:
    def make_source_snapshot(self):
        src = MetricsRegistry()
        src.counter("c").inc(2.0)
        src.gauge("g").set(9.0)
        src.histogram("h").observe(1.0)
        src.histogram("h").observe(5.0)
        src.series("s").append(0.5)
        return src.to_dict()

    def test_merge_semantics(self):
        dst = MetricsRegistry()
        dst.counter("c").inc(1.0)
        dst.gauge("g").set(4.0)
        dst.histogram("h").observe(3.0)
        dst.series("s").append(0.25)
        dst.merge(self.make_source_snapshot())
        merged = dst.to_dict()
        assert merged["counters"]["c"] == 3.0  # counters add
        assert merged["gauges"]["g"] == 9.0  # gauges overwrite
        histogram = merged["histograms"]["h"]
        # Quantile state ("p2") is internal merge plumbing; compare the
        # exact summary stats and sanity-check the merged quantiles.
        assert {key: histogram[key]
                for key in ("count", "total", "min", "max", "mean")} == {
            "count": 3, "total": 9.0, "min": 1.0, "max": 5.0, "mean": 3.0,
        }
        assert histogram["p50"] == 3.0  # merge replays the raw buffer
        assert 1.0 <= histogram["p50"] <= histogram["p95"] \
            <= histogram["p99"] <= 5.0
        assert merged["series"]["s"] == [0.25, 0.5]  # series extend

    def test_merge_into_empty_reproduces_snapshot(self):
        snapshot = self.make_source_snapshot()
        dst = MetricsRegistry()
        dst.merge(snapshot)
        assert dst.to_dict() == snapshot

    def test_merge_skips_empty_histograms(self):
        dst = MetricsRegistry()
        dst.merge({"histograms": {"h": {"count": 0, "total": 0.0,
                                        "min": 0.0, "max": 0.0, "mean": 0.0}}})
        assert dst.histogram("h").summary()["count"] == 0


class TestDeterministicExport:
    @staticmethod
    def run_once():
        registry = MetricsRegistry(ManualClock(auto_advance=0.125))
        registry.counter("windows").inc(96)
        registry.gauge("pruning").set(0.75)
        with registry.timer("query"):
            pass
        for value in (685.6, 612.3, 606.7):
            registry.series("fcm.objective").append(value)
        return registry.to_dict()

    def test_two_runs_byte_identical_json(self):
        assert to_json(self.run_once()) == to_json(self.run_once())

    def test_names_sorted_regardless_of_insertion_order(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        a.counter("b").inc()
        assert list(a.to_dict()["counters"]) == ["b", "x"]


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000.0

"""OpenMetrics exposition: name mapping, rendering, strict parsing."""

import pytest

from repro.errors import ValidationError
from repro.obs.clock import ManualClock
from repro.obs.config import (
    capture,
    record_counter,
    record_gauge,
    record_histogram,
)
from repro.obs.export import collect_payload
from repro.obs.openmetrics import (
    metric_name,
    parse_openmetrics,
    render_openmetrics,
)


def toy_payload():
    return {
        "counters": {"fcm.fits": 3.0, "model.queries": 12.0},
        "gauges": {"cache.hit_rate": 0.5},
        "histograms": {
            "model.query_latency_s": {
                "count": 4, "total": 0.4, "min": 0.05, "max": 0.2,
                "mean": 0.1, "p50": 0.1, "p95": 0.19, "p99": 0.2,
            },
        },
        "spans_dropped": 0,
        "events_dropped": 2,
    }


class TestMetricName:
    def test_dots_and_dashes_flatten(self):
        assert metric_name("cache.hit_rate") == "repro_cache_hit_rate"
        assert metric_name("health.rule.query-latency-p95") == \
            "repro_health_rule_query_latency_p95"

    def test_custom_and_empty_namespace(self):
        assert metric_name("a.b", namespace="x") == "x_a_b"
        assert metric_name("a.b", namespace="") == "a_b"

    def test_illegal_result_rejected(self):
        with pytest.raises(ValidationError, match="invalid OpenMetrics"):
            metric_name("has space.metric")
        with pytest.raises(ValidationError, match="invalid OpenMetrics"):
            metric_name("1leading.digit", namespace="")


class TestRender:
    def test_families_and_terminator(self):
        text = render_openmetrics(toy_payload())
        lines = text.splitlines()
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_fcm_fits_total counter" in lines
        assert "repro_fcm_fits_total 3" in lines
        assert "# TYPE repro_cache_hit_rate gauge" in lines
        assert "repro_cache_hit_rate 0.5" in lines
        assert "# TYPE repro_model_query_latency_s summary" in lines
        assert 'repro_model_query_latency_s{quantile="0.95"} 0.19' in lines
        assert "repro_model_query_latency_s_count 4" in lines
        assert "repro_model_query_latency_s_sum 0.4" in lines
        # Telemetry-loss counters are always exposed.
        assert "repro_obs_events_dropped_total 2" in lines
        assert "repro_obs_spans_dropped_total 0" in lines

    def test_families_sorted_and_deterministic(self):
        text = render_openmetrics(toy_payload())
        family_names = [line.split()[2] for line in text.splitlines()
                        if line.startswith("# TYPE ")]
        assert family_names == sorted(family_names)
        assert render_openmetrics(toy_payload()) == text

    def test_name_collision_rejected(self):
        # A gauge literally named "fcm.fits_total" collides with the
        # counter family "fcm.fits" after suffixing.
        payload = {
            "counters": {"fcm.fits": 1.0},
            "gauges": {"fcm.fits_total": 2.0},
        }
        with pytest.raises(ValidationError, match="collision"):
            render_openmetrics(payload)


class TestParse:
    def test_round_trips_rendered_values(self):
        payload = toy_payload()
        families = parse_openmetrics(render_openmetrics(payload))
        assert families["repro_fcm_fits_total"]["type"] == "counter"
        assert families["repro_fcm_fits_total"]["samples"][
            "repro_fcm_fits_total"] == 3.0
        assert families["repro_cache_hit_rate"]["samples"][
            "repro_cache_hit_rate"] == 0.5
        summary = families["repro_model_query_latency_s"]
        assert summary["type"] == "summary"
        samples = summary["samples"]
        hist = payload["histograms"]["model.query_latency_s"]
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                              ("0.99", "p99")):
            om_key = f'repro_model_query_latency_s{{quantile="{quantile}"}}'
            assert samples[om_key] == hist[key]
        assert samples["repro_model_query_latency_s_count"] == hist["count"]
        assert samples["repro_model_query_latency_s_sum"] == hist["total"]

    @pytest.mark.parametrize("mutate, match", [
        (lambda t: t.replace("# EOF\n", ""), "EOF"),
        (lambda t: t[:-1], "trailing newline"),
        (lambda t: t + "stray 1\n# EOF\n", "content after # EOF"),
        (lambda t: "\n" + t, "blank line"),
        (lambda t: "# WEIRD comment\n" + t, "unknown comment"),
        (lambda t: "orphan_sample 1\n" + t, "no HELP/TYPE"),
    ])
    def test_malformed_expositions_rejected(self, mutate, match):
        text = render_openmetrics(toy_payload())
        with pytest.raises(ValidationError, match=match):
            parse_openmetrics(mutate(text))

    def test_sample_before_type_rejected(self):
        text = ("# HELP repro_x Gauge.\n"
                "repro_x 1\n"
                "# TYPE repro_x gauge\n"
                "# EOF\n")
        with pytest.raises(ValidationError, match="before its TYPE"):
            parse_openmetrics(text)

    def test_type_before_help_rejected(self):
        text = "# TYPE repro_x gauge\n# EOF\n"
        with pytest.raises(ValidationError, match="TYPE before HELP"):
            parse_openmetrics(text)

    def test_duplicate_declarations_rejected(self):
        base = "# HELP repro_x Gauge.\n# TYPE repro_x gauge\n"
        with pytest.raises(ValidationError, match="duplicate HELP"):
            parse_openmetrics(base + "# HELP repro_x Again.\n# EOF\n")
        with pytest.raises(ValidationError, match="duplicate TYPE"):
            parse_openmetrics(base + "# TYPE repro_x gauge\n# EOF\n")
        with pytest.raises(ValidationError, match="duplicate sample"):
            parse_openmetrics(base + "repro_x 1\nrepro_x 1\n# EOF\n")

    def test_malformed_labels_rejected(self):
        base = "# HELP repro_x Gauge.\n# TYPE repro_x gauge\n"
        with pytest.raises(ValidationError, match="malformed label"):
            parse_openmetrics(base + "repro_x{quantile=0.5} 1\n# EOF\n")


class TestEndToEnd:
    def test_live_session_round_trip(self):
        # Values recorded through the live registry survive export →
        # OpenMetrics → parse unchanged.
        with capture(clock=ManualClock()) as state:
            record_counter("model.queries", 3)
            record_gauge("cache.hit_rate", 0.75)
            for value in (0.1, 0.2, 0.3):
                record_histogram("model.query_latency_s", value)
            payload = collect_payload(state)
        families = parse_openmetrics(render_openmetrics(payload))
        assert families["repro_model_queries_total"]["samples"][
            "repro_model_queries_total"] == 3.0
        assert families["repro_cache_hit_rate"]["samples"][
            "repro_cache_hit_rate"] == 0.75
        samples = families["repro_model_query_latency_s"]["samples"]
        hist = payload["histograms"]["model.query_latency_s"]
        assert samples["repro_model_query_latency_s_count"] == 3.0
        assert samples["repro_model_query_latency_s_sum"] == \
            pytest.approx(hist["total"])
        assert samples[
            'repro_model_query_latency_s{quantile="0.95"}'] == hist["p95"]

"""Closed-form membership for new points (paper Eq. 9)."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.fuzzy.cmeans import FuzzyCMeans
from repro.fuzzy.membership import membership_matrix


@pytest.fixture
def centers():
    return np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])


class TestMembershipMatrix:
    def test_rows_sum_to_one(self, centers, rng):
        pts = rng.normal(size=(20, 2)) * 5
        u = membership_matrix(pts, centers)
        np.testing.assert_allclose(u.sum(axis=1), 1.0, atol=1e-12)

    def test_closer_center_gets_higher_membership(self, centers):
        u = membership_matrix(np.array([[1.0, 0.0]]), centers)
        assert u[0, 0] > u[0, 1] and u[0, 0] > u[0, 2]

    def test_point_on_center_is_crisp(self, centers):
        u = membership_matrix(np.array([[10.0, 0.0]]), centers)
        np.testing.assert_allclose(u[0], [0.0, 1.0, 0.0], atol=1e-12)

    def test_equidistant_point_uniform(self):
        centers = np.array([[-1.0, 0.0], [1.0, 0.0]])
        u = membership_matrix(np.array([[0.0, 5.0]]), centers)
        np.testing.assert_allclose(u[0], [0.5, 0.5], atol=1e-12)

    def test_matches_eq9_formula(self, centers, rng):
        """Direct check against the paper's Eq. 9 with m = 2."""
        q = rng.normal(size=2) * 4
        d = np.linalg.norm(centers - q, axis=1)
        expected = np.array([
            1.0 / np.sum((d[i] / d) ** 2) for i in range(len(centers))
        ])
        u = membership_matrix(q[None, :], centers, m=2.0)
        np.testing.assert_allclose(u[0], expected, atol=1e-12)

    def test_consistent_with_fcm_internal_memberships(self, rng):
        """Eq. 9 on the training points reproduces the FCM's own U."""
        x = np.vstack([rng.normal(0, 0.3, (30, 2)), rng.normal(5, 0.3, (30, 2))])
        result = FuzzyCMeans(n_clusters=2, m=2.0).fit(x, seed=0)
        u = membership_matrix(x, result.centers, m=2.0)
        np.testing.assert_allclose(u, result.membership, atol=1e-6)

    def test_m_changes_sharpness(self, centers):
        pts = np.array([[2.0, 1.0]])
        sharp = membership_matrix(pts, centers, m=1.5)
        soft = membership_matrix(pts, centers, m=4.0)
        assert sharp.max() > soft.max()

    def test_dimension_mismatch(self, centers, rng):
        with pytest.raises(ClusteringError, match="dims"):
            membership_matrix(rng.normal(size=(3, 5)), centers)

    def test_invalid_m(self, centers):
        with pytest.raises(Exception):
            membership_matrix(np.zeros((1, 2)), centers, m=1.0)

    def test_far_point_memberships_approach_uniform(self, centers):
        """Very distant queries see all centers as equally (un)similar."""
        u = membership_matrix(np.array([[1e6, 1e6]]), centers)
        assert u.max() - u.min() < 0.01

"""Unsupervised cluster-count selection."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.fuzzy.selection import select_cluster_count


def blobs(rng, n_blobs, per=40, dim=3, spacing=8.0, spread=0.4):
    centers = rng.normal(size=(n_blobs, dim)) * spacing
    return np.vstack([
        c + rng.normal(0, spread, size=(per, dim)) for c in centers
    ])


class TestSelectClusterCount:
    def test_recovers_true_blob_count(self, rng):
        x = blobs(rng, n_blobs=4)
        best, scores = select_cluster_count(
            x, candidates=(2, 3, 4, 5, 6, 8), n_init=3, seed=0
        )
        assert best == 4

    def test_score_table_covers_candidates(self, rng):
        x = blobs(rng, n_blobs=3)
        _, scores = select_cluster_count(x, candidates=(2, 3, 4), seed=0)
        assert [s.n_clusters for s in scores] == [2, 3, 4]
        for s in scores:
            assert s.xie_beni >= 0
            assert 1.0 / s.n_clusters <= s.partition_coefficient <= 1.0 + 1e-9
            assert s.objective >= 0

    def test_best_has_minimal_xie_beni(self, rng):
        x = blobs(rng, n_blobs=3)
        best, scores = select_cluster_count(x, candidates=(2, 3, 4, 6), seed=0)
        best_score = min(scores, key=lambda s: s.xie_beni)
        assert best == best_score.n_clusters

    def test_oversized_candidates_skipped(self, rng):
        x = rng.normal(size=(10, 2))
        best, scores = select_cluster_count(x, candidates=(2, 50), seed=0)
        assert [s.n_clusters for s in scores] == [2]
        assert best == 2

    def test_no_usable_candidates(self, rng):
        with pytest.raises(ClusteringError):
            select_cluster_count(rng.normal(size=(3, 2)), candidates=(10,))

    def test_deterministic(self, rng):
        x = blobs(rng, n_blobs=3)
        a = select_cluster_count(x, candidates=(2, 3, 4), seed=7)
        b = select_cluster_count(x, candidates=(2, 3, 4), seed=7)
        assert a[0] == b[0]
        assert [s.xie_beni for s in a[1]] == [s.xie_beni for s in b[1]]

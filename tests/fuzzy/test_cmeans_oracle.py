"""Oracle tests: the vectorized FCM kernels against naive Eq. 4 loops.

The production kernels in :mod:`repro.fuzzy.cmeans` are blockwise and
whole-matrix vectorized for speed.  Here every kernel is re-implemented as
the slowest possible literal transcription of Bezdek's update rules (nested
Python loops, no numpy tricks) and the two are compared at ``rtol=1e-10``
across cluster counts and fuzzifiers, including a full fit run step-by-step.

The chunked distance path is additionally pinned as **bit-identical** to the
one-shot formula by shrinking the block size, since cache keys and the
determinism harness depend on it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fuzzy import cmeans
from repro.fuzzy.cmeans import (
    FuzzyCMeans,
    membership_from_distances,
    squared_distances,
)
from repro.utils.rng import as_generator

RTOL = 1e-10


def naive_squared_distances(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    n, d = x.shape
    c = centers.shape[0]
    out = np.empty((n, c))
    for k in range(n):
        for i in range(c):
            total = 0.0
            for j in range(d):
                diff = x[k, j] - centers[i, j]
                total += diff * diff
            out[k, i] = total
    return out


def naive_membership(d2: np.ndarray, m: float) -> np.ndarray:
    # u_ik = 1 / Σ_j (d_ik / d_jk)^(2/(m-1)), with equal split over centers
    # the point coincides with.
    n, c = d2.shape
    u = np.empty((n, c))
    for k in range(n):
        zeros = [i for i in range(c) if d2[k, i] <= cmeans._EPS]
        if zeros:
            for i in range(c):
                u[k, i] = 1.0 / len(zeros) if i in zeros else 0.0
            continue
        for i in range(c):
            total = 0.0
            for j in range(c):
                total += (d2[k, i] / d2[k, j]) ** (1.0 / (m - 1.0))
            u[k, i] = 1.0 / total
    return u


def naive_centers(x: np.ndarray, u: np.ndarray, m: float) -> np.ndarray:
    n, d = x.shape
    c = u.shape[1]
    centers = np.empty((c, d))
    for i in range(c):
        denom = 0.0
        for k in range(n):
            denom += u[k, i] ** m
        if denom < cmeans._EPS:
            denom = 1.0
        for j in range(d):
            num = 0.0
            for k in range(n):
                num += (u[k, i] ** m) * x[k, j]
            centers[i, j] = num / denom
    return centers


def naive_objective(x, centers, u, m) -> float:
    total = 0.0
    d2 = naive_squared_distances(x, centers)
    for k in range(x.shape[0]):
        for i in range(centers.shape[0]):
            total += (u[k, i] ** m) * d2[k, i]
    return total


@pytest.fixture
def points(rng):
    return rng.normal(size=(60, 3))


@pytest.mark.parametrize("c", [2, 3, 5, 8])
def test_squared_distances_matches_naive(points, rng, c):
    centers = rng.normal(size=(c, points.shape[1]))
    np.testing.assert_allclose(
        squared_distances(points, centers),
        naive_squared_distances(points, centers),
        rtol=RTOL,
    )


@pytest.mark.parametrize("block", [1, 7, 59, 60, 61])
def test_chunked_distances_bit_identical_to_one_shot(points, rng, block,
                                                     monkeypatch):
    centers = rng.normal(size=(4, points.shape[1]))
    one_shot = squared_distances(points, centers)  # n << default block
    # Shrink the block bound so n > block forces the chunked loop.
    monkeypatch.setattr(cmeans, "_DISTANCE_BLOCK_ELEMS",
                        block * centers.shape[0] * centers.shape[1])
    chunked = squared_distances(points, centers)
    assert chunked.tobytes() == one_shot.tobytes()


@pytest.mark.parametrize("m", [1.5, 2.0, 3.0])
@pytest.mark.parametrize("c", [2, 4, 8])
def test_membership_matches_naive(points, rng, c, m):
    centers = rng.normal(size=(c, points.shape[1]))
    d2 = squared_distances(points, centers)
    u = membership_from_distances(d2, m)
    np.testing.assert_allclose(u, naive_membership(d2, m), rtol=RTOL)
    np.testing.assert_allclose(u.sum(axis=1), 1.0, rtol=RTOL)


@pytest.mark.parametrize("m", [1.5, 2.0])
def test_membership_degenerate_rows_match_naive(points, rng, m):
    centers = rng.normal(size=(4, points.shape[1]))
    # Plant points exactly on centers: one on a single center, one on two.
    x = points.copy()
    x[0] = centers[1]
    x[1] = centers[2]
    centers[3] = centers[2]  # x[1] now coincides with two centers
    d2 = squared_distances(x, centers)
    np.testing.assert_allclose(
        membership_from_distances(d2, m), naive_membership(d2, m), rtol=RTOL
    )


@pytest.mark.parametrize("m", [1.5, 2.0, 3.0])
def test_centers_and_objective_match_naive(points, rng, m):
    c = 5
    centers = rng.normal(size=(c, points.shape[1]))
    u = membership_from_distances(squared_distances(points, centers), m)
    estimator = FuzzyCMeans(n_clusters=c, m=m)
    np.testing.assert_allclose(
        estimator._centers(points, u), naive_centers(points, u, m), rtol=RTOL
    )
    np.testing.assert_allclose(
        estimator._objective(points, centers, u),
        naive_objective(points, centers, u, m),
        rtol=RTOL,
    )


@pytest.mark.parametrize("m", [1.5, 2.0])
@pytest.mark.parametrize("c", [2, 4])
def test_full_fit_matches_naive_iteration(points, c, m):
    """Replay the whole alternating optimization with the naive kernels."""
    max_iter, tol, seed = 25, 1e-9, 123
    result = FuzzyCMeans(n_clusters=c, m=m, max_iter=max_iter, tol=tol).fit(
        points, seed=seed
    )

    # Same init as FuzzyCMeans._fit_once: centers on distinct random points.
    rng = as_generator(seed)
    centers = points[rng.choice(points.shape[0], size=c, replace=False)].copy()
    u = naive_membership(naive_squared_distances(points, centers), m)
    history = []
    for _ in range(1, max_iter + 1):
        centers = naive_centers(points, u, m)
        u = naive_membership(naive_squared_distances(points, centers), m)
        history.append(naive_objective(points, centers, u, m))
        if len(history) >= 2 and abs(history[-2] - history[-1]) <= tol:
            break

    assert result.n_iter == len(history)
    np.testing.assert_allclose(result.centers, centers, rtol=1e-8)
    np.testing.assert_allclose(result.membership, u, rtol=1e-8)
    np.testing.assert_allclose(result.objective_history, history, rtol=1e-8)

"""Fuzzy c-means (paper Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClusteringError
from repro.fuzzy.cmeans import FuzzyCMeans


def blobs(rng, centers, n_per=40, spread=0.3):
    centers = np.asarray(centers, dtype=float)
    return np.vstack([
        c + rng.normal(0, spread, size=(n_per, centers.shape[1])) for c in centers
    ])


@pytest.fixture
def three_blobs(rng):
    return blobs(rng, [[0, 0], [5, 0], [0, 5]])


class TestFit:
    def test_finds_blob_centers(self, three_blobs):
        result = FuzzyCMeans(n_clusters=3, n_init=3).fit(three_blobs, seed=0)
        found = sorted(result.centers.round(0).tolist())
        assert sorted([[0.0, 0.0], [0.0, 5.0], [5.0, 0.0]]) == found

    def test_membership_rows_sum_to_one(self, three_blobs):
        result = FuzzyCMeans(n_clusters=3).fit(three_blobs, seed=0)
        np.testing.assert_allclose(result.membership.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(result.membership >= 0)
        assert np.all(result.membership <= 1)

    def test_objective_monotone_decreasing(self, three_blobs):
        result = FuzzyCMeans(n_clusters=3).fit(three_blobs, seed=0)
        diffs = np.diff(result.objective_history)
        assert np.all(diffs <= 1e-8)

    def test_converges_on_easy_data(self, three_blobs):
        result = FuzzyCMeans(n_clusters=3).fit(three_blobs, seed=0)
        assert result.converged
        assert result.n_iter < 200

    def test_result_exposes_final_objective(self, three_blobs):
        result = FuzzyCMeans(n_clusters=3).fit(three_blobs, seed=0)
        assert result.objective == result.objective_history[-1]
        assert isinstance(result.objective, float)

    def test_convergence_reason_matches_flag(self, three_blobs):
        tol_result = FuzzyCMeans(n_clusters=3).fit(three_blobs, seed=0)
        assert tol_result.converged
        assert tol_result.convergence_reason == "tol"
        capped = FuzzyCMeans(n_clusters=3, max_iter=2, tol=0.0).fit(
            three_blobs, seed=0
        )
        assert not capped.converged
        assert capped.convergence_reason == "max_iter"
        assert capped.n_iter == 2

    def test_deterministic_given_seed(self, three_blobs):
        a = FuzzyCMeans(n_clusters=3).fit(three_blobs, seed=1)
        b = FuzzyCMeans(n_clusters=3).fit(three_blobs, seed=1)
        np.testing.assert_array_equal(a.centers, b.centers)
        np.testing.assert_array_equal(a.membership, b.membership)

    def test_blob_points_assigned_to_own_center(self, rng):
        x = blobs(rng, [[0, 0], [8, 8]], n_per=30)
        result = FuzzyCMeans(n_clusters=2).fit(x, seed=0)
        labels = result.hard_labels()
        # All points of each blob share one label.
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[-1]

    def test_n_init_picks_best_objective(self, rng):
        x = blobs(rng, [[0, 0], [3, 0], [0, 3], [3, 3]], n_per=25)
        single = FuzzyCMeans(n_clusters=4, n_init=1).fit(x, seed=2)
        multi = FuzzyCMeans(n_clusters=4, n_init=8).fit(x, seed=2)
        assert multi.objective_history[-1] <= single.objective_history[-1] + 1e-9


class TestFuzzifier:
    def test_high_m_gives_fuzzier_partition(self, three_blobs):
        crisp = FuzzyCMeans(n_clusters=3, m=1.2).fit(three_blobs, seed=0)
        fuzzy = FuzzyCMeans(n_clusters=3, m=4.0).fit(three_blobs, seed=0)
        # Mean max-membership drops as m grows.
        assert fuzzy.membership.max(axis=1).mean() < crisp.membership.max(axis=1).mean()

    def test_paper_default_m2(self):
        assert FuzzyCMeans(n_clusters=3).m == 2.0

    def test_m_must_exceed_one(self):
        with pytest.raises(Exception):
            FuzzyCMeans(n_clusters=3, m=1.0)


class TestEdgeCases:
    def test_point_on_center_gets_full_membership(self):
        x = np.array([[0.0, 0.0], [0.0, 0.0], [10.0, 10.0], [10.0, 10.0],
                      [0.0, 0.0], [10.0, 10.0]])
        result = FuzzyCMeans(n_clusters=2).fit(x, seed=0)
        assert np.allclose(result.membership.max(axis=1), 1.0, atol=1e-6)

    def test_fewer_points_than_clusters(self, rng):
        with pytest.raises(ClusteringError, match="cannot form"):
            FuzzyCMeans(n_clusters=10).fit(rng.normal(size=(4, 2)), seed=0)

    def test_needs_at_least_two_clusters(self):
        with pytest.raises(Exception):
            FuzzyCMeans(n_clusters=1)

    def test_empty_input(self):
        with pytest.raises(Exception):
            FuzzyCMeans(n_clusters=2).fit(np.zeros((0, 3)), seed=0)

    def test_identical_points(self):
        x = np.ones((20, 3))
        result = FuzzyCMeans(n_clusters=2).fit(x, seed=0)
        assert np.all(np.isfinite(result.centers))
        np.testing.assert_allclose(result.membership.sum(axis=1), 1.0)

    @given(
        n=st.integers(10, 60),
        c=st.integers(2, 5),
        d=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_membership_contract_on_random_data(self, n, c, d, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, d))
        result = FuzzyCMeans(n_clusters=c, max_iter=50).fit(x, seed=seed)
        assert result.membership.shape == (n, c)
        assert result.centers.shape == (c, d)
        np.testing.assert_allclose(result.membership.sum(axis=1), 1.0, atol=1e-8)
        assert np.all(result.membership >= -1e-12)
        # Centers live inside the data's bounding box (convex combinations).
        assert np.all(result.centers >= x.min(axis=0) - 1e-6)
        assert np.all(result.centers <= x.max(axis=0) + 1e-6)

"""Hard k-means baseline and cluster-validity indices."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.fuzzy.cmeans import FuzzyCMeans
from repro.fuzzy.kmeans import KMeans
from repro.fuzzy.validity import (
    partition_coefficient,
    partition_entropy,
    xie_beni_index,
)


def blobs(rng, centers, n_per=40, spread=0.3):
    centers = np.asarray(centers, dtype=float)
    return np.vstack([
        c + rng.normal(0, spread, size=(n_per, centers.shape[1])) for c in centers
    ])


class TestKMeans:
    def test_finds_blob_centers(self, rng):
        x = blobs(rng, [[0, 0], [6, 0], [0, 6]])
        result = KMeans(n_clusters=3, n_init=3).fit(x, seed=0)
        found = sorted(result.centers.round(0).tolist())
        assert found == sorted([[0.0, 0.0], [0.0, 6.0], [6.0, 0.0]])

    def test_membership_is_one_hot(self, rng):
        x = blobs(rng, [[0, 0], [6, 0]])
        result = KMeans(n_clusters=2).fit(x, seed=0)
        assert set(np.unique(result.membership)) == {0.0, 1.0}
        np.testing.assert_array_equal(result.membership.sum(axis=1), 1.0)

    def test_inertia_decreases_with_more_clusters(self, rng):
        x = blobs(rng, [[0, 0], [4, 0], [0, 4], [4, 4]], n_per=25)
        i2 = KMeans(n_clusters=2, n_init=3).fit(x, seed=0).inertia
        i4 = KMeans(n_clusters=4, n_init=3).fit(x, seed=0).inertia
        assert i4 < i2

    def test_deterministic(self, rng):
        x = blobs(rng, [[0, 0], [6, 6]])
        a = KMeans(n_clusters=2).fit(x, seed=3)
        b = KMeans(n_clusters=2).fit(x, seed=3)
        np.testing.assert_array_equal(a.centers, b.centers)

    def test_no_empty_clusters_on_duplicate_data(self):
        x = np.vstack([np.zeros((30, 2)), np.ones((2, 2)) * 9])
        result = KMeans(n_clusters=2).fit(x, seed=0)
        counts = result.membership.sum(axis=0)
        assert np.all(counts > 0)

    def test_fewer_points_than_clusters(self, rng):
        with pytest.raises(ClusteringError):
            KMeans(n_clusters=5).fit(rng.normal(size=(3, 2)), seed=0)

    def test_hard_labels(self, rng):
        x = blobs(rng, [[0, 0], [6, 6]], n_per=10)
        result = KMeans(n_clusters=2).fit(x, seed=0)
        labels = result.hard_labels()
        assert labels.shape == (20,)
        assert set(labels) == {0, 1}


class TestValidityIndices:
    @pytest.fixture
    def fitted(self, rng):
        x = blobs(rng, [[0, 0], [6, 0], [0, 6]])
        result = FuzzyCMeans(n_clusters=3).fit(x, seed=0)
        return x, result

    def test_pc_bounds(self, fitted):
        _, result = fitted
        pc = partition_coefficient(result.membership)
        assert 1.0 / 3.0 <= pc <= 1.0

    def test_pc_of_crisp_partition_is_one(self):
        u = np.eye(3)[np.array([0, 1, 2, 0, 1])]
        assert partition_coefficient(u) == pytest.approx(1.0)

    def test_pe_of_crisp_partition_is_zero(self):
        u = np.eye(2)[np.array([0, 1, 0])]
        assert partition_entropy(u) == pytest.approx(0.0)

    def test_pe_of_uniform_partition_is_log_c(self):
        u = np.full((10, 4), 0.25)
        assert partition_entropy(u) == pytest.approx(np.log(4))

    def test_well_separated_data_scores_well(self, fitted):
        x, result = fitted
        assert partition_coefficient(result.membership) > 0.85
        assert xie_beni_index(x, result.centers, result.membership) < 0.2

    def test_xb_worse_for_overclustered_data(self, rng):
        """Splitting one real blob into two clusters hurts separation."""
        x = blobs(rng, [[0, 0], [8, 8]], n_per=50)
        good = FuzzyCMeans(n_clusters=2).fit(x, seed=0)
        bad = FuzzyCMeans(n_clusters=6, n_init=3).fit(x, seed=0)
        xb_good = xie_beni_index(x, good.centers, good.membership)
        xb_bad = xie_beni_index(x, bad.centers, bad.membership)
        assert xb_good < xb_bad

    def test_membership_validation(self):
        with pytest.raises(ClusteringError):
            partition_coefficient(np.array([[0.5, 0.6]]))  # rows must sum to 1
        with pytest.raises(ClusteringError):
            partition_entropy(np.array([[1.5, -0.5]]))

    def test_xb_shape_validation(self, rng):
        with pytest.raises(ClusteringError):
            xie_beni_index(rng.normal(size=(5, 2)), rng.normal(size=(2, 2)),
                           np.full((4, 2), 0.5))

    def test_xb_needs_two_centers(self, rng):
        with pytest.raises(ClusteringError):
            xie_beni_index(rng.normal(size=(5, 2)), rng.normal(size=(1, 2)),
                           np.ones((5, 1)))

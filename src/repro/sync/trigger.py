"""Trigger-module simulation.

The paper synchronizes both acquisition systems with a Delsys trigger module
on the workstation's parallel port (Figure 5): one rising edge starts the
Vicon and the Myomonitor simultaneously.  Hardware fan-out is never perfect —
each device sees the edge after its own fixed latency plus a little jitter.
:class:`TriggerModule` models that, and the acquisition session converts the
resulting start-time skew into sample offsets between the two streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence

from repro.errors import AcquisitionError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range

__all__ = ["TriggerEvent", "TriggerModule"]


@dataclass(frozen=True)
class TriggerEvent:
    """The outcome of one trigger firing.

    Attributes
    ----------
    start_offsets_s:
        Per-device acquisition start time relative to the commanded trigger
        instant, in seconds (always >= 0: devices cannot start early).
    """

    start_offsets_s: Dict[str, float]

    def offset(self, device: str) -> float:
        """Start offset of ``device`` in seconds."""
        try:
            return self.start_offsets_s[device]
        except KeyError:
            raise AcquisitionError(
                f"device {device!r} was not triggered; "
                f"have {sorted(self.start_offsets_s)}"
            ) from None

    def skew_s(self, device_a: str, device_b: str) -> float:
        """Start-time skew ``offset(a) - offset(b)`` in seconds."""
        return self.offset(device_a) - self.offset(device_b)


@dataclass
class TriggerModule:
    """Fan-out trigger with per-device latency and Gaussian jitter.

    Attributes
    ----------
    latencies_s:
        Fixed per-device trigger-to-start latency, seconds.
    jitter_s:
        Std of per-firing Gaussian jitter added to every device's latency.
        The default 0.5 ms is well under one frame at either rate, matching
        a hardware trigger's behaviour.
    """

    latencies_s: Mapping[str, float] = field(
        default_factory=lambda: {"vicon": 0.002, "myomonitor": 0.001}
    )
    jitter_s: float = 0.0005

    def __post_init__(self) -> None:
        if not self.latencies_s:
            raise AcquisitionError("trigger module needs at least one device")
        for device, latency in self.latencies_s.items():
            check_in_range(latency, name=f"latency[{device!r}]", low=0.0, high=1.0)
        check_in_range(self.jitter_s, name="jitter_s", low=0.0, high=0.1)

    @property
    def devices(self) -> Sequence[str]:
        """Devices wired to the module."""
        return list(self.latencies_s)

    def fire(self, seed: SeedLike = None) -> TriggerEvent:
        """Fire the trigger once and return the realized start offsets."""
        rng = as_generator(seed)
        offsets = {}
        for device, latency in self.latencies_s.items():
            jitter = rng.normal(0.0, self.jitter_s) if self.jitter_s > 0 else 0.0
            offsets[device] = max(0.0, latency + jitter)
        return TriggerEvent(start_offsets_s=offsets)

"""Synchronized acquisition of motion capture and EMG.

Replaces the paper's parallel-port trigger circuit (Figure 5): a MATLAB
controller fired a Delsys "Trigger Module" so that the Vicon and Myomonitor
systems started acquiring at the same instant.  :class:`TriggerModule` models
the fan-out with per-device latency and jitter, and
:class:`AcquisitionSession` runs one synchronized trial end to end.
"""

from repro.sync.trigger import TriggerEvent, TriggerModule
from repro.sync.session import AcquisitionSession, SynchronizedTrial

__all__ = [
    "TriggerEvent",
    "TriggerModule",
    "AcquisitionSession",
    "SynchronizedTrial",
]

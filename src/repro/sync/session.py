"""One synchronized capture trial: trigger → Vicon + Myomonitor → aligned data.

:class:`AcquisitionSession` wires the simulated devices together the way the
paper's laboratory wires the real ones (Figure 5): a trigger starts both, the
Vicon captures the animated skeleton at 120 Hz, the Myomonitor records and
conditions EMG to the same rate, and the session aligns both streams onto a
shared 120 Hz time base, trimming the residual trigger skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.emg.channels import ElectrodeMontage
from repro.emg.myomonitor import Myomonitor
from repro.emg.recording import EMGRecording
from repro.errors import AcquisitionError
from repro.mocap.trajectory import MotionCaptureData
from repro.mocap.vicon import ViconSystem
from repro.motions.base import MotionPlan
from repro.skeleton.model import Skeleton
from repro.sync.trigger import TriggerEvent, TriggerModule
from repro.utils.rng import SeedLike, as_generator, spawn_generators

__all__ = ["SynchronizedTrial", "AcquisitionSession"]


@dataclass(frozen=True)
class SynchronizedTrial:
    """The output of one synchronized acquisition.

    Attributes
    ----------
    mocap:
        Motion matrix at the session frame rate (global coordinates).
    emg:
        Conditioned (rectified, down-sampled) EMG at the same rate and with
        the same number of frames as ``mocap``.
    trigger:
        The realized trigger event (for auditing synchronization quality).
    """

    mocap: MotionCaptureData
    emg: EMGRecording
    trigger: TriggerEvent

    def __post_init__(self) -> None:
        if self.mocap.n_frames != self.emg.n_samples:
            raise AcquisitionError(
                f"streams misaligned: mocap {self.mocap.n_frames} frames, "
                f"EMG {self.emg.n_samples} samples"
            )
        if self.mocap.fps != self.emg.fs:
            raise AcquisitionError(
                f"streams on different rates: {self.mocap.fps} vs {self.emg.fs}"
            )

    @property
    def n_frames(self) -> int:
        """Aligned frame count."""
        return self.mocap.n_frames


@dataclass
class AcquisitionSession:
    """The full simulated laboratory.

    Attributes
    ----------
    vicon:
        Optical capture simulator (120 Hz).
    myomonitor:
        EMG device simulator (1000 Hz → 120 Hz conditioned output).
    trigger:
        Trigger fan-out; must know devices ``"vicon"`` and ``"myomonitor"``.
    """

    vicon: ViconSystem = field(default_factory=ViconSystem)
    myomonitor: Myomonitor = field(default_factory=Myomonitor)
    trigger: TriggerModule = field(default_factory=TriggerModule)

    def __post_init__(self) -> None:
        if self.vicon.fps != self.myomonitor.output_fs:
            raise AcquisitionError(
                f"Vicon rate {self.vicon.fps} != conditioned EMG rate "
                f"{self.myomonitor.output_fs}; the paper aligns both at 120 Hz"
            )
        for device in ("vicon", "myomonitor"):
            if device not in self.trigger.latencies_s:
                raise AcquisitionError(f"trigger module is not wired to {device!r}")

    def record_trial(
        self,
        skeleton: Skeleton,
        plan: MotionPlan,
        segments: Optional[Sequence[str]] = None,
        montage: Optional[ElectrodeMontage] = None,
        seed: SeedLike = None,
    ) -> SynchronizedTrial:
        """Run one synchronized trial of a planned motion.

        Parameters
        ----------
        skeleton:
            The participant's body model.
        plan:
            The motion performance (animation + activation envelopes); its
            frame rate must equal the Vicon rate.
        segments:
            Mocap segments to record; defaults to all.
        montage:
            Electrode montage; every montage channel must have an activation
            envelope in the plan.
        seed:
            Root seed for trigger jitter, marker noise and EMG synthesis.
        """
        if montage is None:
            raise AcquisitionError("an electrode montage is required")
        if plan.fps != self.vicon.fps:
            raise AcquisitionError(
                f"plan frame rate {plan.fps} != Vicon rate {self.vicon.fps}"
            )
        rng = as_generator(seed)
        trig_rng, vicon_rng, emg_rng = spawn_generators(rng, 3)

        event = self.trigger.fire(seed=trig_rng)
        mocap = self.vicon.capture(skeleton, plan.animation, segments, seed=vicon_rng)
        emg = self.myomonitor.acquire_conditioned(
            plan.activations,
            plan.fps,
            montage,
            duration_s=plan.duration_s,
            n_out=mocap.n_frames,
            seed=emg_rng,
        )

        # Residual trigger skew, expressed in whole 120 Hz frames.  With the
        # default sub-millisecond jitter this is almost always zero, but the
        # alignment must be robust to slower devices.
        skew_s = event.skew_s("vicon", "myomonitor")
        skew_frames = int(round(abs(skew_s) * self.vicon.fps))
        if skew_frames > 0:
            n = mocap.n_frames - skew_frames
            if n < 2:
                raise AcquisitionError(
                    f"trigger skew {skew_s:.4f}s leaves fewer than 2 aligned frames"
                )
            if skew_s > 0:
                # Vicon started later: its frame 0 matches a later EMG sample.
                mocap = mocap.slice_frames(0, n)
                emg = emg.slice_samples(skew_frames, skew_frames + n)
            else:
                mocap = mocap.slice_frames(skew_frames, skew_frames + n)
                emg = emg.slice_samples(0, n)
        return SynchronizedTrial(mocap=mocap, emg=emg, trigger=event)

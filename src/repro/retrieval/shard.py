"""Tenant/region sharding of the signature indexes (ROADMAP item 2).

A :class:`ShardRouter` deterministically maps every record to one of
``n_shards`` shards — by a stable BLAKE2b hash of its tenant key
(``mode="tenant"``), or by its nearest cluster-region center
(``mode="region"``, k-means over the indexed vectors, mirroring how
iDistance picks its reference points).  :class:`ShardedSignatureIndex`
builds one per-shard index, fans a batched k-NN query out to the
relevant shards and merges the per-shard candidates into the final
top-k.

Exactness is non-negotiable: the merge recomputes every candidate
distance with the *same* row-wise ``einsum`` arithmetic as
:class:`~repro.retrieval.linear.LinearScanIndex` and breaks ties by
record id, so the sharded answer is **bit-identical** to a global linear
scan over the id-sorted signature matrix — for every shard count, every
``k``, and every tenant filter.  The differential harness in
``tests/retrieval/test_store_equivalence.py`` asserts exactly that.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NotFittedError, RetrievalError
from repro.fuzzy.kmeans import KMeans
from repro.obs.config import (
    is_enabled,
    record_counter,
    record_event,
    span,
)
from repro.retrieval.idistance import IDistanceIndex
from repro.retrieval.knn import NearestNeighborIndex
from repro.retrieval.store import SignatureStore, StoreContents
from repro.utils.rng import SeedLike
from repro.utils.validation import check_array, check_positive_int

__all__ = ["ShardRouter", "ShardedSignatureIndex", "tenant_shard"]

_ROUTER_MODES = ("tenant", "region")
_BACKENDS = ("linear", "idistance")


def tenant_shard(tenant: str, n_shards: int) -> int:
    """Stable shard assignment for a tenant key.

    Uses BLAKE2b (not Python's salted ``hash``) so the same key lands on
    the same shard in every process, across runs and machines.
    """
    n_shards = check_positive_int(n_shards, name="n_shards")
    digest = hashlib.blake2b(tenant.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


class ShardRouter:
    """Deterministic record→shard assignment.

    Parameters
    ----------
    n_shards:
        Number of shards.
    mode:
        ``"tenant"`` — stable hash of the tenant key; every tenant's
        records live on one shard.  ``"region"`` — nearest of
        ``n_shards`` k-means cluster-region centers (requires
        :meth:`fit`); spatially close signatures share a shard.
    seed:
        Seed for the region-center clustering.
    """

    def __init__(self, n_shards: int = 4, mode: str = "tenant",
                 seed: SeedLike = 0):
        self.n_shards = check_positive_int(n_shards, name="n_shards")
        if mode not in _ROUTER_MODES:
            raise RetrievalError(
                f"router mode must be one of {_ROUTER_MODES}, got {mode!r}"
            )
        self.mode = mode
        self.seed = seed
        self._centers: Optional[np.ndarray] = None

    def fit(self, vectors: np.ndarray) -> "ShardRouter":
        """Fit region centers (no-op in tenant mode)."""
        if self.mode == "tenant":
            return self
        x = check_array(vectors, name="vectors", ndim=2, allow_empty=False)
        n_regions = min(self.n_shards, x.shape[0])
        if n_regions >= 2:
            self._centers = KMeans(n_clusters=n_regions, n_init=1).fit(
                x, seed=self.seed
            ).centers
        else:
            self._centers = x.mean(axis=0, keepdims=True)
        return self

    @property
    def region_centers(self) -> Optional[np.ndarray]:
        """Fitted ``(n_regions, d)`` centers (``None`` in tenant mode)."""
        return self._centers

    def shard_of_tenant(self, tenant: str) -> int:
        """The shard owning ``tenant`` (tenant mode only)."""
        if self.mode != "tenant":
            raise RetrievalError(
                "shard_of_tenant is only defined for tenant-mode routers"
            )
        return tenant_shard(tenant, self.n_shards)

    def assign(self, tenants: Sequence[str],
               vectors: np.ndarray) -> np.ndarray:
        """Shard index per record."""
        x = check_array(vectors, name="vectors", ndim=2)
        if len(tenants) != x.shape[0]:
            raise RetrievalError(
                f"{x.shape[0]} vectors but {len(tenants)} tenants"
            )
        if self.mode == "tenant":
            return np.fromiter(
                (tenant_shard(t, self.n_shards) for t in tenants),
                dtype=np.int64, count=len(tenants),
            )
        if self._centers is None:
            raise NotFittedError("region-mode ShardRouter used before fit")
        diff = x[:, None, :] - self._centers[None, :, :]
        dist = np.sqrt(np.einsum("npd,npd->np", diff, diff))
        return np.argmin(dist, axis=1).astype(np.int64)


class _Shard:
    """One shard's slice of the database, id-sorted, plus its index."""

    def __init__(self, ids: np.ndarray, vectors: np.ndarray,
                 tenant_codes: np.ndarray, rows: np.ndarray):
        self.ids = ids
        self.vectors = vectors
        self.tenant_codes = tenant_codes
        #: Row positions into the global id-sorted matrix.
        self.rows = rows
        self.index: Optional[IDistanceIndex] = None

    def __len__(self) -> int:
        return len(self.ids)


class ShardedSignatureIndex(NearestNeighborIndex):
    """Batched exact k-NN over tenant/region-sharded signatures.

    Parameters
    ----------
    n_shards:
        Number of shards the database is routed into.
    backend:
        Per-shard search backend: ``"linear"`` (vectorized scan) or
        ``"idistance"`` (per-shard :class:`IDistanceIndex`, pruning
        candidates before the exact merge).
    mode:
        Router mode (see :class:`ShardRouter`).
    n_partitions:
        Reference points per shard for the iDistance backend.
    seed:
        Seed for router region centers and iDistance partitioning.
    router:
        Pre-built router to reuse; overrides ``n_shards``/``mode``.
    """

    def __init__(
        self,
        n_shards: int = 4,
        backend: str = "linear",
        mode: str = "tenant",
        n_partitions: int = 8,
        seed: SeedLike = 0,
        router: Optional[ShardRouter] = None,
    ):
        if backend not in _BACKENDS:
            raise RetrievalError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        self.router = router if router is not None else ShardRouter(
            n_shards=n_shards, mode=mode, seed=seed
        )
        self.n_shards = self.router.n_shards
        self.backend = backend
        self.n_partitions = check_positive_int(n_partitions,
                                               name="n_partitions")
        self.seed = seed
        self._shards: Optional[Dict[int, _Shard]] = None
        self._ids: Optional[np.ndarray] = None
        self._vectors: Optional[np.ndarray] = None
        self._tenant_codes: Optional[np.ndarray] = None
        self._tenant_table: Optional[Tuple[str, ...]] = None
        #: Candidates merged by the last query batch.
        self.last_candidates = 0
        #: Shards probed by the last query batch.
        self.last_shards_probed = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def fit(self, vectors: np.ndarray) -> "ShardedSignatureIndex":
        """Index anonymous vectors (ids ``0..n-1``, one tenant)."""
        x = check_array(vectors, name="vectors", ndim=2, allow_empty=False)
        ids = np.arange(x.shape[0], dtype=np.uint64)
        return self.fit_arrays(ids, x, ["default"] * x.shape[0])

    def fit_store(self, store: SignatureStore,
                  tenant: Optional[str] = None) -> "ShardedSignatureIndex":
        """Build the per-shard indexes from a persisted store's segments."""
        contents = store.records(tenant=tenant)
        if len(contents) == 0:
            raise RetrievalError("cannot index an empty signature store")
        return self.fit_contents(contents)

    def fit_contents(self, contents: StoreContents) -> "ShardedSignatureIndex":
        """Build the per-shard indexes from loaded store contents."""
        return self.fit_arrays(contents.ids, contents.vectors,
                               list(contents.tenants))

    def fit_arrays(
        self,
        ids: np.ndarray,
        vectors: np.ndarray,
        tenants: Sequence[str],
    ) -> "ShardedSignatureIndex":
        """Index ``(ids, vectors, tenants)`` triples.

        Rows are canonicalized to ascending id order (the oracle order)
        before routing, so per-shard tie-breaking by row position equals
        tie-breaking by record id.
        """
        x = check_array(vectors, name="vectors", ndim=2, allow_empty=False)
        id_arr = check_array(ids, name="ids", ndim=1).astype(np.uint64)
        if len(id_arr) != x.shape[0]:
            raise RetrievalError(
                f"{x.shape[0]} vectors but {len(id_arr)} ids"
            )
        if len(tenants) != x.shape[0]:
            raise RetrievalError(
                f"{x.shape[0]} vectors but {len(tenants)} tenants"
            )
        if len(np.unique(id_arr)) != len(id_arr):
            raise RetrievalError("record ids must be unique")
        order = np.argsort(id_arr, kind="stable")
        id_arr = id_arr[order]
        x = np.ascontiguousarray(x[order], dtype=np.float64)
        tenant_list = [tenants[i] for i in order]

        table = tuple(sorted(set(tenant_list)))
        code = {t: i for i, t in enumerate(table)}
        codes = np.fromiter((code[t] for t in tenant_list),
                            dtype=np.int64, count=len(tenant_list))

        with span("store.index_build", n_records=x.shape[0],
                  n_shards=self.n_shards, backend=self.backend):
            self.router.fit(x)
            assignment = self.router.assign(tenant_list, x)
            shards: Dict[int, _Shard] = {}
            for shard_id in np.unique(assignment):
                rows = np.flatnonzero(assignment == shard_id)
                shard = _Shard(
                    ids=id_arr[rows],
                    vectors=x[rows],
                    tenant_codes=codes[rows],
                    rows=rows,
                )
                if self.backend == "idistance" and len(shard) > 1:
                    shard.index = IDistanceIndex(
                        n_partitions=self.n_partitions, seed=self.seed
                    ).fit(shard.vectors)
                shards[int(shard_id)] = shard
        self._shards = shards
        self._ids = id_arr
        self._vectors = x
        self._tenant_codes = codes
        self._tenant_table = table
        return self

    @property
    def n_indexed(self) -> int:
        """Number of indexed records."""
        if self._ids is None:
            raise NotFittedError("ShardedSignatureIndex used before fit")
        return len(self._ids)

    @property
    def shard_sizes(self) -> Dict[int, int]:
        """Records per built (non-empty) shard."""
        if self._shards is None:
            raise NotFittedError("ShardedSignatureIndex used before fit")
        return {sid: len(shard) for sid, shard in sorted(self._shards.items())}

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def query(self, vector: np.ndarray, k: int,
              tenant: Optional[str] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Single-query convenience over :meth:`query_batch`."""
        vector = check_array(vector, name="vector", ndim=1)
        ids, dists = self.query_batch(vector[None, :], k, tenant=tenant)
        return ids[0], dists[0]

    def query_batch(
        self, queries: np.ndarray, k: int, tenant: Optional[str] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched k-NN fan-out: ``(n_queries, k)`` ids and distances.

        Each probed shard contributes its exact per-shard top-k (ranked
        by ``(distance, id)``); the union is re-ranked with distances
        recomputed in the oracle's own arithmetic, which makes the final
        answer bit-identical to a global
        :class:`~repro.retrieval.linear.LinearScanIndex` over the same
        (optionally tenant-filtered) records.
        """
        if self._shards is None or self._vectors is None or self._ids is None:
            raise NotFittedError("ShardedSignatureIndex used before fit")
        q = check_array(queries, name="queries", ndim=2, allow_empty=False)
        if q.shape[1] != self._vectors.shape[1]:
            raise RetrievalError(
                f"queries have {q.shape[1]} dims, index holds "
                f"{self._vectors.shape[1]}-dim vectors"
            )
        k = check_positive_int(k, name="k")
        tenant_code = self._resolve_tenant(tenant)
        n_eligible = self._eligible_count(tenant_code)
        if k > n_eligible:
            scope = "indexed vectors" if tenant is None else (
                f"vectors of tenant {tenant!r}"
            )
            raise RetrievalError(f"k={k} exceeds the {n_eligible} {scope}")

        with span("store.query_batch", n_queries=q.shape[0], k=k,
                  n_shards=self.n_shards) as sp:
            shard_ids = self._shards_to_probe(tenant, tenant_code)
            candidates = self._fan_out(q, k, shard_ids, tenant_code)
            out_ids, out_dists = self._merge(q, k, candidates)
            self.last_shards_probed = len(shard_ids)
            if is_enabled():
                record_counter("store.queries", q.shape[0])
                record_counter("store.shards_probed",
                               len(shard_ids) * q.shape[0])
                record_counter("store.candidates", self.last_candidates)
                record_event("store.query", backend=self.backend,
                             n_queries=int(q.shape[0]), k=k,
                             shards_probed=int(len(shard_ids)),
                             candidates=int(self.last_candidates))
                sp.set(candidates=self.last_candidates,
                       shards_probed=len(shard_ids))
        return out_ids, out_dists

    # -- helpers --------------------------------------------------------

    def _resolve_tenant(self, tenant: Optional[str]) -> Optional[int]:
        if tenant is None:
            return None
        assert self._tenant_table is not None
        try:
            return self._tenant_table.index(tenant)
        except ValueError:
            raise RetrievalError(
                f"tenant {tenant!r} has no records in this index"
            ) from None

    def _eligible_count(self, tenant_code: Optional[int]) -> int:
        assert self._tenant_codes is not None
        if tenant_code is None:
            return len(self._tenant_codes)
        return int((self._tenant_codes == tenant_code).sum())

    def _shards_to_probe(self, tenant: Optional[str],
                         tenant_code: Optional[int]) -> List[int]:
        assert self._shards is not None
        if (tenant is not None and self.router.mode == "tenant"):
            # A tenant's records all live on its hash shard.
            owner = self.router.shard_of_tenant(tenant)
            return [owner] if owner in self._shards else []
        if tenant_code is None:
            return sorted(self._shards)
        return [sid for sid, shard in sorted(self._shards.items())
                if bool((shard.tenant_codes == tenant_code).any())]

    def _fan_out(self, q: np.ndarray, k: int, shard_ids: List[int],
                 tenant_code: Optional[int]) -> List[List[np.ndarray]]:
        """Per-query lists of candidate global row positions."""
        assert self._shards is not None
        n_queries = q.shape[0]
        candidates: List[List[np.ndarray]] = [[] for _ in range(n_queries)]
        for sid in shard_ids:
            shard = self._shards[sid]
            if tenant_code is not None:
                mask = shard.tenant_codes == tenant_code
                if not mask.any():
                    continue
                rows = shard.rows[mask]
                vectors = shard.vectors[mask]
                self._scan_shard(q, k, rows, vectors, candidates)
            elif shard.index is not None:
                m = min(k, len(shard))
                for qi in range(n_queries):
                    local, _ = shard.index.query(q[qi], m)
                    candidates[qi].append(shard.rows[local])
            else:
                self._scan_shard(q, k, shard.rows, shard.vectors, candidates)
        return candidates

    #: Element budget for one ``(chunk, n, d)`` scan temporary (~32 MB
    #: at float64).  Chunking the query axis leaves every row's einsum
    #: contraction untouched, so results stay bit-identical.
    _SCAN_CHUNK_ELEMENTS = 4_000_000

    @classmethod
    def _scan_shard(cls, q: np.ndarray, k: int, rows: np.ndarray,
                    vectors: np.ndarray,
                    candidates: List[List[np.ndarray]]) -> None:
        """Vectorized per-shard scan: exact top-m rows for every query."""
        m = min(k, vectors.shape[0])
        per_query = max(1, vectors.shape[0] * vectors.shape[1])
        chunk = max(1, cls._SCAN_CHUNK_ELEMENTS // per_query)
        for start in range(0, q.shape[0], chunk):
            stop = min(start + chunk, q.shape[0])
            diff = vectors[None, :, :] - q[start:stop, None, :]
            dists = np.sqrt(np.einsum("qnd,qnd->qn", diff, diff))
            for qi in range(start, stop):
                # Exact per-shard ranking with the same (distance, id)
                # tie rule as the merge, so the union provably contains
                # the global top-k.
                top = np.lexsort((rows, dists[qi - start]))[:m]
                candidates[qi].append(rows[top])

    def _merge(self, q: np.ndarray, k: int,
               candidates: List[List[np.ndarray]],
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Re-rank the candidate union in the linear oracle's arithmetic."""
        assert self._vectors is not None and self._ids is not None
        out_ids = np.empty((q.shape[0], k), dtype=np.uint64)
        out_dists = np.empty((q.shape[0], k))
        self.last_candidates = 0
        for qi in range(q.shape[0]):
            rows = np.unique(np.concatenate(candidates[qi]))
            self.last_candidates += len(rows)
            diff = self._vectors[rows] - q[qi]
            dists = np.sqrt(np.einsum("nd,nd->n", diff, diff))
            top = np.lexsort((rows, dists))[:k]
            out_ids[qi] = self._ids[rows[top]]
            out_dists[qi] = dists[top]
        return out_ids, out_dists

"""Similarity search over motion signatures.

Section 4 of the paper: "We can use any searching technique like linear
search to get the nearest neighbors and to classify the query motion. ...
For fast searching, our extracted feature vectors can be applied to any
indexing technique to prune irrelevant motions."

* :mod:`repro.retrieval.linear` — exact linear-scan k-NN (what the paper
  uses);
* :mod:`repro.retrieval.idistance` — the iDistance index (Yu et al.,
  VLDB'01, the paper's reference [14]) as the "any indexing technique",
  verified to return identical neighbours while pruning most candidates;
* :mod:`repro.retrieval.bptree` — the B+-tree the original iDistance design
  stores its keys in;
* :mod:`repro.retrieval.dynamic` — a B+-tree-backed iDistance supporting
  online inserts and deletes;
* :mod:`repro.retrieval.knn` — k-NN voting and retrieval-quality helpers;
* :mod:`repro.retrieval.store` — the persistent, partitioned signature
  store (CRC-checked append-only segments + atomic JSON manifest);
* :mod:`repro.retrieval.shard` — tenant/cluster-region sharding with
  batched k-NN fan-out, bit-identical to a global linear scan.
"""

from repro.retrieval.linear import LinearScanIndex
from repro.retrieval.idistance import IDistanceIndex
from repro.retrieval.bptree import BPlusTree
from repro.retrieval.dynamic import DynamicIDistanceIndex
from repro.retrieval.knn import NearestNeighborIndex, knn_vote
from repro.retrieval.store import (
    CompactionResult,
    IngestResult,
    SegmentScan,
    SignatureStore,
    StoreContents,
    StoreStats,
    VerifyReport,
    scan_segment,
)
from repro.retrieval.shard import ShardRouter, ShardedSignatureIndex, tenant_shard

__all__ = [
    "LinearScanIndex",
    "IDistanceIndex",
    "BPlusTree",
    "DynamicIDistanceIndex",
    "NearestNeighborIndex",
    "knn_vote",
    "SignatureStore",
    "StoreContents",
    "StoreStats",
    "IngestResult",
    "CompactionResult",
    "VerifyReport",
    "SegmentScan",
    "scan_segment",
    "ShardRouter",
    "ShardedSignatureIndex",
    "tenant_shard",
]

"""Persistent, partitioned signature store (ROADMAP item 2).

The in-memory indexes in this package serve one tenant and die with the
process.  This module adds the durable half: motion signatures live in
**append-only segment files** under one store directory, described by a
JSON **manifest** that is the single commit point for every mutation.

Segment format (``seg-NNNNNN.sig``)
-----------------------------------
A fixed-width binary layout so a segment can be parsed with one
``np.frombuffer`` call::

    header  : magic 'RSG1' | version u32 | dim u32 | n_records u64
              | record_width u32 | crc32(header) u32          (28 bytes)
    record  : id u64 | tenant_idx u32 | label_idx u32
              | vector dim*f64 | crc32(record) u32     (16 + 8*dim + 4)

Tenant and label strings are interned per segment: records carry ``u32``
indices into the segment's ``tenants``/``labels`` tables in the manifest.
Every record carries its own CRC32 (over all preceding record bytes), so
a torn tail can be cut off record-exactly; the manifest additionally
stores the CRC32 of the whole segment file for an O(1) integrity check
on the fast read path.

Durability invariants
---------------------
* Segment files and the manifest are only ever written through
  :func:`repro.utils.atomic_write` (lint rule R8): readers see either
  the complete old file or the complete new one.
* A segment becomes visible **only** when the manifest names it.  A
  crash between segment write and manifest write leaves an orphan file
  that every reader ignores and the next ingest simply overwrites.
* Record ids are unique store-wide: ingest skips ids that are already
  present, so replaying an interrupted ingest is idempotent.
* :meth:`SignatureStore.compact` merges all segments into one (records
  sorted by id) and commits the swap through a new manifest before the
  old segment files are unlinked.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import StoreError
from repro.obs.config import is_enabled, record_counter, record_gauge, span
from repro.utils.atomicio import atomic_write
from repro.utils.validation import check_array

__all__ = [
    "CompactionResult",
    "IngestResult",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "SegmentScan",
    "SignatureStore",
    "StoreContents",
    "StoreStats",
    "VerifyReport",
    "record_width",
    "scan_segment",
    "segment_header_size",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_SCHEMA = "repro.store/v1"
SEGMENT_MAGIC = b"RSG1"
SEGMENT_VERSION = 1

#: header: magic, version, dim, n_records, record_width, crc32(header).
_HEADER = struct.Struct("<4sIIQII")
#: fixed per-record prefix: id u64, tenant_idx u32, label_idx u32.
_RECORD_PREFIX = struct.Struct("<QII")
_CRC_BYTES = 4


def segment_header_size() -> int:
    """Size in bytes of the segment header."""
    return _HEADER.size


def record_width(dim: int) -> int:
    """Fixed on-disk width in bytes of one ``dim``-dimensional record."""
    return _RECORD_PREFIX.size + 8 * dim + _CRC_BYTES


def _record_dtype(dim: int) -> np.dtype:
    return np.dtype([
        ("id", "<u8"),
        ("tenant", "<u4"),
        ("label", "<u4"),
        ("vec", "<f8", (dim,)),
        ("crc", "<u4"),
    ])


def _record_crcs(raw: bytes, n_records: int, width: int) -> np.ndarray:
    """CRC32 of each record's prefix (everything before its crc field)."""
    out = np.empty(n_records, dtype=np.uint32)
    body = width - _CRC_BYTES
    for i in range(n_records):
        start = i * width
        out[i] = zlib.crc32(raw[start:start + body])
    return out


@dataclass(frozen=True)
class StoreContents:
    """Everything live in the store, sorted by ascending record id."""

    ids: np.ndarray
    vectors: np.ndarray
    labels: Tuple[str, ...]
    tenants: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.ids)


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one :meth:`SignatureStore.ingest` call."""

    n_written: int
    n_skipped: int
    segment: Optional[str]


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of one :meth:`SignatureStore.compact` call."""

    n_segments_before: int
    n_segments_after: int
    n_records: int
    bytes_reclaimed: int


@dataclass(frozen=True)
class StoreStats:
    """Summary counters for ``repro-motions store stats``."""

    n_segments: int
    n_records: int
    dim: int
    n_tenants: int
    n_labels: int
    n_bytes: int
    n_compactions: int
    next_id: int


@dataclass(frozen=True)
class VerifyReport:
    """Full-scan integrity report (every record CRC re-checked)."""

    n_segments: int
    n_records: int
    errors: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether every segment and record passed its CRC check."""
        return not self.errors


@dataclass(frozen=True)
class SegmentScan:
    """Tolerant record-by-record scan of one segment file.

    ``n_complete`` counts the prefix of records whose CRC verified;
    everything after the first torn or corrupt record is dropped.
    """

    n_complete: int
    n_expected: int
    ids: np.ndarray
    vectors: np.ndarray
    tenant_idx: np.ndarray
    label_idx: np.ndarray

    @property
    def truncated(self) -> bool:
        """Whether the scan stopped before the header's record count."""
        return self.n_complete < self.n_expected


def scan_segment(path: Union[str, Path]) -> SegmentScan:
    """Recover every complete record from a possibly-torn segment file.

    Unlike the fast read path (which insists on the manifest's whole-file
    CRC), this walks record by record and keeps the longest verified
    prefix — the crash-recovery primitive behind
    :meth:`SignatureStore.verify` and the recovery tests.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise StoreError(f"cannot read segment {path}: {exc}") from exc
    empty = SegmentScan(
        n_complete=0, n_expected=0,
        ids=np.empty(0, dtype=np.uint64),
        vectors=np.empty((0, 0)),
        tenant_idx=np.empty(0, dtype=np.uint32),
        label_idx=np.empty(0, dtype=np.uint32),
    )
    if len(raw) < _HEADER.size:
        return empty
    magic, version, dim, n_expected, width, header_crc = _HEADER.unpack(
        raw[:_HEADER.size]
    )
    if magic != SEGMENT_MAGIC or version != SEGMENT_VERSION:
        return empty
    if header_crc != zlib.crc32(raw[:_HEADER.size - _CRC_BYTES]):
        return empty
    if width != record_width(dim):
        return empty
    payload = raw[_HEADER.size:]
    n_have = len(payload) // width
    body = width - _CRC_BYTES
    n_complete = 0
    for i in range(min(n_have, int(n_expected))):
        start = i * width
        chunk = payload[start:start + width]
        (stored_crc,) = struct.unpack_from("<I", chunk, body)
        if stored_crc != zlib.crc32(chunk[:body]):
            break
        n_complete += 1
    dtype = _record_dtype(dim)
    data = np.frombuffer(payload[:n_complete * width], dtype=dtype)
    return SegmentScan(
        n_complete=n_complete,
        n_expected=int(n_expected),
        ids=data["id"].copy(),
        vectors=data["vec"].reshape(n_complete, dim).astype(np.float64),
        tenant_idx=data["tenant"].copy(),
        label_idx=data["label"].copy(),
    )


class SignatureStore:
    """A directory of immutable CRC-checked segments plus one manifest.

    Parameters
    ----------
    root:
        Store directory; created on the first ingest.  An existing
        manifest is loaded eagerly (it is small); segment payloads are
        only read when the contents are actually needed.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._manifest: Dict = self._load_manifest()
        self._known_ids: Optional[set] = None

    # ------------------------------------------------------------------
    # Manifest handling
    # ------------------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _load_manifest(self) -> Dict:
        path = self._manifest_path()
        if not path.exists():
            return {
                "schema": MANIFEST_SCHEMA,
                "dim": None,
                "next_id": 0,
                "next_seq": 1,
                "compactions": 0,
                "segments": [],
            }
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"unreadable store manifest {path}: {exc}") from exc
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise StoreError(
                f"manifest {path} has schema {manifest.get('schema')!r}, "
                f"expected {MANIFEST_SCHEMA!r}"
            )
        return manifest

    def _write_manifest(self, manifest: Dict) -> None:
        with atomic_write(self._manifest_path(), mode="w",
                          encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
        self._manifest = manifest

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dim(self) -> Optional[int]:
        """Signature dimensionality, or ``None`` before the first ingest."""
        return self._manifest["dim"]

    @property
    def n_segments(self) -> int:
        """Number of live segments."""
        return len(self._manifest["segments"])

    @property
    def n_records(self) -> int:
        """Number of live records across all segments."""
        return sum(int(s["n_records"]) for s in self._manifest["segments"])

    def stats(self) -> StoreStats:
        """Summary counters over the manifest (no payload reads)."""
        tenants: set = set()
        labels: set = set()
        n_bytes = 0
        for seg in self._manifest["segments"]:
            tenants.update(seg["tenants"])
            labels.update(seg["labels"])
            seg_path = self.root / seg["name"]
            if seg_path.exists():
                n_bytes += seg_path.stat().st_size
        return StoreStats(
            n_segments=self.n_segments,
            n_records=self.n_records,
            dim=int(self._manifest["dim"] or 0),
            n_tenants=len(tenants),
            n_labels=len(labels),
            n_bytes=n_bytes,
            n_compactions=int(self._manifest["compactions"]),
            next_id=int(self._manifest["next_id"]),
        )

    def ids(self) -> np.ndarray:
        """All live record ids (unsorted, in segment order)."""
        parts = [self._read_segment(seg)[0]
                 for seg in self._manifest["segments"]]
        if not parts:
            return np.empty(0, dtype=np.uint64)
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(
        self,
        vectors: np.ndarray,
        labels: Sequence[str],
        tenants: Union[str, Sequence[str]] = "default",
        ids: Optional[np.ndarray] = None,
    ) -> IngestResult:
        """Append one immutable segment holding the given signatures.

        Parameters
        ----------
        vectors:
            ``(n, d)`` signature matrix.
        labels:
            Motion-class label per row.
        tenants:
            Tenant key per row, or one key for the whole batch.
        ids:
            Explicit ``uint64`` record ids.  Rows whose id is already in
            the store are skipped (idempotent replay); omitted ids are
            assigned sequentially from the manifest's ``next_id``.
        """
        x = check_array(vectors, name="vectors", ndim=2, allow_empty=False)
        n, dim = x.shape
        if self.dim is not None and dim != self.dim:
            raise StoreError(
                f"store holds {self.dim}-dim signatures, batch has {dim}"
            )
        if isinstance(tenants, str):
            tenants = [tenants] * n
        if len(labels) != n:
            raise StoreError(f"{n} vectors but {len(labels)} labels")
        if len(tenants) != n:
            raise StoreError(f"{n} vectors but {len(tenants)} tenants")

        if ids is None:
            start = int(self._manifest["next_id"])
            id_arr = np.arange(start, start + n, dtype=np.uint64)
            keep = np.ones(n, dtype=bool)
        else:
            id_arr = check_array(ids, name="ids", ndim=1).astype(np.uint64)
            if len(id_arr) != n:
                raise StoreError(f"{n} vectors but {len(id_arr)} ids")
            if len(np.unique(id_arr)) != n:
                raise StoreError("ingest batch contains duplicate ids")
            known = self._known_id_set()
            keep = np.fromiter((int(i) not in known for i in id_arr),
                               dtype=bool, count=n)
        n_written = int(keep.sum())
        n_skipped = n - n_written
        if n_written == 0:
            return IngestResult(n_written=0, n_skipped=n_skipped, segment=None)

        with span("store.ingest", n_records=n_written, dim=dim):
            name = self._write_segment(
                id_arr[keep], x[keep],
                [labels[i] for i in range(n) if keep[i]],
                [tenants[i] for i in range(n) if keep[i]],
            )
            if is_enabled():
                record_counter("store.records_ingested", n_written)
                record_counter("store.records_skipped", n_skipped)
                record_counter("store.segments_written")
                record_gauge("store.live_records", self.n_records)
        return IngestResult(n_written=n_written, n_skipped=n_skipped,
                            segment=name)

    def _known_id_set(self) -> set:
        if self._known_ids is None:
            self._known_ids = {int(i) for i in self.ids()}
        return self._known_ids

    def _write_segment(
        self,
        ids: np.ndarray,
        vectors: np.ndarray,
        labels: List[str],
        tenants: List[str],
    ) -> str:
        """Write one segment + the manifest that makes it visible."""
        n, dim = vectors.shape
        tenant_table = sorted(set(tenants))
        label_table = sorted(set(labels))
        tenant_code = {t: i for i, t in enumerate(tenant_table)}
        label_code = {l: i for i, l in enumerate(label_table)}

        data = np.empty(n, dtype=_record_dtype(dim))
        data["id"] = ids
        data["tenant"] = [tenant_code[t] for t in tenants]
        data["label"] = [label_code[l] for l in labels]
        data["vec"] = np.ascontiguousarray(vectors, dtype=np.float64)
        data["crc"] = 0
        width = record_width(dim)
        data["crc"] = _record_crcs(data.tobytes(), n, width)
        payload = data.tobytes()

        header_body = _HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, dim, n,
                                   width, 0)[:-_CRC_BYTES]
        header = header_body + struct.pack("<I", zlib.crc32(header_body))
        raw = header + payload

        seq = int(self._manifest["next_seq"])
        name = f"seg-{seq:06d}.sig"
        with atomic_write(self.root / name) as handle:
            handle.write(raw)

        manifest = {
            **self._manifest,
            "dim": dim,
            "next_seq": seq + 1,
            "next_id": max(int(self._manifest["next_id"]),
                           int(ids.max()) + 1),
            "segments": [
                *self._manifest["segments"],
                {
                    "name": name,
                    "n_records": n,
                    "dim": dim,
                    "tenants": tenant_table,
                    "labels": label_table,
                    "file_crc": zlib.crc32(raw),
                    "min_id": int(ids.min()),
                    "max_id": int(ids.max()),
                },
            ],
        }
        self._write_manifest(manifest)
        if self._known_ids is not None:
            self._known_ids.update(int(i) for i in ids)
        return name

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def _read_segment(
        self, seg: Dict
    ) -> Tuple[np.ndarray, np.ndarray, List[str], List[str]]:
        """Fast strict read of one manifest-listed segment."""
        path = self.root / seg["name"]
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise StoreError(f"cannot read segment {path}: {exc}") from exc
        if zlib.crc32(raw) != int(seg["file_crc"]):
            raise StoreError(
                f"segment {path} failed its whole-file CRC check; run "
                f"scan_segment() to recover the intact prefix"
            )
        dim = int(seg["dim"])
        n = int(seg["n_records"])
        expected = _HEADER.size + n * record_width(dim)
        if len(raw) != expected:
            raise StoreError(
                f"segment {path} is {len(raw)} bytes, expected {expected}"
            )
        data = np.frombuffer(raw[_HEADER.size:], dtype=_record_dtype(dim))
        tenants = [seg["tenants"][i] for i in data["tenant"]]
        labels = [seg["labels"][i] for i in data["label"]]
        vectors = data["vec"].reshape(n, dim).astype(np.float64)
        return data["id"].copy(), vectors, labels, tenants

    def records(self, tenant: Optional[str] = None) -> StoreContents:
        """All live records, sorted by ascending id.

        Parameters
        ----------
        tenant:
            When given, restrict to that tenant's records.
        """
        all_ids: List[np.ndarray] = []
        all_vecs: List[np.ndarray] = []
        all_labels: List[str] = []
        all_tenants: List[str] = []
        for seg in self._manifest["segments"]:
            ids, vecs, labels, tenants = self._read_segment(seg)
            all_ids.append(ids)
            all_vecs.append(vecs)
            all_labels.extend(labels)
            all_tenants.extend(tenants)
        if not all_ids:
            dim = int(self._manifest["dim"] or 0)
            return StoreContents(
                ids=np.empty(0, dtype=np.uint64),
                vectors=np.empty((0, dim)),
                labels=(), tenants=(),
            )
        ids = np.concatenate(all_ids)
        vectors = np.vstack(all_vecs)
        order = np.argsort(ids, kind="stable")
        ids = ids[order]
        vectors = vectors[order]
        labels = tuple(all_labels[i] for i in order)
        tenants = tuple(all_tenants[i] for i in order)
        if tenant is not None:
            mask = np.fromiter((t == tenant for t in tenants),
                               dtype=bool, count=len(tenants))
            ids = ids[mask]
            vectors = vectors[mask]
            labels = tuple(l for l, m in zip(labels, mask) if m)
            tenants = tuple(t for t, m in zip(tenants, mask) if m)
        return StoreContents(ids=ids, vectors=vectors, labels=labels,
                             tenants=tenants)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def compact(self) -> CompactionResult:
        """Merge every segment into one, then unlink the old files.

        The swap commits atomically through the manifest: readers see
        either the full old segment list or the single new segment.
        A no-op when the store already holds at most one segment.
        """
        before = self.n_segments
        if before <= 1:
            return CompactionResult(
                n_segments_before=before, n_segments_after=before,
                n_records=self.n_records, bytes_reclaimed=0,
            )
        with span("store.compact", n_segments=before):
            old_segments = list(self._manifest["segments"])
            old_bytes = sum((self.root / s["name"]).stat().st_size
                            for s in old_segments
                            if (self.root / s["name"]).exists())
            contents = self.records()
            base = {**self._manifest, "segments": [],
                    "compactions": int(self._manifest["compactions"]) + 1}
            self._manifest = base
            self._known_ids = None
            name = self._write_segment(
                contents.ids, contents.vectors,
                list(contents.labels), list(contents.tenants),
            )
            for seg in old_segments:
                try:
                    os.unlink(self.root / seg["name"])
                except OSError:
                    pass  # an unreachable old file is garbage, not failure
            new_bytes = (self.root / name).stat().st_size
            if is_enabled():
                record_counter("store.compactions")
                record_gauge("store.live_records", self.n_records)
        return CompactionResult(
            n_segments_before=before, n_segments_after=1,
            n_records=len(contents),
            bytes_reclaimed=max(0, old_bytes - new_bytes),
        )

    def verify(self) -> VerifyReport:
        """Re-check every segment's file CRC and every record CRC."""
        errors: List[str] = []
        n_records = 0
        for seg in self._manifest["segments"]:
            path = self.root / seg["name"]
            scan = scan_segment(path)
            n_records += scan.n_complete
            if scan.truncated or scan.n_expected != int(seg["n_records"]):
                errors.append(
                    f"{seg['name']}: {scan.n_complete} intact records, "
                    f"manifest expects {seg['n_records']}"
                )
                continue
            try:
                raw = path.read_bytes()
            except OSError as exc:
                errors.append(f"{seg['name']}: unreadable ({exc})")
                continue
            if zlib.crc32(raw) != int(seg["file_crc"]):
                errors.append(f"{seg['name']}: whole-file CRC mismatch")
        return VerifyReport(
            n_segments=self.n_segments,
            n_records=n_records,
            errors=tuple(errors),
        )

"""The iDistance index (Yu, Ooi, Tan & Jagadish, VLDB 2001) — paper ref [14].

iDistance maps every high-dimensional point to a single scalar key: the
dataset is partitioned around reference points, and a point ``p`` assigned to
partition ``j`` gets the key ``j * C + ||p − ref_j||`` where ``C`` exceeds
any within-partition distance, so partitions occupy disjoint key intervals.
The keys live in a sorted array (standing in for the B⁺-tree of the paper);
k-NN proceeds by expanding-radius annulus searches:

* a query ``q`` with current radius ``r`` needs, in partition ``j`` with
  radius ``r_max_j``, only the keys in
  ``[j·C + max(0, d(q, ref_j) − r), j·C + min(r_max_j, d(q, ref_j) + r)]``
  (the triangle inequality bounds every point that can be within ``r``);
* the radius grows until the k-th best exact distance is ≤ ``r``, which
  proves no unexamined point can be closer.

The implementation is exact: the test-suite verifies identical results to
:class:`~repro.retrieval.linear.LinearScanIndex`, and the benchmark reports
the candidate-pruning ratio.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import NotFittedError, RetrievalError
from repro.fuzzy.kmeans import KMeans
from repro.obs.config import (
    is_enabled,
    record_counter,
    record_event,
    record_gauge,
    span,
)
from repro.retrieval.knn import NearestNeighborIndex
from repro.utils.rng import SeedLike
from repro.utils.validation import check_array, check_positive_int, shapes

__all__ = ["IDistanceIndex"]


class IDistanceIndex(NearestNeighborIndex):
    """Exact k-NN via one-dimensional iDistance keys.

    Parameters
    ----------
    n_partitions:
        Number of reference points; the original paper picks cluster centers,
        and so do we (k-means on the indexed vectors).
    initial_radius_fraction:
        First search radius as a fraction of the largest partition radius.
    radius_growth:
        Multiplicative radius growth per round.
    seed:
        Seed for the reference-point clustering (index construction is
        deterministic given it).
    """

    def __init__(
        self,
        n_partitions: int = 8,
        initial_radius_fraction: float = 0.1,
        radius_growth: float = 2.0,
        seed: SeedLike = 0,
    ):
        self.n_partitions = check_positive_int(n_partitions, name="n_partitions")
        if not 0 < initial_radius_fraction <= 1:
            raise RetrievalError(
                f"initial_radius_fraction must be in (0, 1], got {initial_radius_fraction}"
            )
        if not radius_growth > 1:
            raise RetrievalError(f"radius_growth must exceed 1, got {radius_growth}")
        self.initial_radius_fraction = initial_radius_fraction
        self.radius_growth = radius_growth
        self.seed = seed
        self._vectors: Optional[np.ndarray] = None
        self._refs: Optional[np.ndarray] = None
        self._assignment: Optional[np.ndarray] = None
        self._radial: Optional[np.ndarray] = None  # distance to own reference
        self._r_max: Optional[np.ndarray] = None
        self._keys: Optional[np.ndarray] = None  # sorted
        self._order: Optional[np.ndarray] = None  # original index per key slot
        self._c: float = 0.0
        #: Candidates examined by the last query (for pruning statistics).
        self.last_candidates: int = 0
        #: Search rounds used by the last query.
        self.last_rounds: int = 0

    # ------------------------------------------------------------------

    @shapes(vectors="(n, d)")
    def fit(self, vectors: np.ndarray) -> "IDistanceIndex":
        """Build reference points, keys and the sorted key array."""
        x = check_array(vectors, name="vectors", ndim=2, allow_empty=False)
        n = x.shape[0]
        n_parts = min(self.n_partitions, n)
        if n_parts >= 2:
            refs = KMeans(n_clusters=n_parts, n_init=1).fit(x, seed=self.seed).centers
        else:
            refs = x.mean(axis=0, keepdims=True)
        diff = x[:, None, :] - refs[None, :, :]
        dist = np.sqrt(np.einsum("npd,npd->np", diff, diff))
        assignment = np.argmin(dist, axis=1)
        radial = dist[np.arange(n), assignment]
        r_max = np.zeros(refs.shape[0])
        for j in range(refs.shape[0]):
            mask = assignment == j
            if mask.any():
                r_max[j] = radial[mask].max()
        # The key stretch constant must strictly dominate any radial
        # distance so partitions never overlap in key space.
        self._c = float(r_max.max() * 2.0 + 1.0)
        keys = assignment * self._c + radial
        order = np.argsort(keys, kind="stable")
        self._vectors = x
        self._refs = refs
        self._assignment = assignment
        self._radial = radial
        self._r_max = r_max
        self._keys = keys[order]
        self._order = order
        return self

    @property
    def n_indexed(self) -> int:
        """Number of indexed vectors."""
        if self._vectors is None:
            raise NotFittedError("IDistanceIndex used before fit")
        return self._vectors.shape[0]

    # ------------------------------------------------------------------

    @shapes(vector="(d,)")
    def query(self, vector: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k-NN by expanding annulus search over the key array."""
        if (
            self._vectors is None
            or self._refs is None
            or self._keys is None
            or self._order is None
            or self._r_max is None
        ):
            raise NotFittedError("IDistanceIndex used before fit")
        x = self._vectors
        vector = self._check_query(vector, k, x.shape[0], x.shape[1])
        with span("retrieval.idistance_query", k=k, n_indexed=x.shape[0]) as sp:
            result = self._search(x, vector, k)
            if is_enabled():
                pruning = 1.0 - self.last_candidates / x.shape[0]
                record_counter("retrieval.idistance.queries")
                record_counter("retrieval.idistance.candidates",
                               self.last_candidates)
                record_counter("retrieval.idistance.rounds", self.last_rounds)
                record_gauge("retrieval.idistance.pruning_ratio", pruning)
                record_event("retrieval.query", backend="idistance", k=k,
                             candidates=int(self.last_candidates),
                             rounds=int(self.last_rounds))
                sp.set(candidates=self.last_candidates,
                       rounds=self.last_rounds, pruning_ratio=pruning)
        return result

    def _search(
        self, x: np.ndarray, vector: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        assert self._refs is not None and self._r_max is not None
        assert self._keys is not None and self._order is not None
        ref_diff = self._refs - vector
        ref_dist = np.sqrt(np.einsum("pd,pd->p", ref_diff, ref_diff))
        max_possible = float(ref_dist.max() + self._r_max.max())
        radius = max(self.initial_radius_fraction * float(self._r_max.max()), 1e-9)

        seen = np.zeros(x.shape[0], dtype=bool)
        best_idx: list[int] = []
        best_dist: list[float] = []
        self.last_candidates = 0
        self.last_rounds = 0

        while True:
            self.last_rounds += 1
            for j in range(self._refs.shape[0]):
                # Partition j can contain a point within `radius` of q only
                # if the ball intersects the partition's sphere shell.
                if ref_dist[j] - radius > self._r_max[j]:
                    continue
                low = j * self._c + max(0.0, ref_dist[j] - radius)
                high = j * self._c + min(self._r_max[j], ref_dist[j] + radius)
                lo = int(np.searchsorted(self._keys, low, side="left"))
                hi = int(np.searchsorted(self._keys, high, side="right"))
                for slot in range(lo, hi):
                    idx = int(self._order[slot])
                    if seen[idx]:
                        continue
                    seen[idx] = True
                    self.last_candidates += 1
                    d = float(np.linalg.norm(x[idx] - vector))
                    best_idx.append(idx)
                    best_dist.append(d)
            if len(best_idx) >= k:
                dist_arr = np.asarray(best_dist)
                idx_arr = np.asarray(best_idx)
                order = np.lexsort((idx_arr, dist_arr))[:k]
                # Stop when the k-th candidate distance is certified: no
                # unexamined point can be nearer than the current radius.
                if dist_arr[order[-1]] <= radius or radius >= max_possible:
                    return idx_arr[order], dist_arr[order]
            if radius >= max_possible:
                # Fewer than k points exist in range (cannot happen after
                # _check_query, but guards against float-edge loops).
                dist_arr = np.asarray(best_dist)
                idx_arr = np.asarray(best_idx)
                order = np.lexsort((idx_arr, dist_arr))[:k]
                return idx_arr[order], dist_arr[order]
            radius = min(radius * self.radius_growth, max_possible)

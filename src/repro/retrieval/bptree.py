"""An in-memory B+-tree over float keys.

The original iDistance paper (Yu, Ooi, Tan & Jagadish, VLDB 2001 — the
paper's reference [14]) stores its one-dimensional keys in a B+-tree and
answers k-NN queries with range scans over the leaf level.  The
array-backed :class:`~repro.retrieval.idistance.IDistanceIndex` is exact
but static; this B+-tree provides the dynamic variant: inserts and deletes
interleave with range searches, so motions can be added to or retired from
the database without rebuilding the index.

Implementation notes
--------------------
* Classic order-``B`` B+-tree: internal nodes hold separator keys and
  children; leaves hold ``(key, value)`` pairs and are chained left-to-
  right for range scans.
* Duplicate keys are allowed (two windows can share an iDistance key);
  deletion removes one matching ``(key, value)`` pair.
* Deletion uses the standard borrow/merge rebalancing so the tree stays
  within the B+-tree invariants, which the test-suite checks explicitly
  after randomized workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import RetrievalError
from repro.utils.validation import check_positive_int

__all__ = ["BPlusTree"]


@dataclass
class _Node:
    leaf: bool
    keys: List[float] = field(default_factory=list)
    # Leaves: ``values[i]`` pairs with ``keys[i]``.  Internal nodes:
    # ``children`` has ``len(keys) + 1`` entries.
    values: List[object] = field(default_factory=list)
    children: List["_Node"] = field(default_factory=list)
    next: Optional["_Node"] = None  # leaf chain


class BPlusTree:
    """Order-``branching`` B+-tree mapping float keys to payloads.

    Parameters
    ----------
    branching:
        Maximum number of children of an internal node (>= 3).  Leaves hold
        at most ``branching - 1`` pairs.
    """

    def __init__(self, branching: int = 32):
        branching = check_positive_int(branching, name="branching", minimum=3)
        self._b = branching
        self._root = _Node(leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def branching(self) -> int:
        """The tree's maximum fan-out."""
        return self._b

    def height(self) -> int:
        """Number of levels (1 for a single-leaf tree)."""
        node, levels = self._root, 1
        while not node.leaf:
            node = node.children[0]
            levels += 1
        return levels

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key: float, value: object) -> None:
        """Insert a ``(key, value)`` pair (duplicates allowed)."""
        key = float(key)
        if key != key:  # NaN keys break ordering
            raise RetrievalError("cannot insert a NaN key")
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Node(leaf=False, keys=[sep], children=[self._root, right])
            self._root = new_root
        self._size += 1

    def _insert(
        self, node: _Node, key: float, value: object
    ) -> Optional[Tuple[float, _Node]]:
        if node.leaf:
            idx = self._bisect_right(node.keys, key)
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            if len(node.keys) < self._b:
                return None
            return self._split_leaf(node)
        idx = self._bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.children) <= self._b:
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node) -> Tuple[float, _Node]:
        mid = len(node.keys) // 2
        right = _Node(
            leaf=True, keys=node.keys[mid:], values=node.values[mid:],
            next=node.next,
        )
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> Tuple[float, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(
            leaf=False,
            keys=node.keys[mid + 1:],
            children=node.children[mid + 1:],
        )
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def range_search(self, low: float, high: float) -> List[Tuple[float, object]]:
        """All ``(key, value)`` pairs with ``low <= key <= high``, in order."""
        if high < low:
            return []
        out: List[Tuple[float, object]] = []
        leaf = self._find_leaf(low)
        while leaf is not None:
            for k, v in zip(leaf.keys, leaf.values):
                if k > high:
                    return out
                if k >= low:
                    out.append((k, v))
            leaf = leaf.next
        return out

    def items(self) -> Iterator[Tuple[float, object]]:
        """All pairs in ascending key order (leaf-chain scan)."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def _find_leaf(self, key: float) -> _Node:
        node = self._root
        while not node.leaf:
            idx = self._bisect_right(node.keys, key, left_bias=True)
            node = node.children[idx]
        return node

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        return node

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, key: float, value: object) -> bool:
        """Remove one pair matching ``(key, value)``; returns success."""
        removed = self._delete(self._root, float(key), value)
        if not removed:
            return False
        # Shrink the root when it has a single child.
        if not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
        self._size -= 1
        return True

    def _min_pairs(self) -> int:
        return (self._b - 1) // 2

    def _min_children(self) -> int:
        return (self._b + 1) // 2

    def _delete(self, node: _Node, key: float, value: object) -> bool:
        if node.leaf:
            for i, (k, v) in enumerate(zip(node.keys, node.values)):
                if k == key and v == value:
                    node.keys.pop(i)
                    node.values.pop(i)
                    return True
                if k > key:
                    break
            return False
        idx = self._bisect_right(node.keys, key, left_bias=True)
        # Duplicate keys may straddle a separator: try right siblings too.
        removed = False
        for child_idx in range(idx, len(node.children)):
            if child_idx > idx:
                child = node.children[child_idx]
                first = self._first_key(child)
                if first is None or first > key:
                    break
            if self._delete(node.children[child_idx], key, value):
                self._rebalance(node, child_idx)
                removed = True
                break
        return removed

    @staticmethod
    def _first_key(node: _Node) -> Optional[float]:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0] if node.keys else None

    def _rebalance(self, parent: _Node, idx: int) -> None:
        child = parent.children[idx]
        if child.leaf:
            if len(child.keys) >= self._min_pairs():
                return
        elif len(child.children) >= self._min_children():
            return

        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None

        if child.leaf:
            if left is not None and len(left.keys) > self._min_pairs():
                child.keys.insert(0, left.keys.pop())
                child.values.insert(0, left.values.pop())
                parent.keys[idx - 1] = child.keys[0]
            elif right is not None and len(right.keys) > self._min_pairs():
                child.keys.append(right.keys.pop(0))
                child.values.append(right.values.pop(0))
                parent.keys[idx] = right.keys[0]
            elif left is not None:
                left.keys.extend(child.keys)
                left.values.extend(child.values)
                left.next = child.next
                parent.keys.pop(idx - 1)
                parent.children.pop(idx)
            elif right is not None:
                child.keys.extend(right.keys)
                child.values.extend(right.values)
                child.next = right.next
                parent.keys.pop(idx)
                parent.children.pop(idx + 1)
            return

        # Internal child.
        if left is not None and len(left.children) > self._min_children():
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        elif right is not None and len(right.children) > self._min_children():
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        elif left is not None:
            left.keys.append(parent.keys.pop(idx - 1))
            left.keys.extend(child.keys)
            left.children.extend(child.children)
            parent.children.pop(idx)
        elif right is not None:
            child.keys.append(parent.keys.pop(idx))
            child.keys.extend(right.keys)
            child.children.extend(right.children)
            parent.children.pop(idx + 1)

    # ------------------------------------------------------------------
    # Invariant checking (used by the test-suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`RetrievalError` if any B+-tree invariant is broken."""
        size = sum(1 for _ in self.items())
        if size != self._size:
            raise RetrievalError(
                f"size bookkeeping broken: counted {size}, recorded {self._size}"
            )
        keys = [k for k, _ in self.items()]
        if keys != sorted(keys):
            raise RetrievalError("leaf chain is not sorted")
        self._check_node(self._root, is_root=True, depth=0,
                         leaf_depth=self.height() - 1)

    def _check_node(self, node: _Node, is_root: bool, depth: int,
                    leaf_depth: int) -> None:
        if node.leaf:
            if depth != leaf_depth:
                raise RetrievalError("leaves at different depths")
            if not is_root and len(node.keys) < self._min_pairs():
                raise RetrievalError(
                    f"leaf underflow: {len(node.keys)} < {self._min_pairs()}"
                )
            if len(node.keys) != len(node.values):
                raise RetrievalError("leaf keys/values length mismatch")
            if len(node.keys) >= self._b:
                raise RetrievalError("leaf overflow")
            return
        if len(node.children) != len(node.keys) + 1:
            raise RetrievalError("internal fan-out mismatch")
        if not is_root and len(node.children) < self._min_children():
            raise RetrievalError("internal underflow")
        if len(node.children) > self._b:
            raise RetrievalError("internal overflow")
        for i, child in enumerate(node.children):
            first = self._first_key(child)
            if first is not None:
                if i > 0 and first < node.keys[i - 1]:
                    raise RetrievalError("separator invariant broken (left)")
                if i < len(node.keys) and first > node.keys[i]:
                    raise RetrievalError("separator invariant broken (right)")
            self._check_node(child, is_root=False, depth=depth + 1,
                             leaf_depth=leaf_depth)

    # ------------------------------------------------------------------

    @staticmethod
    def _bisect_right(keys: List[float], key: float, left_bias: bool = False) -> int:
        """Insertion index for ``key``.

        With ``left_bias`` (used for descent), equal keys go to the left
        child so range scans starting at ``key`` see every duplicate.
        """
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key or (not left_bias and keys[mid] == key):
                lo = mid + 1
            else:
                hi = mid
        return lo

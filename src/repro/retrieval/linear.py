"""Exact linear-scan k-NN — the paper's own search technique."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import NotFittedError
from repro.obs.config import is_enabled, record_counter, record_event
from repro.retrieval.knn import NearestNeighborIndex
from repro.utils.validation import check_array

__all__ = ["LinearScanIndex"]


class LinearScanIndex(NearestNeighborIndex):
    """Brute-force Euclidean k-NN over the signature matrix.

    Exact by construction; serves both as the paper's search method and as
    the ground truth the :class:`~repro.retrieval.idistance.IDistanceIndex`
    is verified against.
    """

    def __init__(self) -> None:
        self._vectors: Optional[np.ndarray] = None

    def fit(self, vectors: np.ndarray) -> "LinearScanIndex":
        """Store the ``(n, d)`` database vectors."""
        self._vectors = check_array(vectors, name="vectors", ndim=2,
                                    allow_empty=False)
        return self

    @property
    def n_indexed(self) -> int:
        """Number of indexed vectors."""
        if self._vectors is None:
            raise NotFittedError("LinearScanIndex used before fit")
        return self._vectors.shape[0]

    def query(self, vector: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Scan all vectors; return the ``k`` nearest (ties by index)."""
        if self._vectors is None:
            raise NotFittedError("LinearScanIndex used before fit")
        x = self._vectors
        vector = self._check_query(vector, k, x.shape[0], x.shape[1])
        if is_enabled():
            record_counter("retrieval.linear.queries")
            record_counter("retrieval.linear.scanned", x.shape[0])
            record_event("retrieval.query", backend="linear", k=k,
                         scanned=int(x.shape[0]))
        diff = x - vector
        distances = np.sqrt(np.einsum("nd,nd->n", diff, diff))
        # Stable lexicographic order (distance, index) makes results
        # deterministic and comparable across backends.
        order = np.lexsort((np.arange(len(distances)), distances))[:k]
        return order, distances[order]

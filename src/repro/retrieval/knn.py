"""k-NN interface and voting helpers shared by the retrieval backends."""

from __future__ import annotations

import abc
from collections import Counter
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import RetrievalError
from repro.utils.validation import check_array, check_positive_int

__all__ = ["NearestNeighborIndex", "knn_vote"]


class NearestNeighborIndex(abc.ABC):
    """Exact k-nearest-neighbour search over a fixed set of vectors."""

    @abc.abstractmethod
    def fit(self, vectors: np.ndarray) -> "NearestNeighborIndex":
        """Index the ``(n, d)`` database vectors."""

    @abc.abstractmethod
    def query(self, vector: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, distances)`` of the ``k`` nearest vectors.

        Results are sorted by ascending distance; ties broken by index so
        every backend returns the identical answer.
        """

    def _check_query(self, vector: np.ndarray, k: int, n: int, d: int) -> np.ndarray:
        vector = check_array(vector, name="vector", ndim=1)
        if len(vector) != d:
            raise RetrievalError(
                f"query has {len(vector)} dims, index holds {d}-dim vectors"
            )
        k = check_positive_int(k, name="k")
        if k > n:
            raise RetrievalError(f"k={k} exceeds the {n} indexed vectors")
        return vector


def knn_vote(labels: Sequence[str], distances: np.ndarray) -> str:
    """Majority vote among retrieved labels; ties go to the nearest label.

    Parameters
    ----------
    labels:
        Labels of the k retrieved neighbours, nearest first.
    distances:
        Matching distances (used only for tie-breaking sanity).
    """
    distances = check_array(distances, name="distances", ndim=1)
    if not labels:
        raise RetrievalError("cannot vote on an empty neighbour list")
    if len(labels) != len(distances):
        raise RetrievalError(
            f"{len(labels)} labels but {len(distances)} distances"
        )
    counts = Counter(labels)
    top = max(counts.values())
    tied = {label for label, count in counts.items() if count == top}
    if len(tied) == 1:
        return next(iter(tied))
    # Tie: the tied label whose nearest representative is closest wins.
    for label in labels:  # labels are nearest-first
        if label in tied:
            return label
    raise RetrievalError("unreachable: tie-break found no label")  # pragma: no cover

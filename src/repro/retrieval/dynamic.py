"""Dynamic iDistance index backed by the B+-tree.

The array-backed :class:`~repro.retrieval.idistance.IDistanceIndex` must be
rebuilt whenever the motion database changes.  This variant follows the
original VLDB'01 design more literally: the one-dimensional iDistance keys
live in a :class:`~repro.retrieval.bptree.BPlusTree`, so motions can be
**inserted and deleted online** while k-NN queries keep running — the
operating mode of a growing clinical motion database.

Reference points are fixed at construction (from a seed batch, via
k-means); the key-space stretch constant ``C`` is sized with headroom so
later insertions fit.  A point farther from every reference than the
headroom allows is rejected with a clear "rebuild" error rather than
silently corrupting the key space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import NotFittedError, RetrievalError
from repro.fuzzy.kmeans import KMeans
from repro.retrieval.bptree import BPlusTree
from repro.retrieval.knn import NearestNeighborIndex
from repro.utils.rng import SeedLike
from repro.utils.validation import check_array, check_positive_int

__all__ = ["DynamicIDistanceIndex"]


class DynamicIDistanceIndex(NearestNeighborIndex):
    """Insert/delete-capable exact k-NN over iDistance keys in a B+-tree.

    Parameters
    ----------
    n_partitions:
        Number of reference points (k-means centers of the seed batch).
    headroom:
        Multiplier on the seed batch's largest radial distance used to size
        the key-space stretch ``C``; later insertions may be up to this
        factor farther from their reference than any seed point was.
    branching:
        B+-tree fan-out.
    seed:
        Seed for the reference-point clustering.
    """

    def __init__(
        self,
        n_partitions: int = 8,
        headroom: float = 4.0,
        branching: int = 32,
        radius_growth: float = 2.0,
        seed: SeedLike = 0,
    ):
        self.n_partitions = check_positive_int(n_partitions, name="n_partitions")
        if not headroom >= 1.0:
            raise RetrievalError(f"headroom must be >= 1, got {headroom}")
        if not radius_growth > 1.0:
            raise RetrievalError(f"radius_growth must exceed 1, got {radius_growth}")
        self.headroom = headroom
        self.branching = branching
        self.radius_growth = radius_growth
        self.seed = seed
        self._refs: Optional[np.ndarray] = None
        self._c: float = 0.0
        self._tree: Optional[BPlusTree] = None
        self._vectors: Dict[int, np.ndarray] = {}
        self._r_max: Optional[np.ndarray] = None
        self._next_id = 0
        #: Candidates examined by the last query.
        self.last_candidates = 0

    # ------------------------------------------------------------------
    # Construction and maintenance
    # ------------------------------------------------------------------

    def fit(self, vectors: np.ndarray) -> "DynamicIDistanceIndex":
        """Build the index from a seed batch; ids are 0..n-1."""
        x = check_array(vectors, name="vectors", ndim=2, allow_empty=False)
        n_parts = min(self.n_partitions, x.shape[0])
        if n_parts >= 2:
            self._refs = KMeans(n_clusters=n_parts, n_init=1).fit(
                x, seed=self.seed
            ).centers
        else:
            self._refs = x.mean(axis=0, keepdims=True)
        radial = self._radial_distances(x)
        max_radial = float(radial.min(axis=1).max())
        # Size the key-space stretch from the seed batch's spatial extent
        # (bounding-box diagonal), not just its radial spread: future
        # insertions anywhere within `headroom` diagonals of the references
        # must map to non-overlapping per-partition key intervals.
        diagonal = float(np.linalg.norm(x.max(axis=0) - x.min(axis=0)))
        scale = max(max_radial, diagonal, 1e-9)
        self._c = self.headroom * scale * 2.0 + 1.0
        self._tree = BPlusTree(branching=self.branching)
        self._r_max = np.zeros(self._refs.shape[0])
        self._vectors = {}
        self._next_id = 0
        for row in x:
            self.insert(row)
        return self

    def insert(self, vector: np.ndarray) -> int:
        """Add a vector; returns its integer id."""
        if self._refs is None or self._tree is None or self._r_max is None:
            raise NotFittedError("DynamicIDistanceIndex used before fit")
        vector = check_array(vector, name="vector", ndim=1)
        if len(vector) != self._refs.shape[1]:
            raise RetrievalError(
                f"vector has {len(vector)} dims, index holds "
                f"{self._refs.shape[1]}-dim vectors"
            )
        partition, dist = self._assign(vector)
        if dist >= self._c / 2.0:
            raise RetrievalError(
                "vector exceeds the key-space headroom; rebuild the index "
                "with fit() (or a larger headroom) to cover the new data"
            )
        vid = self._next_id
        self._next_id += 1
        self._tree.insert(partition * self._c + dist, vid)
        self._vectors[vid] = np.array(vector, dtype=np.float64)
        self._r_max[partition] = max(self._r_max[partition], dist)
        return vid

    def remove(self, vid: int) -> bool:
        """Delete a vector by id; returns whether it was present.

        Per-partition radii are kept conservative (they only grow), which
        preserves exactness — deletion never makes the search consider too
        little.
        """
        if self._refs is None or self._tree is None:
            raise NotFittedError("DynamicIDistanceIndex used before fit")
        vector = self._vectors.pop(vid, None)
        if vector is None:
            return False
        partition, dist = self._assign(vector)
        if not self._tree.delete(partition * self._c + dist, vid):
            raise RetrievalError(
                f"index corruption: id {vid} missing from the B+-tree"
            )  # pragma: no cover
        return True

    @property
    def n_indexed(self) -> int:
        """Number of currently indexed vectors."""
        return len(self._vectors)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def query(self, vector: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k-NN over the current contents (ids and distances)."""
        if (
            self._refs is None or self._tree is None or self._r_max is None
        ):
            raise NotFittedError("DynamicIDistanceIndex used before fit")
        n = len(self._vectors)
        vector = self._check_query(vector, k, n, self._refs.shape[1])

        ref_diff = self._refs - vector
        ref_dist = np.sqrt(np.einsum("pd,pd->p", ref_diff, ref_diff))
        max_possible = float(ref_dist.max() + self._r_max.max())
        radius = max(0.1 * float(self._r_max.max()), 1e-9)

        seen: set = set()
        ids: List[int] = []
        dists: List[float] = []
        self.last_candidates = 0
        while True:
            for j in range(self._refs.shape[0]):
                if ref_dist[j] - radius > self._r_max[j]:
                    continue
                low = j * self._c + max(0.0, ref_dist[j] - radius)
                high = j * self._c + min(self._r_max[j], ref_dist[j] + radius)
                for _, vid in self._tree.range_search(low, high):
                    if vid in seen:
                        continue
                    seen.add(vid)
                    self.last_candidates += 1
                    d = float(np.linalg.norm(self._vectors[vid] - vector))
                    ids.append(vid)
                    dists.append(d)
            if len(ids) >= k:
                dist_arr = np.asarray(dists)
                id_arr = np.asarray(ids)
                order = np.lexsort((id_arr, dist_arr))[:k]
                if dist_arr[order[-1]] <= radius or radius >= max_possible:
                    return id_arr[order], dist_arr[order]
            if radius >= max_possible:
                dist_arr = np.asarray(dists)
                id_arr = np.asarray(ids)
                order = np.lexsort((id_arr, dist_arr))[:k]
                return id_arr[order], dist_arr[order]
            radius = min(radius * self.radius_growth, max_possible)

    # ------------------------------------------------------------------

    def _radial_distances(self, x: np.ndarray) -> np.ndarray:
        diff = x[:, None, :] - self._refs[None, :, :]
        return np.sqrt(np.einsum("npd,npd->np", diff, diff))

    def _assign(self, vector: np.ndarray) -> Tuple[int, float]:
        dists = np.linalg.norm(self._refs - vector, axis=1)
        partition = int(np.argmin(dists))
        return partition, float(dists[partition])

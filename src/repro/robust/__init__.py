"""Fault injection and graceful degradation for the motion pipeline.

The paper's pipeline assumes two clean, fully-present, perfectly
synchronized streams; real acquisitions do not cooperate.  This package
provides both halves of the robustness story:

* :mod:`repro.robust.faults` — a composable fault-injection API
  (:class:`FaultSpec` subclasses + :func:`inject`) that turns clean
  records into realistically broken ones, deterministically.
* :mod:`repro.robust.detect` / :mod:`~repro.robust.policy` /
  :mod:`~repro.robust.featurize` — the runtime degradation layer:
  diagnose a record, apply a :class:`DegradationPolicy` (strict, mask,
  repair), and featurize what is salvageable, reporting every decision in
  a :class:`DegradationReport`.

The chaos test tier in ``tests/robust`` sweeps the full fault × policy
matrix over these pieces.
"""

from __future__ import annotations

from repro.robust.detect import StreamDiagnosis, diagnose_record
from repro.robust.faults import (
    ClockDrift,
    EMGChannelDropout,
    EMGSaturation,
    FaultSpec,
    MarkerOcclusion,
    NaNBurst,
    StreamTruncation,
    default_fault_suite,
    inject,
)
from repro.robust.featurize import (
    RobustFeaturizer,
    drop_emg_channels,
    mask_emg_channels,
)
from repro.robust.policy import (
    MASK,
    POLICY_NAMES,
    REPAIR,
    STRICT,
    DegradationPolicy,
    resolve_policy,
)
from repro.robust.report import DegradationReport

__all__ = [
    "FaultSpec",
    "MarkerOcclusion",
    "EMGChannelDropout",
    "EMGSaturation",
    "NaNBurst",
    "ClockDrift",
    "StreamTruncation",
    "inject",
    "default_fault_suite",
    "StreamDiagnosis",
    "diagnose_record",
    "DegradationPolicy",
    "STRICT",
    "MASK",
    "REPAIR",
    "POLICY_NAMES",
    "resolve_policy",
    "RobustFeaturizer",
    "mask_emg_channels",
    "drop_emg_channels",
    "DegradationReport",
]

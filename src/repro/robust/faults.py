"""Composable fault injection for recorded motions.

Real acquisitions are never as clean as the paper's laboratory setup:
markers occlude, EMG electrodes lift off or saturate, amplifiers emit NaN
bursts, device clocks drift apart, and trials get truncated when a device
stops early.  Each :class:`FaultSpec` models one such failure as a pure,
seeded transformation of a :class:`~repro.data.record.RecordedMotion`;
:func:`inject` composes several of them deterministically.

Design rules every fault obeys:

* **Alignment is preserved** — the returned record is always a valid
  :class:`RecordedMotion` (equal frame counts, equal rates).  Faults that
  shorten one stream shorten the other to match, as a real ingest step
  would have to before the record enters the database.
* **Zero severity is the identity** — a fault parameterized to "nothing"
  returns a record whose stream bytes equal the input's, so the chaos tier
  can assert the clean path is untouched.
* **Determinism** — the same ``seed`` produces byte-identical faulted
  streams; :func:`inject` derives one independent generator per fault via
  :func:`repro.utils.rng.spawn_generators`.

The occlusion fault reuses :class:`repro.mocap.noise.OcclusionModel`; NaN
runs produced here are exactly what :mod:`repro.mocap.gapfill` and the
degradation policies in :mod:`repro.robust.featurize` know how to repair.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, fields
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.record import RecordedMotion
from repro.emg.recording import EMGRecording
from repro.errors import FaultInjectionError
from repro.mocap.noise import OcclusionModel
from repro.mocap.trajectory import MotionCaptureData
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.utils.validation import check_array, check_in_range, check_positive_int

__all__ = [
    "rebuild_record",
    "FaultSpec",
    "MarkerOcclusion",
    "EMGChannelDropout",
    "EMGSaturation",
    "NaNBurst",
    "ClockDrift",
    "StreamTruncation",
    "inject",
    "default_fault_suite",
]

#: Streams a stream-selectable fault may target.
_STREAMS = ("emg", "mocap", "both")


def rebuild_record(
    record: RecordedMotion,
    mocap_matrix: Optional[np.ndarray] = None,
    emg_data: Optional[np.ndarray] = None,
) -> RecordedMotion:
    """A copy of ``record`` with one or both stream matrices replaced.

    The shared seam between fault injection (swap a stream for its faulted
    twin) and repair (swap it for its gap-filled twin); label, participant,
    trial and metadata are preserved.
    """
    if mocap_matrix is not None:
        mocap_matrix = check_array(mocap_matrix, name="mocap_matrix", ndim=2,
                                   allow_non_finite=True)
    if emg_data is not None:
        emg_data = check_array(emg_data, name="emg_data", ndim=2,
                               allow_non_finite=True)
    mocap = record.mocap
    if mocap_matrix is not None:
        mocap = MotionCaptureData(
            segments=mocap.segments, matrix_mm=mocap_matrix, fps=mocap.fps,
            allow_gaps=True,
        )
    emg = record.emg
    if emg_data is not None:
        emg = EMGRecording(channels=emg.channels, data_volts=emg_data,
                           fs=emg.fs, allow_gaps=True)
    return RecordedMotion(
        label=record.label,
        participant_id=record.participant_id,
        trial_id=record.trial_id,
        mocap=mocap,
        emg=emg,
        metadata=dict(record.metadata),
    )


class FaultSpec(abc.ABC):
    """One parameterized acquisition failure applied to a recorded motion."""

    @property
    def name(self) -> str:
        """Short identifier used in reports and test ids."""
        return type(self).__name__

    def fingerprint(self) -> str:
        """Stable description of the fault and its parameters."""
        params = ",".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)  # type: ignore[arg-type]
        )
        return f"{self.name}({params})"

    @abc.abstractmethod
    def apply(self, record: RecordedMotion, seed: SeedLike = None) -> RecordedMotion:
        """Return a faulted copy of ``record`` (the input is never mutated)."""


@dataclass(frozen=True)
class MarkerOcclusion(FaultSpec):
    """Marker dropouts: NaN runs punched into the mocap matrix.

    Delegates the event process to :class:`repro.mocap.noise.OcclusionModel`
    (Poisson events per segment, uniform gap lengths).

    Attributes
    ----------
    dropout_rate_per_s:
        Expected occlusion events per segment per second; ``0`` is the
        identity.
    max_gap_frames:
        Maximum gap length in frames.
    """

    dropout_rate_per_s: float = 1.0
    max_gap_frames: int = 8

    def __post_init__(self) -> None:
        check_in_range(self.dropout_rate_per_s, name="dropout_rate_per_s",
                       low=0.0, high=float("inf"))
        check_positive_int(self.max_gap_frames, name="max_gap_frames")

    def apply(self, record: RecordedMotion, seed: SeedLike = None) -> RecordedMotion:
        model = OcclusionModel(
            dropout_rate_per_s=self.dropout_rate_per_s,
            max_gap_frames=self.max_gap_frames,
        )
        gapped = model.apply(record.mocap.matrix_mm, record.fps, seed=seed)
        return rebuild_record(record, mocap_matrix=gapped)


@dataclass(frozen=True)
class EMGChannelDropout(FaultSpec):
    """Whole EMG channels lost for the entire trial.

    ``"nan"`` mode models a lead-off detection (the amplifier reports NaN);
    ``"flat"`` models an unplugged electrode (a dead, constant-zero line).
    Channels are chosen uniformly without replacement from the seed.

    Attributes
    ----------
    n_channels:
        How many channels drop out; ``0`` is the identity, values beyond the
        record's channel count are clamped to all channels.
    mode:
        ``"nan"`` or ``"flat"``.
    """

    n_channels: int = 1
    mode: str = "nan"

    def __post_init__(self) -> None:
        check_positive_int(self.n_channels, name="n_channels", minimum=0)
        if self.mode not in ("nan", "flat"):
            raise FaultInjectionError(
                f"unknown dropout mode {self.mode!r}; use 'nan' or 'flat'"
            )

    def apply(self, record: RecordedMotion, seed: SeedLike = None) -> RecordedMotion:
        if self.n_channels == 0:
            return rebuild_record(record, emg_data=record.emg.data_volts.copy())
        rng = as_generator(seed)
        n = min(self.n_channels, record.emg.n_channels)
        picked = rng.choice(record.emg.n_channels, size=n, replace=False)
        data = record.emg.data_volts.copy()
        data[:, np.sort(picked)] = np.nan if self.mode == "nan" else 0.0
        return rebuild_record(record, emg_data=data)


@dataclass(frozen=True)
class EMGSaturation(FaultSpec):
    """Amplifier clipping: a stretch of one or more channels pinned at a rail.

    A contiguous segment of each picked channel is clipped to
    ``rail_scale * max |x|`` — the shape of a gain stage driven past its
    range.  The saturated channel stays finite, so this fault exercises the
    *detector* (rail-pinned sample fraction), not the NaN repair path.

    Attributes
    ----------
    n_channels:
        Channels to saturate (``0`` = identity; clamped to the channel count).
    fraction:
        Fraction of the trial duration that clips (``0`` = identity).
    rail_scale:
        Rail level relative to the channel's absolute maximum, in ``(0, 1]``.
    """

    n_channels: int = 1
    fraction: float = 0.5
    rail_scale: float = 0.4

    def __post_init__(self) -> None:
        check_positive_int(self.n_channels, name="n_channels", minimum=0)
        check_in_range(self.fraction, name="fraction", low=0.0, high=1.0)
        check_in_range(self.rail_scale, name="rail_scale", low=0.0, high=1.0,
                       inclusive_low=False)

    def apply(self, record: RecordedMotion, seed: SeedLike = None) -> RecordedMotion:
        data = record.emg.data_volts.copy()
        length = int(round(self.fraction * data.shape[0]))
        if self.n_channels == 0 or length == 0:
            return rebuild_record(record, emg_data=data)
        rng = as_generator(seed)
        n = min(self.n_channels, record.emg.n_channels)
        picked = rng.choice(record.emg.n_channels, size=n, replace=False)
        start = int(rng.integers(0, data.shape[0] - length + 1))
        for col in np.sort(picked):
            column = data[:, col]
            finite = column[np.isfinite(column)]
            if finite.size == 0:
                continue
            rail = self.rail_scale * float(np.max(np.abs(finite)))
            data[start : start + length, col] = np.clip(
                column[start : start + length], -rail, rail
            )
        return rebuild_record(record, emg_data=data)


@dataclass(frozen=True)
class NaNBurst(FaultSpec):
    """Short NaN bursts scattered over one or both streams.

    Models transient acquisition glitches (USB stalls, packet loss): Poisson
    burst events, each hitting one random column for a random run of
    samples.

    Attributes
    ----------
    stream:
        ``"emg"``, ``"mocap"`` or ``"both"``.
    bursts_per_s:
        Expected bursts per stream per second; ``0`` is the identity.
    max_burst:
        Maximum burst length in samples.
    """

    stream: str = "emg"
    bursts_per_s: float = 1.0
    max_burst: int = 10

    def __post_init__(self) -> None:
        if self.stream not in _STREAMS:
            raise FaultInjectionError(
                f"unknown stream {self.stream!r}; use one of {_STREAMS}"
            )
        check_in_range(self.bursts_per_s, name="bursts_per_s",
                       low=0.0, high=float("inf"))
        check_positive_int(self.max_burst, name="max_burst")

    def _burst(self, matrix: np.ndarray, rate_hz: float,
               rng: np.random.Generator) -> np.ndarray:
        out = matrix.copy()
        if self.bursts_per_s <= 0.0 or out.shape[0] < 2:
            return out
        duration_s = out.shape[0] / rate_hz
        n_events = rng.poisson(self.bursts_per_s * duration_s)
        for _ in range(n_events):
            length = int(rng.integers(1, self.max_burst + 1))
            length = min(length, out.shape[0] - 1)
            start = int(rng.integers(0, out.shape[0] - length + 1))
            col = int(rng.integers(0, out.shape[1]))
            out[start : start + length, col] = np.nan
        return out

    def apply(self, record: RecordedMotion, seed: SeedLike = None) -> RecordedMotion:
        emg_rng, mocap_rng = spawn_generators(seed, 2)
        emg_data = None
        mocap_matrix = None
        if self.stream in ("emg", "both"):
            emg_data = self._burst(record.emg.data_volts, record.emg.fs, emg_rng)
        if self.stream in ("mocap", "both"):
            mocap_matrix = self._burst(record.mocap.matrix_mm, record.fps, mocap_rng)
        return rebuild_record(record, mocap_matrix=mocap_matrix, emg_data=emg_data)


@dataclass(frozen=True)
class ClockDrift(FaultSpec):
    """Inter-stream clock drift: one stream's time base runs fast or slow.

    The targeted stream is re-sampled at ``t * (1 + drift)`` by linear
    interpolation (clamped at the trial end), so sample ``i`` of the
    returned stream shows what the drifting device *actually* digitized at
    nominal frame ``i``.  Both streams keep their frame count — the record
    stays "aligned" on paper while its content slides apart, which is
    precisely what makes drift undetectable from a single record and a pure
    accuracy-envelope concern.

    Attributes
    ----------
    drift:
        Fractional rate error (``0.01`` = 1 % fast); ``0`` is the identity.
        Negative values model a slow clock.
    stream:
        ``"emg"`` or ``"mocap"``.
    """

    drift: float = 0.01
    stream: str = "emg"

    def __post_init__(self) -> None:
        check_in_range(self.drift, name="drift", low=-0.5, high=0.5)
        if self.stream not in ("emg", "mocap"):
            raise FaultInjectionError(
                f"unknown stream {self.stream!r}; use 'emg' or 'mocap'"
            )

    def _warp(self, matrix: np.ndarray) -> np.ndarray:
        n = matrix.shape[0]
        t_in = np.arange(n, dtype=np.float64)
        t_warped = np.clip(t_in * (1.0 + self.drift), 0.0, float(n - 1))
        cols = [np.interp(t_warped, t_in, matrix[:, j])
                for j in range(matrix.shape[1])]
        return np.stack(cols, axis=1)

    def apply(self, record: RecordedMotion, seed: SeedLike = None) -> RecordedMotion:
        if not self.drift:
            return rebuild_record(record, emg_data=record.emg.data_volts.copy())
        if self.stream == "emg":
            return rebuild_record(record, emg_data=self._warp(record.emg.data_volts))
        return rebuild_record(record, mocap_matrix=self._warp(record.mocap.matrix_mm))


@dataclass(frozen=True)
class StreamTruncation(FaultSpec):
    """A device stopped early: the trial's tail is missing.

    Both streams are truncated together (an ingest step has to re-align
    them before the record is usable), keeping at least two frames so the
    record stays featurizable.

    Attributes
    ----------
    fraction:
        Fraction of trailing frames lost; ``0`` is the identity.
    """

    fraction: float = 0.25

    def __post_init__(self) -> None:
        check_in_range(self.fraction, name="fraction", low=0.0, high=1.0,
                       inclusive_high=False)

    def apply(self, record: RecordedMotion, seed: SeedLike = None) -> RecordedMotion:
        n = record.n_frames
        n_keep = max(2, int(round((1.0 - self.fraction) * n)))
        n_keep = min(n_keep, n)
        return rebuild_record(
            record,
            mocap_matrix=record.mocap.matrix_mm[:n_keep].copy(),
            emg_data=record.emg.data_volts[:n_keep].copy(),
        )


def inject(
    record: RecordedMotion,
    faults: Sequence[FaultSpec],
    seed: SeedLike = None,
) -> RecordedMotion:
    """Apply ``faults`` to ``record`` in order, deterministically.

    Each fault receives an independent generator spawned from ``seed``, so
    adding or removing one fault never re-seeds the others.  An empty fault
    list returns ``record`` unchanged (the same object).

    Raises
    ------
    FaultInjectionError
        If ``faults`` contains something that is not a :class:`FaultSpec`.
    """
    for fault in faults:
        if not isinstance(fault, FaultSpec):
            raise FaultInjectionError(
                f"faults must be FaultSpec instances, got {type(fault).__name__}"
            )
    if not faults:
        return record
    out = record
    for fault, rng in zip(faults, spawn_generators(seed, len(faults))):
        out = fault.apply(out, seed=rng)
    return out


def default_fault_suite() -> Dict[str, Tuple[FaultSpec, ...]]:
    """The named fault matrix the chaos test tier sweeps.

    Keys are stable scenario names; values are the fault compositions
    (applied in order through :func:`inject`).  Severities are graded:
    ``*_mild`` entries must stay inside a tight accuracy envelope,
    ``*_severe`` entries only have to degrade gracefully (no crash, honest
    report).
    """
    return {
        "occlusion_mild": (MarkerOcclusion(dropout_rate_per_s=0.5,
                                           max_gap_frames=4),),
        "occlusion_severe": (MarkerOcclusion(dropout_rate_per_s=4.0,
                                             max_gap_frames=20),),
        "emg_dropout_nan": (EMGChannelDropout(n_channels=1, mode="nan"),),
        "emg_dropout_flat": (EMGChannelDropout(n_channels=1, mode="flat"),),
        "emg_saturation": (EMGSaturation(n_channels=2, fraction=0.6,
                                         rail_scale=0.3),),
        "nan_burst_emg": (NaNBurst(stream="emg", bursts_per_s=2.0,
                                   max_burst=8),),
        "nan_burst_both": (NaNBurst(stream="both", bursts_per_s=2.0,
                                    max_burst=8),),
        "clock_drift_mild": (ClockDrift(drift=0.005),),
        "clock_drift_severe": (ClockDrift(drift=0.05),),
        "truncated_tail": (StreamTruncation(fraction=0.25),),
        "compound": (
            MarkerOcclusion(dropout_rate_per_s=1.0, max_gap_frames=6),
            EMGChannelDropout(n_channels=1, mode="nan"),
            StreamTruncation(fraction=0.1),
        ),
    }

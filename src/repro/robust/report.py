"""The degradation report: an honest account of what the robust layer did.

Silently surviving a fault is almost as bad as crashing on it — downstream
consumers need to know when an answer was computed from repaired or
partially-masked data.  Every robust featurization therefore produces a
:class:`DegradationReport` that travels with the features (and, via
:meth:`repro.core.model.MotionClassifier.classify_with_report`, with the
query result), and is exported as counters through :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["DegradationReport"]


@dataclass(frozen=True)
class DegradationReport:
    """What the robust layer detected and did for one record.

    Attributes
    ----------
    policy:
        Name of the :class:`~repro.robust.policy.DegradationPolicy` applied.
    clean:
        True when no fault was detected and the base pipeline ran untouched
        (the features are byte-identical to the non-robust path).
    faults_detected:
        Human-readable fault summaries from the diagnosis.
    channels_masked:
        EMG channel names zeroed out and excluded from IAV normalization.
    segments_masked:
        Mocap segment names zeroed out (unrecoverable, all-NaN columns).
    n_windows_total / n_windows_dropped:
        Window counts before and lost to the validity mask.
    n_samples_filled:
        NaN samples reconstructed by gap-filling, both streams combined.
    longest_gap:
        Longest contiguous NaN run (frames) seen in the mocap stream.
    fallback_all_windows:
        True when the validity mask would have dropped *every* window and
        the policy fell back to keeping them all (answering with degraded
        confidence rather than failing).
    """

    policy: str
    clean: bool
    faults_detected: Tuple[str, ...] = ()
    channels_masked: Tuple[str, ...] = ()
    segments_masked: Tuple[str, ...] = ()
    n_windows_total: int = 0
    n_windows_dropped: int = 0
    n_samples_filled: int = 0
    longest_gap: int = 0
    fallback_all_windows: bool = False

    @property
    def degraded(self) -> bool:
        """True when the answer was computed from anything but clean data."""
        return not self.clean

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (tuples become lists)."""
        return {
            "policy": self.policy,
            "clean": self.clean,
            "faults_detected": list(self.faults_detected),
            "channels_masked": list(self.channels_masked),
            "segments_masked": list(self.segments_masked),
            "n_windows_total": self.n_windows_total,
            "n_windows_dropped": self.n_windows_dropped,
            "n_samples_filled": self.n_samples_filled,
            "longest_gap": self.longest_gap,
            "fallback_all_windows": self.fallback_all_windows,
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.clean:
            return f"[{self.policy}] clean: no degradation applied"
        parts = [f"[{self.policy}] degraded"]
        if self.channels_masked:
            parts.append(f"masked channels: {', '.join(self.channels_masked)}")
        if self.segments_masked:
            parts.append(f"masked segments: {', '.join(self.segments_masked)}")
        if self.n_samples_filled:
            parts.append(f"filled {self.n_samples_filled} samples")
        if self.n_windows_dropped:
            parts.append(
                f"dropped {self.n_windows_dropped}/{self.n_windows_total} windows"
            )
        if self.fallback_all_windows:
            parts.append("fallback: kept all windows")
        return "; ".join(parts)

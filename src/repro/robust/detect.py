"""Stream-quality diagnosis for recorded motions.

Before a degradation policy can decide *how* to salvage a record, it needs
an honest account of *what* is wrong with it.  :func:`diagnose_record`
produces a :class:`StreamDiagnosis`: which EMG channels are dead or
saturated, which mocap segments are unrecoverable, where the NaN gaps are,
and a per-frame validity mask the featurizer uses to drop windows that are
mostly corrupt.

Detection is purely observational — nothing here mutates or repairs the
record (that is :mod:`repro.robust.featurize`'s job), so diagnosis can be
run on any record, clean or faulted, at zero risk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.data.record import RecordedMotion
from repro.mocap.gapfill import gap_statistics
from repro.utils.validation import check_in_range

__all__ = ["StreamDiagnosis", "diagnose_record"]


@dataclass(frozen=True)
class StreamDiagnosis:
    """What is wrong with one recorded motion's streams.

    Attributes
    ----------
    emg_dead_channels:
        Channel names that carry no usable signal for the whole trial
        (all-NaN, or constant — an unplugged electrode).
    emg_saturated_channels:
        Channel names pinned at an amplifier rail for a suspicious fraction
        of the trial.
    mocap_dead_segments:
        Segment names with at least one coordinate column entirely NaN
        (gap-filling cannot reconstruct them).
    emg_nan_samples / mocap_nan_samples:
        Total NaN sample counts per stream.
    mocap_gap_count / mocap_longest_gap:
        Occlusion-gap statistics from :func:`repro.mocap.gapfill.gap_statistics`.
    frame_valid:
        Boolean ``(n_frames,)`` mask — ``True`` where every *recoverable*
        column of both streams is finite.  Dead channels/segments are
        excluded from the vote: they are masked wholesale by the policy, so
        they should not condemn otherwise-good frames.
    """

    emg_dead_channels: Tuple[str, ...]
    emg_saturated_channels: Tuple[str, ...]
    mocap_dead_segments: Tuple[str, ...]
    emg_nan_samples: int
    mocap_nan_samples: int
    mocap_gap_count: int
    mocap_longest_gap: int
    frame_valid: np.ndarray = field(repr=False)

    @property
    def is_clean(self) -> bool:
        """True when nothing at all was detected (fast path is safe)."""
        return (
            not self.emg_dead_channels
            and not self.emg_saturated_channels
            and not self.mocap_dead_segments
            and self.emg_nan_samples == 0
            and self.mocap_nan_samples == 0
        )

    @property
    def valid_fraction(self) -> float:
        """Fraction of frames with all recoverable columns finite."""
        if self.frame_valid.size == 0:
            return 0.0
        return float(np.mean(self.frame_valid))

    def faults_detected(self) -> Tuple[str, ...]:
        """Human-readable summaries, one per detected fault class."""
        found = []
        if self.emg_dead_channels:
            found.append(
                "dead EMG channels: " + ", ".join(self.emg_dead_channels)
            )
        if self.emg_saturated_channels:
            found.append(
                "saturated EMG channels: " + ", ".join(self.emg_saturated_channels)
            )
        if self.mocap_dead_segments:
            found.append(
                "dead mocap segments: " + ", ".join(self.mocap_dead_segments)
            )
        if self.mocap_gap_count > 0:
            found.append(
                f"{self.mocap_gap_count} mocap gaps "
                f"(longest {self.mocap_longest_gap} frames)"
            )
        emg_gap_nans = self.emg_nan_samples
        if emg_gap_nans > 0:
            found.append(f"{emg_gap_nans} NaN EMG samples")
        return tuple(found)


def _dead_emg_channels(data: np.ndarray) -> np.ndarray:
    """Boolean per-column mask of channels with no usable signal."""
    n_channels = data.shape[1]
    dead = np.zeros(n_channels, dtype=bool)
    for j in range(n_channels):
        column = data[:, j]
        finite = column[np.isfinite(column)]
        if finite.size == 0:
            dead[j] = True
            continue
        # A constant line (zero peak-to-peak range) carries no signal: an
        # unplugged electrode or a zeroed-out channel.
        if float(np.max(finite) - np.min(finite)) <= 0.0:
            dead[j] = True
    return dead


def _saturated_emg_channels(
    data: np.ndarray, dead: np.ndarray, saturation_fraction: float
) -> np.ndarray:
    """Boolean per-column mask of rail-pinned (clipped) channels.

    A gain stage driven past its range produces *plateaus*: long runs of
    consecutive, exactly-identical samples at the rail value.  Healthy EMG
    (a broadband stochastic signal) essentially never repeats a sample
    exactly, so the fraction of zero-difference consecutive pairs is a
    clean clipping detector that needs no assumption about where the rail
    sits relative to the channel's peak.
    """
    n_channels = data.shape[1]
    saturated = np.zeros(n_channels, dtype=bool)
    for j in range(n_channels):
        if dead[j]:
            continue
        column = data[:, j]
        finite = column[np.isfinite(column)]
        if finite.size < 2:
            continue
        plateau = np.abs(np.diff(finite)) <= 0.0
        if float(np.mean(plateau)) >= saturation_fraction:
            saturated[j] = True
    return saturated


def diagnose_record(
    record: RecordedMotion, saturation_fraction: float = 0.05
) -> StreamDiagnosis:
    """Diagnose ``record``'s streams without modifying them.

    Parameters
    ----------
    record:
        The recorded motion to inspect.
    saturation_fraction:
        Minimum fraction of a channel's finite samples pinned at its rail
        before the channel is flagged as saturated.
    """
    check_in_range(saturation_fraction, name="saturation_fraction",
                   low=0.0, high=1.0, inclusive_low=False)
    emg = record.emg.data_volts
    mocap = record.mocap.matrix_mm

    dead = _dead_emg_channels(emg)
    saturated = _saturated_emg_channels(emg, dead, saturation_fraction)
    dead_names = tuple(
        name for name, flag in zip(record.emg.channels, dead) if flag
    )
    saturated_names = tuple(
        name for name, flag in zip(record.emg.channels, saturated) if flag
    )

    dead_segments = []
    for segment in record.mocap.segments:
        joint = record.mocap.joint_matrix(segment)
        if np.any(np.all(np.isnan(joint), axis=0)):
            dead_segments.append(segment)
    dead_segment_set = set(dead_segments)

    mocap_stats = gap_statistics(mocap)

    # Frame validity votes exclude dead channels/segments: those columns are
    # masked wholesale by the policy and must not condemn good frames.
    emg_vote = np.isfinite(emg[:, ~dead]).all(axis=1) if np.any(~dead) \
        else np.ones(emg.shape[0], dtype=bool)
    live_cols = [
        record.mocap.column_slice(s)
        for s in record.mocap.segments
        if s not in dead_segment_set
    ]
    if live_cols:
        mocap_live = np.hstack([mocap[:, sl] for sl in live_cols])
        mocap_vote = np.isfinite(mocap_live).all(axis=1)
    else:
        mocap_vote = np.ones(mocap.shape[0], dtype=bool)
    frame_valid = emg_vote & mocap_vote
    frame_valid.flags.writeable = False

    return StreamDiagnosis(
        emg_dead_channels=dead_names,
        emg_saturated_channels=saturated_names,
        mocap_dead_segments=tuple(dead_segments),
        emg_nan_samples=int(np.isnan(emg).sum()),
        mocap_nan_samples=int(mocap_stats["n_nan_samples"]),
        mocap_gap_count=int(mocap_stats["n_gaps"]),
        mocap_longest_gap=int(mocap_stats["longest_gap"]),
        frame_valid=frame_valid,
    )

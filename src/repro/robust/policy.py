"""Degradation policies: what to do when a record is not clean.

A :class:`DegradationPolicy` is a small frozen value object that the
robust featurizer (:mod:`repro.robust.featurize`) consults at every
decision point.  Three presets cover the useful spectrum:

``strict``
    Refuse degraded input outright — the pre-robust behavior, made loud
    and typed (:class:`repro.errors.DegradationError` instead of a NaN
    propagating into features).
``mask``
    Repair what is safely repairable (gap-fill short NaN runs, zero and
    mask dead channels, renormalize IAV) but drop any window that still
    touches corrupt frames.
``repair``
    Everything ``mask`` does, plus keep windows that are mostly valid —
    prefer answering with degraded confidence over not answering.

Policies are part of the feature-cache fingerprint, so features computed
under different policies never collide in the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.errors import DegradationError
from repro.utils.validation import check_in_range

__all__ = [
    "DegradationPolicy",
    "STRICT",
    "MASK",
    "REPAIR",
    "POLICY_NAMES",
    "resolve_policy",
]


@dataclass(frozen=True)
class DegradationPolicy:
    """How the pipeline reacts to faults detected in a record.

    Attributes
    ----------
    name:
        Stable identifier (used in CLI flags, reports, cache fingerprints).
    on_fault:
        ``"raise"`` rejects any non-clean record with
        :class:`~repro.errors.DegradationError`; ``"degrade"`` proceeds with
        the salvage pipeline.
    mask_channels:
        Zero out dead EMG channels / dead mocap segments before gap-filling
        (the fill would otherwise fail on all-NaN columns).
    renormalize_iav:
        Rescale the surviving channels' IAV features by
        ``n_channels / n_valid`` so a record with one masked channel stays
        comparable to fully-observed signatures.
    min_valid_fraction:
        A window is kept only if at least this fraction of its frames are
        valid per the diagnosis.  ``1.0`` drops any window touching a
        corrupt frame; lower values trade purity for coverage.
    saturation_fraction:
        Passed through to :func:`repro.robust.detect.diagnose_record`.
    """

    name: str
    on_fault: str = "degrade"
    mask_channels: bool = True
    renormalize_iav: bool = True
    min_valid_fraction: float = 1.0
    saturation_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.on_fault not in ("raise", "degrade"):
            raise DegradationError(
                f"on_fault must be 'raise' or 'degrade', got {self.on_fault!r}"
            )
        check_in_range(self.min_valid_fraction, name="min_valid_fraction",
                       low=0.0, high=1.0)
        check_in_range(self.saturation_fraction, name="saturation_fraction",
                       low=0.0, high=1.0, inclusive_low=False)

    def fingerprint(self) -> str:
        """Stable string mixed into feature-cache keys."""
        return (
            f"policy:{self.name}|on_fault={self.on_fault}"
            f"|mask={int(self.mask_channels)}"
            f"|renorm={int(self.renormalize_iav)}"
            f"|minvalid={self.min_valid_fraction!r}"
            f"|sat={self.saturation_fraction!r}"
        )


#: Reject any degraded record with a typed error.
STRICT = DegradationPolicy(name="strict", on_fault="raise")

#: Repair, mask, and drop every window that touches a corrupt frame.
MASK = DegradationPolicy(name="mask", min_valid_fraction=1.0)

#: Repair, mask, and keep windows that are at least half valid.
REPAIR = DegradationPolicy(name="repair", min_valid_fraction=0.5)

_PRESETS = {p.name: p for p in (STRICT, MASK, REPAIR)}

#: Preset names accepted by :func:`resolve_policy` and the CLI.
POLICY_NAMES: Tuple[str, ...] = tuple(_PRESETS)


def resolve_policy(
    policy: Union[str, DegradationPolicy, None]
) -> Optional[DegradationPolicy]:
    """Normalize a policy argument: preset name, policy object, or None.

    ``None`` and ``"off"`` both mean "no robust layer at all" and return
    ``None`` — callers then use the base featurizer untouched, keeping the
    default path byte-identical to the pre-robust pipeline.
    """
    if policy is None:
        return None
    if isinstance(policy, DegradationPolicy):
        return policy
    if isinstance(policy, str):
        if policy == "off":
            return None
        try:
            return _PRESETS[policy]
        except KeyError:
            raise DegradationError(
                f"unknown policy {policy!r}; use one of "
                f"{('off',) + POLICY_NAMES}"
            ) from None
    raise DegradationError(
        f"policy must be a name or DegradationPolicy, got {type(policy).__name__}"
    )

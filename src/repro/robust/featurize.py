"""Degradation-aware featurization: diagnose, repair, mask, featurize.

:class:`RobustFeaturizer` wraps a :class:`~repro.features.combine.WindowFeaturizer`
and applies a :class:`~repro.robust.policy.DegradationPolicy` in front of
it:

1. **Diagnose** the record (:func:`repro.robust.detect.diagnose_record`).
2. If the record is **clean**, call the base featurizer directly — the
   output is byte-identical to the non-robust path.
3. Under ``strict``, a non-clean record raises
   :class:`~repro.errors.DegradationError`.
4. Otherwise **repair**: zero out dead EMG channels / dead mocap segments
   (they cannot be reconstructed), gap-fill every remaining NaN run in both
   streams (:func:`repro.mocap.gapfill.fill_gaps` works on any per-column
   signal matrix), and featurize the repaired record.
5. **Renormalize IAV** so signatures built from fewer live channels stay
   comparable to fully-observed ones, then **drop windows** whose valid
   frame fraction falls below the policy threshold — falling back to
   keeping all windows when none survive.

Every step is recorded in a :class:`~repro.robust.report.DegradationReport`
and exported as counters through :mod:`repro.obs`.

The wrapper duck-types the featurizer protocol used across the repo
(``features``, ``cache_fingerprint``, ``features_batch``, ``window_ms``),
is picklable for process-pool fan-out, and mixes the policy into the cache
fingerprint so robust and non-robust features never collide in the
feature cache.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.data.record import RecordedMotion
from repro.emg.recording import EMGRecording
from repro.errors import DegradationError, ValidationError
from repro.features.base import WindowFeatures
from repro.features.combine import WindowFeaturizer
from repro.mocap.gapfill import fill_gaps
from repro.obs.config import record_counter, span
from repro.robust.detect import StreamDiagnosis, diagnose_record
from repro.robust.faults import rebuild_record
from repro.robust.policy import DegradationPolicy, resolve_policy
from repro.robust.report import DegradationReport

__all__ = ["RobustFeaturizer", "mask_emg_channels", "drop_emg_channels"]


def _channel_indices(record: RecordedMotion, names: Sequence[str]) -> List[int]:
    """Column indices of ``names`` in the record's EMG data, validated."""
    indices = []
    for name in names:
        try:
            indices.append(record.emg.channels.index(name))
        except ValueError:
            raise ValidationError(
                f"channel {name!r} not recorded; have {record.emg.channels}"
            ) from None
    return indices


def mask_emg_channels(
    record: RecordedMotion, names: Sequence[str]
) -> RecordedMotion:
    """A copy of ``record`` with the named EMG channels zeroed out.

    This is exactly what a degradation policy does to a dead channel: the
    channel's columns stay in the feature layout (so signatures remain
    dimension-compatible) but contribute nothing.
    """
    data = record.emg.data_volts.copy()
    data[:, _channel_indices(record, names)] = 0.0
    return rebuild_record(record, emg_data=data)


def drop_emg_channels(
    record: RecordedMotion, names: Sequence[str]
) -> RecordedMotion:
    """A copy of ``record`` with the named EMG channels removed entirely.

    Unlike :func:`mask_emg_channels` this changes the feature layout; it
    exists for ablations and for the property test pinning the equivalence
    *mask-then-featurize == featurize-then-drop-columns*.
    """
    dropped = set(_channel_indices(record, names))
    keep = [j for j in range(record.emg.n_channels) if j not in dropped]
    if not keep:
        raise ValidationError("cannot drop every EMG channel")
    emg = EMGRecording(
        channels=tuple(record.emg.channels[j] for j in keep),
        data_volts=record.emg.data_volts[:, keep],
        fs=record.emg.fs,
        allow_gaps=True,
    )
    return RecordedMotion(
        label=record.label,
        participant_id=record.participant_id,
        trial_id=record.trial_id,
        mocap=record.mocap,
        emg=emg,
        metadata=dict(record.metadata),
    )


class RobustFeaturizer:
    """A degradation-aware wrapper around a window featurizer.

    Parameters
    ----------
    base:
        The wrapped :class:`~repro.features.combine.WindowFeaturizer`.
    policy:
        A :class:`~repro.robust.policy.DegradationPolicy` or preset name
        (``"strict"``, ``"mask"``, ``"repair"``).
    """

    def __init__(
        self,
        base: WindowFeaturizer,
        policy: Union[str, DegradationPolicy] = "mask",
    ):
        resolved = resolve_policy(policy)
        if resolved is None:
            raise DegradationError(
                "RobustFeaturizer requires a policy; use the base featurizer "
                "directly for the non-robust path"
            )
        self.base = base
        self.policy = resolved

    # -- featurizer protocol -------------------------------------------

    @property
    def window_ms(self) -> float:
        """Window duration of the wrapped featurizer."""
        return self.base.window_ms

    @property
    def stride_ms(self):
        """Stride of the wrapped featurizer."""
        return self.base.stride_ms

    @property
    def use_emg(self) -> bool:
        """Whether the wrapped featurizer extracts EMG features."""
        return self.base.use_emg

    @property
    def use_mocap(self) -> bool:
        """Whether the wrapped featurizer extracts mocap features."""
        return self.base.use_mocap

    @property
    def impl(self) -> str:
        """Implementation knob of the wrapped featurizer."""
        return self.base.impl

    @property
    def dtype(self) -> str:
        """Working-dtype knob of the wrapped featurizer."""
        return self.base.dtype

    def feature_names(self, record: RecordedMotion) -> List[str]:
        """Dimension names of the combined vector (same as the base)."""
        return self.base.feature_names(record)

    def cache_fingerprint(self) -> str:
        """Base fingerprint plus the policy — robust features cache apart."""
        return f"{self.base.cache_fingerprint()}|{self.policy.fingerprint()}"

    def features_batch(
        self,
        records: Sequence[RecordedMotion],
        n_jobs: int = 1,
        backend: str = "auto",
        cache=None,
    ) -> List[WindowFeatures]:
        """Featurize many records — parallel and cached, order preserved."""
        from repro.parallel.runner import featurize_records

        return featurize_records(self, records, n_jobs=n_jobs,
                                 backend=backend, cache=cache)

    def features(self, record: RecordedMotion) -> WindowFeatures:
        """Degradation-aware combined feature matrix (report discarded)."""
        return self.features_with_report(record)[0]

    # -- the robust pipeline -------------------------------------------

    def diagnose(self, record: RecordedMotion) -> StreamDiagnosis:
        """Diagnose ``record`` under this policy's saturation threshold."""
        return diagnose_record(
            record, saturation_fraction=self.policy.saturation_fraction
        )

    def repair(
        self, record: RecordedMotion, diagnosis: StreamDiagnosis
    ) -> Tuple[RecordedMotion, int]:
        """Salvage ``record``: mask dead columns, gap-fill NaN runs.

        Returns the repaired record and the number of NaN samples that were
        reconstructed by interpolation (masked columns are zeroed, not
        counted as filled).  A clean record is returned unchanged — the
        same object, so the clean path stays byte-identical.
        """
        if diagnosis.is_clean:
            return record, 0
        emg = record.emg.data_volts.copy()
        mocap = record.mocap.matrix_mm.copy()
        if self.policy.mask_channels:
            # Dead columns first: gap-filling cannot bridge an all-NaN
            # column, and a saturated channel's content is not trustworthy.
            masked = set(diagnosis.emg_dead_channels)
            masked.update(diagnosis.emg_saturated_channels)
            for name in masked:
                emg[:, record.emg.channels.index(name)] = 0.0
            for segment in diagnosis.mocap_dead_segments:
                mocap[:, record.mocap.column_slice(segment)] = 0.0
        n_fill = int(np.isnan(emg).sum() + np.isnan(mocap).sum())
        if np.isnan(emg).any():
            emg = fill_gaps(emg)
        if np.isnan(mocap).any():
            mocap = fill_gaps(mocap)
        return rebuild_record(record, mocap_matrix=mocap, emg_data=emg), n_fill

    def _masked_channels(self, diagnosis: StreamDiagnosis) -> Tuple[str, ...]:
        if not self.policy.mask_channels:
            return ()
        seen = set()
        ordered = []
        for name in diagnosis.emg_dead_channels + diagnosis.emg_saturated_channels:
            if name not in seen:
                seen.add(name)
                ordered.append(name)
        return tuple(ordered)

    def _renormalize_iav(
        self,
        matrix: np.ndarray,
        record: RecordedMotion,
        masked: Tuple[str, ...],
    ) -> np.ndarray:
        """Scale surviving channels' EMG columns by ``n_channels / n_valid``.

        The EMG block leads the combined vector and is laid out
        channel-major with ``features_per_channel`` values per channel (see
        :class:`repro.features.base.EMGFeatureExtractor`), so a channel's
        columns are addressed positionally.
        """
        if not self.base.use_emg or not masked:
            return matrix
        n_channels = record.emg.n_channels
        masked_set = set(masked)
        valid = [j for j, name in enumerate(record.emg.channels)
                 if name not in masked_set]
        if not valid or len(valid) == n_channels:
            return matrix
        fpc = self.base.emg_extractor.features_per_channel
        scale = n_channels / len(valid)
        out = matrix.copy()
        for j in valid:
            out[:, j * fpc : (j + 1) * fpc] *= scale
        return out

    def _window_mask(
        self,
        bounds: Tuple[Tuple[int, int], ...],
        frame_valid: np.ndarray,
    ) -> np.ndarray:
        """Boolean keep-mask over windows from the per-frame validity vote."""
        keep = np.zeros(len(bounds), dtype=bool)
        n = frame_valid.shape[0]
        for i, (start, stop) in enumerate(bounds):
            window_votes = frame_valid[start:min(stop, n)]
            if window_votes.size == 0:
                continue
            keep[i] = float(np.mean(window_votes)) >= self.policy.min_valid_fraction
        return keep

    def features_with_report(
        self, record: RecordedMotion
    ) -> Tuple[WindowFeatures, DegradationReport]:
        """Featurize ``record`` and report every degradation decision.

        Raises
        ------
        DegradationError
            Under a ``strict`` policy, when the record is not clean.
        """
        with span("robust.featurize", key=record.key,
                  policy=self.policy.name) as sp:
            diagnosis = self.diagnose(record)
            if diagnosis.is_clean:
                wf = self.base.features(record)
                report = DegradationReport(
                    policy=self.policy.name,
                    clean=True,
                    n_windows_total=wf.n_windows,
                )
                sp.set(clean=True, n_windows=wf.n_windows)
                return wf, report
            faults = diagnosis.faults_detected()
            if self.policy.on_fault == "raise":
                raise DegradationError(
                    f"record {record.key!r} is degraded under policy "
                    f"{self.policy.name!r}: " + "; ".join(faults)
                )
            record_counter("robust.records_degraded")
            repaired, n_filled = self.repair(record, diagnosis)
            wf = self.base.features(repaired)
            masked = self._masked_channels(diagnosis)
            matrix = self._renormalize_iav(wf.matrix, record, masked)
            keep = self._window_mask(wf.bounds, diagnosis.frame_valid)
            n_total = wf.n_windows
            fallback = not bool(keep.any())
            if fallback:
                # Refuse to answer with nothing: degraded confidence beats
                # an empty feature matrix that downstream cannot use.
                keep = np.ones(n_total, dtype=bool)
            n_dropped = n_total - int(keep.sum())
            out = WindowFeatures(
                matrix=matrix[keep],
                bounds=tuple(b for b, k in zip(wf.bounds, keep) if k),
                names=wf.names,
            )
            record_counter("robust.windows_dropped", n_dropped)
            record_counter("robust.channels_masked", len(masked))
            record_counter("robust.samples_filled", n_filled)
            if fallback:
                record_counter("robust.fallback_all_windows")
            report = DegradationReport(
                policy=self.policy.name,
                clean=False,
                faults_detected=faults,
                channels_masked=masked,
                segments_masked=diagnosis.mocap_dead_segments,
                n_windows_total=n_total,
                n_windows_dropped=n_dropped,
                n_samples_filled=n_filled,
                longest_gap=diagnosis.mocap_longest_gap,
                fallback_all_windows=fallback,
            )
            sp.set(clean=False, n_windows=out.n_windows,
                   n_dropped=n_dropped, n_masked=len(masked))
            return out, report

"""Motion-class abstraction and registry.

A :class:`MotionClass` is a parametric description of one semantic motion.
Calling :meth:`MotionClass.plan` with a trial variation draws a concrete
performance: a :class:`MotionPlan` holding the joint-angle animation (for the
motion-capture simulator) and per-muscle activation envelopes (for the EMG
synthesizer), both on the motion-capture time base.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.motions.profiles import smooth_noise
from repro.motions.variation import TrialVariation
from repro.skeleton.kinematics import JointAngles
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_array

__all__ = [
    "MotionPlan",
    "MotionClass",
    "register_motion_class",
    "get_motion_class",
    "available_motions",
    "motions_for_limb",
]


@dataclass
class MotionPlan:
    """A concrete planned performance of a motion.

    Attributes
    ----------
    label:
        Motion class name (e.g. ``"raise_arm"``).
    limb:
        Which study the motion belongs to: ``"hand_r"`` or ``"leg_r"``.
    fps:
        Frame rate of the animation and activation curves.
    animation:
        Joint-angle trajectories for the skeleton.
    activations:
        Per-muscle activation envelopes in [0, ~1.6], one value per frame.
        (Values may exceed 1 after trial gain variation; the EMG synthesizer
        treats them as relative drive.)
    """

    label: str
    limb: str
    fps: float
    animation: JointAngles
    activations: Dict[str, np.ndarray]
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = self.animation.n_frames
        validated: Dict[str, np.ndarray] = {}
        for muscle, env in self.activations.items():
            env = check_array(env, name=f"activations[{muscle!r}]", ndim=1)
            if len(env) != n:
                raise ValidationError(
                    f"activation for {muscle!r} has {len(env)} frames, animation has {n}"
                )
            if np.any(env < 0):
                raise ValidationError(f"activation for {muscle!r} must be non-negative")
            validated[muscle] = env
        self.activations = validated

    @property
    def n_frames(self) -> int:
        """Number of frames in the plan."""
        return self.animation.n_frames

    @property
    def duration_s(self) -> float:
        """Duration of the planned motion in seconds."""
        return self.n_frames / self.fps

    @property
    def muscles(self) -> List[str]:
        """Muscle names with activation envelopes, sorted."""
        return sorted(self.activations)


class MotionClass(abc.ABC):
    """Abstract parametric motion.

    Subclasses implement :meth:`_angles` and :meth:`_activations` in terms of
    normalized time and receive the already-varied amplitude; the base class
    handles duration/speed variation, timing jitter, smooth angle wobble, and
    activation gains, so every motion class varies consistently.
    """

    #: Motion class name; unique across the registry.
    name: str = ""
    #: Limb/study this motion belongs to: ``"hand_r"`` or ``"leg_r"``.
    limb: str = ""
    #: Nominal duration of one performance, seconds.
    nominal_duration_s: float = 3.0
    #: Muscles this motion drives (must match the limb's electrode montage).
    muscles: Tuple[str, ...] = ()
    #: Segments whose angles the motion animates.
    animated_segments: Tuple[str, ...] = ()

    def plan(
        self,
        variation: Optional[TrialVariation] = None,
        fps: float = 120.0,
        seed: SeedLike = None,
    ) -> MotionPlan:
        """Draw one concrete performance of this motion.

        Parameters
        ----------
        variation:
            Trial variation (defaults to the identity variation).
        fps:
            Frame rate; the paper's systems run at 120 Hz.
        seed:
            RNG for the smooth angle wobble.
        """
        if fps <= 0:
            raise ValidationError(f"fps must be positive, got {fps}")
        variation = variation or TrialVariation()
        rng = as_generator(seed)
        duration = self.nominal_duration_s / variation.speed
        n = max(8, int(round(duration * fps)))
        s = np.linspace(0.0, 1.0, n)

        angles = self._angles(s, variation.amplitude)
        for seg, arr in angles.items():
            arr = check_array(arr, name=f"angles[{seg!r}]", ndim=2, shape=(n, 3))
            if variation.angle_noise_rad > 0:
                wobble = np.stack(
                    [
                        smooth_noise(n, rng, variation.angle_noise_rad)
                        for _ in range(3)
                    ],
                    axis=1,
                )
                arr = arr + wobble
            angles[seg] = arr

        s_act = np.clip(s - variation.timing_shift, 0.0, 1.0)
        activations = self._activations(s_act, variation.amplitude)
        for muscle in self.muscles:
            if muscle not in activations:
                raise ValidationError(
                    f"motion {self.name!r} did not produce activation for {muscle!r}"
                )
        scaled = {
            muscle: np.maximum(env, 0.0) * variation.gain_for(muscle)
            for muscle, env in activations.items()
        }
        return MotionPlan(
            label=self.name,
            limb=self.limb,
            fps=fps,
            animation=JointAngles(n_frames=n, angles_rad=angles),
            activations=scaled,
            metadata={
                "amplitude": variation.amplitude,
                "speed": variation.speed,
                "duration_s": duration,
            },
        )

    @abc.abstractmethod
    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        """Joint-angle curves at normalized times ``s``; shape (n, 3) each."""

    @abc.abstractmethod
    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        """Per-muscle activation envelopes in [0, 1] at normalized times."""


_REGISTRY: Dict[str, MotionClass] = {}


def register_motion_class(motion: MotionClass) -> MotionClass:
    """Add ``motion`` to the global registry (idempotent per name).

    Raises
    ------
    ValidationError
        If a *different* motion object is already registered under the name.
    """
    if not motion.name:
        raise ValidationError("motion class must define a name")
    existing = _REGISTRY.get(motion.name)
    if existing is not None and type(existing) is not type(motion):
        raise ValidationError(f"motion name {motion.name!r} already registered")
    _REGISTRY[motion.name] = motion
    return motion


def get_motion_class(name: str) -> MotionClass:
    """Look up a registered motion by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown motion {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_motions() -> List[str]:
    """All registered motion names, sorted."""
    return sorted(_REGISTRY)


def motions_for_limb(limb: str) -> List[MotionClass]:
    """All registered motions for ``limb`` (``"hand_r"`` or ``"leg_r"``)."""
    out = [m for m in _REGISTRY.values() if m.limb == limb]
    if not out:
        raise ValidationError(f"no motions registered for limb {limb!r}")
    return sorted(out, key=lambda m: m.name)

"""Left/right mirroring of motion plans.

The paper's protocols instrument both sides ("on each hand ... on each
leg") but, like most studies, evaluates the right limb.  Rather than
duplicating every motion class for the left side, this module mirrors a
planned right-side performance across the sagittal (X = 0) plane:

* segment names swap their ``_r``/``_l`` suffixes;
* Euler angles transform as a reflection about the YZ-plane: rotations
  about the Y and Z axes flip sign, rotations about X are preserved;
* activation envelopes carry over to the homologous muscles.

The transformation is verified property-style in the test-suite: forward
kinematics of the mirrored plan equals the mirror image of the original
plan's kinematics.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ValidationError
from repro.motions.base import MotionPlan
from repro.skeleton.kinematics import JointAngles

__all__ = ["mirror_name", "mirror_plan"]

#: Reflection about the X = 0 plane flips the sign of Y and Z rotations.
_ANGLE_FLIP = np.array([1.0, -1.0, -1.0])


def mirror_name(name: str) -> str:
    """Swap a ``_r``/``_l`` side suffix; names without one pass through."""
    if name.endswith("_r"):
        return name[:-2] + "_l"
    if name.endswith("_l"):
        return name[:-2] + "_r"
    return name


def mirror_plan(plan: MotionPlan) -> MotionPlan:
    """Mirror a planned performance to the opposite side.

    Parameters
    ----------
    plan:
        A right- (or left-) side motion plan.

    Returns
    -------
    MotionPlan
        The homologous plan for the other side; its ``limb`` and all
        segment/muscle names have their side suffix swapped.
    """
    if not plan.limb.endswith(("_r", "_l")):
        raise ValidationError(
            f"plan limb {plan.limb!r} carries no side suffix to mirror"
        )
    mirrored_angles: Dict[str, np.ndarray] = {}
    for segment, angles in plan.animation.angles_rad.items():
        mirrored_angles[mirror_name(segment)] = angles * _ANGLE_FLIP
    root = plan.animation.root_position_mm
    if root is not None:
        root = root * np.array([-1.0, 1.0, 1.0])
    animation = JointAngles(
        n_frames=plan.animation.n_frames,
        angles_rad=mirrored_angles,
        root_position_mm=root,
    )
    activations = {
        mirror_name(muscle): env.copy()
        for muscle, env in plan.activations.items()
    }
    return MotionPlan(
        label=plan.label,
        limb=mirror_name(plan.limb),
        fps=plan.fps,
        animation=animation,
        activations=activations,
        metadata=dict(plan.metadata),
    )

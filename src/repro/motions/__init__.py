"""Parametric human-motion generators.

These replace the paper's live participants.  Each :class:`MotionClass`
describes one semantic motion ("raise arm", "throw ball", ...) as joint-angle
trajectories plus per-muscle activation envelopes; the variation model adds
inter-trial and inter-participant variability so that semantically similar
motions are *not* identical — the property that motivates the paper's fuzzy
approach ("semantically similar motions such as walking can have large
variations in EMG signals").
"""

from repro.motions.base import (
    MotionClass,
    MotionPlan,
    available_motions,
    get_motion_class,
    motions_for_limb,
    register_motion_class,
)
from repro.motions.variation import ParticipantProfile, TrialVariation, VariationModel
from repro.motions.composer import compose_plans
from repro.motions.mirror import mirror_name, mirror_plan
from repro.motions.arm import ARM_MOTIONS
from repro.motions.leg import LEG_MOTIONS

__all__ = [
    "MotionClass",
    "MotionPlan",
    "available_motions",
    "get_motion_class",
    "motions_for_limb",
    "register_motion_class",
    "ParticipantProfile",
    "TrialVariation",
    "VariationModel",
    "compose_plans",
    "mirror_name",
    "mirror_plan",
    "ARM_MOTIONS",
    "LEG_MOTIONS",
]

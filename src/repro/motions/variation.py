"""Inter-trial and inter-participant variability models.

Two layers of variability, mirroring how a real capture session varies:

* :class:`ParticipantProfile` — stable per-person traits: body scale,
  per-muscle strength gains, idiosyncratic style offsets on joint angles.
* :class:`TrialVariation` — per-trial draw: overall amplitude and speed
  factors, timing jitter, smooth angle wobble, and (crucially, per the paper)
  large multiplicative EMG activation variability.

The default sigma constants were calibrated once so that the reproduction
lands in the paper's reported bands (10–20 % misclassification for 10–25
clusters; ~80 % k-NN precision); they are plain module constants so ablation
studies can vary them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["TrialVariation", "ParticipantProfile", "VariationModel"]

#: Std of the per-trial motion amplitude factor (multiplicative, mean 1).
AMPLITUDE_SIGMA = 0.10
#: Std of the per-trial speed factor (multiplicative, mean 1).
SPEED_SIGMA = 0.12
#: Std of the smooth per-trial joint-angle wobble, radians.
ANGLE_NOISE_RAD = 0.035
#: Sigma of the log-normal per-trial, per-muscle activation gain.  EMG
#: amplitude varies far more across repetitions than kinematics do — the
#: paper's motivation for a fuzzy feature space.
ACTIVATION_GAIN_LOG_SIGMA = 0.35
#: Std of per-trial activation timing shift as a fraction of motion duration.
TIMING_JITTER_FRACTION = 0.03
#: Std of the per-participant body scale (multiplicative, mean 1).
BODY_SCALE_SIGMA = 0.05
#: Sigma of the log-normal per-participant muscle strength gain.
STRENGTH_LOG_SIGMA = 0.25
#: Std of per-participant style offsets on joint-angle amplitudes.
STYLE_SIGMA = 0.06


@dataclass(frozen=True)
class TrialVariation:
    """One trial's draw of nuisance parameters.

    Attributes
    ----------
    amplitude:
        Multiplicative factor on all joint-angle excursions.
    speed:
        Multiplicative factor on motion speed (duration divides by it).
    angle_noise_rad:
        Std of smooth additive joint-angle wobble in radians.
    activation_gains:
        Per-muscle multiplicative gain on the activation envelope.
    timing_shift:
        Activation onset shift as a signed fraction of the motion duration.
    """

    amplitude: float = 1.0
    speed: float = 1.0
    angle_noise_rad: float = 0.0
    activation_gains: Dict[str, float] = field(default_factory=dict)
    timing_shift: float = 0.0

    def gain_for(self, muscle: str) -> float:
        """Activation gain for ``muscle`` (1.0 when not drawn)."""
        return self.activation_gains.get(muscle, 1.0)


@dataclass(frozen=True)
class ParticipantProfile:
    """Stable traits of one (synthetic) participant.

    Attributes
    ----------
    participant_id:
        Identifier used in dataset metadata.
    body_scale:
        Anthropometric scale applied to all segment lengths.
    strength_gains:
        Per-muscle multiplicative strength (EMG amplitude) factors.
    style_amplitude:
        Idiosyncratic multiplicative offset on motion amplitude.
    style_speed:
        Idiosyncratic multiplicative offset on motion speed.
    """

    participant_id: str
    body_scale: float = 1.0
    strength_gains: Dict[str, float] = field(default_factory=dict)
    style_amplitude: float = 1.0
    style_speed: float = 1.0

    def strength_for(self, muscle: str) -> float:
        """Strength gain for ``muscle`` (1.0 when not drawn)."""
        return self.strength_gains.get(muscle, 1.0)


class VariationModel:
    """Samples :class:`ParticipantProfile` and :class:`TrialVariation` draws.

    Parameters
    ----------
    amplitude_sigma, speed_sigma, angle_noise_rad, activation_gain_log_sigma,
    timing_jitter_fraction:
        Per-trial sigmas; default to the calibrated module constants.
    body_scale_sigma, strength_log_sigma, style_sigma:
        Per-participant sigmas.
    """

    def __init__(
        self,
        amplitude_sigma: float = AMPLITUDE_SIGMA,
        speed_sigma: float = SPEED_SIGMA,
        angle_noise_rad: float = ANGLE_NOISE_RAD,
        activation_gain_log_sigma: float = ACTIVATION_GAIN_LOG_SIGMA,
        timing_jitter_fraction: float = TIMING_JITTER_FRACTION,
        body_scale_sigma: float = BODY_SCALE_SIGMA,
        strength_log_sigma: float = STRENGTH_LOG_SIGMA,
        style_sigma: float = STYLE_SIGMA,
    ):
        for name, value in [
            ("amplitude_sigma", amplitude_sigma),
            ("speed_sigma", speed_sigma),
            ("angle_noise_rad", angle_noise_rad),
            ("activation_gain_log_sigma", activation_gain_log_sigma),
            ("timing_jitter_fraction", timing_jitter_fraction),
            ("body_scale_sigma", body_scale_sigma),
            ("strength_log_sigma", strength_log_sigma),
            ("style_sigma", style_sigma),
        ]:
            if value < 0:
                raise ValidationError(f"{name} must be non-negative, got {value}")
        self.amplitude_sigma = amplitude_sigma
        self.speed_sigma = speed_sigma
        self.angle_noise_rad = angle_noise_rad
        self.activation_gain_log_sigma = activation_gain_log_sigma
        self.timing_jitter_fraction = timing_jitter_fraction
        self.body_scale_sigma = body_scale_sigma
        self.strength_log_sigma = strength_log_sigma
        self.style_sigma = style_sigma

    def sample_participant(
        self,
        participant_id: str,
        muscles: Sequence[str],
        seed: SeedLike = None,
    ) -> ParticipantProfile:
        """Draw a participant profile covering ``muscles``."""
        rng = as_generator(seed)
        strengths = {
            m: float(rng.lognormal(mean=0.0, sigma=self.strength_log_sigma))
            for m in muscles
        }
        return ParticipantProfile(
            participant_id=participant_id,
            body_scale=float(
                np.clip(rng.normal(1.0, self.body_scale_sigma), 0.75, 1.25)
            ),
            strength_gains=strengths,
            style_amplitude=float(
                np.clip(rng.normal(1.0, self.style_sigma), 0.7, 1.3)
            ),
            style_speed=float(np.clip(rng.normal(1.0, self.style_sigma), 0.7, 1.3)),
        )

    def sample_trial(
        self,
        muscles: Sequence[str],
        seed: SeedLike = None,
        participant: Optional[ParticipantProfile] = None,
    ) -> TrialVariation:
        """Draw one trial's variation, folding in the participant's style."""
        rng = as_generator(seed)
        amp = rng.normal(1.0, self.amplitude_sigma)
        speed = rng.normal(1.0, self.speed_sigma)
        if participant is not None:
            amp *= participant.style_amplitude
            speed *= participant.style_speed
        gains: Dict[str, float] = {}
        for m in muscles:
            g = float(rng.lognormal(mean=0.0, sigma=self.activation_gain_log_sigma))
            if participant is not None:
                g *= participant.strength_for(m)
            gains[m] = g
        return TrialVariation(
            amplitude=float(np.clip(amp, 0.5, 1.6)),
            speed=float(np.clip(speed, 0.5, 1.6)),
            angle_noise_rad=self.angle_noise_rad,
            activation_gains=gains,
            timing_shift=float(rng.normal(0.0, self.timing_jitter_fraction)),
        )

"""Smooth time-profile primitives for motion and activation curves.

All profiles are functions of normalized time ``s`` in [0, 1] returning values
in [0, 1] (or [-1, 1] for oscillations); motion classes compose them into
joint-angle and muscle-activation trajectories.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_array

__all__ = [
    "minimum_jerk",
    "bell",
    "raised_cosine_pulse",
    "ramp_hold",
    "oscillation",
    "smooth_noise",
]


def minimum_jerk(s: np.ndarray) -> np.ndarray:
    """Minimum-jerk position profile: 0 → 1 with zero end velocities.

    The classical ``10 s^3 − 15 s^4 + 6 s^5`` polynomial; values outside
    [0, 1] are clamped to the endpoints.
    """
    s = np.clip(check_array(s, name="s", dtype=np.float64), 0.0, 1.0)
    return 10.0 * s**3 - 15.0 * s**4 + 6.0 * s**5


def bell(s: np.ndarray, center: float, width: float) -> np.ndarray:
    """Gaussian bump with unit peak at ``center`` and std ``width``."""
    s = check_array(s, name="s", dtype=np.float64)
    if width <= 0:
        raise ValidationError(f"width must be positive, got {width}")
    return np.exp(-0.5 * ((s - center) / width) ** 2)


def raised_cosine_pulse(s: np.ndarray, start: float, stop: float) -> np.ndarray:
    """Smooth 0→1→0 pulse supported on [start, stop] (raised cosine)."""
    s = check_array(s, name="s", dtype=np.float64)
    if not stop > start:
        raise ValidationError(f"pulse needs stop > start, got [{start}, {stop}]")
    u = (s - start) / (stop - start)
    out = np.where((u >= 0) & (u <= 1), 0.5 * (1.0 - np.cos(2.0 * np.pi * np.clip(u, 0, 1))), 0.0)
    return out


def ramp_hold(s: np.ndarray, up_end: float, down_start: float) -> np.ndarray:
    """Rise smoothly over [0, up_end], hold at 1, fall over [down_start, 1].

    Uses minimum-jerk ramps on both sides so velocities are zero at the ends.
    """
    s = check_array(s, name="s", dtype=np.float64)
    if not 0.0 < up_end <= down_start < 1.0:
        raise ValidationError(
            f"need 0 < up_end <= down_start < 1, got up_end={up_end}, down_start={down_start}"
        )
    rise = minimum_jerk(s / up_end)
    fall = 1.0 - minimum_jerk((s - down_start) / (1.0 - down_start))
    out = np.where(s < up_end, rise, np.where(s <= down_start, 1.0, fall))
    return np.clip(out, 0.0, 1.0)


def oscillation(s: np.ndarray, cycles: float, envelope: np.ndarray | None = None) -> np.ndarray:
    """Sine oscillation over [0, 1] with ``cycles`` periods, optional envelope."""
    s = check_array(s, name="s", dtype=np.float64)
    wave = np.sin(2.0 * np.pi * cycles * s)
    if envelope is not None:
        wave = wave * check_array(envelope, name="envelope", dtype=np.float64)
    return wave


def smooth_noise(
    n: int, rng: np.random.Generator, scale: float, smoothness: int = 12
) -> np.ndarray:
    """Zero-mean smooth random curve of length ``n`` with std ≈ ``scale``.

    White noise is smoothed with a moving-average kernel of width
    ``smoothness`` and rescaled, producing low-frequency trial-to-trial
    wobble for joint angles.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if scale <= 0.0:
        return np.zeros(n)
    raw = rng.normal(size=n + 2 * smoothness)
    kernel = np.ones(smoothness) / smoothness
    smooth = np.convolve(raw, kernel, mode="same")[smoothness : smoothness + n]
    std = smooth.std()
    if std < 1e-12:
        return np.zeros(n)
    return (smooth - smooth.mean()) / std * scale

"""Composing multi-motion session plans.

:func:`compose_plans` joins several planned motions into one long
:class:`~repro.motions.base.MotionPlan`, inserting rest holds between them:
the skeleton freezes at the previous motion's final pose (then blends to the
next motion's starting pose over the rest period), and every muscle idles at
the tonic floor.  The composed plan runs through the *real* acquisition
chain (`AcquisitionSession.record_trial`), so continuous-stream experiments
can be captured end-to-end instead of stitched together post hoc — the
physically faithful way to produce data for
:mod:`repro.core.spotting`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.motions.base import MotionPlan
from repro.motions.profiles import minimum_jerk
from repro.skeleton.kinematics import JointAngles
from repro.utils.validation import check_in_range

__all__ = ["compose_plans"]

#: Tonic activation during rests (matches the motion classes' floor).
_REST_ACTIVATION = 0.05


def compose_plans(
    plans: Sequence[MotionPlan],
    rest_s: float = 1.0,
    label: str = "session",
) -> Tuple[MotionPlan, List[Tuple[int, int, str]]]:
    """Join plans into one session plan with rest holds.

    Parameters
    ----------
    plans:
        The motions in performance order; all must share the frame rate and
        limb-compatible channel sets (the union of muscles is used; a plan
        missing a muscle idles it at the tonic floor).
    rest_s:
        Rest duration before, between and after motions.
    label:
        Label of the composed plan.

    Returns
    -------
    (plan, annotations):
        The composed plan and ``(start_frame, stop_frame, label)`` ground
        truth for each embedded motion.
    """
    if not plans:
        raise ValidationError("need at least one plan to compose")
    rest_s = check_in_range(rest_s, name="rest_s", low=0.0, high=60.0)
    fps = plans[0].fps
    for plan in plans[1:]:
        if plan.fps != fps:
            raise ValidationError(
                f"plans mix frame rates: {plan.fps} vs {fps}"
            )
    n_rest = int(round(rest_s * fps))
    all_segments = sorted({
        seg for plan in plans for seg in plan.animation.angles_rad
    })
    all_muscles = sorted({m for plan in plans for m in plan.activations})

    angle_parts: Dict[str, List[np.ndarray]] = {s: [] for s in all_segments}
    act_parts: Dict[str, List[np.ndarray]] = {m: [] for m in all_muscles}
    annotations: List[Tuple[int, int, str]] = []
    cursor = 0

    def pose_of(plan: MotionPlan, frame: int) -> Dict[str, np.ndarray]:
        return {
            s: plan.animation.angles_for(s)[frame] for s in all_segments
        }

    def add_rest(from_pose: Dict[str, np.ndarray],
                 to_pose: Dict[str, np.ndarray]) -> None:
        nonlocal cursor
        if n_rest == 0:
            return
        blend = minimum_jerk(np.linspace(0.0, 1.0, n_rest))
        for seg in all_segments:
            start, stop = from_pose[seg], to_pose[seg]
            angle_parts[seg].append(
                start[None, :] + blend[:, None] * (stop - start)[None, :]
            )
        for muscle in all_muscles:
            act_parts[muscle].append(np.full(n_rest, _REST_ACTIVATION))
        cursor += n_rest

    zero_pose = {s: np.zeros(3) for s in all_segments}
    previous_pose = zero_pose
    for plan in plans:
        add_rest(previous_pose, pose_of(plan, 0))
        n = plan.n_frames
        for seg in all_segments:
            angle_parts[seg].append(plan.animation.angles_for(seg))
        for muscle in all_muscles:
            env = plan.activations.get(muscle)
            if env is None:
                env = np.full(n, _REST_ACTIVATION)
            act_parts[muscle].append(env)
        annotations.append((cursor, cursor + n, plan.label))
        cursor += n
        previous_pose = pose_of(plan, n - 1)
    add_rest(previous_pose, zero_pose)

    total = cursor
    animation = JointAngles(
        n_frames=total,
        angles_rad={s: np.vstack(parts) for s, parts in angle_parts.items()},
    )
    activations = {m: np.concatenate(parts) for m, parts in act_parts.items()}
    composed = MotionPlan(
        label=label,
        limb=plans[0].limb,
        fps=fps,
        animation=animation,
        activations=activations,
        metadata={"n_motions": float(len(plans)), "rest_s": rest_s},
    )
    return composed, annotations

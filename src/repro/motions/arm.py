"""Right-arm motion classes for the paper's hand study.

Electrode montage (Section 5): biceps, triceps, upper forearm, lower forearm.
Captured segments: clavicle, humerus, radius, hand.

Angle conventions follow :mod:`repro.skeleton.kinematics`: a positive X
rotation of the humerus flexes the shoulder (raises the arm forward), a
positive X rotation of the radius flexes the elbow.

The activation envelopes implement textbook muscle roles: biceps for elbow
flexion and load holding, triceps for elbow extension and ballistic throws,
and the forearm groups for wrist stabilization and grip, with co-contraction
floors so no channel is ever perfectly silent (surface EMG never is).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.motions.base import MotionClass, register_motion_class
from repro.motions.profiles import bell, minimum_jerk, oscillation, ramp_hold, raised_cosine_pulse
from repro.utils.validation import check_array

__all__ = [
    "xyz_curves",
    "RaiseArm",
    "ThrowBall",
    "WaveHand",
    "PunchForward",
    "ReachForward",
    "ARM_MOTIONS",
    "ARM_MUSCLES",
]

#: The hand-study electrode montage (paper Section 5).
ARM_MUSCLES: Tuple[str, ...] = (
    "biceps_r",
    "triceps_r",
    "upper_forearm_r",
    "lower_forearm_r",
)

_ARM_SEGMENTS: Tuple[str, ...] = ("clavicle_r", "humerus_r", "radius_r", "hand_r")

#: Tonic co-contraction floor: surface EMG channels are never silent.
_TONIC = 0.05


def xyz_curves(x: np.ndarray, y: np.ndarray | float = 0.0, z: np.ndarray | float = 0.0) -> np.ndarray:
    """Stack X/Y/Z angle curves (scalars broadcast) into an (n, 3) array."""
    lengths = [len(v) for v in (x, y, z) if not np.isscalar(v)]
    if not lengths:
        raise ValidationError("xyz_curves needs at least one array-valued component")
    n = lengths[0]

    def column(v) -> np.ndarray:
        if np.isscalar(v):
            return np.full(n, v, dtype=np.float64)
        return check_array(v, name="xyz_curves component", ndim=1, dtype=np.float64)

    return np.stack([column(x), column(y), column(z)], axis=1)


class RaiseArm(MotionClass):
    """Raise the arm forward overhead, hold briefly, lower it back down.

    The motion illustrated in the paper's Figures 2–4 ("Raise Arm – Right
    Hand").
    """

    name = "raise_arm"
    limb = "hand_r"
    nominal_duration_s = 3.0
    muscles = ARM_MUSCLES
    animated_segments = _ARM_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        lift = ramp_hold(s, up_end=0.4, down_start=0.6)
        shoulder_flex = amplitude * 2.2 * lift
        elbow_flex = amplitude * 0.25 * lift
        return {
            "humerus_r": xyz_curves(shoulder_flex),
            "radius_r": xyz_curves(elbow_flex),
            "hand_r": xyz_curves(amplitude * 0.1 * lift),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        lifting = raised_cosine_pulse(s, 0.0, 0.45)
        holding = raised_cosine_pulse(s, 0.3, 0.7)
        lowering = raised_cosine_pulse(s, 0.55, 1.0)
        return {
            "biceps_r": _TONIC + amplitude * (0.7 * lifting + 0.35 * holding),
            "triceps_r": _TONIC + amplitude * 0.3 * lowering,
            "upper_forearm_r": _TONIC + amplitude * (0.4 * lifting + 0.2 * holding),
            "lower_forearm_r": _TONIC + amplitude * 0.25 * holding,
        }


class ThrowBall(MotionClass):
    """Overarm ball throw: wind-up, explosive acceleration, release, follow-through.

    The second motion illustrated in the paper's Figures 3–4 ("Throw Ball –
    Right Hand").  Much faster and more ballistic than ``raise_arm`` with a
    dominant triceps burst.
    """

    name = "throw_ball"
    limb = "hand_r"
    nominal_duration_s = 1.8
    muscles = ARM_MUSCLES
    animated_segments = _ARM_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        windup = bell(s, 0.25, 0.10)
        strike = minimum_jerk((s - 0.35) / 0.3)
        follow = bell(s, 0.8, 0.12)
        shoulder_flex = amplitude * (-0.8 * windup + 2.0 * strike - 0.4 * follow)
        shoulder_abduct = amplitude * 0.5 * bell(s, 0.4, 0.2)
        elbow_flex = amplitude * (1.6 * windup + 0.3 * (1.0 - strike))
        return {
            "clavicle_r": xyz_curves(amplitude * 0.15 * strike),
            "humerus_r": xyz_curves(shoulder_flex, shoulder_abduct),
            "radius_r": xyz_curves(elbow_flex),
            "hand_r": xyz_curves(amplitude * -0.6 * bell(s, 0.55, 0.08)),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        windup = raised_cosine_pulse(s, 0.05, 0.35)
        strike = raised_cosine_pulse(s, 0.35, 0.65)
        release = bell(s, 0.58, 0.06)
        return {
            "biceps_r": _TONIC + amplitude * (0.6 * windup + 0.2 * strike),
            "triceps_r": _TONIC + amplitude * 1.0 * strike,
            "upper_forearm_r": _TONIC + amplitude * (0.3 * windup + 0.8 * release),
            "lower_forearm_r": _TONIC + amplitude * (0.5 * strike + 0.7 * release),
        }


class WaveHand(MotionClass):
    """Raise the forearm and wave the hand side to side several times."""

    name = "wave_hand"
    limb = "hand_r"
    nominal_duration_s = 3.2
    muscles = ARM_MUSCLES
    animated_segments = _ARM_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        hold = ramp_hold(s, up_end=0.2, down_start=0.85)
        wave_env = raised_cosine_pulse(s, 0.2, 0.85)
        wave = oscillation(s, cycles=3.0, envelope=wave_env)
        return {
            "humerus_r": xyz_curves(amplitude * 1.2 * hold, amplitude * 0.25 * wave),
            "radius_r": xyz_curves(amplitude * 1.5 * hold, 0.0, amplitude * 0.5 * wave),
            "hand_r": xyz_curves(0.0, 0.0, amplitude * 0.4 * wave),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        hold = ramp_hold(s, up_end=0.2, down_start=0.85)
        wave_env = raised_cosine_pulse(s, 0.2, 0.85)
        burst = np.abs(oscillation(s, cycles=3.0, envelope=wave_env))
        return {
            "biceps_r": _TONIC + amplitude * (0.5 * hold + 0.1 * burst),
            "triceps_r": _TONIC + amplitude * 0.2 * hold,
            "upper_forearm_r": _TONIC + amplitude * 0.7 * burst,
            "lower_forearm_r": _TONIC + amplitude * 0.6 * burst,
        }


class PunchForward(MotionClass):
    """Quick straight punch from a guard position and retraction."""

    name = "punch_forward"
    limb = "hand_r"
    nominal_duration_s = 1.5
    muscles = ARM_MUSCLES
    animated_segments = _ARM_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        jab = raised_cosine_pulse(s, 0.25, 0.75)
        guard_elbow = 1.8 * (1.0 - jab * 0.9)
        return {
            "humerus_r": xyz_curves(amplitude * 1.3 * jab, amplitude * -0.2 * jab),
            "radius_r": xyz_curves(amplitude * guard_elbow),
            "hand_r": xyz_curves(0.0, 0.0, amplitude * 0.2 * jab),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        extend = bell(s, 0.42, 0.08)
        retract = bell(s, 0.68, 0.08)
        grip = raised_cosine_pulse(s, 0.2, 0.8)
        return {
            "biceps_r": _TONIC + amplitude * (0.3 * grip + 0.8 * retract),
            "triceps_r": _TONIC + amplitude * 1.0 * extend,
            "upper_forearm_r": _TONIC + amplitude * 0.6 * grip,
            "lower_forearm_r": _TONIC + amplitude * 0.7 * grip,
        }


class ReachForward(MotionClass):
    """Slow deliberate forward reach, as when taking an object from a shelf."""

    name = "reach_forward"
    limb = "hand_r"
    nominal_duration_s = 3.6
    muscles = ARM_MUSCLES
    animated_segments = _ARM_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        reach = ramp_hold(s, up_end=0.45, down_start=0.62)
        return {
            "clavicle_r": xyz_curves(amplitude * 0.1 * reach),
            "humerus_r": xyz_curves(amplitude * 1.1 * reach),
            "radius_r": xyz_curves(amplitude * -0.3 * reach + 0.35 * (1.0 - reach)),
            "hand_r": xyz_curves(amplitude * 0.15 * reach),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        move = raised_cosine_pulse(s, 0.05, 0.5)
        grasp = bell(s, 0.55, 0.07)
        ret = raised_cosine_pulse(s, 0.6, 0.98)
        return {
            "biceps_r": _TONIC + amplitude * (0.35 * move + 0.3 * ret),
            "triceps_r": _TONIC + amplitude * 0.3 * move,
            "upper_forearm_r": _TONIC + amplitude * (0.2 * move + 0.6 * grasp),
            "lower_forearm_r": _TONIC + amplitude * (0.15 * move + 0.7 * grasp),
        }


class LiftObject(MotionClass):
    """Lift a moderately heavy object from waist to chest height.

    Deliberately confusable with ``raise_arm`` kinematically (both flex the
    shoulder upward) but with a distinct loading pattern: sustained biceps
    and forearm grip throughout the carry.
    """

    name = "lift_object"
    limb = "hand_r"
    nominal_duration_s = 2.8
    muscles = ARM_MUSCLES
    animated_segments = _ARM_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        lift = ramp_hold(s, up_end=0.45, down_start=0.65)
        return {
            "humerus_r": xyz_curves(amplitude * 1.0 * lift),
            "radius_r": xyz_curves(amplitude * 1.1 * lift),
            "hand_r": xyz_curves(amplitude * -0.2 * lift),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        grip = ramp_hold(s, up_end=0.15, down_start=0.9)
        lift = raised_cosine_pulse(s, 0.1, 0.55)
        lower = raised_cosine_pulse(s, 0.6, 0.98)
        return {
            "biceps_r": _TONIC + amplitude * (0.9 * lift + 0.5 * grip + 0.4 * lower),
            "triceps_r": _TONIC + amplitude * 0.25 * lower,
            "upper_forearm_r": _TONIC + amplitude * 0.7 * grip,
            "lower_forearm_r": _TONIC + amplitude * 0.8 * grip,
        }


class DrinkFromCup(MotionClass):
    """Bring a cup to the mouth, tip it, and set the arm back down.

    Shares the elbow-flexion kinematics of ``lift_object`` and the slow
    tempo of ``reach_forward``; separability rests on the wrist rotation
    and the light, flexor-dominated muscle pattern.
    """

    name = "drink_from_cup"
    limb = "hand_r"
    nominal_duration_s = 3.4
    muscles = ARM_MUSCLES
    animated_segments = _ARM_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        raise_cup = ramp_hold(s, up_end=0.35, down_start=0.7)
        tip = bell(s, 0.5, 0.09)
        return {
            "humerus_r": xyz_curves(amplitude * 0.6 * raise_cup),
            "radius_r": xyz_curves(amplitude * 1.9 * raise_cup),
            "hand_r": xyz_curves(amplitude * 0.5 * tip, 0.0, amplitude * 0.2 * raise_cup),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        hold = ramp_hold(s, up_end=0.3, down_start=0.75)
        tip = bell(s, 0.5, 0.09)
        return {
            "biceps_r": _TONIC + amplitude * 0.55 * hold,
            "triceps_r": _TONIC + amplitude * 0.15 * raised_cosine_pulse(s, 0.7, 1.0),
            "upper_forearm_r": _TONIC + amplitude * (0.25 * hold + 0.4 * tip),
            "lower_forearm_r": _TONIC + amplitude * (0.35 * hold + 0.3 * tip),
        }


class PushForward(MotionClass):
    """Slow two-phase push against resistance at chest height.

    The slow counterpart of ``punch_forward``: similar elbow-extension
    kinematics at a fraction of the speed, with sustained triceps effort
    instead of a ballistic burst.
    """

    name = "push_forward"
    limb = "hand_r"
    nominal_duration_s = 3.0
    muscles = ARM_MUSCLES
    animated_segments = _ARM_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        push = ramp_hold(s, up_end=0.5, down_start=0.7)
        guard_elbow = 1.6 * (1.0 - 0.85 * push)
        return {
            "humerus_r": xyz_curves(amplitude * 1.1 * push),
            "radius_r": xyz_curves(amplitude * guard_elbow),
            "hand_r": xyz_curves(amplitude * -0.15 * push),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        effort = ramp_hold(s, up_end=0.4, down_start=0.75)
        return {
            "biceps_r": _TONIC + amplitude * 0.25 * effort,
            "triceps_r": _TONIC + amplitude * 0.85 * effort,
            "upper_forearm_r": _TONIC + amplitude * 0.45 * effort,
            "lower_forearm_r": _TONIC + amplitude * 0.5 * effort,
        }


#: All registered arm motions, in registration order.
ARM_MOTIONS = tuple(
    register_motion_class(cls())
    for cls in (
        RaiseArm,
        ThrowBall,
        WaveHand,
        PunchForward,
        ReachForward,
        LiftObject,
        DrinkFromCup,
        PushForward,
    )
)

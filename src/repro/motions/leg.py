"""Right-leg motion classes for the paper's leg study.

Electrode montage (Section 5): one electrode on the front of the shin
(tibialis anterior — dorsiflexes the ankle) and one on the back of the shin
(gastrocnemius/soleus — plantarflexes the ankle).  Captured segments: tibia,
foot, toe.  The hip (femur) is animated too because it moves the captured
segments, even though its position is not part of the leg feature set.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.motions.arm import xyz_curves
from repro.motions.base import MotionClass, register_motion_class
from repro.motions.profiles import bell, oscillation, ramp_hold, raised_cosine_pulse

__all__ = [
    "KickBall",
    "StepForward",
    "Squat",
    "ToeTap",
    "HeelRaise",
    "LEG_MOTIONS",
    "LEG_MUSCLES",
]

#: The leg-study electrode montage (paper Section 5).
LEG_MUSCLES: Tuple[str, ...] = ("front_shin_r", "back_shin_r")

_LEG_SEGMENTS: Tuple[str, ...] = ("femur_r", "tibia_r", "foot_r", "toe_r")

#: Tonic co-contraction floor shared with the arm classes.
_TONIC = 0.05


class KickBall(MotionClass):
    """Kick a ball: back-swing, fast forward swing with knee extension, recovery."""

    name = "kick_ball"
    limb = "leg_r"
    nominal_duration_s = 1.8
    muscles = LEG_MUSCLES
    animated_segments = _LEG_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        backswing = bell(s, 0.25, 0.1)
        swing = raised_cosine_pulse(s, 0.3, 0.8)
        hip_flex = amplitude * (-0.5 * backswing + 1.1 * swing)
        knee_flex = amplitude * (-1.3 * backswing - 0.2 * swing)
        ankle = amplitude * 0.4 * swing  # dorsiflexed toes during the strike
        return {
            "femur_r": xyz_curves(hip_flex),
            "tibia_r": xyz_curves(knee_flex),
            "foot_r": xyz_curves(ankle),
            "toe_r": xyz_curves(amplitude * 0.15 * swing),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        swing = raised_cosine_pulse(s, 0.3, 0.7)
        plant = bell(s, 0.85, 0.08)
        return {
            "front_shin_r": _TONIC + amplitude * 0.9 * swing,
            "back_shin_r": _TONIC + amplitude * (0.3 * bell(s, 0.25, 0.1) + 0.8 * plant),
        }


class StepForward(MotionClass):
    """One deliberate step forward: swing, heel strike, push-off back to stance."""

    name = "step_forward"
    limb = "leg_r"
    nominal_duration_s = 2.2
    muscles = LEG_MUSCLES
    animated_segments = _LEG_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        swing = raised_cosine_pulse(s, 0.1, 0.55)
        stance = raised_cosine_pulse(s, 0.55, 0.95)
        hip_flex = amplitude * (0.7 * swing - 0.2 * stance)
        knee_flex = amplitude * (-0.9 * swing * bell(s, 0.3, 0.12) - 0.1 * stance)
        ankle = amplitude * (0.35 * swing - 0.45 * stance)
        return {
            "femur_r": xyz_curves(hip_flex),
            "tibia_r": xyz_curves(knee_flex),
            "foot_r": xyz_curves(ankle),
            "toe_r": xyz_curves(amplitude * -0.3 * stance),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        swing = raised_cosine_pulse(s, 0.1, 0.5)
        pushoff = raised_cosine_pulse(s, 0.6, 0.95)
        return {
            "front_shin_r": _TONIC + amplitude * (0.7 * swing + 0.2 * bell(s, 0.55, 0.05)),
            "back_shin_r": _TONIC + amplitude * 0.9 * pushoff,
        }


class Squat(MotionClass):
    """Slow two-legged squat down and back up (hip and knee flexion)."""

    name = "squat"
    limb = "leg_r"
    nominal_duration_s = 3.5
    muscles = LEG_MUSCLES
    animated_segments = _LEG_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        depth = ramp_hold(s, up_end=0.4, down_start=0.6)
        return {
            "femur_r": xyz_curves(amplitude * 1.4 * depth),
            "tibia_r": xyz_curves(amplitude * -1.8 * depth),
            "foot_r": xyz_curves(amplitude * 0.45 * depth),
            "toe_r": xyz_curves(amplitude * 0.1 * depth),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        descend = raised_cosine_pulse(s, 0.05, 0.45)
        hold = raised_cosine_pulse(s, 0.35, 0.65)
        ascend = raised_cosine_pulse(s, 0.55, 0.95)
        return {
            "front_shin_r": _TONIC + amplitude * (0.4 * descend + 0.3 * hold + 0.3 * ascend),
            "back_shin_r": _TONIC + amplitude * (0.3 * descend + 0.4 * hold + 0.7 * ascend),
        }


class ToeTap(MotionClass):
    """Repeated toe tapping: rhythmic ankle dorsiflexion with the heel planted."""

    name = "toe_tap"
    limb = "leg_r"
    nominal_duration_s = 3.0
    muscles = LEG_MUSCLES
    animated_segments = _LEG_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        env = raised_cosine_pulse(s, 0.08, 0.92)
        taps = oscillation(s, cycles=4.0, envelope=env)
        lifted = np.maximum(taps, 0.0)
        return {
            "femur_r": xyz_curves(amplitude * 0.05 * env),
            "tibia_r": xyz_curves(amplitude * -0.05 * env),
            "foot_r": xyz_curves(amplitude * 0.5 * lifted),
            "toe_r": xyz_curves(amplitude * 0.25 * lifted),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        env = raised_cosine_pulse(s, 0.08, 0.92)
        bursts = np.maximum(oscillation(s, cycles=4.0, envelope=env), 0.0)
        return {
            "front_shin_r": _TONIC + amplitude * 0.9 * bursts,
            "back_shin_r": _TONIC + amplitude * 0.15 * env,
        }


class HeelRaise(MotionClass):
    """Rise onto the toes (plantarflexion), hold, and lower back down."""

    name = "heel_raise"
    limb = "leg_r"
    nominal_duration_s = 2.8
    muscles = LEG_MUSCLES
    animated_segments = _LEG_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        rise = ramp_hold(s, up_end=0.35, down_start=0.65)
        return {
            "femur_r": xyz_curves(amplitude * -0.05 * rise),
            "tibia_r": xyz_curves(amplitude * 0.1 * rise),
            "foot_r": xyz_curves(amplitude * -0.6 * rise),
            "toe_r": xyz_curves(amplitude * 0.3 * rise),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        rise = raised_cosine_pulse(s, 0.05, 0.5)
        hold = raised_cosine_pulse(s, 0.3, 0.7)
        lower = raised_cosine_pulse(s, 0.6, 0.95)
        return {
            "front_shin_r": _TONIC + amplitude * 0.2 * lower,
            "back_shin_r": _TONIC + amplitude * (0.8 * rise + 0.6 * hold + 0.3 * lower),
        }


class Stomp(MotionClass):
    """Raise the knee and stomp the foot down hard once.

    Shares the hip/knee flexion of ``step_forward`` and the plantarflexion
    impact of ``kick_ball``'s plant phase — a deliberately confusable class.
    """

    name = "stomp"
    limb = "leg_r"
    nominal_duration_s = 1.6
    muscles = LEG_MUSCLES
    animated_segments = _LEG_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        lift = raised_cosine_pulse(s, 0.1, 0.6)
        return {
            "femur_r": xyz_curves(amplitude * 1.0 * lift),
            "tibia_r": xyz_curves(amplitude * -1.0 * lift),
            "foot_r": xyz_curves(amplitude * 0.3 * lift),
            "toe_r": xyz_curves(amplitude * 0.1 * lift),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        lift = raised_cosine_pulse(s, 0.1, 0.5)
        impact = bell(s, 0.62, 0.05)
        return {
            "front_shin_r": _TONIC + amplitude * (0.6 * lift + 0.4 * impact),
            "back_shin_r": _TONIC + amplitude * 0.9 * impact,
        }


class LegSwing(MotionClass):
    """Relaxed pendular forward-backward leg swings from the hip.

    Kinematically close to a slow ``kick_ball`` repeated, but with low,
    oscillating muscle effort instead of a ballistic burst.
    """

    name = "leg_swing"
    limb = "leg_r"
    nominal_duration_s = 3.2
    muscles = LEG_MUSCLES
    animated_segments = _LEG_SEGMENTS

    def _angles(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        env = raised_cosine_pulse(s, 0.08, 0.92)
        swing = oscillation(s, cycles=2.5, envelope=env)
        return {
            "femur_r": xyz_curves(amplitude * 0.7 * swing),
            "tibia_r": xyz_curves(amplitude * -0.25 * np.abs(swing)),
            "foot_r": xyz_curves(amplitude * 0.15 * swing),
            "toe_r": xyz_curves(amplitude * 0.05 * swing),
        }

    def _activations(self, s: np.ndarray, amplitude: float) -> Dict[str, np.ndarray]:
        env = raised_cosine_pulse(s, 0.08, 0.92)
        forward = np.maximum(oscillation(s, cycles=2.5, envelope=env), 0.0)
        backward = np.maximum(-oscillation(s, cycles=2.5, envelope=env), 0.0)
        return {
            "front_shin_r": _TONIC + amplitude * 0.35 * forward,
            "back_shin_r": _TONIC + amplitude * 0.35 * backward,
        }


#: All registered leg motions, in registration order.
LEG_MOTIONS = tuple(
    register_motion_class(cls())
    for cls in (KickBall, StepForward, Squat, ToeTap, HeelRaise, Stomp, LegSwing)
)

"""The end-to-end motion classifier (paper Sections 3–4).

:class:`MotionClassifier` ties the pipeline together:

fit (database side, Section 3)
    1. window every database motion and extract the combined IAV +
       weighted-SVD feature vectors (Sections 3.1–3.3);
    2. standardize the combined space (see
       :mod:`repro.features.scaling`) on the database windows;
    3. run fuzzy c-means over *all* database windows (Eq. 4);
    4. build every motion's 2c signature from its windows' membership rows
       (Eqs. 5–8);
    5. index the signatures for nearest-neighbour search.

query side (Section 4)
    The query motion is windowed and featurized identically, scaled with the
    *stored* statistics, given Eq. 9 memberships against the *fitted*
    centers (centers never move), reduced to its 2c signature, and matched
    against the database signatures — 1-NN for classification, k-NN for
    retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.signature import MotionSignature, motion_signature
from repro.data.dataset import MotionDataset
from repro.data.record import RecordedMotion
from repro.errors import ClusteringError, FeatureError, NotFittedError
from repro.features.base import WindowFeatures
from repro.features.combine import WindowFeaturizer
from repro.features.scaling import FeatureScaler
from repro.fuzzy.cmeans import FuzzyCMeans
from repro.fuzzy.kmeans import KMeans
from repro.fuzzy.membership import membership_matrix
from repro.obs.drift import BaselineSnapshot, DriftMonitor, signals_from_query
from repro.obs.config import (
    query_scope,
    record_counter,
    record_event,
    record_gauge,
    span,
    time_histogram,
)
from repro.parallel.cache import FeatureCache
from repro.parallel.executor import BACKENDS, effective_n_jobs
from repro.parallel.runner import featurize_records
from repro.retrieval.knn import NearestNeighborIndex, knn_vote
from repro.retrieval.linear import LinearScanIndex
from repro.robust.featurize import RobustFeaturizer
from repro.robust.policy import DegradationPolicy, resolve_policy
from repro.robust.report import DegradationReport
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int

__all__ = ["RetrievedNeighbor", "RobustQueryResult", "MotionClassifier"]


@dataclass(frozen=True)
class RetrievedNeighbor:
    """One retrieved database motion.

    Attributes
    ----------
    key:
        The database record's unique key.
    label:
        Its motion class.
    distance:
        Euclidean distance between signatures.
    """

    key: str
    label: str
    distance: float


@dataclass(frozen=True)
class RobustQueryResult:
    """A classification answer together with its degradation account.

    Attributes
    ----------
    label:
        The predicted motion class (k-NN vote, as :meth:`MotionClassifier.classify`).
    neighbors:
        The retrieved database motions behind the vote.
    report:
        What the robust layer detected and did to the query record; for a
        classifier without a robust policy this is a trivial clean report
        with ``policy == "off"``.
    """

    label: str
    neighbors: List[RetrievedNeighbor]
    report: DegradationReport


class MotionClassifier:
    """Fuzzy-membership motion classifier over integrated mocap + EMG data.

    Parameters
    ----------
    n_clusters:
        The FCM cluster count ``c`` (the paper sweeps 2–40).
    window_ms:
        Feature window duration (the paper sweeps 50–200 ms).
    m:
        FCM fuzzifier (2 in the paper).
    featurizer:
        Custom window featurizer; overrides ``window_ms`` when given.
    scaler_mode:
        Combined-space standardization (see
        :class:`~repro.features.scaling.FeatureScaler`).
    clusterer:
        ``"fcm"`` (the paper) or ``"kmeans"`` (crisp ablation), or a factory
        ``(n_clusters) -> estimator`` with a compatible ``fit``.  A custom
        fuzzy factory must use the same fuzzifier as this classifier's ``m``,
        which drives the query-side Eq. 9 memberships.
    index_factory:
        Signature search backend; defaults to linear scan as in the paper.
    n_init:
        Clustering restarts.
    n_jobs:
        Workers for the per-motion feature fan-out (fit and query sides);
        ``1`` (the default) is the serial path, ``-1`` uses all CPUs.  Every
        setting produces byte-identical results.
    backend:
        Parallel backend: ``"auto"`` (default), ``"serial"``, ``"thread"``
        or ``"process"`` (see :mod:`repro.parallel.executor`).
    cache_dir:
        Directory for the content-addressed feature cache; ``None`` (the
        default) disables caching.  Cached features are byte-identical to
        recomputed ones.
    robust_policy:
        Degradation policy for faulted streams: ``None``/``"off"`` (the
        default) keeps the exact pre-robust path, byte for byte; a
        :class:`~repro.robust.policy.DegradationPolicy` or preset name
        (``"strict"``, ``"mask"``, ``"repair"``) wraps the featurizer in a
        :class:`~repro.robust.featurize.RobustFeaturizer` on both the fit
        and query sides (see :mod:`repro.robust`).
    """

    def __init__(
        self,
        n_clusters: int = 15,
        window_ms: float = 100.0,
        m: float = 2.0,
        featurizer: Optional[WindowFeaturizer] = None,
        scaler_mode: str = "zscore",
        clusterer: Union[str, Callable[[int], object]] = "fcm",
        index_factory: Optional[Callable[[], NearestNeighborIndex]] = None,
        n_init: int = 1,
        n_jobs: int = 1,
        backend: str = "auto",
        cache_dir: Optional[Union[str, Path]] = None,
        robust_policy: Union[str, DegradationPolicy, None] = None,
    ):
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters", minimum=2)
        self.m = m
        self.featurizer = featurizer or WindowFeaturizer(window_ms=window_ms)
        self.robust_policy = resolve_policy(robust_policy)
        if self.robust_policy is not None and not isinstance(
            self.featurizer, RobustFeaturizer
        ):
            self.featurizer = RobustFeaturizer(self.featurizer, self.robust_policy)
        self.scaler = FeatureScaler(mode=scaler_mode)
        self.clusterer = clusterer
        self.index_factory = index_factory or LinearScanIndex
        self.n_init = check_positive_int(n_init, name="n_init")
        self.n_jobs = effective_n_jobs(n_jobs)
        if backend not in BACKENDS:
            raise ClusteringError(
                f"unknown parallel backend {backend!r}; use one of {BACKENDS}"
            )
        self.backend = backend
        self.feature_cache: Optional[FeatureCache] = (
            FeatureCache(cache_dir) if cache_dir is not None else None
        )

        self._centers: Optional[np.ndarray] = None
        self._signatures: Optional[np.ndarray] = None
        self._labels: List[str] = []
        self._keys: List[str] = []
        self._index: Optional[NearestNeighborIndex] = None
        self._soft_memberships = True
        self._mean_highest_membership = 1.0
        self._baseline: Optional[BaselineSnapshot] = None
        self._health: Optional[DriftMonitor] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def _make_clusterer(self):
        if callable(self.clusterer):
            return self.clusterer(self.n_clusters)
        if self.clusterer == "fcm":
            return FuzzyCMeans(n_clusters=self.n_clusters, m=self.m,
                               n_init=self.n_init)
        if self.clusterer == "kmeans":
            return KMeans(n_clusters=self.n_clusters, n_init=self.n_init)
        raise ClusteringError(
            f"unknown clusterer {self.clusterer!r}; use 'fcm', 'kmeans' or a factory"
        )

    def fit(self, database: MotionDataset, seed: SeedLike = 0) -> "MotionClassifier":
        """Fit the whole pipeline on the motion database."""
        if len(database) == 0:
            raise ClusteringError("cannot fit on an empty database")
        with span("model.fit", n_motions=len(database),
                  n_clusters=self.n_clusters) as sp:
            per_motion = featurize_records(
                self.featurizer, list(database), n_jobs=self.n_jobs,
                backend=self.backend, cache=self.feature_cache,
            )
            all_windows = np.vstack([wf.matrix for wf in per_motion])
            if not np.isfinite(all_windows).all():
                # Guards duck-typed featurizers that skip WindowFeatures
                # validation: NaN windows would silently poison the cluster
                # centers and every signature after them.
                raise FeatureError(
                    "database features contain non-finite values; repair the "
                    "records or fit with a robust_policy"
                )
            if all_windows.shape[0] < self.n_clusters:
                raise ClusteringError(
                    f"database yields {all_windows.shape[0]} windows, fewer than "
                    f"c={self.n_clusters} clusters; use a smaller window or more data"
                )
            scaled = self.scaler.fit(all_windows).transform(all_windows)

            estimator = self._make_clusterer()
            result = estimator.fit(scaled, seed=seed)
            self._centers = result.centers
            # Fit-time coverage statistic: how confidently the cluster
            # vocabulary describes its own training windows (used by the
            # incremental maintainer's drift tracking).
            self._mean_highest_membership = float(
                result.membership.max(axis=1).mean()
            )
            self._soft_memberships = isinstance(estimator, FuzzyCMeans) or not isinstance(
                estimator, KMeans
            )
            # Freeze the fit-time health baseline alongside the model so
            # drift is always measured against the deployed artifact (see
            # repro.obs.drift; persisted via `classifier.baseline.save`).
            self._baseline = BaselineSnapshot.from_fit(
                scaled, result.centers, result.membership, m=self.m,
                feature_names=per_motion[0].names,
            )

            signatures = []
            start = 0
            for wf in per_motion:
                stop = start + wf.n_windows
                sig = motion_signature(result.membership[start:stop], self.n_clusters)
                signatures.append(sig.vector)
                start = stop
            self._signatures = np.vstack(signatures)
            self._labels = [rec.label for rec in database]
            self._keys = [rec.key for rec in database]
            index = self.index_factory()
            with span("retrieval.index_build", backend=type(index).__name__):
                self._index = index.fit(self._signatures)
            sp.set(n_windows=all_windows.shape[0], n_dims=all_windows.shape[1])
            record_gauge("model.n_windows", all_windows.shape[0])
            record_gauge("model.n_dims", all_windows.shape[1])
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._centers is not None

    @property
    def centers(self) -> np.ndarray:
        """The fitted cluster centers in the scaled combined space."""
        if self._centers is None:
            raise NotFittedError("MotionClassifier used before fit")
        return self._centers

    @property
    def database_signatures(self) -> np.ndarray:
        """``(n_motions, 2c)`` database signature matrix."""
        if self._signatures is None:
            raise NotFittedError("MotionClassifier used before fit")
        return self._signatures

    @property
    def database_labels(self) -> List[str]:
        """Labels aligned with :attr:`database_signatures`."""
        if self._signatures is None:
            raise NotFittedError("MotionClassifier used before fit")
        return list(self._labels)

    @property
    def database_keys(self) -> List[str]:
        """Record keys aligned with :attr:`database_signatures`."""
        if self._signatures is None:
            raise NotFittedError("MotionClassifier used before fit")
        return list(self._keys)

    @property
    def mean_highest_membership(self) -> float:
        """Mean highest membership of the training windows at fit time."""
        if self._centers is None:
            raise NotFittedError("MotionClassifier used before fit")
        return self._mean_highest_membership

    @property
    def baseline(self) -> BaselineSnapshot:
        """The frozen fit-time health baseline (see :mod:`repro.obs.drift`).

        Persist it next to the model artifact with
        ``classifier.baseline.save(path)`` so a later serving process can
        monitor drift against the deployed fit.
        """
        if self._baseline is None:
            raise NotFittedError("MotionClassifier used before fit")
        return self._baseline

    # ------------------------------------------------------------------
    # Health monitoring
    # ------------------------------------------------------------------

    def attach_health(self, monitor: Optional[DriftMonitor] = None) -> DriftMonitor:
        """Attach a drift monitor; every query then feeds its detectors.

        With ``monitor=None`` a :class:`~repro.obs.drift.DriftMonitor` with
        the default detector set over this model's fit-time baseline is
        created.  Returns the attached monitor.  Monitoring adds one
        signal-extraction pass per query; detach with :meth:`detach_health`
        to restore the exact unmonitored path.
        """
        if monitor is None:
            monitor = DriftMonitor(self.baseline)
        else:
            self.baseline  # raise NotFittedError before accepting a monitor
        self._health = monitor
        return monitor

    def detach_health(self) -> Optional[DriftMonitor]:
        """Detach and return the current drift monitor (``None`` if none)."""
        monitor, self._health = self._health, None
        return monitor

    @property
    def health(self) -> Optional[DriftMonitor]:
        """The attached drift monitor, or ``None``."""
        return self._health

    # ------------------------------------------------------------------
    # Query side
    # ------------------------------------------------------------------

    def _signature_from_features(
        self, features: WindowFeatures, degraded: bool = False
    ) -> MotionSignature:
        """Reduce one motion's window features to its 2c signature."""
        if self._centers is None:
            raise NotFittedError("MotionClassifier used before fit")
        if not np.isfinite(features.matrix).all():
            raise FeatureError(
                "query features contain non-finite values; repair the record "
                "or query through a robust_policy"
            )
        scaled = self.scaler.transform(features.matrix)
        if self._soft_memberships:
            memberships = membership_matrix(scaled, self._centers, m=self.m)
        else:
            # Crisp ablation: one-hot membership of the nearest center.
            diff = scaled[:, None, :] - self._centers[None, :, :]
            d2 = np.einsum("ncd,ncd->nc", diff, diff)
            memberships = np.zeros_like(d2)
            memberships[np.arange(d2.shape[0]), np.argmin(d2, axis=1)] = 1.0
        if self._health is not None:
            self._health.observe(signals_from_query(
                scaled, self._centers, memberships, m=self.m,
                degraded=degraded,
            ))
        return motion_signature(memberships, self.n_clusters)

    def signature(self, record: RecordedMotion) -> MotionSignature:
        """The 2c signature of a (query) motion against the fitted clusters."""
        if self._centers is None:
            raise NotFittedError("MotionClassifier used before fit")
        with span("model.signature"):
            if self.feature_cache is not None:
                features = featurize_records(
                    self.featurizer, [record], cache=self.feature_cache,
                )[0]
            else:
                features = self.featurizer.features(record)
            record_event("query.featurized", key=record.key,
                         n_windows=features.n_windows)
            return self._signature_from_features(features)

    def kneighbors(self, record: RecordedMotion, k: int = 5) -> List[RetrievedNeighbor]:
        """The ``k`` nearest database motions to ``record``."""
        if self._index is None:
            raise NotFittedError("MotionClassifier used before fit")
        with query_scope():
            vector = self.signature(record).vector
            with span("retrieval.knn_query", k=k,
                      backend=type(self._index).__name__):
                indices, distances = self._index.query(vector, k)
            neighbors = [
                RetrievedNeighbor(
                    key=self._keys[i], label=self._labels[i], distance=float(d)
                )
                for i, d in zip(indices, distances)
            ]
            record_event("query.retrieved", key=record.key, k=k,
                         neighbors=[n.key for n in neighbors])
        return neighbors

    def classify(self, record: RecordedMotion, k: int = 1) -> str:
        """Predict the motion class by k-NN vote (1-NN by default).

        Each call mints a provenance correlation id (when observability is
        enabled) threaded through featurization and retrieval: the
        ``query.*`` events in :mod:`repro.obs.events` share it, and the
        end-to-end latency lands in the ``model.query_latency_s``
        histogram (p50/p95/p99 in the export).
        """
        with query_scope(), time_histogram("model.query_latency_s"):
            record_counter("model.queries")
            record_event("query.received", key=record.key,
                         label=record.label, k=k)
            neighbors = self.kneighbors(record, k)
            label = knn_vote(
                [n.label for n in neighbors],
                np.asarray([n.distance for n in neighbors]),
            )
            record_event("query.classified", key=record.key, label=label)
        return label

    def classify_with_report(
        self, record: RecordedMotion, k: int = 1
    ) -> RobustQueryResult:
        """Classify ``record`` and account for every degradation decision.

        Same vote as :meth:`classify`, but the answer carries the
        :class:`~repro.robust.report.DegradationReport` produced while
        featurizing the query (a trivial clean report when no robust policy
        is configured), and degraded queries are counted in
        :mod:`repro.obs` under ``robust.degraded_queries``.
        """
        if self._index is None:
            raise NotFittedError("MotionClassifier used before fit")
        with query_scope(), time_histogram("model.query_latency_s"), \
                span("model.classify_robust", k=k):
            record_counter("model.queries")
            record_event("query.received", key=record.key,
                         label=record.label, k=k)
            if isinstance(self.featurizer, RobustFeaturizer):
                features, report = self.featurizer.features_with_report(record)
            else:
                features = self.featurizer.features(record)
                report = DegradationReport(
                    policy="off", clean=True, n_windows_total=features.n_windows
                )
            record_event("query.featurized", key=record.key,
                         n_windows=features.n_windows)
            vector = self._signature_from_features(
                features, degraded=report.degraded
            ).vector
            indices, distances = self._index.query(vector, k)
            neighbors = [
                RetrievedNeighbor(
                    key=self._keys[i], label=self._labels[i], distance=float(d)
                )
                for i, d in zip(indices, distances)
            ]
            record_event("query.retrieved", key=record.key, k=k,
                         neighbors=[n.key for n in neighbors])
            label = knn_vote(
                [n.label for n in neighbors],
                np.asarray([n.distance for n in neighbors]),
            )
            if report.degraded:
                record_counter("robust.degraded_queries")
                record_event("query.degraded", key=record.key,
                             policy=report.policy,
                             faults=list(report.faults_detected))
            record_event("query.classified", key=record.key, label=label)
            return RobustQueryResult(label=label, neighbors=neighbors, report=report)

    def knn_class_fraction(self, record: RecordedMotion, k: int = 5) -> float:
        """Fraction of the ``k`` retrieved motions in the query's own class.

        The paper's second evaluation: "to find k-Nearest Neighbors for the
        given query motion and to check the percentage of returned motions
        in k which are actually present in the same group of query motion".
        """
        neighbors = self.kneighbors(record, k)
        same = sum(1 for n in neighbors if n.label == record.label)
        return same / len(neighbors)

"""The final per-motion feature vector (paper Eqs. 5–8).

Each motion is divided into windows; every window is a point in the combined
feature space with a degree of membership for every cluster.  Per window the
*highest* membership and the cluster achieving it are taken (Eqs. 5–6); per
cluster, the minimum and maximum of the highest memberships it won form the
motion's feature components (Eqs. 7–8):

    "for the given motion which is represented in form of feature points in
    (m+n)-d feature space, we have final feature vector corresponding to
    this motion in form of the maximum and minimum of the highest degree of
    membership for each cluster. ... Thus the length of the final feature
    vector is 2c where c is the number of clusters."

Clusters that win no window of the motion contribute ``(0, 0)`` — in the
paper's Figure 4 unused clusters sit on the axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import FeatureError
from repro.obs.config import span
from repro.utils.validation import check_array, shapes

__all__ = ["MotionSignature", "motion_signature"]


@dataclass(frozen=True)
class MotionSignature:
    """A motion's final 2c-dimensional feature vector.

    Attributes
    ----------
    minima:
        ``(c,)`` — Eq. 8: per cluster, the minimum of the highest memberships
        it won (0 if it won none).
    maxima:
        ``(c,)`` — Eq. 7: per cluster, the maximum of the highest memberships
        it won (0 if it won none).
    window_clusters:
        ``(n_windows,)`` winning cluster index per window (Eq. 6).
    window_memberships:
        ``(n_windows,)`` highest membership per window (Eq. 5).
    """

    minima: np.ndarray
    maxima: np.ndarray
    window_clusters: np.ndarray
    window_memberships: np.ndarray

    def __post_init__(self) -> None:
        minima = check_array(self.minima, name="minima", ndim=1)
        maxima = check_array(self.maxima, name="maxima", ndim=1)
        if len(minima) != len(maxima):
            raise FeatureError(
                f"minima ({len(minima)}) and maxima ({len(maxima)}) differ in length"
            )
        if np.any(minima > maxima):
            raise FeatureError("per-cluster minimum exceeds maximum")
        object.__setattr__(self, "minima", minima)
        object.__setattr__(self, "maxima", maxima)

    @property
    def n_clusters(self) -> int:
        """Number of clusters ``c``."""
        return len(self.minima)

    @property
    def vector(self) -> np.ndarray:
        """The 2c feature vector, laid out ``(min_1, max_1, ..., min_c, max_c)``.

        This interleaved layout matches the paper's Figure 4 axis
        ("min  max" per cluster).
        """
        out = np.empty(2 * self.n_clusters)
        out[0::2] = self.minima
        out[1::2] = self.maxima
        return out

    def occupied_clusters(self) -> Tuple[int, ...]:
        """Indices of clusters that won at least one window."""
        return tuple(int(i) for i in np.unique(self.window_clusters))


@shapes(membership="(w, c)")
def motion_signature(membership: np.ndarray, n_clusters: int | None = None) -> MotionSignature:
    """Build the Eq. 5–8 signature from a motion's window membership matrix.

    Parameters
    ----------
    membership:
        ``(n_windows, c)`` degrees of membership of this motion's windows —
        either rows of the database FCM's ``U`` or Eq. 9 memberships for a
        query.
    n_clusters:
        Expected ``c`` (defaults to ``membership.shape[1]``; passing it
        catches shape mix-ups early).
    """
    u = check_array(membership, name="membership", ndim=2, allow_empty=False)
    c = u.shape[1]
    if n_clusters is not None and n_clusters != c:
        raise FeatureError(
            f"membership has {c} clusters, expected {n_clusters}"
        )
    if np.any(u < -1e-9) or np.any(u > 1 + 1e-9):
        raise FeatureError("membership values must lie in [0, 1]")

    with span("signature.build", n_windows=u.shape[0], n_clusters=c):
        highest = u.max(axis=1)  # Eq. 5
        winners = u.argmax(axis=1)  # Eq. 6
        minima = np.zeros(c)
        maxima = np.zeros(c)
        for cluster in range(c):
            won = highest[winners == cluster]
            if won.size:
                minima[cluster] = won.min()  # Eq. 8
                maxima[cluster] = won.max()  # Eq. 7
        return MotionSignature(
            minima=minima,
            maxima=maxima,
            window_clusters=winners.astype(np.int64),
            window_memberships=highest,
        )

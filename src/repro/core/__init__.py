"""The paper's primary contribution, assembled.

* :mod:`repro.core.signature` — the final 2c-dimensional motion feature
  vector built from fuzzy memberships (paper Eqs. 5–8);
* :mod:`repro.core.model` — :class:`MotionClassifier`, the end-to-end
  database/query pipeline (Sections 3–4): windowed IAV + weighted-SVD
  features → FCM over the database windows → per-motion signature →
  nearest-neighbour classification and k-NN retrieval.
"""

from repro.core.signature import MotionSignature, motion_signature
from repro.core.incremental import IncrementalMotionDatabase
from repro.core.model import MotionClassifier, RetrievedNeighbor
from repro.core.spotting import (
    ActivityDetector,
    DetectedMotion,
    segment_matching_score,
    spot_and_classify,
)

__all__ = [
    "MotionSignature",
    "motion_signature",
    "MotionClassifier",
    "RetrievedNeighbor",
    "IncrementalMotionDatabase",
    "ActivityDetector",
    "DetectedMotion",
    "segment_matching_score",
    "spot_and_classify",
]

"""Incremental motion-database maintenance.

Section 4 of the paper fits FCM on "the existent motions in the database"
and scores queries against the *fixed* centers (Eq. 9).  The same mechanism
supports growing the database online: a new motion's signature can be
computed against the existing centers exactly like a query's, then indexed —
no FCM refit.  The approximation degrades as the window distribution drifts
away from what the centers were fitted on, so the maintainer tracks a drift
statistic (mean highest membership of newly added windows vs. the fit-time
baseline) and reports when a refit is due.

:class:`IncrementalMotionDatabase` wraps a fitted
:class:`~repro.core.model.MotionClassifier` with ``add``/``remove``/k-NN
operations backed by the B+-tree iDistance index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.model import MotionClassifier, RetrievedNeighbor
from repro.data.record import RecordedMotion
from repro.errors import NotFittedError, RetrievalError
from repro.fuzzy.membership import membership_matrix
from repro.retrieval.dynamic import DynamicIDistanceIndex
from repro.retrieval.knn import knn_vote
from repro.utils.validation import check_in_range

__all__ = ["IncrementalMotionDatabase"]


@dataclass(frozen=True)
class _Entry:
    key: str
    label: str


class IncrementalMotionDatabase:
    """Online add/remove/query over a fitted classifier's signature space.

    Parameters
    ----------
    classifier:
        A fitted :class:`~repro.core.model.MotionClassifier`; its FCM
        centers, scaler and featurizer are frozen and shared.
    n_partitions, headroom:
        Forwarded to the backing
        :class:`~repro.retrieval.dynamic.DynamicIDistanceIndex`.
    drift_tolerance:
        Fraction by which the mean highest membership of *added* windows
        may fall below the fit-time baseline before :attr:`refit_recommended`
        turns on.  The baseline is optimistically biased (FCM centers are
        fitted to exactly those windows), so held-out additions typically
        sit 10-20 % below it even without drift; the default 0.25 only
        fires on genuine distribution shifts.
    """

    def __init__(
        self,
        classifier: MotionClassifier,
        n_partitions: int = 8,
        headroom: float = 4.0,
        drift_tolerance: float = 0.25,
    ):
        if not classifier.is_fitted:
            raise NotFittedError(
                "IncrementalMotionDatabase needs a fitted classifier"
            )
        self.classifier = classifier
        self.drift_tolerance = check_in_range(
            drift_tolerance, name="drift_tolerance", low=0.0, high=1.0
        )
        signatures = classifier.database_signatures
        self._index = DynamicIDistanceIndex(
            n_partitions=n_partitions, headroom=headroom
        ).fit(signatures)
        self._entries: Dict[int, _Entry] = {
            i: _Entry(key=key, label=label)
            for i, (key, label) in enumerate(
                zip(classifier.database_keys, classifier.database_labels)
            )
        }
        self._keys_in_db = {e.key for e in self._entries.values()}
        # Fit-time membership baseline: how confidently the FCM vocabulary
        # covers its own training windows.
        self._baseline_membership = classifier.mean_highest_membership
        self._added_memberships: List[float] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def labels(self) -> List[str]:
        """Sorted unique labels currently in the database."""
        return sorted({e.label for e in self._entries.values()})

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def add(self, record: RecordedMotion) -> int:
        """Add a motion online; returns its database id.

        The signature is computed against the frozen FCM centers (Eq. 9),
        exactly as for a query.
        """
        if record.key in self._keys_in_db:
            raise RetrievalError(f"motion {record.key!r} is already indexed")
        model = self.classifier
        features = model.featurizer.features(record)
        scaled = model.scaler.transform(features.matrix)
        memberships = membership_matrix(scaled, model.centers, m=model.m)
        self._added_memberships.extend(memberships.max(axis=1).tolist())
        from repro.core.signature import motion_signature

        signature = motion_signature(memberships, model.n_clusters)
        vid = self._index.insert(signature.vector)
        self._entries[vid] = _Entry(key=record.key, label=record.label)
        self._keys_in_db.add(record.key)
        return vid

    def remove(self, vid: int) -> bool:
        """Remove a motion by database id; returns whether it existed."""
        entry = self._entries.pop(vid, None)
        if entry is None:
            return False
        self._keys_in_db.discard(entry.key)
        if not self._index.remove(vid):
            raise RetrievalError(
                f"index corruption: id {vid} missing"
            )  # pragma: no cover
        return True

    @property
    def refit_recommended(self) -> bool:
        """Whether the added windows drifted enough to warrant an FCM refit.

        True when the mean highest membership of windows added since the
        fit falls more than ``drift_tolerance`` (relatively) below the
        fit-time baseline — the FCM vocabulary no longer covers the data.
        """
        if not self._added_memberships:
            return False
        current = float(np.mean(self._added_memberships))
        return current < (1.0 - self.drift_tolerance) * self._baseline_membership

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def kneighbors(self, record: RecordedMotion, k: int = 5) -> List[RetrievedNeighbor]:
        """The ``k`` nearest currently indexed motions."""
        vector = self.classifier.signature(record).vector
        ids, distances = self._index.query(vector, k)
        return [
            RetrievedNeighbor(
                key=self._entries[int(i)].key,
                label=self._entries[int(i)].label,
                distance=float(d),
            )
            for i, d in zip(ids, distances)
        ]

    def classify(self, record: RecordedMotion, k: int = 1) -> str:
        """k-NN classification over the current database contents."""
        neighbors = self.kneighbors(record, k)
        return knn_vote(
            [n.label for n in neighbors],
            np.asarray([n.distance for n in neighbors]),
        )

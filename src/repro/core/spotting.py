"""Motion spotting: find motion segments in a continuous stream.

The paper assumes trigger-segmented trials; a deployed classifier must find
the motions first.  :class:`ActivityDetector` scores every frame by fusing
the two modalities the paper integrates —

* normalized multi-channel EMG amplitude (muscles fire during motion), and
* normalized joint speed (segments move during motion) —

then applies hysteresis thresholding (a high "on" threshold to enter a
segment, a lower "off" threshold to leave it), closes short gaps, drops
too-short blips, and pads segment edges.  :func:`spot_and_classify` feeds
each detected segment to a fitted
:class:`~repro.core.model.MotionClassifier`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.model import MotionClassifier
from repro.data.stream import ContinuousStream, StreamAnnotation
from repro.errors import ValidationError
from repro.signal.envelope import moving_average
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["ActivityDetector", "DetectedMotion", "spot_and_classify",
           "segment_matching_score"]


@dataclass(frozen=True)
class DetectedMotion:
    """One spotted (and optionally classified) segment.

    Attributes
    ----------
    start, stop:
        Frame range ``[start, stop)``.
    label:
        Predicted class (``None`` before classification).
    score:
        Mean activity score inside the segment.
    """

    start: int
    stop: int
    score: float
    label: Optional[str] = None


class ActivityDetector:
    """Hysteresis activity detector over fused EMG + kinematic energy.

    Parameters
    ----------
    on_threshold / off_threshold:
        Enter a segment when the smoothed activity exceeds ``on_threshold``;
        leave when it falls below ``off_threshold`` (both relative to the
        stream's own activity range, 0–1).
    smooth_s:
        Moving-average smoothing of the activity score, seconds.
    min_duration_s:
        Segments shorter than this are discarded.
    max_gap_s:
        Sub-threshold gaps shorter than this are bridged.
    pad_s:
        Padding added on both sides of every accepted segment.
    """

    def __init__(
        self,
        on_threshold: float = 0.18,
        off_threshold: float = 0.10,
        smooth_s: float = 0.15,
        min_duration_s: float = 0.4,
        max_gap_s: float = 0.3,
        pad_s: float = 0.1,
    ):
        on_threshold = check_in_range(on_threshold, name="on_threshold",
                                      low=0.0, high=1.0)
        off_threshold = check_in_range(off_threshold, name="off_threshold",
                                       low=0.0, high=1.0)
        if off_threshold > on_threshold:
            raise ValidationError(
                f"hysteresis needs off <= on, got off={off_threshold} > "
                f"on={on_threshold}"
            )
        self.on_threshold = on_threshold
        self.off_threshold = off_threshold
        self.smooth_s = check_in_range(smooth_s, name="smooth_s", low=0.0,
                                       high=5.0)
        self.min_duration_s = check_in_range(min_duration_s,
                                             name="min_duration_s",
                                             low=0.0, high=30.0)
        self.max_gap_s = check_in_range(max_gap_s, name="max_gap_s",
                                        low=0.0, high=30.0)
        self.pad_s = check_in_range(pad_s, name="pad_s", low=0.0, high=5.0)

    # ------------------------------------------------------------------

    def activity(self, stream: ContinuousStream) -> np.ndarray:
        """Fused activity score per frame, normalized to [0, 1]."""
        emg = np.asarray(stream.emg.data_volts)
        mocap = np.asarray(stream.mocap.matrix_mm)
        fps = stream.fps

        # EMG amplitude: mean over channels of per-channel normalized
        # rectified amplitude.
        emg_score = self._normalize(emg).mean(axis=1)

        # Kinematic speed: frame-to-frame displacement per joint.
        velocity = np.zeros(mocap.shape[0])
        diffs = np.diff(mocap, axis=0)
        n_joints = mocap.shape[1] // 3
        speed = np.zeros((diffs.shape[0], n_joints))
        for j in range(n_joints):
            block = diffs[:, 3 * j : 3 * j + 3]
            speed[:, j] = np.sqrt(np.einsum("nd,nd->n", block, block)) * fps
        velocity[1:] = speed.mean(axis=1)
        velocity[0] = velocity[1] if len(velocity) > 1 else 0.0
        speed_score = self._normalize(velocity[:, None])[:, 0]

        fused = 0.5 * emg_score + 0.5 * speed_score
        width = max(1, int(round(self.smooth_s * fps)))
        return moving_average(fused, width)

    @staticmethod
    def _normalize(x: np.ndarray) -> np.ndarray:
        """Columnwise robust [0, 1] normalization (5th-95th percentile)."""
        lo = np.percentile(x, 5, axis=0)
        hi = np.percentile(x, 95, axis=0)
        span = np.where(hi - lo < 1e-12, 1.0, hi - lo)
        return np.clip((x - lo) / span, 0.0, 1.0)

    # ------------------------------------------------------------------

    def detect(self, stream: ContinuousStream) -> List[DetectedMotion]:
        """Spot motion segments in a stream."""
        score = self.activity(stream)
        fps = stream.fps
        n = len(score)

        # Hysteresis pass.
        raw: List[Tuple[int, int]] = []
        inside = False
        start = 0
        for i, value in enumerate(score):
            if not inside and value >= self.on_threshold:
                inside = True
                start = i
            elif inside and value < self.off_threshold:
                inside = False
                raw.append((start, i))
        if inside:
            raw.append((start, n))

        # Bridge short gaps.
        max_gap = int(round(self.max_gap_s * fps))
        merged: List[Tuple[int, int]] = []
        for seg in raw:
            if merged and seg[0] - merged[-1][1] <= max_gap:
                merged[-1] = (merged[-1][0], seg[1])
            else:
                merged.append(seg)

        # Drop blips, pad, clamp.
        min_len = int(round(self.min_duration_s * fps))
        pad = int(round(self.pad_s * fps))
        out: List[DetectedMotion] = []
        for start, stop in merged:
            if stop - start < min_len:
                continue
            lo = max(0, start - pad)
            hi = min(n, stop + pad)
            out.append(DetectedMotion(
                start=lo, stop=hi, score=float(score[start:stop].mean()),
            ))
        return out


def spot_and_classify(
    stream: ContinuousStream,
    classifier: MotionClassifier,
    detector: Optional[ActivityDetector] = None,
    k: int = 1,
) -> List[DetectedMotion]:
    """Detect segments and classify each with the fitted pipeline."""
    detector = detector or ActivityDetector()
    detections = detector.detect(stream)
    out = []
    for det in detections:
        record = stream.segment(det.start, det.stop)
        label = classifier.classify(record, k=k)
        out.append(DetectedMotion(start=det.start, stop=det.stop,
                                  score=det.score, label=label))
    return out


def segment_matching_score(
    annotations: Tuple[StreamAnnotation, ...],
    detections: List[DetectedMotion],
    min_iou: float = 0.3,
) -> dict:
    """Match detections to annotations and summarize spotting quality.

    A detection matches an annotation when their interval IoU is at least
    ``min_iou``; each annotation matches at most one detection (greedy by
    IoU).  Returns hits, misses, false alarms and the label accuracy over
    hits.
    """
    min_iou = check_in_range(min_iou, name="min_iou", low=0.0, high=1.0)
    remaining = list(range(len(detections)))
    hits = 0
    correct = 0
    for ann in annotations:
        best_iou, best_idx = 0.0, None
        for idx in remaining:
            det = detections[idx]
            inter = ann.overlap(det.start, det.stop)
            union = (ann.n_frames + (det.stop - det.start) - inter)
            iou = inter / union if union else 0.0
            if iou > best_iou:
                best_iou, best_idx = iou, idx
        if best_idx is not None and best_iou >= min_iou:
            hits += 1
            remaining.remove(best_idx)
            if detections[best_idx].label == ann.label:
                correct += 1
    return {
        "hits": hits,
        "misses": len(annotations) - hits,
        "false_alarms": len(remaining),
        "label_accuracy": correct / hits if hits else 0.0,
    }

"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` while letting programming errors (``TypeError`` from
misuse of numpy, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "SignalError",
    "SkeletonError",
    "AcquisitionError",
    "FeatureError",
    "ClusteringError",
    "NotFittedError",
    "DatasetError",
    "RetrievalError",
    "StoreError",
    "SerializationError",
    "CacheError",
    "LintError",
    "FaultInjectionError",
    "DegradationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An input array or parameter failed validation.

    Also a ``ValueError`` so that generic numeric call-sites that expect
    ``ValueError`` on bad input keep working.
    """


class SignalError(ReproError):
    """A DSP operation received an unusable signal or configuration."""


class SkeletonError(ReproError):
    """The skeleton definition is inconsistent (unknown segment, cycle...)."""


class AcquisitionError(ReproError):
    """A simulated acquisition device was misconfigured or out of sync."""


class FeatureError(ReproError):
    """Feature extraction could not be performed on the given window/matrix."""


class ClusteringError(ReproError):
    """Fuzzy or hard clustering failed (bad c, degenerate data...)."""


class NotFittedError(ClusteringError):
    """A model method requiring a prior ``fit`` was called before fitting."""


class DatasetError(ReproError):
    """A dataset/protocol operation failed (empty class, label mismatch...)."""


class RetrievalError(ReproError):
    """A similarity-search structure was queried in an invalid way."""


class StoreError(RetrievalError):
    """The persistent signature store is inconsistent or was misused."""


class SerializationError(ReproError):
    """Saving or loading a dataset/model artifact failed."""


class CacheError(ReproError):
    """A feature-cache store is unusable (bad directory, unwritable entry)."""


class LintError(ReproError):
    """The static-analysis runner could not lint a target (bad path, syntax)."""


class FaultInjectionError(ReproError):
    """A fault specification is invalid or cannot be applied to the record."""


class DegradationError(ReproError):
    """A degraded input was rejected (strict policy) or cannot be salvaged."""

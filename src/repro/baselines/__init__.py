"""Raw-signal baseline classifiers from the paper's related work.

The paper contrasts its low-dimensional fuzzy signatures with approaches
that match raw multi-attribute time series directly; Keogh et al. (VLDB'04,
the paper's reference [8]) index raw human-motion streams with bounding
envelopes.  :mod:`repro.baselines.dtw` implements that family — multivariate
dynamic time warping with a Sakoe-Chiba band, the LB_Keogh lower bound for
pruning, and a 1-NN classifier over raw (EMG + mocap) motion matrices — so
the benchmarks can compare the paper's method against the strongest
classical raw-signal alternative on accuracy *and* query cost.
"""

from repro.baselines.dtw import DTWClassifier, dtw_distance, keogh_envelope, lb_keogh

__all__ = ["DTWClassifier", "dtw_distance", "keogh_envelope", "lb_keogh"]

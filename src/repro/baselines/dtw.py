"""Dynamic time warping over raw motion matrices, with LB_Keogh pruning.

The baseline works on the same synchronized (EMG + mocap) streams as the
paper's classifier but skips all feature extraction: motions are z-scored
per dimension, resampled to a common length, and compared by multivariate
DTW.  LB_Keogh bounding envelopes (Keogh et al., the paper's reference [8])
prune candidates whose lower bound already exceeds the best distance so far,
exactly as in the cited indexing work.

The point of the baseline in this repository is the paper's implicit claim:
a 2c-dimensional signature is *much* cheaper to search than raw sequences
while staying competitive in accuracy — measured by
``benchmarks/test_ablation_dtw_baseline.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.dataset import MotionDataset
from repro.data.record import RecordedMotion
from repro.errors import NotFittedError, RetrievalError, ValidationError
from repro.retrieval.knn import knn_vote
from repro.utils.validation import check_array, check_in_range, check_positive_int

__all__ = ["dtw_distance", "keogh_envelope", "lb_keogh", "DTWClassifier"]


def dtw_distance(
    a: np.ndarray,
    b: np.ndarray,
    band_fraction: float = 0.1,
) -> float:
    """Multivariate DTW distance with a Sakoe-Chiba band.

    Parameters
    ----------
    a, b:
        Sequences of shape ``(n, d)`` and ``(m, d)``; per-step cost is the
        squared Euclidean distance between frames.
    band_fraction:
        Half-width of the warping band as a fraction of the longer sequence
        (0 disables warping flexibility beyond the diagonal).

    Returns
    -------
    float
        The square root of the accumulated squared cost along the optimal
        warping path.
    """
    a = check_array(a, name="a", ndim=2, allow_empty=False)
    b = check_array(b, name="b", ndim=2, allow_empty=False)
    if a.shape[1] != b.shape[1]:
        raise ValidationError(
            f"sequences must share dimensionality: {a.shape[1]} vs {b.shape[1]}"
        )
    band_fraction = check_in_range(band_fraction, name="band_fraction",
                                   low=0.0, high=1.0)
    n, m = a.shape[0], b.shape[0]
    band = max(1, int(np.ceil(band_fraction * max(n, m))), abs(n - m))

    prev = np.full(m + 1, np.inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        cur = np.full(m + 1, np.inf)
        lo = max(1, i - band)
        hi = min(m, i + band)
        diff = b[lo - 1 : hi] - a[i - 1]
        costs = np.einsum("md,md->m", diff, diff)
        for j, cost in zip(range(lo, hi + 1), costs):
            cur[j] = cost + min(prev[j], cur[j - 1], prev[j - 1])
        prev = cur
    return float(np.sqrt(prev[m]))


def keogh_envelope(seq: np.ndarray, band: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-dimension running min/max envelopes over a warping band.

    Returns ``(lower, upper)`` arrays of the same shape as ``seq``.
    """
    seq = check_array(seq, name="seq", ndim=2, allow_empty=False)
    band = check_positive_int(band, name="band")
    n = seq.shape[0]
    lower = np.empty_like(seq)
    upper = np.empty_like(seq)
    for i in range(n):
        lo = max(0, i - band)
        hi = min(n, i + band + 1)
        window = seq[lo:hi]
        lower[i] = window.min(axis=0)
        upper[i] = window.max(axis=0)
    return lower, upper


def lb_keogh(query: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> float:
    """LB_Keogh lower bound of the DTW distance.

    Sums, per frame and dimension, the squared exceedance of the query over
    the candidate's envelope.  Requires the query and the envelope to share
    the same length (the classifier resamples all motions to one length).
    """
    query = check_array(query, name="query", ndim=2, allow_empty=False)
    if query.shape != lower.shape or query.shape != upper.shape:
        raise ValidationError(
            f"query {query.shape} and envelopes {lower.shape} must match"
        )
    above = np.maximum(query - upper, 0.0)
    below = np.maximum(lower - query, 0.0)
    return float(np.sqrt(np.sum(above**2 + below**2)))


class DTWClassifier:
    """1-NN / k-NN classifier over raw motion matrices via DTW.

    Parameters
    ----------
    resample_length:
        All motions are linearly resampled to this many frames, making the
        envelopes and bounds directly comparable.
    band_fraction:
        Sakoe-Chiba band half-width as a fraction of the sequence length.
    use_lower_bound:
        Toggle LB_Keogh pruning (exactness is unaffected; only speed).
    """

    def __init__(
        self,
        resample_length: int = 64,
        band_fraction: float = 0.1,
        use_lower_bound: bool = True,
    ):
        self.resample_length = check_positive_int(
            resample_length, name="resample_length", minimum=4
        )
        self.band_fraction = check_in_range(
            band_fraction, name="band_fraction", low=0.0, high=1.0
        )
        self.use_lower_bound = use_lower_bound
        self._sequences: List[np.ndarray] = []
        self._envelopes: List[Tuple[np.ndarray, np.ndarray]] = []
        self._labels: List[str] = []
        self._keys: List[str] = []
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        #: DTW computations actually run by the last query (pruning stat).
        self.last_dtw_calls = 0

    # ------------------------------------------------------------------

    def _combined(self, record: RecordedMotion) -> np.ndarray:
        return np.hstack([
            np.asarray(record.emg.data_volts),
            np.asarray(record.mocap.matrix_mm),
        ])

    def _resample(self, seq: np.ndarray) -> np.ndarray:
        n = seq.shape[0]
        if n == self.resample_length:
            return seq.copy()
        src = np.linspace(0.0, 1.0, n)
        dst = np.linspace(0.0, 1.0, self.resample_length)
        return np.stack(
            [np.interp(dst, src, seq[:, j]) for j in range(seq.shape[1])],
            axis=1,
        )

    def fit(self, database: MotionDataset) -> "DTWClassifier":
        """Normalize, resample and envelope every database motion."""
        if len(database) == 0:
            raise ValidationError("cannot fit on an empty database")
        raw = [self._resample(self._combined(rec)) for rec in database]
        stacked = np.vstack(raw)
        self._mean = stacked.mean(axis=0)
        std = stacked.std(axis=0)
        self._std = np.where(std < 1e-12, 1.0, std)
        band = max(1, int(np.ceil(self.band_fraction * self.resample_length)))
        self._sequences = [(seq - self._mean) / self._std for seq in raw]
        self._envelopes = [keogh_envelope(seq, band) for seq in self._sequences]
        self._labels = [rec.label for rec in database]
        self._keys = [rec.key for rec in database]
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._mean is not None

    def _prepare_query(self, record: RecordedMotion) -> np.ndarray:
        if self._mean is None or self._std is None:
            raise NotFittedError("DTWClassifier used before fit")
        seq = self._resample(self._combined(record))
        return (seq - self._mean) / self._std

    # ------------------------------------------------------------------

    def kneighbors(
        self, record: RecordedMotion, k: int = 5
    ) -> List[Tuple[str, str, float]]:
        """The ``k`` nearest database motions as ``(key, label, distance)``.

        Uses LB_Keogh to skip candidates whose lower bound exceeds the
        current k-th best distance; results equal an exhaustive scan.
        """
        query = self._prepare_query(record)
        k = check_positive_int(k, name="k")
        if k > len(self._sequences):
            raise RetrievalError(
                f"k={k} exceeds the {len(self._sequences)} indexed motions"
            )
        # Process candidates in ascending lower-bound order so the best-so-
        # far threshold tightens quickly.
        if self.use_lower_bound:
            bounds = np.array([
                lb_keogh(query, lo, up) for lo, up in self._envelopes
            ])
        else:
            bounds = np.zeros(len(self._sequences))
        order = np.argsort(bounds, kind="stable")
        best: List[Tuple[float, int]] = []
        self.last_dtw_calls = 0
        for idx in order:
            if len(best) == k and bounds[idx] >= best[-1][0]:
                break  # every remaining lower bound is at least this large
            d = dtw_distance(query, self._sequences[idx], self.band_fraction)
            self.last_dtw_calls += 1
            best.append((d, int(idx)))
            best.sort()
            best = best[:k]
        return [
            (self._keys[i], self._labels[i], d) for d, i in best
        ]

    def classify(self, record: RecordedMotion, k: int = 1) -> str:
        """Predict the motion class by k-NN vote over DTW distances."""
        neighbors = self.kneighbors(record, k)
        return knn_vote(
            [label for _, label, _ in neighbors],
            np.asarray([d for _, _, d in neighbors]),
        )

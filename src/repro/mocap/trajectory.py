"""The motion-capture data container.

The paper represents "every motion ... by a matrix which contains the 3D
positional information for all joints, in the form of 3-column per joint
(called as 'joint matrix') in whole motion matrix".
:class:`MotionCaptureData` is exactly that motion matrix plus the segment
ordering and frame rate needed to interpret it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.skeleton.transform import to_pelvis_frame
from repro.utils.validation import check_array

__all__ = ["MotionCaptureData"]


@dataclass(frozen=True)
class MotionCaptureData:
    """A captured motion matrix: 3 columns (X, Y, Z) per segment, mm.

    Attributes
    ----------
    segments:
        Segment names in column order.
    matrix_mm:
        Array of shape ``(n_frames, 3 * len(segments))``.
    fps:
        Frame rate, 120 Hz in the paper's laboratory.
    """

    segments: Tuple[str, ...]
    matrix_mm: np.ndarray
    fps: float = 120.0
    #: Opt-in: accept NaN samples encoding occluded markers (see
    #: repro.mocap.noise.OcclusionModel and repro.robust).  Off by default —
    #: clean-pipeline captures stay strictly finite; occluded data must be
    #: gap-filled (repro.mocap.gapfill / a robust policy) before
    #: featurization, since the feature extractors reject NaN regardless.
    allow_gaps: bool = field(default=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValidationError("MotionCaptureData needs at least one segment")
        if len(set(self.segments)) != len(self.segments):
            raise ValidationError(f"duplicate segment names: {self.segments}")
        object.__setattr__(self, "segments", tuple(self.segments))
        matrix = check_array(self.matrix_mm, name="matrix_mm", ndim=2, min_rows=1,
                             allow_non_finite=self.allow_gaps)
        if matrix.shape[1] != 3 * len(self.segments):
            raise ValidationError(
                f"matrix has {matrix.shape[1]} columns, expected "
                f"{3 * len(self.segments)} for {len(self.segments)} segments"
            )
        matrix = matrix.copy()
        matrix.flags.writeable = False
        object.__setattr__(self, "matrix_mm", matrix)
        if not self.fps > 0:
            raise ValidationError(f"fps must be positive, got {self.fps}")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_positions(
        cls,
        positions_mm: Mapping[str, np.ndarray],
        segments: Sequence[str],
        fps: float = 120.0,
    ) -> "MotionCaptureData":
        """Assemble the motion matrix from a name → (n, 3) mapping.

        Column order follows ``segments``; each requested segment must be
        present in the mapping.
        """
        missing = [s for s in segments if s not in positions_mm]
        if missing:
            raise ValidationError(f"positions missing segments: {missing}")
        arrays = []
        n = None
        for name in segments:
            pos = check_array(positions_mm[name], name=name, ndim=2)
            if pos.shape[1] != 3:
                raise ValidationError(
                    f"positions for {name!r} must be (n, 3), got {pos.shape}"
                )
            if n is None:
                n = pos.shape[0]
            elif pos.shape[0] != n:
                raise ValidationError(
                    f"segment {name!r} has {pos.shape[0]} frames, expected {n}"
                )
            arrays.append(pos)
        return cls(segments=tuple(segments), matrix_mm=np.hstack(arrays), fps=fps)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n_frames(self) -> int:
        """Number of captured frames."""
        return self.matrix_mm.shape[0]

    @property
    def n_segments(self) -> int:
        """Number of segments (joints) in the matrix."""
        return len(self.segments)

    @property
    def duration_s(self) -> float:
        """Capture duration in seconds."""
        return self.n_frames / self.fps

    def column_slice(self, segment: str) -> slice:
        """Column slice of ``segment`` inside the motion matrix."""
        try:
            idx = self.segments.index(segment)
        except ValueError:
            raise ValidationError(
                f"segment {segment!r} not captured; have {self.segments}"
            ) from None
        return slice(3 * idx, 3 * idx + 3)

    def joint_matrix(self, segment: str) -> np.ndarray:
        """The paper's per-joint ``(n_frames, 3)`` "joint matrix"."""
        return self.matrix_mm[:, self.column_slice(segment)]

    def positions(self) -> Dict[str, np.ndarray]:
        """Mapping from segment name to its (n, 3) trajectory."""
        return {s: self.joint_matrix(s) for s in self.segments}

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def select(self, segments: Sequence[str]) -> "MotionCaptureData":
        """Restrict the matrix to ``segments`` (in the given order)."""
        pos = self.positions()
        return MotionCaptureData.from_positions(pos, segments, fps=self.fps)

    def to_pelvis_local(self, pelvis_name: str = "pelvis") -> "MotionCaptureData":
        """Apply the paper's local transformation (pelvis at the origin)."""
        local = to_pelvis_frame(self.positions(), pelvis_name=pelvis_name)
        return MotionCaptureData.from_positions(local, self.segments, fps=self.fps)

    def slice_frames(self, start: int, stop: int) -> "MotionCaptureData":
        """Return frames ``[start, stop)`` as a new capture."""
        if not 0 <= start < stop <= self.n_frames:
            raise ValidationError(
                f"invalid frame range [{start}, {stop}) for {self.n_frames} frames"
            )
        return MotionCaptureData(
            segments=self.segments,
            matrix_mm=self.matrix_mm[start:stop],
            fps=self.fps,
            allow_gaps=self.allow_gaps,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MotionCaptureData):
            return NotImplemented
        return (
            self.segments == other.segments
            and self.fps == other.fps
            and self.matrix_mm.shape == other.matrix_mm.shape
            and bool(np.allclose(self.matrix_mm, other.matrix_mm))
        )

"""Gap-filling of occluded marker samples.

Short NaN runs produced by :class:`repro.mocap.noise.OcclusionModel` are
reconstructed by per-column linear interpolation (the standard first-pass
gap-fill in commercial mocap pipelines); leading/trailing gaps are filled by
nearest-value extrapolation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError
from repro.utils.validation import check_array

__all__ = ["fill_gaps", "gap_statistics"]


def fill_gaps(positions_mm: np.ndarray) -> np.ndarray:
    """Return a copy of ``(n_frames, k)`` positions with NaNs interpolated.

    Raises
    ------
    SignalError
        If any column is entirely NaN (nothing to interpolate from).
    """
    positions = check_array(positions_mm, name="positions_mm",
                            allow_non_finite=True)
    if positions.ndim != 2:
        raise SignalError(f"positions must be 2-D, got shape {positions.shape}")
    out = positions.copy()
    n = out.shape[0]
    idx = np.arange(n)
    for col in range(out.shape[1]):
        column = out[:, col]
        mask = np.isnan(column)
        if not mask.any():
            continue
        if mask.all():
            raise SignalError(f"column {col} is entirely NaN; cannot gap-fill")
        valid = ~mask
        out[mask, col] = np.interp(idx[mask], idx[valid], column[valid])
    return out


def gap_statistics(positions_mm: np.ndarray) -> dict:
    """Summarize occlusion gaps: count, total NaN samples, longest run.

    Useful for acquisition-quality reporting and tested independently of the
    filler.
    """
    positions = check_array(positions_mm, name="positions_mm",
                            allow_non_finite=True)
    if positions.ndim != 2:
        raise SignalError(f"positions must be 2-D, got shape {positions.shape}")
    mask = np.isnan(positions)
    n_samples = int(mask.sum())
    n_gaps = 0
    longest = 0
    for col in range(mask.shape[1]):
        column = mask[:, col]
        run = 0
        for value in column:
            if value:
                run += 1
                longest = max(longest, run)
            else:
                if run > 0:
                    n_gaps += 1
                run = 0
        if run > 0:
            n_gaps += 1
    return {"n_gaps": n_gaps, "n_nan_samples": n_samples, "longest_gap": longest}

"""Marker measurement-noise and occlusion models.

Optical motion capture is precise but not perfect: reconstructed marker
positions jitter by a fraction of a millimetre to a few millimetres, and
markers occasionally drop out when occluded from too many cameras.  The
paper notes that motion-capture data is far more noise-immune than EMG —
these models keep that ordering while still exercising the gap-filling code
path a real pipeline needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_array, check_in_range, check_positive_int

__all__ = ["MarkerNoiseModel", "OcclusionModel"]


@dataclass(frozen=True)
class MarkerNoiseModel:
    """Additive Gaussian jitter on reconstructed marker positions.

    Attributes
    ----------
    sigma_mm:
        Per-axis standard deviation in millimetres.  Sub-millimetre values
        are typical for a calibrated optical system; the default 0.8 mm is a
        conservative lab-quality figure.
    """

    sigma_mm: float = 0.8

    def __post_init__(self) -> None:
        check_in_range(self.sigma_mm, name="sigma_mm", low=0.0, high=float("inf"))

    def apply(self, positions_mm: np.ndarray, seed: SeedLike = None) -> np.ndarray:
        """Return a jittered copy of an ``(n_frames, k)`` position array."""
        positions = check_array(positions_mm, name="positions_mm", ndim=2)
        if self.sigma_mm <= 0.0:
            return positions.copy()
        rng = as_generator(seed)
        return positions + rng.normal(0.0, self.sigma_mm, size=positions.shape)


@dataclass(frozen=True)
class OcclusionModel:
    """Random short marker dropouts, marked as NaN runs per segment.

    Attributes
    ----------
    dropout_rate_per_s:
        Expected number of occlusion events per segment per second.
    max_gap_frames:
        Maximum dropout length; each event draws a length in
        ``[1, max_gap_frames]`` uniformly.
    """

    dropout_rate_per_s: float = 0.1
    max_gap_frames: int = 6

    def __post_init__(self) -> None:
        check_in_range(self.dropout_rate_per_s, name="dropout_rate_per_s",
                       low=0.0, high=float("inf"))
        check_positive_int(self.max_gap_frames, name="max_gap_frames")

    def apply(
        self, positions_mm: np.ndarray, fps: float, seed: SeedLike = None
    ) -> np.ndarray:
        """Return a copy of ``(n_frames, 3k)`` positions with NaN gaps.

        Gaps never cover the first or last frame of a segment's trajectory so
        that gap-filling by interpolation stays well-posed.
        """
        positions = check_array(positions_mm, name="positions_mm", ndim=2)
        out = positions.copy()
        if self.dropout_rate_per_s <= 0.0:
            return out
        rng = as_generator(seed)
        n = positions.shape[0]
        n_markers = positions.shape[1] // 3
        duration_s = n / fps
        for marker in range(n_markers):
            n_events = rng.poisson(self.dropout_rate_per_s * duration_s)
            for _ in range(n_events):
                if n <= 2:
                    break
                length = int(rng.integers(1, self.max_gap_frames + 1))
                length = min(length, n - 2)
                start = int(rng.integers(1, n - length))
                out[start : start + length, 3 * marker : 3 * marker + 3] = np.nan
        return out

"""Marker clusters and joint reconstruction.

Real optical capture does not measure joints — it measures retro-reflective
*markers* taped to the body ("round-shaped" reflectors in the paper's
Figure 1) and software reconstructs joint centers from them.  This module
adds that layer to the simulator:

* a :class:`MarkerCluster` is a rigid set of markers around one segment's
  distal joint, with local offsets summing to zero — so the cluster's
  centroid *is* the joint center;
* :func:`marker_positions` places clusters with the segment's full pose
  (position + orientation from :func:`~repro.skeleton.kinematics.forward_kinematics_full`);
* :func:`reconstruct_joints` recovers joint trajectories by averaging each
  cluster's markers — noise on individual markers averages down by
  ``1/sqrt(k)``, exactly why labs use 3-marker clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import SkeletonError, ValidationError
from repro.skeleton.kinematics import JointAngles, forward_kinematics_full
from repro.skeleton.model import Skeleton
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_array, check_in_range, check_positive_int

__all__ = [
    "MarkerCluster",
    "default_marker_set",
    "marker_positions",
    "reconstruct_joints",
]


@dataclass(frozen=True)
class MarkerCluster:
    """A rigid marker cluster on one segment.

    Attributes
    ----------
    segment:
        Segment whose distal joint the cluster surrounds.
    offsets_mm:
        ``(k, 3)`` marker offsets in the segment's local frame; they must
        sum to (numerically) zero so the centroid coincides with the joint.
    """

    segment: str
    offsets_mm: np.ndarray

    def __post_init__(self) -> None:
        offsets = check_array(self.offsets_mm, name="offsets_mm", ndim=2,
                              min_rows=1)
        if offsets.shape[1] != 3:
            raise ValidationError(
                f"marker offsets must be (k, 3), got {offsets.shape}"
            )
        centroid = offsets.mean(axis=0)
        if np.linalg.norm(centroid) > 1e-6 * max(1.0, np.abs(offsets).max()):
            raise ValidationError(
                f"cluster on {self.segment!r} is not centred on the joint: "
                f"centroid {centroid}"
            )
        offsets = offsets.copy()
        offsets.flags.writeable = False
        object.__setattr__(self, "offsets_mm", offsets)

    @property
    def n_markers(self) -> int:
        """Markers in the cluster."""
        return self.offsets_mm.shape[0]


def default_marker_set(
    segments: Sequence[str],
    n_markers: int = 3,
    radius_mm: float = 40.0,
    seed: SeedLike = 0,
) -> Dict[str, MarkerCluster]:
    """Symmetric marker clusters for the given segments.

    Markers are spread evenly on a circle of ``radius_mm`` whose plane
    orientation is drawn per segment (clusters on different segments should
    not be coplanar copies of each other), guaranteeing a zero centroid.
    """
    n_markers = check_positive_int(n_markers, name="n_markers", minimum=2)
    radius_mm = check_in_range(radius_mm, name="radius_mm", low=0.0,
                               high=500.0, inclusive_low=False)
    rng = as_generator(seed)
    clusters: Dict[str, MarkerCluster] = {}
    for segment in segments:
        angles = 2.0 * np.pi * np.arange(n_markers) / n_markers
        circle = np.stack(
            [np.cos(angles), np.sin(angles), np.zeros(n_markers)], axis=1
        ) * radius_mm
        # Random plane orientation per segment.
        q = np.linalg.qr(rng.normal(size=(3, 3)))[0]
        clusters[segment] = MarkerCluster(
            segment=segment, offsets_mm=circle @ q.T
        )
    return clusters


def marker_positions(
    skeleton: Skeleton,
    animation: JointAngles,
    clusters: Dict[str, MarkerCluster],
) -> Dict[str, np.ndarray]:
    """Global marker trajectories per segment, shape ``(n, k, 3)``.

    Markers ride rigidly with their segment: position = joint position +
    segment rotation applied to the local offset.
    """
    if not clusters:
        raise ValidationError("need at least one marker cluster")
    segments = list(clusters)
    skeleton.validate_segment_names(segments)
    positions, rotations = forward_kinematics_full(skeleton, animation, segments)
    out: Dict[str, np.ndarray] = {}
    for segment, cluster in clusters.items():
        joint = positions[segment]  # (n, 3)
        rot = rotations[segment]  # (n, 3, 3)
        riding = np.einsum("nij,kj->nki", rot, np.asarray(cluster.offsets_mm))
        out[segment] = joint[:, None, :] + riding
    return out


def reconstruct_joints(
    markers: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Joint trajectories as the centroid of each segment's marker cluster.

    NaN markers (occluded samples) are ignored frame-wise; a frame with
    every marker of a cluster missing raises, because no reconstruction is
    possible without gap-filling first.
    """
    out: Dict[str, np.ndarray] = {}
    for segment, cloud in markers.items():
        cloud = np.asarray(cloud, dtype=np.float64)
        if cloud.ndim != 3 or cloud.shape[2] != 3:
            raise ValidationError(
                f"markers for {segment!r} must be (n, k, 3), got {cloud.shape}"
            )
        import warnings

        with warnings.catch_warnings():
            # A fully occluded frame produces "Mean of empty slice"; the
            # resulting NaN is detected and reported just below.
            warnings.simplefilter("ignore", category=RuntimeWarning)
            centroid = np.nanmean(cloud, axis=1)
        if np.isnan(centroid).any():
            raise SkeletonError(
                f"segment {segment!r} has frames with every marker occluded; "
                "gap-fill the markers first"
            )
        out[segment] = centroid
    return out

"""Vicon-like optical motion-capture simulator.

Replaces the paper's 16-camera Vicon iQ system.  Given an animated skeleton,
:class:`ViconSystem` produces a :class:`~repro.mocap.trajectory.MotionCaptureData`
motion matrix at 120 Hz via the same conceptual pipeline a real system runs:

1. sample the true joint positions at the camera frame rate (forward
   kinematics);
2. add marker reconstruction jitter;
3. drop markers during occlusions;
4. gap-fill the dropouts.

The simulator captures *global* positions; the pelvis-local transform the
paper applies is a downstream processing step
(:meth:`repro.mocap.trajectory.MotionCaptureData.to_pelvis_local`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import AcquisitionError
from repro.mocap.gapfill import fill_gaps
from repro.mocap.noise import MarkerNoiseModel, OcclusionModel
from repro.mocap.trajectory import MotionCaptureData
from repro.skeleton.kinematics import JointAngles, forward_kinematics
from repro.skeleton.model import Skeleton
from repro.utils.rng import SeedLike, as_generator

__all__ = ["ViconSystem"]


@dataclass
class ViconSystem:
    """Simulated optical capture system.

    Attributes
    ----------
    fps:
        Camera frame rate; the paper's laboratory runs at 120 Hz.
    noise:
        Marker jitter model (``None`` disables jitter).
    occlusion:
        Occlusion/dropout model (``None`` disables dropouts).
    markers_per_joint:
        When > 0, capture runs at the *marker* level: a cluster of this
        many retro-reflective markers rides each segment, each marker is
        jittered/occluded independently, and joint centers are
        reconstructed from the cluster centroids — the full pipeline a real
        Vicon runs.  0 (the default) applies the sensor models directly to
        joint positions, which is faster and statistically equivalent up to
        the cluster-averaging factor.
    """

    fps: float = 120.0
    noise: Optional[MarkerNoiseModel] = field(default_factory=MarkerNoiseModel)
    occlusion: Optional[OcclusionModel] = field(default_factory=OcclusionModel)
    markers_per_joint: int = 0

    def __post_init__(self) -> None:
        if not self.fps > 0:
            raise AcquisitionError(f"fps must be positive, got {self.fps}")
        if self.markers_per_joint < 0 or self.markers_per_joint == 1:
            raise AcquisitionError(
                "markers_per_joint must be 0 (joint-level capture) or >= 2, "
                f"got {self.markers_per_joint}"
            )

    def capture(
        self,
        skeleton: Skeleton,
        animation: JointAngles,
        segments: Optional[Sequence[str]] = None,
        seed: SeedLike = None,
    ) -> MotionCaptureData:
        """Capture an animated skeleton into a motion matrix.

        Parameters
        ----------
        skeleton:
            The body being tracked.
        animation:
            Joint-angle animation, assumed to already be on this system's
            frame rate (the acquisition session guarantees this).
        segments:
            Segments to include in the matrix; defaults to all of them.  The
            root segment is always appended (if absent) so the pelvis-local
            transform remains possible downstream.
        seed:
            RNG seed shared by the jitter and occlusion models.
        """
        rng = as_generator(seed)
        if segments is None:
            wanted = list(skeleton.names)
        else:
            wanted = list(segments)
            skeleton.validate_segment_names(wanted)
            root = skeleton.root.name
            if root not in wanted:
                wanted.append(root)
        if self.markers_per_joint:
            matrix = self._capture_marker_level(skeleton, animation, wanted, rng)
        else:
            matrix = self._capture_joint_level(skeleton, animation, wanted, rng)
        return MotionCaptureData(segments=tuple(wanted), matrix_mm=matrix, fps=self.fps)

    def _capture_joint_level(self, skeleton, animation, wanted, rng) -> np.ndarray:
        positions = forward_kinematics(skeleton, animation, wanted)
        capture = MotionCaptureData.from_positions(positions, wanted, fps=self.fps)
        matrix = np.asarray(capture.matrix_mm)
        if self.noise is not None:
            matrix = self.noise.apply(matrix, seed=rng)
        if self.occlusion is not None:
            matrix = self.occlusion.apply(matrix, self.fps, seed=rng)
            matrix = fill_gaps(matrix)
        return matrix

    def _capture_marker_level(self, skeleton, animation, wanted, rng) -> np.ndarray:
        from repro.mocap.markers import (
            default_marker_set,
            marker_positions,
            reconstruct_joints,
        )

        clusters = default_marker_set(
            wanted, n_markers=self.markers_per_joint, seed=rng
        )
        clouds = marker_positions(skeleton, animation, clusters)
        processed = {}
        for segment, cloud in clouds.items():
            n, k, _ = cloud.shape
            flat = cloud.reshape(n, 3 * k)
            if self.noise is not None:
                flat = self.noise.apply(flat, seed=rng)
            if self.occlusion is not None:
                flat = self.occlusion.apply(flat, self.fps, seed=rng)
                flat = fill_gaps(flat)
            processed[segment] = flat.reshape(n, k, 3)
        joints = reconstruct_joints(processed)
        capture = MotionCaptureData.from_positions(joints, wanted, fps=self.fps)
        return np.asarray(capture.matrix_mm)

"""Motion-capture substrate: data container, sensor noise, Vicon-like capture.

Replaces the paper's 16-camera Vicon iQ laboratory.  The simulator samples an
animated skeleton at 120 Hz, perturbs marker positions with measurement
noise, drops markers for short occlusion gaps, and gap-fills them — producing
the same kind of 3-column-per-joint motion matrices the paper's classifier
consumes.
"""

from repro.mocap.trajectory import MotionCaptureData
from repro.mocap.noise import MarkerNoiseModel, OcclusionModel
from repro.mocap.gapfill import fill_gaps
from repro.mocap.vicon import ViconSystem
from repro.mocap.markers import (
    MarkerCluster,
    default_marker_set,
    marker_positions,
    reconstruct_joints,
)
from repro.mocap.analysis import (
    joint_angle_series,
    mean_speed,
    path_length,
    range_of_motion,
    smoothness_sal,
)

__all__ = [
    "MotionCaptureData",
    "MarkerNoiseModel",
    "OcclusionModel",
    "fill_gaps",
    "ViconSystem",
    "MarkerCluster",
    "default_marker_set",
    "marker_positions",
    "reconstruct_joints",
    "joint_angle_series",
    "mean_speed",
    "path_length",
    "range_of_motion",
    "smoothness_sal",
]

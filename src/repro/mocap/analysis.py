"""Kinematic analysis of captured motion matrices.

The paper motivates the integration with "joint mechanics, prosthetic
designs, and sports medicines" — applications that read *kinematic
quantities* off the same motion matrices the classifier consumes.  This
module provides the standard ones:

* :func:`joint_angle_series` — the included angle at a middle joint of a
  three-point chain (e.g. elbow angle from shoulder/elbow/wrist positions);
* :func:`range_of_motion` — per-axis excursion of a joint;
* :func:`path_length` / :func:`mean_speed` — trajectory length and speed;
* :func:`smoothness_sal` — spectral-arc-length smoothness, the standard
  motor-control quality metric (lower magnitude = smoother).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.mocap.trajectory import MotionCaptureData
from repro.utils.validation import check_array, check_in_range

__all__ = [
    "joint_angle_series",
    "range_of_motion",
    "path_length",
    "mean_speed",
    "smoothness_sal",
]


def joint_angle_series(
    capture: MotionCaptureData,
    proximal: str,
    middle: str,
    distal: str,
) -> np.ndarray:
    """Included angle (radians) at ``middle`` over time.

    The angle between the vectors ``middle→proximal`` and ``middle→distal``:
    an extended elbow reads ~pi, a fully flexed one approaches 0.
    """
    a = capture.joint_matrix(proximal)
    b = capture.joint_matrix(middle)
    c = capture.joint_matrix(distal)
    u = a - b
    v = c - b
    nu = np.linalg.norm(u, axis=1)
    nv = np.linalg.norm(v, axis=1)
    if np.any(nu < 1e-9) or np.any(nv < 1e-9):
        raise ValidationError(
            "degenerate joint geometry: coincident points in the chain"
        )
    cosine = np.einsum("nd,nd->n", u, v) / (nu * nv)
    return np.arccos(np.clip(cosine, -1.0, 1.0))


def range_of_motion(capture: MotionCaptureData, segment: str) -> Dict[str, float]:
    """Per-axis excursion (max − min, mm) of a segment's trajectory."""
    pos = capture.joint_matrix(segment)
    span = pos.max(axis=0) - pos.min(axis=0)
    return {"x": float(span[0]), "y": float(span[1]), "z": float(span[2])}


def path_length(capture: MotionCaptureData, segment: str) -> float:
    """Total 3-D path length of a segment's trajectory, mm."""
    pos = capture.joint_matrix(segment)
    if pos.shape[0] < 2:
        return 0.0
    steps = np.diff(pos, axis=0)
    return float(np.sum(np.sqrt(np.einsum("nd,nd->n", steps, steps))))


def mean_speed(capture: MotionCaptureData, segment: str) -> float:
    """Average 3-D speed of a segment, mm/s."""
    duration = capture.duration_s
    if duration <= 0:
        raise ValidationError("capture has zero duration")
    return path_length(capture, segment) / duration


def smoothness_sal(
    capture: MotionCaptureData,
    segment: str,
    cutoff_hz: float = 10.0,
) -> float:
    """Spectral arc length of a segment's speed profile (Balasubramanian).

    The arc length of the normalized Fourier magnitude spectrum of the
    speed profile up to ``cutoff_hz``; always negative, with values nearer
    zero indicating smoother movement.
    """
    cutoff_hz = check_in_range(cutoff_hz, name="cutoff_hz", low=0.0,
                               high=capture.fps / 2.0, inclusive_low=False)
    pos = capture.joint_matrix(segment)
    if pos.shape[0] < 8:
        raise ValidationError("need at least 8 frames for a smoothness estimate")
    steps = np.diff(pos, axis=0)
    speed = np.sqrt(np.einsum("nd,nd->n", steps, steps)) * capture.fps
    # Zero-pad for spectral resolution.
    n_fft = max(256, 4 * len(speed))
    spectrum = np.abs(np.fft.rfft(speed, n=n_fft))
    freqs = np.fft.rfftfreq(n_fft, d=1.0 / capture.fps)
    keep = freqs <= cutoff_hz
    mag = spectrum[keep]
    if mag[0] <= 0:
        raise ValidationError("segment does not move; smoothness undefined")
    mag = mag / mag[0]
    f_norm = freqs[keep] / cutoff_hz
    d_f = np.diff(f_norm)
    d_m = np.diff(mag)
    return float(-np.sum(np.sqrt(d_f**2 + d_m**2)))

"""DSP substrate built on numpy only.

This subpackage reimplements the small amount of classical signal processing
the paper's acquisition chain needs — IIR Butterworth design via the bilinear
transform, zero-phase filtering, anti-aliased decimation, full-wave
rectification, Welch PSD estimation and linear-envelope extraction — without
depending on scipy.  The test suite cross-checks the filter implementations
against scipy as an oracle.
"""

from repro.signal.filters import (
    IIRFilter,
    butter_bandpass,
    butter_highpass,
    butter_lowpass,
    filtfilt,
    lfilter,
)
from repro.signal.envelope import linear_envelope, moving_average
from repro.signal.notch import notch_filter
from repro.signal.rectify import full_wave_rectify
from repro.signal.resample import decimate, downsample_to_rate
from repro.signal.spectral import band_power, welch_psd

__all__ = [
    "IIRFilter",
    "butter_bandpass",
    "butter_highpass",
    "butter_lowpass",
    "filtfilt",
    "lfilter",
    "notch_filter",
    "linear_envelope",
    "moving_average",
    "full_wave_rectify",
    "decimate",
    "downsample_to_rate",
    "band_power",
    "welch_psd",
]

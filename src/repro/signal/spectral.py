"""Spectral estimation: Welch periodogram averaging and band power.

Used by the test-suite and the EMG synthesizer's self-checks to verify that
synthetic surface EMG actually concentrates its power inside the paper's
20–450 Hz analog pass-band.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import SignalError
from repro.utils.validation import check_array, check_in_range, check_positive_int, shapes

__all__ = ["welch_psd", "band_power"]


def welch_psd(
    x: np.ndarray,
    fs: float,
    nperseg: int = 256,
    overlap: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Welch power spectral density of a 1-D signal.

    Segments of length ``nperseg`` with fractional ``overlap`` are Hann
    windowed, periodograms are averaged, and the one-sided density is
    returned.

    Returns
    -------
    (freqs, psd):
        Frequencies in Hz and the PSD in signal-units²/Hz.
    """
    x = check_array(x, name="x", ndim=1, allow_empty=False)
    fs = check_in_range(fs, name="fs", low=0.0, high=float("inf"), inclusive_low=False)
    nperseg = check_positive_int(nperseg, name="nperseg", minimum=2)
    overlap = check_in_range(overlap, name="overlap", low=0.0, high=1.0,
                             inclusive_high=False)
    n = len(x)
    nperseg = min(nperseg, n)
    step = max(1, int(round(nperseg * (1.0 - overlap))))
    window = np.hanning(nperseg)
    scale = 1.0 / (fs * np.sum(window**2))

    starts = range(0, n - nperseg + 1, step)
    if not starts:
        raise SignalError("signal shorter than one segment")
    acc = np.zeros(nperseg // 2 + 1)
    count = 0
    for s in starts:
        seg = x[s : s + nperseg]
        seg = (seg - seg.mean()) * window
        spec = np.fft.rfft(seg)
        acc += (np.abs(spec) ** 2) * scale
        count += 1
    psd = acc / count
    # One-sided correction: double everything except DC and (for even
    # nperseg) the Nyquist bin.
    if nperseg % 2 == 0:
        psd[1:-1] *= 2.0
    else:
        psd[1:] *= 2.0
    freqs = np.fft.rfftfreq(nperseg, d=1.0 / fs)
    return freqs, psd


@shapes(x="(n,)")
def band_power(
    x: np.ndarray, fs: float, low_hz: float, high_hz: float, nperseg: int = 256
) -> float:
    """Fraction of total signal power falling in ``[low_hz, high_hz]``.

    Returns a value in [0, 1]; 1 means all estimated power is in the band.
    """
    if not low_hz < high_hz:
        raise SignalError(f"band edges must satisfy low < high, got {low_hz}, {high_hz}")
    freqs, psd = welch_psd(x, fs, nperseg=nperseg)
    total = np.trapezoid(psd, freqs)
    if total <= 0:
        return 0.0
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    if not np.any(mask):
        return 0.0
    return float(np.trapezoid(psd[mask], freqs[mask]) / total)

"""Full-wave rectification.

The paper's EMG conditioning chain full-wave rectifies the band-passed signal
before down-sampling it to the motion-capture frame rate (Section 5).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array

__all__ = ["full_wave_rectify"]


def full_wave_rectify(x: np.ndarray) -> np.ndarray:
    """Return the element-wise absolute value of ``x`` as float64.

    A trivial operation, but kept as a named pipeline stage so the
    acquisition chain reads exactly like the paper's description
    ("this processed signal is full-wave rectified and down-sampled").
    """
    x = check_array(x, name="x")
    return np.abs(x)

"""IIR notch filter for narrow-band interference.

The paper's 20–450 Hz band-pass cannot remove 60 Hz mains hum — it sits
inside the pass-band (see :mod:`repro.emg.artifacts`).  The classical remedy
is a second-order IIR notch: a conjugate zero pair on the unit circle at the
interference frequency, with a matching pole pair pulled slightly inside to
set the notch width.  The design matches ``scipy.signal.iirnotch``
coefficient-for-coefficient, which the test-suite verifies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError
from repro.signal.filters import IIRFilter
from repro.utils.validation import check_in_range

__all__ = ["notch_filter"]


def notch_filter(freq_hz: float, fs: float, quality: float = 30.0) -> IIRFilter:
    """Design a second-order notch at ``freq_hz``.

    Parameters
    ----------
    freq_hz:
        Center frequency to reject; must lie strictly inside (0, fs/2).
    fs:
        Sampling rate in Hz.
    quality:
        Quality factor ``Q = freq / bandwidth``; Q = 30 at 60 Hz gives a
        2 Hz-wide notch.

    Returns
    -------
    IIRFilter
        A biquad with unit gain away from the notch and a null at
        ``freq_hz``.
    """
    nyq = fs / 2.0
    check_in_range(freq_hz, name="freq_hz", low=0.0, high=nyq,
                   inclusive_low=False, inclusive_high=False)
    quality = check_in_range(quality, name="quality", low=0.0,
                             high=float("inf"), inclusive_low=False)
    w0 = 2.0 * np.pi * freq_hz / fs
    # -3 dB bandwidth w0/Q expressed via the bilinear tangent mapping (the
    # same construction as scipy.signal.iirnotch, which the tests verify).
    beta = np.tan(w0 / (2.0 * quality))
    if not np.isfinite(beta) or beta <= 0:
        raise SignalError("degenerate notch design")  # pragma: no cover
    gain = 1.0 / (1.0 + beta)
    cos_w0 = np.cos(w0)
    b = gain * np.array([1.0, -2.0 * cos_w0, 1.0])
    a = np.array([1.0, -2.0 * gain * cos_w0, 2.0 * gain - 1.0])
    return IIRFilter(b=b, a=a,
                     description=f"notch {freq_hz:g}Hz Q={quality:g}")

"""Linear-envelope extraction for EMG signals.

A "linear envelope" — full-wave rectification followed by low-pass smoothing —
is the classical amplitude estimate for surface EMG.  The library uses it when
synthesizing figures like the paper's Figure 2 (muscle activity traces) and
when validating the synthetic EMG generator against its commanded activation.
"""

from __future__ import annotations

import numpy as np

from repro.signal.filters import butter_lowpass
from repro.signal.rectify import full_wave_rectify
from repro.utils.validation import check_array, check_in_range, check_positive_int

__all__ = ["moving_average", "linear_envelope"]


def moving_average(x: np.ndarray, width: int) -> np.ndarray:
    """Centered moving average along axis 0 with edge replication.

    Parameters
    ----------
    x:
        1-D or 2-D signal (frames on axis 0).
    width:
        Averaging window in samples; clipped to the signal length.
    """
    x = check_array(x, name="x")
    width = check_positive_int(width, name="width")
    if x.ndim == 1:
        squeeze = True
        data = x[:, None]
    else:
        squeeze = False
        data = x
    n = data.shape[0]
    width = min(width, n)
    half_lo = (width - 1) // 2
    half_hi = width - 1 - half_lo
    padded = np.concatenate(
        [np.repeat(data[:1], half_lo, axis=0), data, np.repeat(data[-1:], half_hi, axis=0)],
        axis=0,
    )
    kernel = np.ones(width) / width
    out = np.empty_like(data)
    for j in range(data.shape[1]):
        out[:, j] = np.convolve(padded[:, j], kernel, mode="valid")
    return out[:, 0] if squeeze else out


def linear_envelope(x: np.ndarray, fs: float, cutoff_hz: float = 6.0) -> np.ndarray:
    """Classical EMG linear envelope: rectify, then low-pass at ``cutoff_hz``.

    Parameters
    ----------
    x:
        Raw (or band-passed) EMG, frames on axis 0.
    fs:
        Sampling rate in Hz.
    cutoff_hz:
        Smoothing cutoff; 3–10 Hz is conventional for movement studies.
    """
    fs = check_in_range(fs, name="fs", low=0.0, high=float("inf"), inclusive_low=False)
    x = check_array(x, name="x", dtype=np.float64)
    rectified = full_wave_rectify(x)
    filt = butter_lowpass(cutoff_hz, fs, order=4)
    env = filt.apply_zero_phase(rectified, axis=0)
    # Smoothing can undershoot slightly below zero near sharp onsets; an
    # envelope is non-negative by definition.
    return np.maximum(env, 0.0)

"""IIR Butterworth filter design and application, from scratch on numpy.

The Delsys Myomonitor system in the paper band-pass filters raw EMG to
20–450 Hz before sampling at 1000 Hz.  We reproduce that conditioning with a
digital Butterworth filter designed here via the classical analog-prototype →
frequency-transform → bilinear-transform route (Oppenheim & Schafer).

Design route
------------
1. Analog low-pass Butterworth prototype of order ``N``: poles equally spaced
   on the unit left-half circle.
2. Frequency transform (lp→lp, lp→hp, or lp→bp) at the pre-warped analog
   frequencies.
3. Bilinear transform to the digital domain.
4. Conversion from zpk to transfer-function (b, a) coefficients.

Application is direct-form II transposed (:func:`lfilter`) and zero-phase
forward-backward filtering with odd reflective padding (:func:`filtfilt`),
matching scipy's conventions closely enough that the test suite validates the
impulse and magnitude responses against ``scipy.signal``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.errors import SignalError
from repro.obs.config import span
from repro.utils.validation import check_array, check_in_range, check_positive_int

__all__ = [
    "IIRFilter",
    "butter_lowpass",
    "butter_highpass",
    "butter_bandpass",
    "lfilter",
    "lfilter_zi",
    "filtfilt",
]


def _analog_lowpass_prototype(order: int) -> np.ndarray:
    """Poles of the analog Butterworth low-pass prototype (cutoff 1 rad/s)."""
    k = np.arange(1, order + 1)
    theta = np.pi * (2 * k - 1) / (2 * order) + np.pi / 2
    return np.exp(1j * theta)


def _zpk_bilinear(
    zeros: np.ndarray, poles: np.ndarray, gain: float, fs2: float
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Bilinear transform of an analog zpk system; ``fs2`` is ``2 * fs``."""
    degree = len(poles) - len(zeros)
    if degree < 0:
        raise SignalError("analog system must have at least as many poles as zeros")
    z_d = (fs2 + zeros) / (fs2 - zeros)
    p_d = (fs2 + poles) / (fs2 - poles)
    # Zeros at analog infinity map to z = -1.
    z_d = np.append(z_d, -np.ones(degree))
    k_d = gain * np.real(np.prod(fs2 - zeros) / np.prod(fs2 - poles))
    return z_d, p_d, k_d


def _poly_from_roots(roots: np.ndarray) -> np.ndarray:
    """Real polynomial coefficients from a conjugate-symmetric root set."""
    coeffs = np.atleast_1d(np.poly(roots)) if len(roots) else np.array([1.0])
    if np.max(np.abs(coeffs.imag)) > 1e-8 * max(1.0, np.max(np.abs(coeffs.real))):
        raise SignalError("root set is not conjugate-symmetric; got complex polynomial")
    return coeffs.real


@dataclass(frozen=True)
class IIRFilter:
    """A designed digital IIR filter with transfer function ``b(z)/a(z)``.

    Instances are immutable; apply them with :meth:`apply` (causal) or
    :meth:`apply_zero_phase` (forward-backward, no phase distortion — what a
    biomechanics pipeline uses offline).
    """

    b: np.ndarray
    a: np.ndarray
    description: str = field(default="iir", compare=False)

    def __post_init__(self) -> None:
        b = np.atleast_1d(np.asarray(self.b, dtype=np.float64))
        a = np.atleast_1d(np.asarray(self.a, dtype=np.float64))
        if a[0] == 0:
            raise SignalError("leading denominator coefficient must be nonzero")
        object.__setattr__(self, "b", b / a[0])
        object.__setattr__(self, "a", a / a[0])

    @property
    def order(self) -> int:
        """Filter order (denominator degree)."""
        return len(self.a) - 1

    def apply(self, x: np.ndarray, axis: int = 0) -> np.ndarray:  # lint: ignore[R5]
        """Causal filtering along ``axis`` (direct form II transposed)."""
        return lfilter(self.b, self.a, x, axis=axis)

    def apply_zero_phase(self, x: np.ndarray, axis: int = 0) -> np.ndarray:  # lint: ignore[R5]
        """Zero-phase forward-backward filtering along ``axis``."""
        return filtfilt(self.b, self.a, x, axis=axis)

    def frequency_response(
        self, n_points: int = 512, fs: float = 2.0 * np.pi
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Complex frequency response on ``n_points`` frequencies in [0, fs/2].

        Returns ``(freqs, response)``; with the default ``fs`` the frequencies
        are in rad/sample, otherwise in the same unit as ``fs``.
        """
        n_points = check_positive_int(n_points, name="n_points")
        w = np.linspace(0.0, np.pi, n_points, endpoint=False)
        z = np.exp(-1j * w)
        num = np.polynomial.polynomial.polyval(z, self.b)
        den = np.polynomial.polynomial.polyval(z, self.a)
        return w * fs / (2.0 * np.pi), num / den


def _design(
    order: int,
    analog_zeros: np.ndarray,
    analog_poles: np.ndarray,
    analog_gain: float,
    fs: float,
    description: str,
) -> IIRFilter:
    z, p, k = _zpk_bilinear(analog_zeros, analog_poles, analog_gain, 2.0 * fs)
    b = k * _poly_from_roots(z)
    a = _poly_from_roots(p)
    return IIRFilter(b=b, a=a, description=description)


def _prewarp(cutoff_hz: float, fs: float) -> float:
    """Pre-warped analog angular frequency for a digital cutoff."""
    nyq = fs / 2.0
    check_in_range(cutoff_hz, name="cutoff_hz", low=0.0, high=nyq,
                   inclusive_low=False, inclusive_high=False)
    return 2.0 * fs * np.tan(np.pi * cutoff_hz / fs)


def butter_lowpass(cutoff_hz: float, fs: float, order: int = 4) -> IIRFilter:
    """Digital Butterworth low-pass filter.

    Parameters
    ----------
    cutoff_hz:
        −3 dB cutoff in Hz; must lie strictly inside (0, fs/2).
    fs:
        Sampling rate in Hz.
    order:
        Filter order (number of analog prototype poles).
    """
    order = check_positive_int(order, name="order")
    warped = _prewarp(cutoff_hz, fs)
    proto = _analog_lowpass_prototype(order)
    poles = warped * proto
    gain = warped**order
    return _design(order, np.array([]), poles, gain, fs,
                   f"butterworth lowpass {cutoff_hz:g}Hz order {order}")


def butter_highpass(cutoff_hz: float, fs: float, order: int = 4) -> IIRFilter:
    """Digital Butterworth high-pass filter (see :func:`butter_lowpass`)."""
    order = check_positive_int(order, name="order")
    warped = _prewarp(cutoff_hz, fs)
    proto = _analog_lowpass_prototype(order)
    # lp -> hp transform: s -> warped / s.  For the unit-gain Butterworth
    # prototype prod(-p) = 1, so the transformed gain is exactly 1.
    poles = warped / proto
    zeros = np.zeros(order, dtype=complex)
    return _design(order, zeros, poles, 1.0, fs,
                   f"butterworth highpass {cutoff_hz:g}Hz order {order}")


def butter_bandpass(
    low_hz: float, high_hz: float, fs: float, order: int = 4
) -> IIRFilter:
    """Digital Butterworth band-pass filter.

    ``order`` is the prototype order; the resulting digital filter has order
    ``2 * order``, matching the scipy convention where ``butter(N, ..,
    'bandpass')`` yields a 2N-order filter.
    """
    order = check_positive_int(order, name="order")
    if not low_hz < high_hz:
        raise SignalError(f"band edges must satisfy low < high, got {low_hz} >= {high_hz}")
    w1 = _prewarp(low_hz, fs)
    w2 = _prewarp(high_hz, fs)
    bw = w2 - w1
    w0 = np.sqrt(w1 * w2)
    proto = _analog_lowpass_prototype(order)
    # lp -> bp transform: s -> (s^2 + w0^2) / (bw * s); each prototype pole p
    # becomes the two roots of s^2 - (p * bw) s + w0^2 = 0.
    p_bw = proto * bw / 2.0
    disc = np.sqrt(p_bw**2 - w0**2)
    poles = np.concatenate([p_bw + disc, p_bw - disc])
    zeros = np.zeros(order, dtype=complex)
    gain = bw**order
    return _design(order, zeros, poles, gain, fs,
                   f"butterworth bandpass {low_hz:g}-{high_hz:g}Hz order {order}")


def _validate_ba(b: np.ndarray, a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    b = np.atleast_1d(check_array(b, name="b", dtype=np.float64))
    a = np.atleast_1d(check_array(a, name="a", dtype=np.float64))
    if a[0] == 0:
        raise SignalError("a[0] must be nonzero")
    return b / a[0], a / a[0]


def lfilter_zi(b: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Steady-state initial filter state for a unit step input.

    This is the direct-form-II-transposed state that makes the filter's step
    response start at its final value, used by :func:`filtfilt` to suppress
    edge transients (the same construction as ``scipy.signal.lfilter_zi``).
    """
    b, a = _validate_ba(b, a)
    n = max(len(a), len(b))
    if n == 1:
        return np.zeros(0)
    bb = np.zeros(n)
    aa = np.zeros(n)
    bb[: len(b)] = b
    aa[: len(a)] = a
    # Companion matrix of the denominator polynomial.
    comp = np.zeros((n - 1, n - 1))
    comp[0, :] = -aa[1:]
    if n > 2:
        comp[1:, :-1] = np.eye(n - 2)
    rhs = bb[1:] - aa[1:] * bb[0]
    return np.linalg.solve(np.eye(n - 1) - comp.T, rhs)


def lfilter(
    b: np.ndarray,
    a: np.ndarray,
    x: np.ndarray,
    axis: int = 0,
    zi: np.ndarray | None = None,
) -> np.ndarray:
    """Causal IIR filtering (direct form II transposed) along ``axis``.

    A pure-numpy implementation of the standard difference equation

    ``a[0] y[n] = sum_k b[k] x[n-k] - sum_k a[k] y[n-k]``.

    Parameters
    ----------
    zi:
        Optional initial state of shape ``(n_taps - 1,)`` or
        ``(n_taps - 1, n_signals)``; defaults to rest (all zeros).
    """
    b, a = _validate_ba(b, a)
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return x.copy()
    moved = np.moveaxis(x, axis, 0)
    flat = moved.reshape(moved.shape[0], -1)
    n_taps = max(len(b), len(a))
    bb = np.zeros(n_taps)
    aa = np.zeros(n_taps)
    bb[: len(b)] = b
    aa[: len(a)] = a
    y = np.empty_like(flat)
    if n_taps == 1:
        y[:] = bb[0] * flat
        out = y.reshape(moved.shape)
        return np.moveaxis(out, 0, axis)
    if zi is None:
        state = np.zeros((n_taps - 1, flat.shape[1]))
    else:
        zi = np.asarray(zi, dtype=np.float64)
        if zi.ndim == 1:
            zi = zi[:, None]
        if zi.shape[0] != n_taps - 1:
            raise SignalError(
                f"zi must have {n_taps - 1} rows, got shape {zi.shape}"
            )
        state = np.broadcast_to(zi, (n_taps - 1, flat.shape[1])).copy()
    for n in range(flat.shape[0]):
        xn = flat[n]
        yn = bb[0] * xn + state[0]
        y[n] = yn
        # Shift the transposed direct-form-II state.
        state[:-1] = state[1:]
        state[-1] = 0.0
        state += np.outer(bb[1:], xn) - np.outer(aa[1:], yn)
    out = y.reshape(moved.shape)
    return np.moveaxis(out, 0, axis)


def filtfilt(b: np.ndarray, a: np.ndarray, x: np.ndarray, axis: int = 0) -> np.ndarray:
    """Zero-phase forward-backward filtering.

    The signal is extended at both ends by ``3 * max(len(a), len(b))`` samples
    of odd reflection and the filter state is seeded with the steady-state
    initial conditions (:func:`lfilter_zi`) scaled by the first/last sample —
    the same transient-suppression strategy as ``scipy.signal.filtfilt``.
    """
    b, a = _validate_ba(b, a)
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return x.copy()
    with span("signal.filtfilt", n_frames=x.shape[0], order=len(a) - 1):
        moved = np.moveaxis(x, axis, 0)
        n = moved.shape[0]
        pad = 3 * max(len(a), len(b))
        if n <= pad:
            pad = max(0, n - 1)
        if pad > 0:
            head = 2 * moved[0] - moved[pad:0:-1]
            tail = 2 * moved[-1] - moved[-2 : -pad - 2 : -1]
            ext = np.concatenate([head, moved, tail], axis=0)
        else:
            ext = moved
        zi = lfilter_zi(b, a)
        ext_flat = ext.reshape(ext.shape[0], -1)
        fwd = lfilter(b, a, ext_flat, axis=0, zi=np.outer(zi, ext_flat[0]))
        rev = fwd[::-1]
        bwd = lfilter(b, a, rev, axis=0, zi=np.outer(zi, rev[0]))[::-1]
        out = (bwd[pad : pad + n] if pad > 0 else bwd).reshape(moved.shape)
        return np.moveaxis(out, 0, axis)

"""Down-sampling with anti-alias pre-filtering.

The Myomonitor chain in the paper down-samples rectified 1000 Hz EMG to
120 Hz to align it with the motion-capture frame rate.  1000/120 is not an
integer, so we support rational decimation by low-pass pre-filtering and then
resampling on the exact target time grid with linear interpolation — the
standard approach for biomechanics envelope signals.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SignalError
from repro.obs.config import span
from repro.signal.filters import butter_lowpass
from repro.utils.validation import check_array, check_in_range, check_positive_int

__all__ = ["decimate", "downsample_to_rate"]


def decimate(x: np.ndarray, factor: int, fs: float, order: int = 8) -> np.ndarray:
    """Integer-factor decimation with a Butterworth anti-alias pre-filter.

    Parameters
    ----------
    x:
        Signal, frames along axis 0 (1-D or 2-D).
    factor:
        Integer decimation factor (keep every ``factor``-th sample).
    fs:
        Input sampling rate in Hz (used to place the anti-alias cutoff at
        80 % of the output Nyquist frequency).
    order:
        Anti-alias filter order.
    """
    x = check_array(x, name="x")
    factor = check_positive_int(factor, name="factor")
    if x.ndim not in (1, 2):
        raise SignalError(f"x must be 1-D or 2-D, got shape {x.shape}")
    if x.shape[0] == 0:
        raise SignalError("cannot decimate an empty signal")
    if factor == 1:
        return x.copy()
    cutoff = 0.8 * (fs / factor) / 2.0
    filt = butter_lowpass(cutoff, fs, order=order)
    smoothed = filt.apply_zero_phase(x, axis=0)
    return smoothed[::factor].copy()


def downsample_to_rate(
    x: np.ndarray,
    fs_in: float,
    fs_out: float,
    *,
    antialias: bool = True,
    n_out: Optional[int] = None,
) -> np.ndarray:
    """Resample ``x`` from ``fs_in`` to ``fs_out`` (``fs_out <= fs_in``).

    The signal is optionally low-pass filtered at 80 % of the output Nyquist
    frequency and then evaluated on the output time grid ``k / fs_out`` by
    linear interpolation.  Rational ratios such as 1000 Hz → 120 Hz are
    handled exactly.

    Parameters
    ----------
    x:
        Signal with time on axis 0 (1-D or 2-D).
    fs_in, fs_out:
        Input and output sampling rates in Hz.
    antialias:
        Disable only when the signal is already band-limited below the output
        Nyquist frequency (e.g. a rectified envelope that was pre-smoothed).
    n_out:
        Force the output length (e.g. to match a motion-capture stream of a
        known frame count); defaults to ``floor(duration * fs_out) + 1``
        samples that fit in the input span.
    """
    x = check_array(x, name="x")
    fs_in = check_in_range(fs_in, name="fs_in", low=0.0, high=float("inf"),
                           inclusive_low=False)
    fs_out = check_in_range(fs_out, name="fs_out", low=0.0, high=float("inf"),
                            inclusive_low=False)
    if fs_out > fs_in:
        raise SignalError(
            f"downsample_to_rate only reduces rate: fs_out {fs_out} > fs_in {fs_in}"
        )
    if x.ndim not in (1, 2):
        raise SignalError(f"x must be 1-D or 2-D, got shape {x.shape}")
    n_in = x.shape[0]
    if n_in < 2:
        raise SignalError("need at least two samples to resample")
    if x.ndim == 2 and x.shape[1] == 0:
        # Without this, the column-wise interpolation below falls over with
        # a raw "need at least one array to stack" ValueError.
        raise SignalError("cannot resample a signal with zero columns")

    with span("signal.resample", n_in=n_in, fs_in=fs_in, fs_out=fs_out):
        y = x
        if antialias and fs_out < fs_in:
            cutoff = 0.8 * fs_out / 2.0
            filt = butter_lowpass(cutoff, fs_in, order=8)
            y = filt.apply_zero_phase(x, axis=0)

        duration = (n_in - 1) / fs_in
        if n_out is None:
            n_out = int(np.floor(duration * fs_out)) + 1
        else:
            n_out = check_positive_int(n_out, name="n_out")
        t_out = np.arange(n_out) / fs_out
        t_out = np.clip(t_out, 0.0, duration)
        t_in = np.arange(n_in) / fs_in
        if y.ndim == 1:
            return np.interp(t_out, t_in, y)
        cols = [np.interp(t_out, t_in, y[:, j]) for j in range(y.shape[1])]
        return np.stack(cols, axis=1)

"""Input validation helpers used throughout the library.

These keep the validation wording consistent and make the error paths
testable: every helper raises :class:`repro.errors.ValidationError` with a
message naming the offending parameter.

Shape contracts
---------------
:func:`shapes` declares the expected array shapes of a function's parameters
with a tiny DSL and enforces them at call time::

    @shapes(x="(n, d)", centers="(c, d)")
    def assign(x, centers): ...

Each spec is a parenthesized, comma-separated list of dimension tokens:

``n`` (identifier)
    A symbolic size.  The same symbol appearing in several specs (or twice
    in one spec) must resolve to the same size at call time — above, ``x``
    and ``centers`` must agree on ``d``.
``3`` (integer)
    A fixed size.
``*``
    Any size (anonymous wildcard).
``...``
    Any number of leading/trailing dimensions (at most one per spec), so
    ``"(..., 3)"`` accepts every array whose last axis has size 3.

Parameters whose value is ``None`` are skipped, which keeps the decorator
friendly to ``Optional[np.ndarray]`` arguments.  The linter's R5 rule
(:mod:`repro.lint`) recognizes the decorator as a declared shape contract
and statically cross-checks that contracted names exist and specs parse.
"""

from __future__ import annotations

import functools
import inspect
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "check_array",
    "check_positive_int",
    "check_probability",
    "check_in_range",
    "parse_shape_spec",
    "shapes",
]


def check_array(
    value,
    *,
    name: str,
    ndim: Optional[int] = None,
    dtype=np.float64,
    min_rows: int = 0,
    allow_empty: bool = True,
    shape: Optional[Sequence[Optional[int]]] = None,
    allow_non_finite: bool = False,
) -> np.ndarray:
    """Coerce ``value`` to a numpy array and validate its shape.

    Parameters
    ----------
    value:
        Anything ``np.asarray`` accepts.
    name:
        Parameter name used in error messages.
    ndim:
        Required number of dimensions, if any.
    dtype:
        dtype to coerce to (``None`` keeps the input dtype).
    min_rows:
        Minimum length along axis 0.
    allow_empty:
        If ``False``, reject arrays with zero elements.
    shape:
        Optional per-axis size constraints; ``None`` entries are wildcards.
    allow_non_finite:
        If ``True``, NaN/inf values pass; the default rejects them.  Mocap
        paths use this where NaN encodes marker occlusion by design.

    Returns
    -------
    numpy.ndarray
        The validated (possibly converted) array.
    """
    try:
        arr = np.asarray(value, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} could not be converted to an array: {exc}") from exc
    if not np.issubdtype(arr.dtype, np.number) and not np.issubdtype(arr.dtype, np.bool_):
        raise ValidationError(f"{name} must be numeric, got dtype {arr.dtype}")
    if (
        not allow_non_finite
        and np.issubdtype(arr.dtype, np.floating)
        and not np.all(np.isfinite(arr))
    ):
        raise ValidationError(f"{name} contains non-finite values (NaN or inf)")
    if ndim is not None and arr.ndim != ndim:
        raise ValidationError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if arr.ndim >= 1 and arr.shape[0] < min_rows:
        raise ValidationError(
            f"{name} must have at least {min_rows} rows, got {arr.shape[0]}"
        )
    if shape is not None:
        if len(shape) != arr.ndim:
            raise ValidationError(
                f"{name} must be {len(shape)}-dimensional, got shape {arr.shape}"
            )
        for axis, (want, have) in enumerate(zip(shape, arr.shape)):
            if want is not None and want != have:
                raise ValidationError(
                    f"{name} must have size {want} along axis {axis}, got {have}"
                )
    return arr


def check_positive_int(value, *, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer >= ``minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability(value, *, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as ``float``."""
    return check_in_range(value, name=name, low=0.0, high=1.0)


def check_in_range(
    value,
    *,
    name: str,
    low: float,
    high: float,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Validate that a scalar lies in the given interval and return it."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number") from exc
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    low_ok = value >= low if inclusive_low else value > low
    high_ok = value <= high if inclusive_high else value < high
    if not (low_ok and high_ok):
        lo_b = "[" if inclusive_low else "("
        hi_b = "]" if inclusive_high else ")"
        raise ValidationError(f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value}")
    return value


#: One parsed dimension token: a fixed int, a symbol name, ``None`` for the
#: ``*`` wildcard, or ``Ellipsis`` for the ``...`` rest-of-dims marker.
DimToken = Union[int, str, None, type(Ellipsis)]


def parse_shape_spec(spec: str) -> Tuple[DimToken, ...]:
    """Parse one :func:`shapes` DSL string into dimension tokens.

    ``"(n, d)"`` → ``("n", "d")``; ``"(w, 3)"`` → ``("w", 3)``;
    ``"(n,)"`` → ``("n",)``; ``"(..., 3)"`` → ``(Ellipsis, 3)``;
    ``"(*, d)"`` → ``(None, "d")``.

    Raises
    ------
    ValidationError
        If the spec is not a parenthesized comma-separated list of
        integers, identifiers, ``*`` and at most one ``...``.
    """
    if not isinstance(spec, str):
        raise ValidationError(f"shape spec must be a string, got {type(spec).__name__}")
    text = spec.strip()
    if not (text.startswith("(") and text.endswith(")")):
        raise ValidationError(f"shape spec {spec!r} must be parenthesized, like '(n, d)'")
    inner = text[1:-1].strip()
    tokens: list[DimToken] = []
    if inner:
        parts = inner.split(",")
        # A trailing comma writes a 1-D spec the tuple way: "(n,)".
        if parts[-1].strip() == "":
            parts.pop()
        seen_ellipsis = False
        for part in parts:
            token = part.strip()
            if token == "...":
                if seen_ellipsis:
                    raise ValidationError(
                        f"shape spec {spec!r} may contain at most one '...'"
                    )
                seen_ellipsis = True
                tokens.append(Ellipsis)
            elif token == "*":
                tokens.append(None)
            elif token.isdigit():
                tokens.append(int(token))
            elif token.isidentifier():
                tokens.append(token)
            else:
                raise ValidationError(
                    f"shape spec {spec!r} has invalid dimension token {token!r}"
                )
    return tuple(tokens)


def _spec_ndim_text(tokens: Tuple[DimToken, ...]) -> str:
    if Ellipsis in tokens:
        return f">= {len(tokens) - 1} dimensions"
    return f"{len(tokens)} dimension(s)"


def _match_shape(
    shape: Tuple[int, ...],
    tokens: Tuple[DimToken, ...],
    *,
    name: str,
    spec: str,
    bindings: dict,
) -> None:
    """Match one value's shape against parsed tokens, updating ``bindings``."""
    if Ellipsis in tokens:
        cut = tokens.index(Ellipsis)
        head, tail = tokens[:cut], tokens[cut + 1 :]
        if len(shape) < len(head) + len(tail):
            raise ValidationError(
                f"{name} must have {_spec_ndim_text(tokens)} to match {spec!r}, "
                f"got shape {shape}"
            )
        pairs = list(zip(head, shape[: len(head)])) + (
            list(zip(tail, shape[len(shape) - len(tail) :])) if tail else []
        )
    else:
        if len(shape) != len(tokens):
            raise ValidationError(
                f"{name} must have {_spec_ndim_text(tokens)} to match {spec!r}, "
                f"got shape {shape}"
            )
        pairs = list(zip(tokens, shape))
    for token, size in pairs:
        if token is None:
            continue
        if isinstance(token, int):
            if size != token:
                raise ValidationError(
                    f"{name} violates shape contract {spec!r}: expected size "
                    f"{token}, got {size} (shape {shape})"
                )
        else:  # symbolic dimension
            bound = bindings.get(token)
            if bound is None:
                bindings[token] = (size, name)
            elif bound[0] != size:
                raise ValidationError(
                    f"{name} violates shape contract {spec!r}: dimension "
                    f"'{token}' is {size} here but {bound[0]} in {bound[1]} "
                    f"(shape {shape})"
                )


def shapes(**contracts: str):
    """Declare and enforce array shape contracts on a function's parameters.

    See the module docstring for the DSL.  Contracted parameters that are
    ``None`` at call time are skipped.  Violations raise
    :class:`repro.errors.ValidationError` naming the parameter, the
    contract, and the offending shape.

    The parsed contracts are attached to the wrapper as
    ``__shape_contracts__`` so tools (and :mod:`repro.lint`) can introspect
    them.
    """
    parsed = {name: parse_shape_spec(spec) for name, spec in contracts.items()}

    def decorate(func):
        signature = inspect.signature(func)
        unknown = [name for name in parsed if name not in signature.parameters]
        if unknown:
            raise ValidationError(
                f"@shapes on {func.__qualname__} names unknown parameter(s) "
                f"{unknown}; parameters are {list(signature.parameters)}"
            )

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            bound = signature.bind(*args, **kwargs)
            bindings: dict = {}
            for name, tokens in parsed.items():
                if name not in bound.arguments:
                    continue
                value = bound.arguments[name]
                if value is None:
                    continue
                try:
                    shape = np.shape(value)
                except (TypeError, ValueError) as exc:
                    raise ValidationError(
                        f"{name} has no well-defined shape: {exc}"
                    ) from exc
                _match_shape(shape, tokens, name=name,
                             spec=contracts[name], bindings=bindings)
            return func(*args, **kwargs)

        wrapper.__shape_contracts__ = dict(contracts)
        return wrapper

    return decorate

"""Input validation helpers used throughout the library.

These keep the validation wording consistent and make the error paths
testable: every helper raises :class:`repro.errors.ValidationError` with a
message naming the offending parameter.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "check_array",
    "check_positive_int",
    "check_probability",
    "check_in_range",
]


def check_array(
    value,
    *,
    name: str,
    ndim: Optional[int] = None,
    dtype=np.float64,
    min_rows: int = 0,
    allow_empty: bool = True,
    shape: Optional[Sequence[Optional[int]]] = None,
) -> np.ndarray:
    """Coerce ``value`` to a numpy array and validate its shape.

    Parameters
    ----------
    value:
        Anything ``np.asarray`` accepts.
    name:
        Parameter name used in error messages.
    ndim:
        Required number of dimensions, if any.
    dtype:
        dtype to coerce to (``None`` keeps the input dtype).
    min_rows:
        Minimum length along axis 0.
    allow_empty:
        If ``False``, reject arrays with zero elements.
    shape:
        Optional per-axis size constraints; ``None`` entries are wildcards.

    Returns
    -------
    numpy.ndarray
        The validated (possibly converted) array.
    """
    try:
        arr = np.asarray(value, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} could not be converted to an array: {exc}") from exc
    if not np.issubdtype(arr.dtype, np.number) and not np.issubdtype(arr.dtype, np.bool_):
        raise ValidationError(f"{name} must be numeric, got dtype {arr.dtype}")
    if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite values (NaN or inf)")
    if ndim is not None and arr.ndim != ndim:
        raise ValidationError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if arr.ndim >= 1 and arr.shape[0] < min_rows:
        raise ValidationError(
            f"{name} must have at least {min_rows} rows, got {arr.shape[0]}"
        )
    if shape is not None:
        if len(shape) != arr.ndim:
            raise ValidationError(
                f"{name} must be {len(shape)}-dimensional, got shape {arr.shape}"
            )
        for axis, (want, have) in enumerate(zip(shape, arr.shape)):
            if want is not None and want != have:
                raise ValidationError(
                    f"{name} must have size {want} along axis {axis}, got {have}"
                )
    return arr


def check_positive_int(value, *, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer >= ``minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability(value, *, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as ``float``."""
    return check_in_range(value, name=name, low=0.0, high=1.0)


def check_in_range(
    value,
    *,
    name: str,
    low: float,
    high: float,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Validate that a scalar lies in the given interval and return it."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number") from exc
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    low_ok = value >= low if inclusive_low else value > low
    high_ok = value <= high if inclusive_high else value < high
    if not (low_ok and high_ok):
        lo_b = "[" if inclusive_low else "("
        hi_b = "]" if inclusive_high else ")"
        raise ValidationError(f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value}")
    return value

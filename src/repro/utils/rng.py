"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes all three
into a ``Generator`` so downstream code never touches the legacy
``numpy.random.*`` global state, keeping experiments reproducible.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import ValidationError

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["SeedLike", "as_generator", "spawn_generators"]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged, so callers can thread one
        generator through a whole experiment).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(seed)
    raise ValidationError(
        f"seed must be None, an int, a SeedSequence or a Generator, got {type(seed).__name__}"
    )


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Deterministically derive ``n`` independent generators from ``seed``.

    Used when an experiment fans out over participants/trials and each branch
    must be reproducible independently of how many branches run before it.
    """
    if n < 0:
        raise ValidationError(f"cannot spawn a negative number of generators: {n}")
    root = as_generator(seed)
    child_seeds = root.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in child_seeds]

"""Atomic file persistence: write-to-temp then ``os.replace``.

Every on-disk artifact shared between concurrent workers (feature-cache
entries, retrieval indexes, benchmark records) must become visible in a
single step — a reader either sees the complete previous file or the
complete new one, never a torn write.  :func:`atomic_write` packages the
temp-file dance the feature cache originally inlined (including the fix
for the same-key temp-name race between thread workers: pid alone is not
a unique suffix, so the temp name also folds in the thread id and a
process-wide counter), and rule R8 of :mod:`repro.lint` statically
requires cache/retrieval persistence to route through it.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union

__all__ = ["atomic_write"]

#: Process-wide monotonic suffix for temp-file names.  The pid alone is
#: not unique enough: thread workers in one process writing the same
#: destination would collide on the temp name and race each other's
#: ``os.replace``.
_TMP_COUNTER = itertools.count()


def _temp_path(destination: Path) -> Path:
    return destination.with_name(
        f".{destination.name}.{os.getpid()}"
        f".{threading.get_ident()}.{next(_TMP_COUNTER)}.tmp"
    )


@contextmanager
def atomic_write(destination: Union[str, Path], mode: str = "wb",
                 encoding: str = None) -> Iterator[IO]:
    """Open a temp file that replaces ``destination`` on clean exit.

    The parent directory is created if missing.  On an exception inside
    the block the temp file is removed and ``destination`` is left
    untouched; on success the temp file is flushed, fsynced and moved
    into place with ``os.replace`` (atomic on POSIX within one
    filesystem), so concurrent readers and same-destination writers
    never observe a partial file.

    >>> with atomic_write(path) as handle:       # doctest: +SKIP
    ...     np.savez(handle, matrix=matrix)

    Parameters
    ----------
    destination:
        Final path of the artifact.
    mode:
        ``"wb"`` (default) or ``"w"``; the temp file is opened with it.
    encoding:
        Text encoding when ``mode`` is textual.
    """
    destination = Path(destination)
    destination.parent.mkdir(parents=True, exist_ok=True)
    tmp = _temp_path(destination)
    handle = open(tmp, mode, encoding=encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    handle.close()
    os.replace(tmp, destination)

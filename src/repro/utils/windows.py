"""Window arithmetic shared by the EMG and motion-capture feature extractors.

The paper cuts both synchronized streams into the *same* windows (Section 3.3:
a motion of length ``L`` is "divided into ⌈L/w⌉ windows").  Centralizing the
arithmetic here guarantees the two extractors can never disagree about window
boundaries.

Conventions
-----------
* Windows are half-open frame ranges ``[start, stop)``.
* The default stride equals the window length (non-overlapping windows), but
  an explicit stride enables overlapping sliding windows.
* The final window may be shorter than ``window`` when the stream length is
  not a multiple of the stride; it is kept when it has at least
  ``min_fraction`` of the nominal window length, mirroring the paper's
  ceiling division.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.obs.config import is_enabled, record_counter
from repro.utils.validation import check_in_range, check_positive_int, shapes

__all__ = [
    "num_windows",
    "window_bounds",
    "iter_windows",
    "sliding_window_view_2d",
    "window_batches",
    "window_size_frames",
]


def window_size_frames(window_ms: float, rate_hz: float) -> int:
    """Convert a window duration in milliseconds to a frame count.

    The paper specifies windows of 50–200 ms over 120 Hz streams; 50 ms at
    120 Hz is exactly 6 frames.  Durations that do not land on a frame
    boundary are rounded to the nearest frame, with a floor of one frame.
    """
    window_ms = check_in_range(window_ms, name="window_ms", low=0.0, high=float("inf"),
                               inclusive_low=False)
    rate_hz = check_in_range(rate_hz, name="rate_hz", low=0.0, high=float("inf"),
                             inclusive_low=False)
    return max(1, round(window_ms * rate_hz / 1000.0))


def _bounds_impl(
    n_frames: int,
    window: int,
    stride: Optional[int],
    min_fraction: float,
) -> list[Tuple[int, int]]:
    """The bounds arithmetic shared by the counting and materializing paths."""
    n_frames = check_positive_int(n_frames, name="n_frames", minimum=0)
    window = check_positive_int(window, name="window")
    if stride is None:
        stride = window
    stride = check_positive_int(stride, name="stride")
    min_fraction = check_in_range(min_fraction, name="min_fraction", low=0.0, high=1.0)

    if n_frames == 0:
        return []
    bounds: list[Tuple[int, int]] = []
    start = 0
    while start < n_frames:
        stop = min(start + window, n_frames)
        length = stop - start
        if length == window or length >= max(1, int(np.ceil(min_fraction * window))):
            bounds.append((start, stop))
        start += stride
    if not bounds:
        # Stream shorter than the minimum partial window: use it whole rather
        # than silently producing a featureless motion.
        bounds.append((0, n_frames))
    return bounds


def window_bounds(
    n_frames: int,
    window: int,
    stride: Optional[int] = None,
    min_fraction: float = 0.5,
) -> list[Tuple[int, int]]:
    """Return the list of ``(start, stop)`` frame ranges for a stream.

    Parameters
    ----------
    n_frames:
        Total number of frames in the stream.
    window:
        Nominal window length in frames.
    stride:
        Step between window starts; defaults to ``window`` (non-overlapping).
    min_fraction:
        A trailing partial window is kept only if its length is at least
        ``min_fraction * window`` frames.  With the default 0.5 a 100-frame
        stream and 30-frame windows yields windows at 0, 30, 60 and a final
        10-frame remainder is dropped, while a 16-frame remainder is kept.
    """
    bounds = _bounds_impl(n_frames, window, stride, min_fraction)
    if is_enabled():
        record_counter("utils.windows.produced", len(bounds))
    return bounds


def num_windows(
    n_frames: int,
    window: int,
    stride: Optional[int] = None,
    min_fraction: float = 0.5,
) -> int:
    """Number of windows :func:`window_bounds` would produce.

    Purely arithmetic: the ``utils.windows.produced`` counter is recorded
    only by the materializing :func:`window_bounds` path, so callers that
    first count and then iterate do not inflate the metric.
    """
    return len(_bounds_impl(n_frames, window, stride, min_fraction))


@shapes(data="(n, ...)")
def iter_windows(
    data: np.ndarray,
    window: int,
    stride: Optional[int] = None,
    min_fraction: float = 0.5,
) -> Iterator[np.ndarray]:
    """Yield window slices of ``data`` along axis 0 (views, not copies)."""
    data = np.asarray(data)
    if data.ndim < 1:
        raise ValidationError("data must have at least one dimension")
    for start, stop in window_bounds(data.shape[0], window, stride, min_fraction):
        yield data[start:stop]


@shapes(data="(n, d)")
def sliding_window_view_2d(data: np.ndarray, window: int, stride: int) -> np.ndarray:
    """Strided view of shape ``(n_windows, window, n_cols)`` over a 2-D array.

    Only full windows are included (no ragged trailing window); use
    :func:`iter_windows` when partial trailing windows matter.  The result is
    a read-only view — no data is copied.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValidationError(f"data must be 2-D, got shape {data.shape}")
    window = check_positive_int(window, name="window")
    stride = check_positive_int(stride, name="stride")
    n = data.shape[0]
    if n < window:
        return np.empty((0, window, data.shape[1]), dtype=data.dtype)
    count = 1 + (n - window) // stride
    view = np.lib.stride_tricks.sliding_window_view(data, (window, data.shape[1]))
    view = view[::stride, 0][:count]
    return view


@shapes(data="(n, d)")
def window_batches(
    data: np.ndarray,
    bounds: Sequence[Tuple[int, int]],
    window: int,
    stride: Optional[int] = None,
) -> list[Tuple[int, np.ndarray]]:
    """Group the windows of ``data`` into equal-length stacked batches.

    ``bounds`` must be the ranges :func:`window_bounds` produced for
    ``data.shape[0]`` with the same ``window``/``stride``; the full-length
    windows (always a prefix of ``bounds``) become one zero-copy strided
    batch via :func:`sliding_window_view_2d`, and the ragged trailing
    windows — the paper's ceiling-division remainder, of which an
    overlapping stride can produce several — are grouped by length into
    small materialized tail batches.

    Returns
    -------
    list of (first_index, batch)
        ``batch`` has shape ``(b, length, n_cols)`` and stacks the windows
        at positions ``first_index .. first_index + b - 1`` of ``bounds``.
        Concatenating the batches in order covers every window exactly
        once, in bounds order.
    """
    data = np.asarray(data)
    window = check_positive_int(window, name="window")
    if stride is None:
        stride = window
    stride = check_positive_int(stride, name="stride")
    bounds = list(bounds)
    if not bounds:
        return []
    n_full = 0
    while n_full < len(bounds) and bounds[n_full][1] - bounds[n_full][0] == window:
        n_full += 1
    batches: list[Tuple[int, np.ndarray]] = []
    if n_full:
        view = sliding_window_view_2d(data, window, stride)[:n_full]
        if view.shape[0] != n_full:
            raise ValidationError(
                f"bounds disagree with the strided view: {n_full} full "
                f"windows but the view holds {view.shape[0]}"
            )
        batches.append((0, view))
    i = n_full
    while i < len(bounds):
        length = bounds[i][1] - bounds[i][0]
        j = i
        while j < len(bounds) and bounds[j][1] - bounds[j][0] == length:
            j += 1
        batches.append((
            i,
            np.stack([data[a:b] for a, b in bounds[i:j]]),
        ))
        i = j
    return batches

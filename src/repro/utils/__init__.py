"""Shared low-level helpers: validation, RNG plumbing, window arithmetic."""

from repro.utils.atomicio import atomic_write
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_array,
    check_positive_int,
    check_probability,
    check_in_range,
    parse_shape_spec,
    shapes,
)
from repro.utils.windows import (
    num_windows,
    window_bounds,
    iter_windows,
    sliding_window_view_2d,
    window_size_frames,
)

__all__ = [
    "atomic_write",
    "as_generator",
    "spawn_generators",
    "check_array",
    "check_positive_int",
    "check_probability",
    "check_in_range",
    "parse_shape_spec",
    "shapes",
    "num_windows",
    "window_bounds",
    "iter_windows",
    "sliding_window_view_2d",
    "window_size_frames",
]

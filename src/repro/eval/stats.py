"""Statistical companions for the evaluation metrics.

The paper reports point estimates from one query set; with a few dozen
queries the quantization is coarse (1 query = several percent).  These
helpers quantify that uncertainty:

* :func:`bootstrap_ci` — percentile bootstrap confidence interval of any
  per-query statistic;
* :func:`misclassification_ci` / :func:`knn_percent_ci` — the two paper
  metrics with intervals;
* :func:`mcnemar_test` — paired comparison of two classifiers on the same
  queries (exact binomial version), used by the ablation analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_positive_int

__all__ = [
    "BootstrapResult",
    "bootstrap_ci",
    "misclassification_ci",
    "knn_percent_ci",
    "mcnemar_test",
]


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with a percentile-bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def __str__(self) -> str:
        pct = 100.0 * self.confidence
        return f"{self.estimate:.1f} [{self.low:.1f}, {self.high:.1f}] ({pct:.0f}% CI)"


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: SeedLike = 0,
) -> BootstrapResult:
    """Percentile bootstrap interval for ``statistic`` over ``values``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("values must be a non-empty 1-D sequence")
    confidence = check_in_range(confidence, name="confidence", low=0.0,
                                high=1.0, inclusive_low=False,
                                inclusive_high=False)
    n_resamples = check_positive_int(n_resamples, name="n_resamples")
    rng = as_generator(seed)
    n = arr.size
    stats = np.empty(n_resamples)
    for i in range(n_resamples):
        sample = arr[rng.integers(0, n, size=n)]
        stats[i] = statistic(sample)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(statistic(arr)),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def misclassification_ci(
    true_labels: Sequence[str],
    predicted_labels: Sequence[str],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: SeedLike = 0,
) -> BootstrapResult:
    """Bootstrap CI of the misclassification percentage."""
    if len(true_labels) != len(predicted_labels):
        raise ValidationError(
            f"{len(true_labels)} true labels vs {len(predicted_labels)} predictions"
        )
    errors = [100.0 * (t != p) for t, p in zip(true_labels, predicted_labels)]
    return bootstrap_ci(errors, confidence=confidence,
                        n_resamples=n_resamples, seed=seed)


def knn_percent_ci(
    fractions: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: SeedLike = 0,
) -> BootstrapResult:
    """Bootstrap CI of the k-NN classified percentage."""
    arr = np.asarray(list(fractions), dtype=np.float64)
    if np.any(arr < 0) or np.any(arr > 1):
        raise ValidationError("retrieval fractions must lie in [0, 1]")
    return bootstrap_ci(100.0 * arr, confidence=confidence,
                        n_resamples=n_resamples, seed=seed)


def mcnemar_test(
    true_labels: Sequence[str],
    predictions_a: Sequence[str],
    predictions_b: Sequence[str],
) -> Tuple[float, int, int]:
    """Exact McNemar test comparing two classifiers on the same queries.

    Returns ``(p_value, n_only_a_correct, n_only_b_correct)``.  A small
    p-value means the two classifiers' error patterns genuinely differ;
    with the paper-scale query counts, large-looking accuracy gaps are
    often not significant — which is exactly what this is for.
    """
    if not (len(true_labels) == len(predictions_a) == len(predictions_b)):
        raise ValidationError("all three label sequences must share length")
    if not true_labels:
        raise ValidationError("cannot test on zero queries")
    only_a = sum(
        1 for t, a, b in zip(true_labels, predictions_a, predictions_b)
        if a == t and b != t
    )
    only_b = sum(
        1 for t, a, b in zip(true_labels, predictions_a, predictions_b)
        if b == t and a != t
    )
    n = only_a + only_b
    if n == 0:
        return 1.0, only_a, only_b
    # Exact two-sided binomial test with p = 0.5.
    k = min(only_a, only_b)
    tail = sum(comb(n, i) for i in range(0, k + 1)) / 2.0**n
    p_value = min(1.0, 2.0 * tail)
    return p_value, only_a, only_b

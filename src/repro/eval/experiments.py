"""Experiment drivers for the paper's Section 6 evaluation.

One :func:`run_experiment` call reproduces one point of the paper's figures:
fit the classifier on the database split, query every test motion, and report

* the misclassification rate (Figures 6–7), using 1-NN classification, and
* the k-NN classified percent with k = 5 (Figures 8–9).

:func:`sweep` runs the full grid — window sizes × cluster counts — producing
the series plotted in the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import MotionClassifier
from repro.data.dataset import MotionDataset
from repro.errors import ValidationError
from repro.eval.metrics import (
    confusion_matrix,
    knn_classified_percent,
    misclassification_rate,
)
from repro.utils.rng import SeedLike

__all__ = ["ExperimentResult", "SweepResult", "run_experiment", "sweep"]

#: The paper's window-size grid (milliseconds).
PAPER_WINDOW_SIZES_MS: Tuple[float, ...] = (50.0, 100.0, 150.0, 200.0)

#: A cluster grid spanning the paper's 2–40 sweep.
PAPER_CLUSTER_GRID: Tuple[int, ...] = (2, 5, 10, 15, 20, 25, 30, 35, 40)


@dataclass(frozen=True)
class ExperimentResult:
    """Metrics of one (window size, cluster count) configuration.

    Attributes
    ----------
    window_ms, n_clusters, k:
        The configuration.
    misclassification_pct:
        Percent of misclassified test queries (1-NN).
    knn_classified_pct:
        Average percent of k retrieved motions in the query's class.
    n_queries:
        Number of test queries evaluated.
    true_labels, predicted_labels:
        Per-query detail for confusion analysis.
    """

    window_ms: float
    n_clusters: int
    k: int
    misclassification_pct: float
    knn_classified_pct: float
    n_queries: int
    true_labels: Tuple[str, ...] = field(default=(), repr=False)
    predicted_labels: Tuple[str, ...] = field(default=(), repr=False)

    def confusion(self):
        """Confusion matrix of the classification run."""
        return confusion_matrix(list(self.true_labels), list(self.predicted_labels))


@dataclass(frozen=True)
class SweepResult:
    """All grid points of one sweep, with figure-style series accessors."""

    results: Tuple[ExperimentResult, ...]

    def series(
        self, metric: str = "misclassification_pct"
    ) -> Dict[float, Tuple[List[int], List[float]]]:
        """Figure series: window size → (cluster counts, metric values).

        ``metric`` is ``"misclassification_pct"`` (Figures 6–7) or
        ``"knn_classified_pct"`` (Figures 8–9).
        """
        if metric not in ("misclassification_pct", "knn_classified_pct"):
            raise ValidationError(f"unknown metric {metric!r}")
        out: Dict[float, Tuple[List[int], List[float]]] = {}
        for window in sorted({r.window_ms for r in self.results}):
            points = sorted(
                (r.n_clusters, getattr(r, metric))
                for r in self.results
                if r.window_ms == window
            )
            out[window] = ([c for c, _ in points], [v for _, v in points])
        return out

    def best(self, metric: str = "misclassification_pct") -> ExperimentResult:
        """The best grid point (lowest misclassification / highest k-NN %)."""
        if metric == "misclassification_pct":
            return min(self.results, key=lambda r: r.misclassification_pct)
        if metric == "knn_classified_pct":
            return max(self.results, key=lambda r: r.knn_classified_pct)
        raise ValidationError(f"unknown metric {metric!r}")


def run_experiment(
    train: MotionDataset,
    test: MotionDataset,
    window_ms: float = 100.0,
    n_clusters: int = 15,
    k: int = 5,
    seed: SeedLike = 0,
    classifier: Optional[MotionClassifier] = None,
    **classifier_kwargs,
) -> ExperimentResult:
    """Evaluate one configuration on a train/test split.

    Parameters
    ----------
    train:
        The database the classifier is fitted on.
    test:
        Query motions (never seen by FCM or the scaler).
    window_ms, n_clusters:
        The configuration under test.
    k:
        Neighbours for the retrieval metric (5 throughout the paper).
    seed:
        Clustering seed.
    classifier:
        A pre-built (unfitted) classifier; overrides the config arguments.
    classifier_kwargs:
        Extra :class:`~repro.core.model.MotionClassifier` arguments
        (``scaler_mode``, ``clusterer``, ``featurizer``, ...).
    """
    if len(test) == 0:
        raise ValidationError("test split is empty")
    model = classifier or MotionClassifier(
        n_clusters=n_clusters, window_ms=window_ms, **classifier_kwargs
    )
    model.fit(train, seed=seed)
    true_labels: List[str] = []
    predicted: List[str] = []
    fractions: List[float] = []
    for record in test:
        true_labels.append(record.label)
        predicted.append(model.classify(record, k=1))
        fractions.append(model.knn_class_fraction(record, k=k))
    return ExperimentResult(
        window_ms=model.featurizer.window_ms,
        n_clusters=model.n_clusters,
        k=k,
        misclassification_pct=misclassification_rate(true_labels, predicted),
        knn_classified_pct=knn_classified_percent(fractions),
        n_queries=len(test),
        true_labels=tuple(true_labels),
        predicted_labels=tuple(predicted),
    )


def sweep(
    train: MotionDataset,
    test: MotionDataset,
    window_sizes_ms: Sequence[float] = PAPER_WINDOW_SIZES_MS,
    cluster_counts: Sequence[int] = PAPER_CLUSTER_GRID,
    k: int = 5,
    seed: SeedLike = 0,
    **classifier_kwargs,
) -> SweepResult:
    """Run the paper's full grid (window sizes × cluster counts)."""
    if not window_sizes_ms or not cluster_counts:
        raise ValidationError("sweep needs at least one window size and cluster count")
    results = []
    for window_ms in window_sizes_ms:
        for n_clusters in cluster_counts:
            results.append(
                run_experiment(
                    train,
                    test,
                    window_ms=window_ms,
                    n_clusters=n_clusters,
                    k=k,
                    seed=seed,
                    **classifier_kwargs,
                )
            )
    return SweepResult(results=tuple(results))

"""Stratified k-fold cross-validation over a motion dataset.

One split gives one noisy point estimate (the paper's situation); k-fold
cross-validation turns the same data into k train/test rotations whose
aggregate carries an uncertainty estimate.  Used by the extended analysis
benchmarks and available to library users evaluating their own protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import MotionClassifier
from repro.data.dataset import MotionDataset
from repro.errors import DatasetError
from repro.eval.experiments import ExperimentResult, run_experiment
from repro.eval.stats import BootstrapResult, bootstrap_ci
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["CrossValidationResult", "stratified_folds", "cross_validate"]


def stratified_folds(
    dataset: MotionDataset,
    n_folds: int = 4,
    seed: SeedLike = 0,
) -> List[Tuple[MotionDataset, MotionDataset]]:
    """Split a dataset into ``n_folds`` stratified (train, test) rotations.

    Every class contributes trials to every fold (requires at least
    ``n_folds`` trials per class); each trial appears in exactly one test
    fold.
    """
    n_folds = check_positive_int(n_folds, name="n_folds", minimum=2)
    rng = as_generator(seed)
    fold_members: List[List] = [[] for _ in range(n_folds)]
    for label in dataset.labels:
        group = dataset.by_label(label)
        if len(group) < n_folds:
            raise DatasetError(
                f"class {label!r} has {len(group)} trials; "
                f"need >= {n_folds} for {n_folds}-fold CV"
            )
        order = rng.permutation(len(group))
        for position, idx in enumerate(order):
            fold_members[position % n_folds].append(group[idx])
    folds = []
    for i in range(n_folds):
        test_records = fold_members[i]
        train_records = [
            rec for j in range(n_folds) if j != i for rec in fold_members[j]
        ]
        folds.append((
            MotionDataset(name=f"{dataset.name}:cv{i}:train",
                          records=train_records),
            MotionDataset(name=f"{dataset.name}:cv{i}:test",
                          records=test_records),
        ))
    return folds


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregated k-fold outcome.

    Attributes
    ----------
    fold_results:
        The per-fold experiment results.
    misclassification:
        Bootstrap summary of the pooled per-query errors.
    knn_classified:
        Bootstrap summary of the per-fold k-NN percentages.
    """

    fold_results: Tuple[ExperimentResult, ...]
    misclassification: BootstrapResult
    knn_classified: BootstrapResult

    @property
    def n_folds(self) -> int:
        """Number of folds run."""
        return len(self.fold_results)

    @property
    def n_queries(self) -> int:
        """Total queries across folds."""
        return sum(r.n_queries for r in self.fold_results)


def cross_validate(
    dataset: MotionDataset,
    n_folds: int = 4,
    window_ms: float = 100.0,
    n_clusters: int = 15,
    k: int = 5,
    seed: SeedLike = 0,
    classifier_factory: Optional[Callable[[], MotionClassifier]] = None,
    **classifier_kwargs,
) -> CrossValidationResult:
    """Run the paper's evaluation as stratified k-fold cross-validation.

    Parameters
    ----------
    dataset:
        The full labelled campaign.
    n_folds:
        Fold count (every class needs at least this many trials).
    window_ms, n_clusters, k, classifier_kwargs:
        Configuration forwarded to :func:`~repro.eval.experiments.run_experiment`.
    classifier_factory:
        Builds a fresh (unfitted) classifier per fold; overrides the
        configuration arguments.
    """
    folds = stratified_folds(dataset, n_folds=n_folds, seed=seed)
    results = []
    for train, test in folds:
        classifier = classifier_factory() if classifier_factory else None
        results.append(run_experiment(
            train, test,
            window_ms=window_ms, n_clusters=n_clusters, k=k, seed=seed,
            classifier=classifier, **classifier_kwargs,
        ))
    per_query_errors: List[float] = []
    for r in results:
        per_query_errors.extend(
            100.0 * (t != p)
            for t, p in zip(r.true_labels, r.predicted_labels)
        )
    return CrossValidationResult(
        fold_results=tuple(results),
        misclassification=bootstrap_ci(per_query_errors, seed=seed),
        knn_classified=bootstrap_ci(
            [r.knn_classified_pct for r in results], seed=seed
        ),
    )

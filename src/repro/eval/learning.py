"""Learning curves: accuracy as a function of database size.

The paper never says how many trials per class its database holds; for a
deployment ("how many repetitions must each patient record?") the relevant
question is how quickly the classifier saturates.  :func:`learning_curve`
subsamples the training split to a growing number of trials per class —
keeping the test split fixed — and reports the metric at each size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.model import MotionClassifier
from repro.data.dataset import MotionDataset
from repro.errors import DatasetError
from repro.eval.experiments import ExperimentResult, run_experiment
from repro.utils.rng import SeedLike, as_generator

__all__ = ["LearningCurvePoint", "learning_curve"]


@dataclass(frozen=True)
class LearningCurvePoint:
    """One database size and its evaluation outcome.

    Attributes
    ----------
    trials_per_class:
        Training trials kept per motion class.
    n_train:
        Resulting database size.
    result:
        The full experiment result at this size.
    """

    trials_per_class: int
    n_train: int
    result: ExperimentResult


def _subsample(
    train: MotionDataset, per_class: int, rng
) -> MotionDataset:
    records = []
    for label in train.labels:
        group = train.by_label(label)
        if len(group) < per_class:
            raise DatasetError(
                f"class {label!r} has {len(group)} trials; "
                f"cannot subsample {per_class}"
            )
        chosen = rng.choice(len(group), size=per_class, replace=False)
        records.extend(group[int(i)] for i in chosen)
    return MotionDataset(name=f"{train.name}:sub{per_class}", records=records)


def learning_curve(
    train: MotionDataset,
    test: MotionDataset,
    trials_per_class: Sequence[int] = (1, 2, 4, 8),
    window_ms: float = 100.0,
    n_clusters: int = 15,
    k: int = 5,
    seed: SeedLike = 0,
    classifier_factory: Optional[Callable[[], MotionClassifier]] = None,
) -> List[LearningCurvePoint]:
    """Evaluate the pipeline across growing training-database sizes.

    Parameters
    ----------
    train, test:
        The fixed split; only ``train`` is subsampled.
    trials_per_class:
        Ascending database sizes to evaluate; sizes exceeding the available
        trials are skipped (never silently truncated: a skipped size is
        simply absent from the output).
    window_ms, n_clusters, k:
        Pipeline configuration.
    classifier_factory:
        Builds a fresh classifier per point; overrides the configuration.
    """
    if not trials_per_class:
        raise DatasetError("need at least one database size to evaluate")
    rng = as_generator(seed)
    available = min(len(train.by_label(label)) for label in train.labels)
    points: List[LearningCurvePoint] = []
    for per_class in trials_per_class:
        if per_class > available:
            continue
        subset = _subsample(train, per_class, rng)
        classifier = classifier_factory() if classifier_factory else None
        result = run_experiment(
            subset, test,
            window_ms=window_ms, n_clusters=n_clusters, k=k, seed=seed,
            classifier=classifier,
        )
        points.append(LearningCurvePoint(
            trials_per_class=per_class,
            n_train=len(subset),
            result=result,
        ))
    if not points:
        raise DatasetError(
            f"no usable database sizes: classes have only {available} trials"
        )
    return points

"""Classification and retrieval metrics (paper Section 6)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = ["misclassification_rate", "knn_classified_percent", "confusion_matrix"]


def misclassification_rate(
    true_labels: Sequence[str], predicted_labels: Sequence[str]
) -> float:
    """Percent of queries whose predicted class differs from the true class.

    The paper's first evaluation: "for certain amount of queries, we check
    whether the query motion is correctly classified or not ... we measure
    the average misclassification rate".
    """
    if len(true_labels) != len(predicted_labels):
        raise ValidationError(
            f"{len(true_labels)} true labels vs {len(predicted_labels)} predictions"
        )
    if not true_labels:
        raise ValidationError("cannot compute a rate over zero queries")
    wrong = sum(1 for t, p in zip(true_labels, predicted_labels) if t != p)
    return 100.0 * wrong / len(true_labels)


def knn_classified_percent(fractions: Sequence[float]) -> float:
    """Average percent of k-retrieved motions in the query's own class.

    The paper's second evaluation ("the percentage of returned motions in k
    which are actually present in the same group of query motion.  The other
    returned motions are false alarms").
    """
    if not len(fractions):
        raise ValidationError("cannot average zero retrieval fractions")
    fractions = np.asarray(fractions, dtype=np.float64)
    if np.any(fractions < 0) or np.any(fractions > 1):
        raise ValidationError("retrieval fractions must lie in [0, 1]")
    return float(100.0 * fractions.mean())


def confusion_matrix(
    true_labels: Sequence[str],
    predicted_labels: Sequence[str],
    labels: Sequence[str] | None = None,
) -> Tuple[List[str], np.ndarray]:
    """Confusion counts: rows are true classes, columns predicted.

    Returns ``(labels, matrix)`` with labels sorted (or as given).
    """
    if len(true_labels) != len(predicted_labels):
        raise ValidationError(
            f"{len(true_labels)} true labels vs {len(predicted_labels)} predictions"
        )
    if labels is None:
        labels = sorted(set(true_labels) | set(predicted_labels))
    else:
        labels = list(labels)
        missing = (set(true_labels) | set(predicted_labels)) - set(labels)
        if missing:
            raise ValidationError(f"labels argument is missing classes: {sorted(missing)}")
    index: Dict[str, int] = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(true_labels, predicted_labels):
        matrix[index[t], index[p]] += 1
    return labels, matrix

"""Evaluation harness: metrics, experiment drivers, reporting.

:mod:`repro.eval.experiments` reproduces the paper's Section 6 protocol —
misclassification rate and k-NN classified percent swept over window size
(50–200 ms) and cluster count (2–40) — on synthetic capture campaigns.
"""

from repro.eval.metrics import (
    confusion_matrix,
    knn_classified_percent,
    misclassification_rate,
)
from repro.eval.experiments import (
    ExperimentResult,
    SweepResult,
    run_experiment,
    sweep,
)
from repro.eval.crossval import CrossValidationResult, cross_validate, stratified_folds
from repro.eval.learning import LearningCurvePoint, learning_curve
from repro.eval.reporting import format_series, format_table, series_to_csv
from repro.eval.stats import (
    BootstrapResult,
    bootstrap_ci,
    knn_percent_ci,
    mcnemar_test,
    misclassification_ci,
)

__all__ = [
    "confusion_matrix",
    "knn_classified_percent",
    "misclassification_rate",
    "ExperimentResult",
    "SweepResult",
    "run_experiment",
    "sweep",
    "format_series",
    "format_table",
    "series_to_csv",
    "CrossValidationResult",
    "cross_validate",
    "stratified_folds",
    "LearningCurvePoint",
    "learning_curve",
    "BootstrapResult",
    "bootstrap_ci",
    "knn_percent_ci",
    "mcnemar_test",
    "misclassification_ci",
]

"""ASCII reporting for benchmarks and examples.

The benchmark harness prints the same rows/series the paper's figures plot;
these helpers keep the formatting consistent and tested.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ValidationError

__all__ = ["format_table", "format_series", "series_to_csv"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width ASCII table.

    Cells are stringified; floats are shown with one decimal (the precision
    the paper's figures can be read at).
    """
    if not headers:
        raise ValidationError("table needs at least one column")

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValidationError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(h)), *(len(r[j]) for r in str_rows)) if str_rows else len(str(h))
        for j, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    series: Dict[float, Tuple[List[int], List[float]]],
    x_label: str = "clusters",
    y_label: str = "value",
) -> str:
    """Render figure series (one row per window size) as an ASCII table.

    ``series`` is the output of
    :meth:`repro.eval.experiments.SweepResult.series`.
    """
    if not series:
        raise ValidationError("no series to format")
    cluster_axis = None
    for window, (clusters, values) in series.items():
        if len(clusters) != len(values):
            raise ValidationError(
                f"series for window {window} has mismatched lengths"
            )
        if cluster_axis is None:
            cluster_axis = clusters
        elif clusters != cluster_axis:
            raise ValidationError("all series must share the same cluster axis")
    assert cluster_axis is not None
    headers = [f"window_ms \\ {x_label}"] + [str(c) for c in cluster_axis]
    rows = []
    for window in sorted(series):
        _, values = series[window]
        rows.append([f"{window:g} ms"] + [f"{v:.1f}" for v in values])
    table = format_table(headers, rows)
    return f"{title}  ({y_label})\n{table}"


def series_to_csv(
    series: Dict[float, Tuple[List[int], List[float]]],
    value_name: str = "value",
) -> str:
    """Render figure series as long-format CSV text.

    Columns: ``window_ms,clusters,<value_name>`` — the layout plotting
    tools ingest directly.  Ends with a trailing newline.
    """
    if not series:
        raise ValidationError("no series to export")
    lines = [f"window_ms,clusters,{value_name}"]
    for window in sorted(series):
        clusters, values = series[window]
        if len(clusters) != len(values):
            raise ValidationError(
                f"series for window {window} has mismatched lengths"
            )
        for c, v in zip(clusters, values):
            lines.append(f"{window:g},{c},{v:.6g}")
    return "\n".join(lines) + "\n"

"""Whole-program dataflow rules R7–R12.

These rules consume the :class:`~repro.lint.graph.ProjectGraph` built
over the whole linted tree, so one finding can name a property that only
holds *transitively* — a clock read three calls below a feature kernel,
a builtin exception escaping a public API through a private helper.

==== =================================================================
R7   No unguarded shared mutable state reachable from parallel workers.
R8   Persistence writes in cache/retrieval paths go through
     ``atomic_write``.
R9   Feature/fuzzy/signature code paths never reach unseeded RNG, wall
     clocks or environment reads through any call chain.
R10  ``@shapes`` contracts stay consistent across caller→callee edges.
R11  Span/metric names come from the ``repro.obs.names`` registry.
R12  Only ``ReproError`` subclasses escape public API functions.
==== =================================================================

Every rule is a pure function of the graph; reports are deterministic
(sorted iteration everywhere) so two runs over the same tree emit
byte-identical JSON.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.graph import FunctionNode, ProjectGraph, QName
from repro.lint.violations import Violation

__all__ = ["GRAPH_RULE_IDS", "GRAPH_RULES", "GraphRule", "run_graph_rules"]

#: Sub-trees whose persistence writes must be atomic (R8).
_ATOMIC_WRITE_DIRS = ("parallel", "retrieval")

#: Sub-trees forming the deterministic numeric pipeline (R9 entry points).
_DETERMINISTIC_DIRS = ("core", "features", "fuzzy", "signal")

#: The module housing the seeded-RNG plumbing; its own ``np.random``
#: calls are the sanctioned construction sites.
_RNG_HOME = ("utils", "rng")

#: The observability registry module R11 reads its name catalogue from.
_OBS_NAMES_MODULE = ("obs", "names")

#: Builtin exceptions that may escape public APIs besides ReproError:
#: protocol signals and interpreter control flow, not error reporting.
_ALLOWED_BUILTIN_ESCAPES = frozenset({
    "NotImplementedError", "StopIteration", "StopAsyncIteration",
    "GeneratorExit", "KeyboardInterrupt", "SystemExit",
})


@dataclass(frozen=True)
class GraphRule:
    """One whole-program rule: an id, a title, and a graph checker."""

    id: str
    title: str
    check: Callable[[ProjectGraph], List[Violation]]


def _chain_text(graph: ProjectGraph,
                parents: Dict[QName, Optional[QName]], qname: QName) -> str:
    return " -> ".join(".".join(q) for q in graph.chain(parents, qname))


# ----------------------------------------------------------------------
# R7 — concurrency safety across executor dispatch
# ----------------------------------------------------------------------


def check_parallel_shared_state(graph: ProjectGraph) -> List[Violation]:
    """Flag unguarded shared-state mutations reachable from worker roots.

    A worker root is any function passed to ``repro.parallel.pool_map``;
    with the process backend it runs concurrently with the parent and,
    with the thread backend, with its siblings.  Mutating module-level
    or captured mutable state from such a function is a race unless the
    mutation is lock-guarded (``with <...lock...>:``) or the line carries
    an explicit ownership marker (``# lint: owner[reason]``).
    """
    violations: List[Violation] = []
    roots = sorted(set(root for root, _, _ in graph.dispatch_sites()))
    if not roots:
        return violations
    root_names = ", ".join(".".join(r) for r in roots)
    parents = graph.reachable(roots)
    seen: Set[Tuple[QName, int, str]] = set()
    for qname in sorted(parents):
        fnode = graph.functions[qname]
        facts = graph.facts[qname]
        ctx = graph.contexts[fnode.path]
        for lineno, name, kind in facts.global_mut + facts.captured_mut:
            key = (qname, lineno, name)
            if key in seen:
                continue
            seen.add(key)
            if ctx.suppressions.has_owner(lineno):
                continue
            shared = ("captured variable" if (lineno, name, kind)
                      in facts.captured_mut else "module-level state")
            violations.append(Violation(
                rule="R7", path=fnode.path, line=lineno, col=0,
                message=(
                    f"{shared} '{name}' mutated ({kind}) in "
                    f"'{fnode.dotted}', which is reachable from parallel "
                    f"worker(s) {root_names} "
                    f"(via {_chain_text(graph, parents, qname)}); guard the "
                    f"mutation with a lock or document single-ownership "
                    f"with '# lint: owner[...]'"
                ),
            ))
    return violations


# ----------------------------------------------------------------------
# R8 — atomic-write discipline in cache/retrieval paths
# ----------------------------------------------------------------------


def check_atomic_writes(graph: ProjectGraph) -> List[Violation]:
    """Flag raw persistence writes in the cache and retrieval sub-trees.

    Concurrent writers racing on one destination path is exactly the bug
    shipped (and fixed) in the feature cache: two processes sharing a
    temp file.  Every write that lands on disk in ``repro/parallel`` or
    ``repro/retrieval`` must go through ``repro.utils.atomicio
    .atomic_write`` so the visible file is always complete.
    """
    violations: List[Violation] = []
    for qname in sorted(graph.functions):
        fnode = graph.functions[qname]
        if not fnode.module or fnode.module[0] not in _ATOMIC_WRITE_DIRS:
            continue
        for lineno, description in graph.facts[qname].writes:
            violations.append(Violation(
                rule="R8", path=fnode.path, line=lineno, col=0,
                message=(
                    f"raw persistence write {description} in "
                    f"'{fnode.dotted}'; route it through "
                    f"repro.utils.atomicio.atomic_write so concurrent "
                    f"writers cannot expose partial files"
                ),
            ))
    return violations


# ----------------------------------------------------------------------
# R9 — transitive determinism of the numeric pipeline
# ----------------------------------------------------------------------


def _r9_entries(graph: ProjectGraph) -> List[QName]:
    entries: List[QName] = []
    for qname in sorted(graph.functions):
        fnode = graph.functions[qname]
        if not fnode.module or fnode.module[0] not in _DETERMINISTIC_DIRS:
            continue
        symbols = graph.modules.get(fnode.module)
        if symbols is None or not symbols.is_public:
            continue
        if fnode.name.startswith("_"):
            continue
        if fnode.cls is not None and fnode.cls.startswith("_"):
            continue
        if len(qname) > len(fnode.module) + (2 if fnode.cls else 1):
            continue  # nested helper, not an entry point
        entries.append(qname)
    return entries


def check_transitive_determinism(graph: ProjectGraph) -> List[Violation]:
    """Flag RNG/clock/env reach from public numeric entry points.

    R1 and R6 keep each core module locally clean; this closes the
    loophole of a feature kernel calling *out* to a helper that consults
    ``np.random``, the wall clock or the process environment.  Sanctioned
    sinks — the seeded generator plumbing in ``repro.utils.rng`` and the
    observability layer's span timing — are exempt.
    """
    violations: List[Violation] = []
    entries = _r9_entries(graph)
    if not entries:
        return violations
    parents = graph.reachable(entries)
    entry_set = set(entries)
    seen: Set[Tuple[QName, int, str]] = set()
    for qname in sorted(parents):
        fnode = graph.functions[qname]
        facts = graph.facts[qname]
        offending: List[Tuple[int, str, str]] = []
        if fnode.module != _RNG_HOME:
            offending += [(line, "unseeded RNG call", d) for line, d in facts.rng]
        if not fnode.module or fnode.module[0] != "obs":
            offending += [(line, "wall-clock read", d) for line, d in facts.clock]
        offending += [(line, "environment read", d) for line, d in facts.env]
        for lineno, what, detail in sorted(offending):
            key = (qname, lineno, detail)
            if key in seen:
                continue
            seen.add(key)
            witness = graph.chain(parents, qname)[0]
            via = (f" (reached via {_chain_text(graph, parents, qname)})"
                   if qname not in entry_set else "")
            violations.append(Violation(
                rule="R9", path=fnode.path, line=lineno, col=0,
                message=(
                    f"{what} '{detail}' is reachable from public numeric "
                    f"entry point '{'.'.join(witness)}'{via}; thread a "
                    f"seeded Generator / injected clock through instead"
                ),
            ))
    return violations


# ----------------------------------------------------------------------
# R10 — shape-contract flow across call edges
# ----------------------------------------------------------------------


def _spec_dims(spec: str):
    from repro.utils.validation import parse_shape_spec

    try:
        return parse_shape_spec(spec)
    except Exception:
        return None


def _aligned_dims(caller, callee):
    """Comparable ``(caller_dim, callee_dim)`` pairs for two specs.

    Without an ellipsis the ranks must match exactly (rank mismatch is
    reported separately).  With an ellipsis in either spec, the dims
    before it align from the front and the dims after it from the back.
    """
    if Ellipsis not in caller and Ellipsis not in callee:
        return list(zip(caller, callee))
    def split(dims):
        if Ellipsis in dims:
            i = dims.index(Ellipsis)
            return list(dims[:i]), list(dims[i + 1:])
        return list(dims), []
    c_head, c_tail = split(caller)
    e_head, e_tail = split(callee)
    if Ellipsis not in caller:
        c_head, c_tail = list(caller), []
    if Ellipsis not in callee:
        e_head, e_tail = list(callee), []
    pairs = list(zip(c_head, e_head))
    pairs += list(zip(reversed(c_tail or list(caller)[len(pairs):]),
                      reversed(e_tail or list(callee)[len(pairs):])))
    return pairs


def check_shape_contract_flow(graph: ProjectGraph) -> List[Violation]:
    """Flag ``@shapes`` contracts that disagree across a call edge.

    When a contracted parameter of the caller is passed straight through
    to a contracted parameter of the callee, the two declared specs must
    be mutually satisfiable: equal ranks (modulo ``...``), equal
    concrete dims, and one consistent integer per symbolic dim across
    the whole call.
    """
    violations: List[Violation] = []
    for qname in sorted(graph.functions):
        caller = graph.functions[qname]
        if not caller.shape_specs:
            continue
        for call in graph.facts[qname].calls:
            if call.callee is None:
                continue
            callee = graph.functions.get(call.callee)
            if callee is None or not callee.shape_specs:
                continue
            params = list(callee.params)
            if params and params[0] in ("self", "cls"):
                params = params[1:]
            matched: List[Tuple[str, str]] = []
            for i, arg_name in enumerate(call.arg_names):
                if arg_name is not None and i < len(params):
                    matched.append((arg_name, params[i]))
            for kw, arg_name in call.kw_names:
                if arg_name is not None:
                    matched.append((arg_name, kw))
            symbol_bindings: Dict[str, Tuple[int, str]] = {}
            for arg_name, param in matched:
                caller_spec = caller.shape_specs.get(arg_name)
                callee_spec = callee.shape_specs.get(param)
                if caller_spec is None or callee_spec is None:
                    continue
                c_dims = _spec_dims(caller_spec)
                e_dims = _spec_dims(callee_spec)
                if c_dims is None or e_dims is None:
                    continue
                if (Ellipsis not in c_dims and Ellipsis not in e_dims
                        and len(c_dims) != len(e_dims)):
                    violations.append(Violation(
                        rule="R10", path=caller.path, line=call.lineno, col=0,
                        message=(
                            f"shape-contract rank mismatch passing "
                            f"'{arg_name}' to '{callee.dotted}': caller "
                            f"declares \"{caller_spec}\" (rank "
                            f"{len(c_dims)}) but callee parameter "
                            f"'{param}' declares \"{callee_spec}\" (rank "
                            f"{len(e_dims)})"
                        ),
                    ))
                    continue
                for c_dim, e_dim in _aligned_dims(c_dims, e_dims):
                    if isinstance(c_dim, int) and isinstance(e_dim, int):
                        if c_dim != e_dim:
                            violations.append(Violation(
                                rule="R10", path=caller.path,
                                line=call.lineno, col=0,
                                message=(
                                    f"shape-contract dim conflict passing "
                                    f"'{arg_name}' to '{callee.dotted}': "
                                    f"caller declares \"{caller_spec}\" "
                                    f"but callee parameter '{param}' "
                                    f"declares \"{callee_spec}\" "
                                    f"({c_dim} != {e_dim})"
                                ),
                            ))
                            break
                    elif isinstance(c_dim, str) and isinstance(e_dim, int):
                        prev = symbol_bindings.get(c_dim)
                        if prev is not None and prev[0] != e_dim:
                            violations.append(Violation(
                                rule="R10", path=caller.path,
                                line=call.lineno, col=0,
                                message=(
                                    f"shape-contract symbol conflict in "
                                    f"call to '{callee.dotted}': caller "
                                    f"dim '{c_dim}' is pinned to "
                                    f"{prev[0]} by parameter "
                                    f"'{prev[1]}' but parameter "
                                    f"'{param}' (\"{callee_spec}\") "
                                    f"requires {e_dim}"
                                ),
                            ))
                            break
                        symbol_bindings.setdefault(c_dim, (e_dim, param))
    return violations


# ----------------------------------------------------------------------
# R11 — observability naming discipline
# ----------------------------------------------------------------------


def _load_obs_registry(graph: ProjectGraph):
    """``(names, prefixes)`` per kind from ``repro.obs.names``, or None."""
    symbols = graph.modules.get(_OBS_NAMES_MODULE)
    if symbols is None:
        return None
    ctx = graph.contexts.get(symbols.path)
    if ctx is None:
        return None
    tables: Dict[str, FrozenSet[str]] = {}
    wanted = {"SPAN_NAMES", "METRIC_NAMES", "SPAN_PREFIXES",
              "METRIC_PREFIXES", "EVENT_NAMES", "EVENT_PREFIXES"}
    for stmt in ctx.tree.body:
        targets = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            targets = [stmt.target.id]
            value = stmt.value
        for name in targets:
            if name not in wanted or value is None:
                continue
            if isinstance(value, ast.Call):
                value = value.args[0] if value.args else None
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                items = [e.value for e in value.elts
                         if isinstance(e, ast.Constant)
                         and isinstance(e.value, str)]
                tables[name] = frozenset(items)
    return {
        "span": (tables.get("SPAN_NAMES", frozenset()),
                 tables.get("SPAN_PREFIXES", frozenset())),
        "metric": (tables.get("METRIC_NAMES", frozenset()),
                   tables.get("METRIC_PREFIXES", frozenset())),
        "event": (tables.get("EVENT_NAMES", frozenset()),
                  tables.get("EVENT_PREFIXES", frozenset())),
    }


def check_obs_naming(graph: ProjectGraph) -> List[Violation]:
    """Flag span/metric/event names not drawn from the declared registry.

    The registry (``repro.obs.names``) is the single place dashboards
    and tests key on; ad-hoc strings drift silently.  Literal names must
    appear in the registry, f-strings must start with a registered
    dynamic prefix, and fully dynamic names are rejected outright.
    Absent the registry module the rule stays silent (fixture trees).
    """
    registry = _load_obs_registry(graph)
    if registry is None:
        return []
    violations: List[Violation] = []
    for qname in sorted(graph.functions):
        fnode = graph.functions[qname]
        if fnode.module and fnode.module[0] == "obs":
            continue
        for lineno, kind, text, is_prefix, is_dynamic in \
                graph.facts[qname].obs_names:
            names, prefixes = registry[kind]
            if is_dynamic:
                violations.append(Violation(
                    rule="R11", path=fnode.path, line=lineno, col=0,
                    message=(
                        f"fully dynamic {kind} name in '{fnode.dotted}'; "
                        f"use a literal from repro.obs.names or an "
                        f"f-string starting with a registered prefix"
                    ),
                ))
            elif is_prefix:
                if not text or not any(text.startswith(p) for p in sorted(prefixes)):
                    violations.append(Violation(
                        rule="R11", path=fnode.path, line=lineno, col=0,
                        message=(
                            f"dynamic {kind} name prefix '{text}' in "
                            f"'{fnode.dotted}' is not registered in "
                            f"repro.obs.names ({kind.upper()}_PREFIXES)"
                        ),
                    ))
            else:
                if text not in names and not any(
                        text.startswith(p) for p in sorted(prefixes)):
                    violations.append(Violation(
                        rule="R11", path=fnode.path, line=lineno, col=0,
                        message=(
                            f"{kind} name '{text}' in '{fnode.dotted}' is "
                            f"not registered in repro.obs.names; add it to "
                            f"{kind.upper()}_NAMES or use a registered "
                            f"prefix"
                        ),
                    ))
    return violations


# ----------------------------------------------------------------------
# R12 — exception flow out of the public API
# ----------------------------------------------------------------------


def _public_api_functions(graph: ProjectGraph) -> List[QName]:
    public: Set[QName] = set()
    for key in sorted(graph.modules):
        symbols = graph.modules[key]
        if not symbols.is_public or symbols.all_names is None:
            continue
        for name in symbols.all_names:
            resolved = graph.resolve(key, [name])
            if resolved is None:
                continue
            kind, target = resolved
            if kind == "func":
                public.add(target)
            elif kind == "class":
                info = graph.classes.get(target)
                if info is None:
                    continue
                for method, mq in sorted(info.methods.items()):
                    if (not method.startswith("_")
                            or method in ("__init__", "__call__")):
                        public.add(mq)
    return sorted(public)


def check_exception_flow(graph: ProjectGraph) -> List[Violation]:
    """Flag non-``ReproError`` exceptions escaping public API functions.

    Computed transitively over the call graph with ``try`` absorption:
    a ``KeyError`` raised four helpers deep is still an API contract
    violation if nothing on the path catches it.  Control-flow builtins
    (``StopIteration``, ``KeyboardInterrupt``, ...) and unresolvable
    names are allowed; everything else must derive from ``ReproError``.
    """
    violations: List[Violation] = []
    escapes = graph.escaping_exceptions()
    seen: Set[Tuple[QName, str]] = set()
    for qname in _public_api_functions(graph):
        fnode = graph.functions[qname]
        for exc_name in sorted(escapes.get(qname, ())):
            if (qname, exc_name) in seen:
                continue
            seen.add((qname, exc_name))
            if graph.is_repro_error(exc_name):
                continue
            if exc_name in _ALLOWED_BUILTIN_ESCAPES:
                continue
            builtin = getattr(builtins, exc_name, None)
            is_builtin_exc = (isinstance(builtin, type)
                              and issubclass(builtin, BaseException))
            if not graph.is_project_class(exc_name) and not is_builtin_exc:
                continue  # unresolvable third-party name: trust it
            origin_path, origin_line = escapes[qname][exc_name]
            violations.append(Violation(
                rule="R12", path=fnode.path, line=fnode.lineno, col=0,
                message=(
                    f"public API function '{fnode.dotted}' can leak "
                    f"'{exc_name}' (raised at {origin_path}:{origin_line}); "
                    f"catch it and re-raise a ReproError subclass"
                ),
            ))
    return violations


# ----------------------------------------------------------------------
# Catalogue
# ----------------------------------------------------------------------

GRAPH_RULES: Tuple[GraphRule, ...] = (
    GraphRule("R7", "no unguarded shared state behind parallel executors",
              check_parallel_shared_state),
    GraphRule("R8", "cache/retrieval persistence writes are atomic",
              check_atomic_writes),
    GraphRule("R9", "numeric pipeline is transitively deterministic",
              check_transitive_determinism),
    GraphRule("R10", "@shapes contracts agree across call edges",
              check_shape_contract_flow),
    GraphRule("R11", "span/metric/event names come from the obs registry",
              check_obs_naming),
    GraphRule("R12", "only ReproError subclasses escape the public API",
              check_exception_flow),
)

GRAPH_RULE_IDS: Tuple[str, ...] = tuple(rule.id for rule in GRAPH_RULES)


def run_graph_rules(graph: ProjectGraph,
                    select: Optional[Sequence[str]] = None) -> List[Violation]:
    """Run the selected whole-program rules (all of them when None)."""
    wanted = (set(GRAPH_RULE_IDS) if select is None
              else {token.upper() for token in select})
    violations: List[Violation] = []
    for rule in GRAPH_RULES:
        if rule.id in wanted:
            violations.extend(rule.check(graph))
    return violations

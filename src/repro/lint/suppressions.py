"""Per-line suppression comments.

A violation reported on line ``L`` is suppressed when line ``L`` carries a
comment of the form::

    # lint: ignore[R2]          suppress rule R2 on this line
    # lint: ignore[R1, R4]      suppress several rules
    # lint: ignore              suppress every rule on this line

and a whole file can opt out of specific rules anywhere in the file with::

    # lint: ignore-file[R3]

The concurrency rule R7 additionally honours an ownership marker::

    # lint: owner[worker-local; rebound before fork]

which documents that the mutated state on that line is single-owned by
design (R7 skips it, but the reasoning stays next to the code).

Comments are found with :mod:`tokenize` so the marker inside a string
literal does not suppress anything; files that fail to tokenize fall back
to a plain per-line scan (the runner reports their syntax error anyway).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Tuple

__all__ = ["SuppressionIndex", "parse_suppression_comment"]

_PATTERN = re.compile(
    r"#\s*lint:\s*ignore(?P<file>-file)?\s*(?:\[(?P<rules>[A-Za-z0-9,\s]*)\])?"
)

_OWNER_PATTERN = re.compile(r"#\s*lint:\s*owner\[[^\]]+\]")

#: Sentinel meaning "every rule" (a bare ``# lint: ignore``).
_ALL = frozenset({"*"})


def parse_suppression_comment(comment: str) -> Tuple[FrozenSet[str], bool]:
    """Parse one comment string.

    Returns ``(rule_ids, file_wide)`` where ``rule_ids`` is a frozenset of
    rule names (``{"*"}`` for an unqualified ignore) and ``file_wide`` marks
    the ``ignore-file`` form.  Returns ``(frozenset(), False)`` when the
    comment is not a suppression marker.
    """
    match = _PATTERN.search(comment)
    if match is None:
        return frozenset(), False
    file_wide = match.group("file") is not None
    rules_text = match.group("rules")
    if rules_text is None:
        return _ALL, file_wide
    rules = frozenset(
        token.strip().upper() for token in rules_text.split(",") if token.strip()
    )
    return (rules or _ALL), file_wide


class SuppressionIndex:
    """All suppression markers of one source file, queryable by line."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]],
                 file_wide: FrozenSet[str],
                 owner_lines: FrozenSet[int] = frozenset()):
        self._by_line = by_line
        self._file_wide = file_wide
        self._owner_lines = owner_lines

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Build the index from a file's source text."""
        comments: List[Tuple[int, str]] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    comments.append((token.start[0], token.string))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Unparseable file: approximate with a physical-line scan so the
            # syntax-error report itself stays suppressible.
            for lineno, line in enumerate(source.splitlines(), start=1):
                if "#" in line:
                    comments.append((lineno, line[line.index("#"):]))
        by_line: Dict[int, FrozenSet[str]] = {}
        file_wide: FrozenSet[str] = frozenset()
        owner_lines = set()
        for lineno, text in comments:
            if _OWNER_PATTERN.search(text) is not None:
                owner_lines.add(lineno)
            rules, is_file_wide = parse_suppression_comment(text)
            if not rules:
                continue
            if is_file_wide:
                file_wide = file_wide | rules
            else:
                by_line[lineno] = by_line.get(lineno, frozenset()) | rules
        return cls(by_line, file_wide, frozenset(owner_lines))

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed for a violation on ``line``."""
        rule = rule.upper()
        if "*" in self._file_wide or rule in self._file_wide:
            return True
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return "*" in rules or rule in rules

    def has_owner(self, line: int) -> bool:
        """Whether ``line`` carries a ``# lint: owner[...]`` marker."""
        return line in self._owner_lines

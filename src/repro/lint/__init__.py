"""Repo-specific static analysis for the ``repro`` source tree.

The reproduction's correctness rests on conventions the paper makes
explicit — seeded FCM runs, per-window feature shapes, a single error
hierarchy — that ordinary linters cannot check.  This package parses the
tree with :mod:`ast` and enforces them.

Per-module rules (each judges one file):

========  ==============================================================
``R1``    ``np.random.*`` global-state calls only in ``utils/rng.py``
``R2``    only ``repro.errors`` classes are raised, never bare builtins
``R3``    every public module declares a complete ``__all__`` and
          cross-module imports respect the target's export surface
``R4``    no mutable default args, no float-literal ``==``, no
          wall-clock reads in core numeric paths
``R5``    public array-taking functions validate via ``check_array`` or
          declare a :func:`repro.utils.validation.shapes` contract
``R6``    no ad-hoc clock reads outside :mod:`repro.obs`
========  ==============================================================

Whole-program rules (run with ``--strict`` over the call graph built by
:mod:`repro.lint.graph`; see :mod:`repro.lint.flows`):

========  ==============================================================
``R7``    no unguarded shared mutable state reachable from functions
          dispatched through ``repro.parallel`` executors
``R8``    persistence writes in cache/retrieval paths go through
          :func:`repro.utils.atomicio.atomic_write`
``R9``    feature/fuzzy/signature code paths never transitively reach
          unseeded RNG, wall clocks or environment reads
``R10``   declared ``@shapes`` contracts agree across call edges
``R11``   span/metric names come from the :mod:`repro.obs.names`
          registry
``R12``   only ``ReproError`` subclasses escape public API functions
========  ==============================================================

Violations suppress per line with ``# lint: ignore[R2]`` (see
:mod:`repro.lint.suppressions`); known findings can be grandfathered in
a :mod:`repro.lint.baseline` file instead of fixed.  Run it as
``python -m repro.lint src/repro --strict`` or ``repro-motions lint``;
the library API is :func:`lint_paths`, which returns a
:class:`LintReport`.  The full rule catalogue is documented in
``docs/LINTING.md``.
"""

from repro.lint.baseline import Baseline, baseline_key
from repro.lint.flows import GRAPH_RULE_IDS, GRAPH_RULES, GraphRule, run_graph_rules
from repro.lint.graph import ProjectGraph
from repro.lint.rules import ALL_RULES, RULE_IDS, Rule, rules_by_id
from repro.lint.runner import LintReport, iter_python_files, lint_paths
from repro.lint.violations import Violation
from repro.lint.cli import main

__all__ = [
    "ALL_RULES",
    "RULE_IDS",
    "GRAPH_RULES",
    "GRAPH_RULE_IDS",
    "GraphRule",
    "ProjectGraph",
    "Baseline",
    "baseline_key",
    "Rule",
    "rules_by_id",
    "run_graph_rules",
    "LintReport",
    "iter_python_files",
    "lint_paths",
    "Violation",
    "main",
]

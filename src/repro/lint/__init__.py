"""Repo-specific static analysis for the ``repro`` source tree.

The reproduction's correctness rests on conventions the paper makes
explicit — seeded FCM runs, per-window feature shapes, a single error
hierarchy — that ordinary linters cannot check.  This package parses the
tree with :mod:`ast` and enforces them:

========  ==============================================================
``R1``    ``np.random.*`` global-state calls only in ``utils/rng.py``
``R2``    only ``repro.errors`` classes are raised, never bare builtins
``R3``    every public module declares a complete ``__all__`` and
          cross-module imports respect the target's export surface
``R4``    no mutable default args, no float-literal ``==``, no
          wall-clock reads in core numeric paths
``R5``    public array-taking functions validate via ``check_array`` or
          declare a :func:`repro.utils.validation.shapes` contract
========  ==============================================================

Violations suppress per line with ``# lint: ignore[R2]`` (see
:mod:`repro.lint.suppressions`).  Run it as ``python -m repro.lint
src/repro`` or ``repro-motions lint``; the library API is
:func:`lint_paths`, which returns a :class:`LintReport`.  The full rule
catalogue is documented in ``docs/LINTING.md``.
"""

from repro.lint.rules import ALL_RULES, RULE_IDS, Rule, rules_by_id
from repro.lint.runner import LintReport, iter_python_files, lint_paths
from repro.lint.violations import Violation
from repro.lint.cli import main

__all__ = [
    "ALL_RULES",
    "RULE_IDS",
    "Rule",
    "rules_by_id",
    "LintReport",
    "iter_python_files",
    "lint_paths",
    "Violation",
    "main",
]

"""File collection and rule execution."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import LintError, ValidationError
from repro.lint.baseline import Baseline
from repro.lint.context import ModuleContext
from repro.lint.flows import GRAPH_RULE_IDS, run_graph_rules
from repro.lint.graph import ProjectGraph
from repro.lint.project import check_cross_module_exports
from repro.lint.rules import RULE_IDS, Rule, rules_by_id
from repro.lint.suppressions import SuppressionIndex
from repro.lint.violations import Violation, sort_violations

__all__ = ["LintReport", "iter_python_files", "lint_paths"]


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run."""

    violations: Tuple[Violation, ...]
    n_files: int
    #: Findings matched (and swallowed) by the active baseline.
    n_grandfathered: int = 0

    @property
    def ok(self) -> bool:
        """Whether the tree is clean (modulo grandfathered findings)."""
        return not self.violations

    def to_dict(self) -> dict:
        """JSON-friendly representation for ``--format json``."""
        return {
            "files_checked": self.n_files,
            "grandfathered": self.n_grandfathered,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }


def iter_python_files(paths: Iterable) -> List[Tuple[Path, Path]]:
    """Expand files/directories into ``(file, root)`` pairs, sorted.

    ``root`` is the directory argument a file was found under (the file's
    parent for file arguments); rules use it to compute package-relative
    paths for trees living outside a ``repro`` directory.
    """
    out: List[Tuple[Path, Path]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            out.append((path, path.parent))
        elif path.is_dir():
            out.extend((f, path) for f in sorted(path.rglob("*.py")))
        else:
            raise LintError(f"no such file or directory: {path}")
    # De-duplicate while keeping order stable.
    seen = set()
    unique: List[Tuple[Path, Path]] = []
    for pair in out:
        key = pair[0].resolve()
        if key not in seen:
            seen.add(key)
            unique.append(pair)
    return unique


def _split_select(select: Optional[Sequence[str]],
                  strict: bool) -> Tuple[Optional[List[str]], Set[str]]:
    """``(per-module select, graph rule ids)`` for one run.

    Default runs keep the historical R1–R6 behaviour; ``strict`` adds
    the whole-program pass; an explicit ``--select`` runs exactly the
    named rules (building the graph only when an R7+ rule asks for it).
    """
    if select is None:
        return None, set(GRAPH_RULE_IDS) if strict else set()
    wanted = {token.upper() for token in select}
    unknown = wanted - set(RULE_IDS) - set(GRAPH_RULE_IDS)
    if unknown:
        known = list(RULE_IDS) + list(GRAPH_RULE_IDS)
        raise ValidationError(
            f"unknown rule id(s) {sorted(unknown)}; known: {known}"
        )
    graph_ids = wanted & set(GRAPH_RULE_IDS)
    if strict:
        graph_ids = set(GRAPH_RULE_IDS)
    return sorted(wanted & set(RULE_IDS)), graph_ids


def lint_paths(
    paths: Sequence,
    select: Optional[Sequence[str]] = None,
    strict: bool = False,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint files/directories and return the report.

    Parameters
    ----------
    paths:
        Files and/or directories (directories are walked recursively).
    select:
        Optional subset of rule ids to run (default: the per-module
        rules R1–R6).  The cross-module export check runs with R3;
        selecting any of R7–R12 builds the whole-program graph.
    strict:
        Run the whole-program dataflow pass (rules R7–R12) on top of
        whatever ``select`` names.
    baseline:
        Optional grandfathered-findings baseline; matching violations
        are counted in ``n_grandfathered`` instead of reported.
    """
    module_select, graph_ids = _split_select(select, strict)
    rules: Tuple[Rule, ...] = rules_by_id(module_select)
    files = iter_python_files(paths)
    contexts: List[ModuleContext] = []
    violations: List[Violation] = []
    for path, root in files:
        try:
            ctx = ModuleContext.parse(path, root)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            suppressions = _best_effort_suppressions(path)
            if not suppressions.is_suppressed("E0", line):
                violations.append(Violation(
                    rule="E0", path=str(path), line=line, col=0,
                    message=f"could not parse file: {exc}",
                ))
            continue
        contexts.append(ctx)
        for rule in rules:
            for violation in rule.check(ctx):
                if not ctx.suppressions.is_suppressed(violation.rule,
                                                      violation.line):
                    violations.append(violation)
    by_path = {str(ctx.path): ctx for ctx in contexts}
    if module_select is None or "R3" in module_select:
        for violation in check_cross_module_exports(contexts):
            ctx = by_path[violation.path]
            if not ctx.suppressions.is_suppressed(violation.rule, violation.line):
                violations.append(violation)
    if graph_ids:
        graph = ProjectGraph.build(contexts)
        for violation in run_graph_rules(graph, sorted(graph_ids)):
            ctx = by_path.get(violation.path)
            if ctx is not None and ctx.suppressions.is_suppressed(
                    violation.rule, violation.line):
                continue
            violations.append(violation)
    n_grandfathered = 0
    if baseline is not None and len(baseline):
        kept: List[Violation] = []
        for violation in violations:
            if baseline.matches(violation):
                n_grandfathered += 1
            else:
                kept.append(violation)
        violations = kept
    return LintReport(
        violations=sort_violations(violations),
        n_files=len(files),
        n_grandfathered=n_grandfathered,
    )


def _best_effort_suppressions(path: Path) -> SuppressionIndex:
    try:
        return SuppressionIndex.from_source(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError):
        return SuppressionIndex({}, frozenset())

"""File collection and rule execution."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import LintError
from repro.lint.context import ModuleContext
from repro.lint.project import check_cross_module_exports
from repro.lint.rules import Rule, rules_by_id
from repro.lint.suppressions import SuppressionIndex
from repro.lint.violations import Violation, sort_violations

__all__ = ["LintReport", "iter_python_files", "lint_paths"]


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run."""

    violations: Tuple[Violation, ...]
    n_files: int

    @property
    def ok(self) -> bool:
        """Whether the tree is clean."""
        return not self.violations

    def to_dict(self) -> dict:
        """JSON-friendly representation for ``--format json``."""
        return {
            "files_checked": self.n_files,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }


def iter_python_files(paths: Iterable) -> List[Tuple[Path, Path]]:
    """Expand files/directories into ``(file, root)`` pairs, sorted.

    ``root`` is the directory argument a file was found under (the file's
    parent for file arguments); rules use it to compute package-relative
    paths for trees living outside a ``repro`` directory.
    """
    out: List[Tuple[Path, Path]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            out.append((path, path.parent))
        elif path.is_dir():
            out.extend((f, path) for f in sorted(path.rglob("*.py")))
        else:
            raise LintError(f"no such file or directory: {path}")
    # De-duplicate while keeping order stable.
    seen = set()
    unique: List[Tuple[Path, Path]] = []
    for pair in out:
        key = pair[0].resolve()
        if key not in seen:
            seen.add(key)
            unique.append(pair)
    return unique


def lint_paths(
    paths: Sequence,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint files/directories and return the report.

    Parameters
    ----------
    paths:
        Files and/or directories (directories are walked recursively).
    select:
        Optional subset of rule ids to run (default: all rules).  The
        cross-module export check runs with R3.
    """
    rules: Tuple[Rule, ...] = rules_by_id(select)
    files = iter_python_files(paths)
    contexts: List[ModuleContext] = []
    violations: List[Violation] = []
    for path, root in files:
        try:
            ctx = ModuleContext.parse(path, root)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            suppressions = _best_effort_suppressions(path)
            if not suppressions.is_suppressed("E0", line):
                violations.append(Violation(
                    rule="E0", path=str(path), line=line, col=0,
                    message=f"could not parse file: {exc}",
                ))
            continue
        contexts.append(ctx)
        for rule in rules:
            for violation in rule.check(ctx):
                if not ctx.suppressions.is_suppressed(violation.rule,
                                                      violation.line):
                    violations.append(violation)
    if select is None or "R3" in {token.upper() for token in select}:
        by_path = {str(ctx.path): ctx for ctx in contexts}
        for violation in check_cross_module_exports(contexts):
            ctx = by_path[violation.path]
            if not ctx.suppressions.is_suppressed(violation.rule, violation.line):
                violations.append(violation)
    return LintReport(violations=sort_violations(violations), n_files=len(files))


def _best_effort_suppressions(path: Path) -> SuppressionIndex:
    try:
        return SuppressionIndex.from_source(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError):
        return SuppressionIndex({}, frozenset())

"""Grandfathered-findings baseline for the whole-program rules.

A baseline file lets a strict run pass while known, deliberately
deferred findings are tracked instead of fixed.  Entries are keyed by
``(rule, package-relative path, message)`` — line numbers are *not*
part of the key, so unrelated edits above a grandfathered finding do
not invalidate it, while any change to the finding itself (different
message, moved file) surfaces it again.

File format (JSON, sorted, trailing newline — diff-friendly)::

    {
      "entries": [
        {
          "rule": "R9",
          "path": "features/svd.py",
          "message": "...exact violation message...",
          "note": "why this is deferred + tracking pointer"
        }
      ]
    }

Every entry must carry a ``note`` explaining why the finding is
grandfathered rather than fixed; loading rejects files without one so
the workflow cannot silently become a suppression dump.
"""

from __future__ import annotations

import json
from pathlib import Path, PurePath
from typing import Dict, FrozenSet, Iterable, Tuple

from repro.errors import LintError
from repro.lint.context import PACKAGE_DIR_NAME
from repro.lint.violations import Violation

__all__ = ["Baseline", "baseline_key"]

#: One baseline key: (rule, package-relative path, message).
Key = Tuple[str, str, str]


def _relative_path(path: str) -> str:
    """``.../src/repro/parallel/cache.py`` → ``parallel/cache.py``.

    Mirrors the anchoring rule of :mod:`repro.lint.context`: parts after
    the last ``repro`` directory, else the bare filename — so baselines
    written on one checkout match on any other.
    """
    parts = PurePath(path).parts
    if PACKAGE_DIR_NAME in parts:
        cut = len(parts) - 1 - parts[::-1].index(PACKAGE_DIR_NAME)
        rel = parts[cut + 1:]
        if rel:
            return "/".join(rel)
    return parts[-1] if parts else path


def baseline_key(violation: Violation) -> Key:
    """The matching key of one violation."""
    return (violation.rule, _relative_path(violation.path), violation.message)


class Baseline:
    """An immutable set of grandfathered findings."""

    def __init__(self, keys: FrozenSet[Key], notes: Dict[Key, str]):
        self._keys = keys
        self._notes = notes

    def __len__(self) -> int:
        return len(self._keys)

    def matches(self, violation: Violation) -> bool:
        """Whether ``violation`` is grandfathered by this baseline."""
        return baseline_key(violation) in self._keys

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(frozenset(), {})

    @classmethod
    def load(cls, path) -> "Baseline":
        """Read a baseline file (raises :class:`LintError` on bad input)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
        entries = payload.get("entries") if isinstance(payload, dict) else None
        if not isinstance(entries, list):
            raise LintError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        keys = set()
        notes: Dict[Key, str] = {}
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise LintError(f"baseline {path}: entry {i} is not an object")
            missing = [f for f in ("rule", "path", "message", "note")
                       if not isinstance(entry.get(f), str) or not entry[f]]
            if missing:
                raise LintError(
                    f"baseline {path}: entry {i} is missing {missing} "
                    f"(every grandfathered finding needs rule, path, "
                    f"message and a tracking note)"
                )
            key: Key = (entry["rule"].upper(), entry["path"], entry["message"])
            keys.add(key)
            notes[key] = entry["note"]
        return cls(frozenset(keys), notes)

    @staticmethod
    def write(path, violations: Iterable[Violation],
              note: str = "grandfathered by --write-baseline; fix and remove") -> int:
        """Write ``violations`` as a fresh baseline file; returns the count."""
        entries = sorted(
            {baseline_key(v) for v in violations}
        )
        payload = {
            "entries": [
                {"rule": rule, "path": rel, "message": message, "note": note}
                for rule, rel, message in entries
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return len(entries)

"""The violation record produced by every lint rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Violation", "sort_violations"]


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule identifier (``"R1"`` ... ``"R5"``, or ``"E0"`` for files the
        runner could not parse).
    path:
        Path of the offending file, as given to the runner.
    line:
        1-based line number.
    col:
        0-based column offset.
    message:
        Human-readable description of what fired and how to fix it.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format_text(self) -> str:
        """``path:line:col: RULE message`` — the text-mode report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-friendly representation used by ``--format json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def sort_violations(violations) -> Tuple[Violation, ...]:
    """Deterministic report order: by path, then line, column and rule."""
    return tuple(sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule)))
